//! Integration: the crypto substrate's unforgeability contract holds
//! end-to-end — chains survive transport through the simulator, and no
//! combination of replay/truncation/forgery lets a wrong value acquire a
//! valid quorum.

use byzantine_agreement::algos::{algorithm2, domains};
use byzantine_agreement::crypto::wire::{Decoder, Encoder};
use byzantine_agreement::crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signature, Value};

#[test]
fn proofs_survive_serialization_and_reverification() {
    // Run Algorithm 2, serialize every proof, decode, and verify with a
    // fresh verifier over the same registry parameters — the "auditor"
    // path an external consumer would take.
    let t = 3;
    let seed = 77;
    let r = algorithm2::run(
        t,
        Value::ONE,
        algorithm2::Algo2Options {
            seed,
            scheme: SchemeKind::Hmac,
            ..Default::default()
        },
    )
    .unwrap();
    let auditor_registry = KeyRegistry::new(2 * t + 1, seed, SchemeKind::Hmac);
    let auditor = auditor_registry.verifier();
    for (i, proof) in r.proofs.iter().enumerate() {
        let proof = proof.as_ref().expect("every correct processor holds one");
        let mut enc = Encoder::new();
        proof.encode(&mut enc);
        let buf = enc.finish();
        let decoded = Chain::decode(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(&decoded, proof);
        assert!(
            algorithm2::is_transferable_proof(
                &decoded,
                Value::ONE,
                ProcessId(i as u32),
                t,
                &auditor
            ),
            "auditor rejects p{i}'s proof"
        );
    }
}

#[test]
fn a_coalition_cannot_assemble_a_wrong_value_quorum() {
    // t faulty processors pool everything they can sign and every
    // manipulation the chain API allows; they still cannot make a chain
    // with t+1 distinct signers on a value no correct processor signed.
    let t = 3;
    let n = 2 * t + 1;
    let registry = KeyRegistry::new(n, 5, SchemeKind::Hmac);
    let coalition: Vec<ProcessId> = (1..=t as u32).map(ProcessId).collect();

    let mut best = Chain::new(domains::ALG2, Value(99));
    for &member in &coalition {
        best.sign_and_append(&registry.signer(member));
    }
    // All coalition members signed; distinct signers = t < t + 1.
    let distinct: std::collections::BTreeSet<ProcessId> = best.signers().collect();
    assert_eq!(distinct.len(), t);
    assert!(best.verify(&registry.verifier()).is_ok());

    // Forging an extra signature fails verification.
    let mut forged = best.clone();
    {
        // Simulate the strongest splice available: copy a *real* signature
        // by an honest processor from a different chain.
        let mut other = Chain::new(domains::ALG2, Value::ONE);
        other.sign_and_append(&registry.signer(ProcessId(6)));
        let mut enc = Encoder::new();
        other.signatures()[0].encode(&mut enc);
        let buf = enc.finish();
        let stolen = Signature::decode(&mut Decoder::new(&buf)).unwrap();
        // No public constructor mutates a chain's signature list, so the
        // splice has to go through encode/decode of a crafted buffer.
        let mut enc = Encoder::new();
        forged.encode(&mut enc);
        let mut raw = enc.finish().to_vec();
        // Bump the signature count and append the stolen signature bytes.
        let count_off = 4 + 8; // domain + value
        let count = u32::from_be_bytes(raw[count_off..count_off + 4].try_into().unwrap());
        raw[count_off..count_off + 4].copy_from_slice(&(count + 1).to_be_bytes());
        let mut enc2 = Encoder::new();
        stolen.encode(&mut enc2);
        raw.extend_from_slice(&enc2.finish());
        forged = Chain::decode(&mut Decoder::new(&raw)).unwrap();
    }
    assert_eq!(forged.len(), t + 1);
    assert!(
        forged.verify(&registry.verifier()).is_err(),
        "spliced honest signature must not verify on the wrong chain"
    );
}

#[test]
fn truncation_cannot_change_a_chain_value() {
    let registry = KeyRegistry::new(5, 1, SchemeKind::Fast);
    let mut chain = Chain::new(domains::ALG2, Value::ONE);
    for p in 0..4u32 {
        chain.sign_and_append(&registry.signer(ProcessId(p)));
    }
    for keep in 1..=4 {
        let t = chain.truncated(keep);
        assert_eq!(t.value(), Value::ONE, "value is under every signature");
        assert!(t.verify(&registry.verifier()).is_ok());
    }
}

#[test]
fn cross_domain_replay_is_rejected() {
    // A signature minted for one protocol domain must not verify when the
    // chain is re-labeled for another.
    let registry = KeyRegistry::new(3, 8, SchemeKind::Hmac);
    let mut alg1_chain = Chain::new(domains::ALG1, Value::ONE);
    alg1_chain.sign_and_append(&registry.signer(ProcessId(0)));
    let mut enc = Encoder::new();
    alg1_chain.encode(&mut enc);
    let mut raw = enc.finish().to_vec();
    raw[..4].copy_from_slice(&domains::ALG2.to_be_bytes());
    let relabeled = Chain::decode(&mut Decoder::new(&raw)).unwrap();
    assert_eq!(relabeled.domain(), domains::ALG2);
    assert!(relabeled.verify(&registry.verifier()).is_err());
}
