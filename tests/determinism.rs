//! Integration: runs are bit-for-bit reproducible from the seed, and the
//! agreement outcome is independent of the signature scheme chosen.

use byzantine_agreement::algos::{algorithm1, algorithm2, algorithm3, algorithm5};
use byzantine_agreement::crypto::{ProcessId, SchemeKind, Value};

#[test]
fn same_seed_same_everything() {
    let run = || {
        algorithm3::run(
            50,
            2,
            5,
            Value::ONE,
            algorithm3::Alg3Options {
                fault: algorithm3::Alg3Fault::LyingRoots {
                    groups: vec![1],
                    wrong: Value::ZERO,
                },
                seed: 42,
                scheme: SchemeKind::Hmac,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcome.decisions, b.outcome.decisions);
    assert_eq!(a.outcome.metrics, b.outcome.metrics);
}

#[test]
fn scheme_choice_does_not_change_outcomes() {
    for t in [1usize, 3] {
        let mut per_scheme = Vec::new();
        for scheme in [SchemeKind::Hmac, SchemeKind::Fast] {
            let r = algorithm1::run(
                t,
                Value::ONE,
                algorithm1::Algo1Options {
                    fault: algorithm1::Algo1Fault::Equivocate {
                        ones: vec![ProcessId(1)],
                    },
                    seed: 3,
                    scheme,
                    ..Default::default()
                },
            )
            .unwrap();
            per_scheme.push((
                r.verdict.agreed,
                r.outcome.metrics.messages_by_correct,
                r.outcome.metrics.signatures_by_correct,
            ));
        }
        assert_eq!(per_scheme[0], per_scheme[1], "t={t}");
    }
}

#[test]
fn seed_changes_keys_but_not_decisions() {
    for seed in [0u64, 1, 2, 3, 4] {
        let r = algorithm2::run(
            3,
            Value::ONE,
            algorithm2::Algo2Options {
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.report.verdict.agreed, Some(Value::ONE), "seed={seed}");
    }
}

#[test]
fn algorithm5_metrics_reproducible() {
    let run = |seed| {
        algorithm5::run(
            60,
            1,
            3,
            Value::ONE,
            algorithm5::Alg5Options {
                seed,
                ..Default::default()
            },
        )
        .unwrap()
        .outcome
        .metrics
    };
    assert_eq!(run(9), run(9));
    // Different seeds change signatures (keys) but not the message
    // pattern of a fault-free run.
    assert_eq!(run(9).messages_by_correct, run(10).messages_by_correct);
}
