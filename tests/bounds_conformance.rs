//! Integration: measured traffic respects every closed-form bound of the
//! paper — upper bounds are never exceeded, lower bounds are always
//! cleared by complete algorithms.

use byzantine_agreement::algos::{
    algorithm1, algorithm2, algorithm3, algorithm4, algorithm5, bounds, dolev_strong, om,
};
use byzantine_agreement::crypto::{ProcessId, SchemeKind, Value};

#[test]
fn upper_bounds_hold_across_sweep() {
    for t in 1..=8usize {
        let a1 = algorithm1::run(t, Value::ONE, Default::default()).unwrap();
        assert!(
            a1.outcome.metrics.messages_by_correct <= bounds::alg1_max_messages(t as u64),
            "alg1 t={t}"
        );
        assert!(a1.outcome.metrics.phases as u64 <= bounds::alg1_phases(t as u64));

        let a2 = algorithm2::run(t, Value::ONE, Default::default()).unwrap();
        assert!(
            a2.report.outcome.metrics.messages_by_correct <= bounds::alg2_max_messages(t as u64),
            "alg2 t={t}"
        );
        assert_eq!(
            a2.report.outcome.metrics.phases as u64,
            bounds::alg2_phases(t as u64)
        );
    }

    for (n, t, s) in [(30usize, 2usize, 4usize), (80, 3, 12), (200, 4, 16)] {
        let a3 = algorithm3::run(n, t, s, Value::ONE, Default::default()).unwrap();
        assert!(
            a3.outcome.metrics.messages_by_correct
                <= bounds::alg3_max_messages(n as u64, t as u64, s as u64),
            "alg3 n={n} t={t} s={s}"
        );
        assert_eq!(
            a3.outcome.metrics.phases as u64,
            bounds::alg3_phases(t as u64, s as u64)
        );
    }

    for m in 2..=6usize {
        let r = algorithm4::run(m, vec![], 1, SchemeKind::Fast);
        assert_eq!(
            r.outcome.metrics.messages_by_correct,
            bounds::alg4_max_messages(m as u64),
            "alg4 m={m}: fault-free count is exactly the bound"
        );
    }

    for (n, t, s) in [(60usize, 1usize, 3usize), (100, 3, 3), (150, 3, 7)] {
        let a5 = algorithm5::run(n, t, s, Value::ONE, Default::default()).unwrap();
        assert!(
            a5.outcome.metrics.messages_by_correct
                <= bounds::alg5_message_envelope(n as u64, t as u64, s as u64),
            "alg5 n={n} t={t} s={s}"
        );
        assert_eq!(
            a5.outcome.metrics.phases as u64,
            bounds::alg5_phases_schedule(t as u64, s as u64)
        );
    }
}

#[test]
fn lower_bounds_cleared_by_all_algorithms() {
    // Theorem 2: worst-case message counts of complete algorithms sit at
    // or above max{⌈(n-1)/2⌉, (1+t/2)²}.
    for t in [2usize, 4, 6] {
        let n = 2 * t + 1;
        let bound = bounds::thm2_message_lower_bound(n as u64, t as u64);
        let a1 = algorithm1::run(t, Value::ONE, Default::default()).unwrap();
        assert!(
            a1.outcome.metrics.messages_by_correct >= bound,
            "alg1 t={t}"
        );
    }
    // Theorem 1 / Corollary 1: unauthenticated OM(t) clears n(t+1)/4 in
    // messages; authenticated algorithms clear it in signatures.
    for (n, t) in [(7usize, 2usize), (10, 3)] {
        let r = om::run(n, t, Value::ONE, Default::default()).unwrap();
        assert!(
            r.outcome.metrics.messages_by_correct
                >= bounds::cor1_message_lower_bound(n as u64, t as u64)
        );
    }
    for t in [2usize, 4] {
        let n = 2 * t + 1;
        let a1 = algorithm1::run(t, Value::ONE, Default::default()).unwrap();
        assert!(
            a1.outcome.metrics.signatures_by_correct
                >= bounds::thm1_signature_lower_bound(n as u64, t as u64),
            "alg1 signatures t={t}"
        );
    }
}

#[test]
fn algorithm5_message_growth_is_linear_in_n() {
    // Fix t, s; double n twice: messages must grow sub-quadratically
    // (close to linearly) — the O(n + t²) shape of Theorem 7.
    let (t, s) = (3usize, 3usize);
    let m100 = algorithm5::run(100, t, s, Value::ONE, Default::default())
        .unwrap()
        .outcome
        .metrics
        .messages_by_correct as f64;
    let m400 = algorithm5::run(400, t, s, Value::ONE, Default::default())
        .unwrap()
        .outcome
        .metrics
        .messages_by_correct as f64;
    let growth = m400 / m100;
    assert!(
        growth < 4.8,
        "4x n should give ~4x messages, got {growth:.2}x ({m100} -> {m400})"
    );
}

#[test]
fn algorithm5_beats_dolev_strong_broadcast_for_large_n() {
    // O(n + t²) vs the O(n²) broadcast form: an order of magnitude apart
    // already at n = 400.
    let (n, t) = (400usize, 3usize);
    let a5 = algorithm5::run(n, t, 7, Value::ONE, Default::default()).unwrap();
    let dsb = dolev_strong::run(n, t, Value::ONE, Default::default()).unwrap();
    let a5m = a5.outcome.metrics.messages_by_correct;
    assert!(
        a5m < dsb.outcome.metrics.messages_by_correct / 5,
        "vs broadcast"
    );
}

#[test]
fn algorithm5_crosses_over_dolev_strong_relay_at_large_t() {
    // Against the O(nt) relay form the advantage is the n-coefficient:
    // ~2α/s + 2 for Algorithm 5 versus 2(t+1); with t = 10, s = 15 the
    // crossover has happened by n = 2000.
    let (n, t, s) = (2000usize, 10usize, 15usize);
    let a5 = algorithm5::run(n, t, s, Value::ONE, Default::default()).unwrap();
    let dsr = dolev_strong::run(
        n,
        t,
        Value::ONE,
        dolev_strong::DsOptions {
            variant: dolev_strong::Variant::Relay,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(a5.verdict.agreed, Some(Value::ONE));
    let a5m = a5.outcome.metrics.messages_by_correct;
    let dsm = dsr.outcome.metrics.messages_by_correct;
    assert!(
        a5m < dsm,
        "alg5 {a5m} should beat ds-relay {dsm} at n={n}, t={t}"
    );
}

#[test]
fn worst_case_fault_injection_stays_within_bounds() {
    // Adversaries may only add bounded extra traffic from correct nodes.
    let (n, t, s) = (60usize, 3usize, 6usize);
    let r = algorithm3::run(
        n,
        t,
        s,
        Value::ONE,
        algorithm3::Alg3Options {
            fault: algorithm3::Alg3Fault::LyingRoots {
                groups: vec![0, 1, 2],
                wrong: Value::ZERO,
            },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        r.outcome.metrics.messages_by_correct
            <= bounds::alg3_max_messages(n as u64, t as u64, s as u64)
    );

    let ones: Vec<ProcessId> = (1..=3u32).map(ProcessId).collect();
    let r = algorithm1::run(
        3,
        Value::ONE,
        algorithm1::Algo1Options {
            fault: algorithm1::Algo1Fault::Equivocate { ones },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.outcome.metrics.messages_by_correct <= bounds::alg1_max_messages(3));
}
