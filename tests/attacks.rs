//! Integration: the lower-bound attacks of `ba-model` end-to-end —
//! splicing and starvation break frugal protocols, and the same
//! prerequisites are denied by the paper's algorithms.

use byzantine_agreement::model::{theorem1, theorem2};
use byzantine_agreement::sim::AgreementViolation;

#[test]
fn theorem1_attack_succeeds_exactly_when_a_set_fits_the_budget() {
    // k relays => |A(victim)| = k + 1.
    for (n, t, k) in [(9usize, 3usize, 2usize), (11, 4, 3), (13, 5, 4)] {
        let a = theorem1::attack_frugal(n, t, k, 99);
        assert!(a.feasible, "n={n} t={t} k={k}");
        assert!(a.victim_view_preserved);
        assert!(matches!(
            a.violation,
            Some(AgreementViolation::Disagreement { .. })
        ));
    }
    for (n, t, k) in [(9usize, 2usize, 3usize), (11, 3, 4)] {
        let a = theorem1::attack_frugal(n, t, k, 99);
        assert!(!a.feasible, "n={n} t={t} k={k}");
        assert!(a.violation.is_none());
    }
}

#[test]
fn theorem1_prerequisite_denied_by_algorithm1_for_all_t() {
    for t in 1..=5 {
        assert!(theorem1::audit_algorithm1(t, 123) > t);
    }
}

#[test]
fn theorem2_starvation_succeeds_against_quiet_broadcast() {
    for (n, t) in [(5usize, 1usize), (9, 3), (14, 5)] {
        let a = theorem2::attack_quiet(n, t, 5);
        assert!(a.feasible);
        assert!(a.victim_starved);
        assert!(a.violation.is_some(), "n={n} t={t}");
    }
}

#[test]
fn theorem2_extraction_never_falls_short() {
    for t in 1..=8 {
        for seed in [0u64, 17, 991] {
            let r = theorem2::extract_algorithm1(t, seed);
            assert!(r.agreement_held, "t={t} seed={seed}");
            assert!(
                r.demand_met(),
                "t={t} seed={seed}: {:?}",
                r.received_from_correct
            );
        }
    }
}

#[test]
fn attacks_are_deterministic_per_seed() {
    let a = theorem1::attack_frugal(9, 3, 2, 7);
    let b = theorem1::attack_frugal(9, 3, 2, 7);
    assert_eq!(a.a_set, b.a_set);
    assert_eq!(a.violation.is_some(), b.violation.is_some());
    assert_eq!(a.signatures_in_h, b.signatures_in_h);
}
