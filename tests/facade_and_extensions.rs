//! Integration: the `agree` facade, interactive consistency, the
//! multi-valued Algorithm 1 and the fuzz harnesses, exercised together.

use byzantine_agreement::algos::ic::{self, IcFault};
use byzantine_agreement::algos::{agree, algorithm1_multi, bounds, fuzz, AgreeOptions, Selected};
use byzantine_agreement::crypto::{ProcessId, SchemeKind, Value};

#[test]
fn facade_covers_the_whole_regime_map() {
    // Sweep n across all three regimes for several t.
    for t in 1..=3usize {
        let alpha = bounds::alpha(t as u64) as usize;
        for n in [2 * t + 1, 2 * t + 2, alpha - 1, alpha, alpha + 13] {
            let r = agree(n, t, Value::ONE, AgreeOptions::default()).unwrap();
            assert_eq!(r.verdict.agreed, Some(Value::ONE), "n={n} t={t}");
            let expected = if n == 2 * t + 1 {
                Selected::Algorithm1
            } else if n < alpha {
                Selected::SmallN
            } else {
                Selected::Algorithm5
            };
            assert_eq!(r.selected, expected, "n={n} t={t}");
        }
    }
}

#[test]
fn interactive_consistency_composes_with_faults() {
    let n = 8;
    let t = 2;
    let vals: Vec<Value> = (0..n as u64).map(|i| Value(i * i + 3)).collect();
    let r = ic::run(
        n,
        t,
        &vals,
        IcFault::EquivocateOwnInstance {
            set: vec![ProcessId(3), ProcessId(6)],
        },
        5,
    );
    let census = r.common_vector().unwrap();
    for i in 0..n {
        if i != 3 && i != 6 {
            assert_eq!(census[i], vals[i]);
        }
    }
}

#[test]
fn multivalued_agreement_interops_with_binary_bounds() {
    for t in 1..=4 {
        let r = algorithm1_multi::run(
            t,
            Value(0xCAFE),
            algorithm1_multi::MultiFault::None,
            7,
            SchemeKind::Hmac,
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value(0xCAFE)));
        // Single-value fault-free run costs exactly the binary worst case.
        assert_eq!(
            r.outcome.metrics.messages_by_correct,
            bounds::alg1_max_messages(t as u64)
        );
    }
}

#[test]
fn fuzzed_runs_never_break_agreement_or_panic() {
    for seed in [1u64, 99, 4096] {
        let r = fuzz::fuzz_algorithm1(3, Value::ONE, 2, 12, seed).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE), "seed={seed}");
        let r = fuzz::fuzz_algorithm5(30, 1, 3, Value::ZERO, 1, 8, seed).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ZERO), "seed={seed}");
    }
}

#[test]
fn spam_is_not_billed_to_correct_processors() {
    let clean = fuzz::fuzz_algorithm1(3, Value::ONE, 0, 0, 5).unwrap();
    let spammy = fuzz::fuzz_algorithm1(3, Value::ONE, 2, 20, 5).unwrap();
    // Spam shows up as faulty traffic only; the correct-sender count can
    // only go down (spammers replaced two relays).
    assert!(spammy.outcome.metrics.messages_by_faulty > 0);
    assert!(
        spammy.outcome.metrics.messages_by_correct <= clean.outcome.metrics.messages_by_correct
    );
}
