//! Cross-crate integration: every algorithm reaches Byzantine Agreement
//! under every adversary scenario its module exposes, across seeds and
//! both signature schemes.

use byzantine_agreement::algos::{
    algorithm1, algorithm2, algorithm3, algorithm5, dolev_strong, om,
};
use byzantine_agreement::crypto::{ProcessId, SchemeKind, Value};

const SEEDS: [u64; 3] = [1, 0xDEADBEEF, u64::MAX / 7];

#[test]
fn algorithm1_agreement_matrix() {
    for &seed in &SEEDS {
        for scheme in [SchemeKind::Hmac, SchemeKind::Fast] {
            for t in [1usize, 3, 5] {
                for value in [Value::ZERO, Value::ONE] {
                    let faults = [
                        algorithm1::Algo1Fault::None,
                        algorithm1::Algo1Fault::SilentTransmitter,
                        algorithm1::Algo1Fault::Equivocate {
                            ones: vec![ProcessId(1), ProcessId(t as u32 + 1)],
                        },
                        algorithm1::Algo1Fault::CrashedRelays {
                            relays: vec![ProcessId(t as u32)],
                        },
                    ];
                    for fault in faults {
                        let r = algorithm1::run(
                            t,
                            value,
                            algorithm1::Algo1Options {
                                fault,
                                seed,
                                scheme,
                                ..Default::default()
                            },
                        )
                        .expect("agreement must hold");
                        assert!(r.verdict.agreed.is_some());
                    }
                }
            }
        }
    }
}

#[test]
fn algorithm2_agreement_and_proofs_matrix() {
    for &seed in &SEEDS {
        for t in [2usize, 4] {
            let faults = [
                algorithm2::Algo2Fault::None,
                algorithm2::Algo2Fault::Silent {
                    set: vec![ProcessId(1), ProcessId(2 * t as u32)],
                },
                algorithm2::Algo2Fault::CrashAfterCommit {
                    set: vec![ProcessId(2)],
                },
                algorithm2::Algo2Fault::WrongValueGossip {
                    set: vec![ProcessId(3)],
                    wrong: Value::ZERO,
                },
            ];
            for fault in faults {
                let r = algorithm2::run(
                    t,
                    Value::ONE,
                    algorithm2::Algo2Options {
                        fault,
                        seed,
                        scheme: SchemeKind::Fast,
                    },
                )
                .expect("agreement must hold");
                let common = r.report.verdict.agreed.unwrap();
                for (i, correct) in r.report.outcome.correct.iter().enumerate() {
                    if *correct {
                        let proof = r.proofs[i].as_ref().expect("correct processor holds proof");
                        assert!(algorithm2::is_transferable_proof(
                            proof,
                            common,
                            ProcessId(i as u32),
                            t,
                            &r.verifier
                        ));
                    }
                }
            }
        }
    }
}

#[test]
fn algorithm3_agreement_matrix() {
    for &seed in &SEEDS {
        let (n, t, s) = (40usize, 2usize, 5usize);
        let faults = [
            algorithm3::Alg3Fault::None,
            algorithm3::Alg3Fault::SilentRoots { groups: vec![0, 3] },
            algorithm3::Alg3Fault::LyingRoots {
                groups: vec![1],
                wrong: Value::ZERO,
            },
            algorithm3::Alg3Fault::SelectiveRoots { groups: vec![2] },
            algorithm3::Alg3Fault::SilentMembers {
                set: vec![ProcessId(7), ProcessId(12)],
            },
            algorithm3::Alg3Fault::SilentActives {
                set: vec![ProcessId(1)],
            },
        ];
        for fault in faults {
            for value in [Value::ZERO, Value::ONE] {
                let r = algorithm3::run(
                    n,
                    t,
                    s,
                    value,
                    algorithm3::Alg3Options {
                        fault: clone3(&fault),
                        seed,
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .expect("agreement must hold");
                assert_eq!(r.verdict.agreed, Some(value));
            }
        }
    }
}

// Alg3Fault has no Clone derive (it is consumed by the runner); rebuild it.
fn clone3(f: &algorithm3::Alg3Fault) -> algorithm3::Alg3Fault {
    use algorithm3::Alg3Fault as F;
    match f {
        F::None => F::None,
        F::SilentRoots { groups } => F::SilentRoots {
            groups: groups.clone(),
        },
        F::LyingRoots { groups, wrong } => F::LyingRoots {
            groups: groups.clone(),
            wrong: *wrong,
        },
        F::SelectiveRoots { groups } => F::SelectiveRoots {
            groups: groups.clone(),
        },
        F::SilentMembers { set } => F::SilentMembers { set: set.clone() },
        F::SilentActives { set } => F::SilentActives { set: set.clone() },
    }
}

#[test]
fn algorithm5_agreement_matrix() {
    for &seed in &SEEDS[..2] {
        let (n, t, s) = (40usize, 1usize, 3usize);
        let faults = [
            algorithm5::Alg5Fault::None,
            algorithm5::Alg5Fault::SilentPassives {
                set: vec![ProcessId(15)],
            },
            algorithm5::Alg5Fault::SilentTreeRoots { trees: vec![0] },
            algorithm5::Alg5Fault::WithholdingTreeRoots { trees: vec![1] },
            algorithm5::Alg5Fault::SilentActives {
                set: vec![ProcessId(1)],
            },
        ];
        for fault in faults {
            let r = algorithm5::run(
                n,
                t,
                s,
                Value::ONE,
                algorithm5::Alg5Options {
                    fault,
                    seed,
                    scheme: SchemeKind::Fast,
                    ..Default::default()
                },
            )
            .expect("agreement must hold");
            assert_eq!(r.verdict.agreed, Some(Value::ONE));
        }
    }
}

#[test]
fn baselines_agreement_matrix() {
    for &seed in &SEEDS {
        for (n, t) in [(7usize, 2usize), (12, 3)] {
            for variant in [
                dolev_strong::Variant::Broadcast,
                dolev_strong::Variant::Relay,
            ] {
                let r = dolev_strong::run(
                    n,
                    t,
                    Value::ONE,
                    dolev_strong::DsOptions {
                        variant,
                        fault: dolev_strong::DsFault::Equivocate {
                            ones: vec![ProcessId(1), ProcessId(2)],
                        },
                        seed,
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .expect("agreement must hold");
                assert!(r.verdict.agreed.is_some());
            }
        }
        let r = om::run(
            7,
            2,
            Value::ONE,
            om::OmOptions {
                fault: om::OmFault::FlippingRelays {
                    set: vec![ProcessId(2), ProcessId(4)],
                },
            },
        )
        .expect("agreement must hold");
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }
}

#[test]
fn cross_algorithm_consistency_on_shared_settings() {
    // Same (n, t, value): every algorithm must land on the transmitted
    // value in the fault-free case.
    let t = 3;
    let v = Value::ONE;
    let a1 = algorithm1::run(t, v, Default::default()).unwrap();
    let a2 = algorithm2::run(t, v, Default::default()).unwrap();
    let a3 = algorithm3::run(40, t, 6, v, Default::default()).unwrap();
    let a5 = algorithm5::run(60, t, 3, v, Default::default()).unwrap();
    let ds = dolev_strong::run(2 * t + 1, t, v, Default::default()).unwrap();
    let omr = om::run(10, t, v, Default::default()).unwrap();
    for agreed in [
        a1.verdict.agreed,
        a2.report.verdict.agreed,
        a3.verdict.agreed,
        a5.verdict.agreed,
        ds.verdict.agreed,
        omr.verdict.agreed,
    ] {
        assert_eq!(agreed, Some(v));
    }
}
