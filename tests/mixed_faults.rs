//! Integration: heterogeneous fault mixes within a single run — the
//! strongest scenarios the fault budget allows, combining silence,
//! spam, selective omission and protocol-specific lies.

use byzantine_agreement::algos::algorithm1::{Algo1Actor, Algo1Params};
use byzantine_agreement::algos::algorithm5::{Alg5Active, Alg5Config, Alg5Passive, Msg5};
use byzantine_agreement::algos::common::Board;
use byzantine_agreement::algos::fuzz::{ChainFuzzer, Msg5Fuzzer};
use byzantine_agreement::crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Value};
use byzantine_agreement::sim::adversary::{IgnoreFirst, OmitTo, Silent};
use byzantine_agreement::sim::engine::Simulation;
use byzantine_agreement::sim::random::{RandomOmit, Spammer};
use byzantine_agreement::sim::{check_byzantine_agreement, Actor};
use std::sync::Arc;

/// Algorithm 1 with three different fault classes at once: a silent
/// relay, a spamming relay, and a lossy (random-omission) relay.
#[test]
fn algorithm1_with_silent_spamming_and_lossy_relays() {
    let t = 3;
    let n = 2 * t + 1;
    for seed in [1u64, 77, 991] {
        let registry = KeyRegistry::new(n, seed, SchemeKind::Fast);
        let params = Arc::new(Algo1Params {
            t,
            verifier: registry.verifier(),
        });
        let honest = |p: u32, own: Option<Value>| {
            Algo1Actor::new(
                params.clone(),
                ProcessId(p),
                registry.signer(ProcessId(p)),
                own,
            )
        };

        // p1: silent. p2: spammer. p3: drops ~half its sends. Rest honest.
        let mut actors: Vec<Box<dyn Actor<Chain>>> = vec![
            Box::new(honest(0, Some(Value::ONE))),
            Box::new(Silent),
            Box::new(Spammer::new(
                n,
                6,
                seed,
                ChainFuzzer::new(registry.signer(ProcessId(2)), SchemeKind::Fast),
            )),
            Box::new(RandomOmit::new(honest(3, None), 500, seed)),
        ];
        for p in 4..n as u32 {
            actors.push(Box::new(honest(p, None)));
        }

        let outcome = Simulation::new(actors).run(t + 2);
        let verdict = check_byzantine_agreement(&outcome, ProcessId(0), Value::ONE)
            .expect("mixed faults must not break agreement");
        assert_eq!(verdict.agreed, Some(Value::ONE), "seed={seed}");
        assert_eq!(verdict.correct_count, n - 3);
    }
}

/// Algorithm 1 where the adversaries cooperate: one relay starves a
/// victim of its first messages while another omits toward the same
/// victim — the Theorem 2 flavor of faultiness, inside a real algorithm.
#[test]
fn algorithm1_with_coordinated_starvation_attempt() {
    let t = 3;
    let n = 2 * t + 1;
    let registry = KeyRegistry::new(n, 5, SchemeKind::Fast);
    let params = Arc::new(Algo1Params {
        t,
        verifier: registry.verifier(),
    });
    let victim = ProcessId(6);
    let honest = |p: u32, own: Option<Value>| {
        Algo1Actor::new(
            params.clone(),
            ProcessId(p),
            registry.signer(ProcessId(p)),
            own,
        )
    };

    let mut actors: Vec<Box<dyn Actor<Chain>>> = vec![
        Box::new(honest(0, Some(Value::ONE))),
        Box::new(OmitTo::new(honest(1, None), [victim])),
        Box::new(OmitTo::new(honest(2, None), [victim])),
        Box::new(IgnoreFirst::new(honest(3, None), 2, [])),
    ];
    for p in 4..n as u32 {
        actors.push(Box::new(honest(p, None)));
    }

    let outcome = Simulation::new(actors).run(t + 2);
    let verdict = check_byzantine_agreement(&outcome, ProcessId(0), Value::ONE).unwrap();
    // The victim still hears from the transmitter and the remaining
    // correct B-side relays: starvation needs more traitors than t allows.
    assert_eq!(verdict.agreed, Some(Value::ONE));
}

/// Algorithm 5 with a silent core active, a spamming passive and a
/// report-withholding tree root, all in one run (t = 3).
#[test]
fn algorithm5_with_three_fault_classes() {
    let (n, t, s) = (60usize, 3usize, 3usize);
    let registry = KeyRegistry::new(n, 9, SchemeKind::Fast);
    let cfg = Arc::new(Alg5Config::new(n, t, s, registry.verifier()));
    let scratch = Board::new(cfg.core_count());

    // Choose the faulty trio: core active p2; the root of tree 1; a leaf
    // passive as spammer.
    let tree1_root = cfg.forest.processor(1, 1).expect("tree 1 has a real root");
    let spammer_id = ProcessId(n as u32 - 1);

    let mut actors: Vec<Box<dyn Actor<Msg5>>> = Vec::new();
    for i in 0..n as u32 {
        let id = ProcessId(i);
        let actor: Box<dyn Actor<Msg5>> = if id == ProcessId(2) {
            Box::new(Silent)
        } else if id == spammer_id {
            Box::new(Spammer::new(
                n,
                5,
                13,
                Msg5Fuzzer::new(registry.signer(id), SchemeKind::Fast),
            ))
        } else if id == tree1_root {
            let inner = Alg5Passive::new(cfg.clone(), id, registry.signer(id));
            let actives: Vec<ProcessId> = (0..cfg.alpha as u32).map(ProcessId).collect();
            Box::new(OmitTo::new(inner, actives))
        } else if id.index() < cfg.alpha {
            Box::new(Alg5Active::new(
                cfg.clone(),
                id,
                registry.signer(id),
                (i == 0).then_some(Value::ONE),
                scratch.clone(),
            ))
        } else {
            Box::new(Alg5Passive::new(cfg.clone(), id, registry.signer(id)))
        };
        actors.push(actor);
    }

    let outcome = Simulation::new(actors).run(cfg.last_phase);
    let verdict = check_byzantine_agreement(&outcome, ProcessId(0), Value::ONE)
        .expect("mixed faults must not break agreement");
    assert_eq!(verdict.agreed, Some(Value::ONE));
    assert_eq!(verdict.correct_count, n - 3);
}

/// The fault budget boundary: exactly t mixed faults pass, and the same
/// scenario is the worst the checker ever has to absorb.
#[test]
fn exactly_t_mixed_faults_is_survivable() {
    let t = 4;
    let n = 2 * t + 1;
    let registry = KeyRegistry::new(n, 21, SchemeKind::Fast);
    let params = Arc::new(Algo1Params {
        t,
        verifier: registry.verifier(),
    });
    let honest = |p: u32, own: Option<Value>| {
        Algo1Actor::new(
            params.clone(),
            ProcessId(p),
            registry.signer(ProcessId(p)),
            own,
        )
    };

    let mut actors: Vec<Box<dyn Actor<Chain>>> = vec![
        Box::new(honest(0, Some(Value::ZERO))),
        Box::new(Silent),
        Box::new(Spammer::new(
            n,
            10,
            3,
            ChainFuzzer::new(registry.signer(ProcessId(2)), SchemeKind::Fast),
        )),
        Box::new(RandomOmit::new(honest(3, None), 900, 3)),
        Box::new(OmitTo::new(honest(4, None), [ProcessId(7), ProcessId(8)])),
    ];
    for p in 5..n as u32 {
        actors.push(Box::new(honest(p, None)));
    }

    let outcome = Simulation::new(actors).run(t + 2);
    let verdict = check_byzantine_agreement(&outcome, ProcessId(0), Value::ZERO).unwrap();
    assert_eq!(verdict.agreed, Some(Value::ZERO));
}
