//! A complete Rust reproduction of Dolev & Reischuk, *Bounds on
//! Information Exchange for Byzantine Agreement* (PODC 1982 / JACM 1985).
//!
//! This facade re-exports the four subsystem crates:
//!
//! * [`crypto`] ([`ba_crypto`]) — SHA-256/HMAC from scratch, the key
//!   registry modeling unforgeable signatures, signature chains;
//! * [`sim`] ([`ba_sim`]) — the deterministic synchronous phase engine,
//!   adversary combinators, metrics and the agreement checker;
//! * [`algos`] ([`ba_algos`]) — the paper's Algorithms 1–5, the
//!   Dolev–Strong and `OM(t)` baselines, closed-form bounds, the `agree`
//!   facade, multi-valued agreement and interactive consistency;
//! * [`model`] ([`ba_model`]) — the Section-2 formal model and the
//!   Theorem 1/2 lower-bound attacks, runnable;
//! * [`net`] ([`ba_net`]) — the multi-threaded message-passing runtime
//!   over an unreliable wire: retransmission with backoff, phase
//!   watchdogs, and graceful-degradation verdicts, equivalence-checked
//!   against the lock-step engine;
//! * [`ext`] ([`ba_ext`]) — the extension-protocol layer: agreement on
//!   arbitrary ℓ-byte payloads via digest agreement (a multi-valued
//!   checkable target as inner-BA) plus erasure-coded grid dissemination,
//!   with a schedule-independent bits-exchanged budget.
//!
//! # Example
//!
//! ```
//! use byzantine_agreement::algos::{agree, AgreeOptions};
//! use byzantine_agreement::crypto::Value;
//!
//! let report = agree(25, 2, Value::ONE, AgreeOptions::default())?;
//! assert_eq!(report.verdict.agreed, Some(Value::ONE));
//! # Ok::<(), byzantine_agreement::sim::AgreementViolation>(())
//! ```

pub use ba_algos as algos;
pub use ba_crypto as crypto;
pub use ba_ext as ext;
pub use ba_model as model;
pub use ba_net as net;
pub use ba_sim as sim;
