//! Fleet-scale alarm propagation: a large sensor fleet agrees on an alarm
//! flag raised by one gateway, with message budgets that stay near-linear
//! in the fleet size.
//!
//! This is the paper's `n ≫ t` regime: Algorithm 3 (simple, `O(n + t³)`
//! messages) versus Algorithm 5 (`O(n + t²)`), both surviving corrupt
//! group/tree roots that try to suppress or rewrite the alarm.
//!
//! ```text
//! cargo run --example sensor_consensus
//! ```

use byzantine_agreement::algos::{algorithm3, algorithm5, bounds, dolev_strong};
use byzantine_agreement::crypto::Value;

const ALARM: Value = Value::ONE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 400; // sensors
    let t = 3; // tolerated Byzantine sensors

    // Algorithm 3 with the Theorem 5 group size, two group roots lying.
    let s3 = 4 * t;
    let r3 = algorithm3::run(
        n,
        t,
        s3,
        ALARM,
        algorithm3::Alg3Options {
            fault: algorithm3::Alg3Fault::LyingRoots {
                groups: vec![0, 5],
                wrong: Value::ZERO,
            },
            ..Default::default()
        },
    )?;
    println!("Algorithm 3 (groups of {s3}, 2 lying group roots):");
    println!("  fleet agreed on : {:?} (ALARM)", r3.verdict.agreed);
    println!(
        "  messages        : {} (Lemma 1 bound {})",
        r3.outcome.metrics.messages_by_correct,
        bounds::alg3_max_messages(n as u64, t as u64, s3 as u64)
    );
    println!("  phases          : {}", r3.outcome.metrics.phases);

    // Algorithm 5 with s = t (Theorem 7), one silent tree root.
    let s5 = t; // t = 3 = 2² - 1, a valid tree size
    let r5 = algorithm5::run(
        n,
        t,
        s5,
        ALARM,
        algorithm5::Alg5Options {
            fault: algorithm5::Alg5Fault::SilentTreeRoots { trees: vec![0] },
            ..Default::default()
        },
    )?;
    println!("\nAlgorithm 5 (trees of {s5}, 1 silent tree root):");
    println!("  fleet agreed on : {:?} (ALARM)", r5.verdict.agreed);
    println!(
        "  messages        : {} (n + t² = {})",
        r5.outcome.metrics.messages_by_correct,
        n + t * t
    );
    println!("  phases          : {}", r5.outcome.metrics.phases);

    // The pre-Dolev-Reischuk baseline for reference.
    let ds = dolev_strong::run(n, t, ALARM, dolev_strong::DsOptions::default())?;
    println!(
        "\nDolev-Strong broadcast baseline: {} messages — {}x Algorithm 5",
        ds.outcome.metrics.messages_by_correct,
        ds.outcome.metrics.messages_by_correct / r5.outcome.metrics.messages_by_correct.max(1)
    );
    Ok(())
}
