//! The paper's Section-2 formal model, hands on: generate a history from
//! correctness rules, corrupt a processor's rule, check the decision
//! functions, and render the phase graphs as Graphviz.
//!
//! ```text
//! cargo run --example formal_model          # prints the analysis
//! cargo run --example formal_model | tail -n +14 > run.dot && dot -Tsvg run.dot
//! ```

use byzantine_agreement::algos::algorithm1::{self, Algo1Fault, Algo1Options};
use byzantine_agreement::crypto::{ProcessId, Value};
use byzantine_agreement::model::rules::{formal_agreement_holds, generate, Behavior, FormalQuiet};

fn main() {
    // --- 1. A fault-free history from correctness rules alone ----------
    let run = generate(5, 1, &FormalQuiet, Value::ONE, Vec::new());
    println!(
        "fault-free quiet broadcast: {} edges in phase 1",
        run.history.phases[0].len()
    );
    println!(
        "  agreement holds: {}",
        formal_agreement_holds(&run, &[], Value::ONE)
    );

    // --- 2. The same history with a corrupted rule ---------------------
    let victim = ProcessId(4);
    let starve: Behavior<Value> = Box::new(move |ish, phase, q| {
        if q == victim {
            None // R_p says "send"; the faulty transmitter omits
        } else if phase == 1 {
            ish.phase0
        } else {
            None
        }
    });
    let attacked = generate(5, 1, &FormalQuiet, Value::ONE, vec![(ProcessId(0), starve)]);
    println!("\nstarved victim p4:");
    println!("  victim decision set : {:?}", attacked.decisions[4]);
    println!("  bystander p1 decides: {:?}", attacked.decisions[1]);
    println!(
        "  agreement holds     : {}",
        formal_agreement_holds(&attacked, &[ProcessId(0)], Value::ONE)
    );

    // --- 3. A real algorithm's history as Graphviz ---------------------
    let report = algorithm1::run(
        2,
        Value::ONE,
        Algo1Options {
            fault: Algo1Fault::Equivocate {
                ones: vec![ProcessId(1)],
            },
            trace: true,
            ..Default::default()
        },
    )
    .expect("agreement");
    println!(
        "\nAlgorithm 1 under an equivocating transmitter agreed on {:?};",
        report.verdict.agreed
    );
    println!("its full history as a dot graph follows:\n");
    println!("{}", report.outcome.trace.to_dot("algorithm1_equivocation"));
}
