//! Distributed commit: a replicated database decides whether to commit a
//! transaction even though the coordinator equivocates.
//!
//! The coordinator (transmitter) tells half the replicas "commit" (1) and
//! the other half "abort" (0). Algorithm 2 drives all correct replicas to
//! the *same* outcome and leaves each holding a transferable proof — the
//! artifact a recovering replica or an auditor can check offline.
//!
//! ```text
//! cargo run --example distributed_commit
//! ```

use byzantine_agreement::algos::algorithm1;
use byzantine_agreement::algos::algorithm1::{Algo1Fault, Algo1Options};
use byzantine_agreement::algos::algorithm2::{self, is_transferable_proof};
use byzantine_agreement::crypto::{ProcessId, Value};

const COMMIT: Value = Value::ONE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = 4; // up to 4 Byzantine replicas
    let n = 2 * t + 1;

    // First, watch plain Algorithm 1 handle the equivocation: the split
    // brain is healed, every correct replica lands on the same outcome.
    let ones: Vec<ProcessId> = (1..=t as u32).map(ProcessId).collect();
    let split = algorithm1::run(
        t,
        COMMIT,
        Algo1Options {
            fault: Algo1Fault::Equivocate { ones },
            ..Default::default()
        },
    )?;
    println!("9-replica cluster, coordinator equivocates commit/abort:");
    println!(
        "  all correct replicas decided: {:?} (coordinator faulty: {})",
        split.verdict.agreed, !split.verdict.transmitter_correct
    );

    // Now the full commit protocol: Algorithm 2 adds the audit trail.
    let r = algorithm2::run(
        t,
        COMMIT,
        algorithm2::Algo2Options {
            fault: algorithm2::Algo2Fault::CrashAfterCommit {
                set: vec![ProcessId(3), ProcessId(6)],
            },
            ..Default::default()
        },
    )?;
    let outcome = r.report.verdict.agreed.expect("cluster decided");
    println!("\nWith 2 replicas crashing mid-protocol:");
    println!(
        "  outcome: {}",
        if outcome == COMMIT { "COMMIT" } else { "ABORT" }
    );

    // Every surviving replica can hand its proof to an auditor.
    let mut audited = 0;
    for (i, proof) in r.proofs.iter().enumerate() {
        if let Some(proof) = proof {
            let ok = is_transferable_proof(proof, outcome, ProcessId(i as u32), t, &r.verifier);
            assert!(ok, "replica {i} holds an invalid proof");
            audited += 1;
        }
    }
    println!("  replicas holding an auditor-checkable proof: {audited}/{n}");
    println!(
        "  messages spent: {} (bound 5t²+5t = {})",
        r.report.outcome.metrics.messages_by_correct,
        5 * t * t + 5 * t
    );
    Ok(())
}
