//! Quickstart: reach Byzantine Agreement two ways and read the meters.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use byzantine_agreement::algos::{algorithm1, algorithm5, bounds};
use byzantine_agreement::crypto::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The minimal setting: n = 2t + 1, Algorithm 1 (Theorem 3) -------
    let t = 4;
    let report = algorithm1::run(t, Value::ONE, algorithm1::Algo1Options::default())?;
    println!("Algorithm 1 (n = {}, t = {t}):", 2 * t + 1);
    println!("  agreed value : {:?}", report.verdict.agreed);
    println!(
        "  phases       : {} (bound {})",
        report.outcome.metrics.phases,
        bounds::alg1_phases(t as u64)
    );
    println!(
        "  messages     : {} (bound 2t²+2t = {})",
        report.outcome.metrics.messages_by_correct,
        bounds::alg1_max_messages(t as u64)
    );
    println!(
        "  signatures   : {}",
        report.outcome.metrics.signatures_by_correct
    );

    // --- The headline: Algorithm 5 with s = t gives O(n + t²) ----------
    let (n, t, s) = (120, 3, 3);
    let report = algorithm5::run(n, t, s, Value::ONE, algorithm5::Alg5Options::default())?;
    println!("\nAlgorithm 5 (n = {n}, t = {t}, s = {s}):");
    println!("  agreed value : {:?}", report.verdict.agreed);
    println!("  phases       : {}", report.outcome.metrics.phases);
    println!(
        "  messages     : {} (O(n + t²) reference point: n + t² = {})",
        report.outcome.metrics.messages_by_correct,
        n + t * t
    );
    Ok(())
}
