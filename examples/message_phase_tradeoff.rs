//! The intro's trade-off, live: spend more phases, send fewer messages.
//!
//! For `n ≥ t³`, Algorithm 3 with group size `s = ⌈t/a⌉` runs in about
//! `t + 3 + 2⌈t/a⌉` phases while sending `O(a·n)` messages — `a` is the
//! knob. This example sweeps it and prints the frontier.
//!
//! ```text
//! cargo run --example message_phase_tradeoff
//! ```

use byzantine_agreement::algos::{algorithm3, bounds};
use byzantine_agreement::crypto::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (600, 8); // n >= t³ = 512
    println!("Algorithm 3 trade-off at n = {n}, t = {t}:\n");
    println!(
        "{:>4} {:>6} {:>8} {:>10} {:>12}",
        "a", "s", "phases", "messages", "msgs/n"
    );
    for a in [1u64, 2, 4, 8] {
        let s = bounds::tradeoff_group_size(t as u64, a) as usize;
        let r = algorithm3::run(n, t, s, Value::ONE, algorithm3::Alg3Options::default())?;
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
        let msgs = r.outcome.metrics.messages_by_correct;
        println!(
            "{:>4} {:>6} {:>8} {:>10} {:>12.2}",
            a,
            s,
            r.outcome.metrics.phases,
            msgs,
            msgs as f64 / n as f64
        );
    }
    println!("\nFewer phases (small a, big groups) cost more messages and");
    println!("vice versa — the knob the paper exposes for deployments that");
    println!("price rounds and bandwidth differently.");
    Ok(())
}
