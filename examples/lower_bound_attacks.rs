//! The lower-bound proofs as live attacks.
//!
//! Theorem 1 and Theorem 2 are proved by exhibiting adversaries that break
//! any algorithm exchanging too little information. This example mounts
//! both against deliberately frugal protocols — and shows the same attacks
//! bouncing off Algorithm 1.
//!
//! ```text
//! cargo run --example lower_bound_attacks
//! ```

use byzantine_agreement::model::{theorem1, theorem2};

fn main() {
    // --- Theorem 1: the splicing attack ---------------------------------
    println!("Theorem 1 — signature splicing attack");
    println!("target: 2-relay signed broadcast, n = 9, t = 3\n");
    let a = theorem1::attack_frugal(9, 3, 2, 42);
    println!("  victim          : {}", a.victim);
    println!("  corrupted A(p)  : {:?}", a.a_set);
    println!("  |A(p)| <= t     : {}", a.feasible);
    println!("  victim sees pH  : {}", a.victim_view_preserved);
    match &a.violation {
        Some(v) => println!("  result          : AGREEMENT BROKEN — {v}"),
        None => println!("  result          : attack failed"),
    }

    println!("\nsame attack vs Algorithm 1 (every A(p) is too big to corrupt):");
    for t in 1..=4 {
        let min_a = theorem1::audit_algorithm1(t, 7);
        println!("  t = {t}: min |A(p)| = {min_a} > t — infeasible");
    }

    // --- Theorem 2: starvation + extraction -----------------------------
    println!("\nTheorem 2 — message starvation attack");
    println!("target: one-shot broadcast, n = 8, t = 2\n");
    let b = theorem2::attack_quiet(8, 2, 7);
    println!("  victim's senders: {:?}", b.senders);
    println!("  victim starved  : {}", b.victim_starved);
    match &b.violation {
        Some(v) => println!("  result          : AGREEMENT BROKEN — {v}"),
        None => println!("  result          : attack failed"),
    }

    println!("\nthe B-set extraction against Algorithm 1 (faulty ignorers");
    println!("force correct processors to keep sending — the (1+t/2)² term):");
    for t in [2usize, 4, 6] {
        let r = theorem2::extract_algorithm1(t, 3);
        let min = r
            .b_set
            .iter()
            .map(|p| r.received_from_correct.get(p).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        println!(
            "  t = {t}: |B| = {}, demanded {} msgs each, observed min {min}, agreement held: {}",
            r.b_set.len(),
            r.demand,
            r.agreement_held
        );
    }
}
