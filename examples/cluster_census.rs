//! Cluster census via interactive consistency: every node learns every
//! other node's locally-measured load, *identically*, despite Byzantine
//! members — the vector-valued coordination problem (Pease–Shostak–
//! Lamport) that single-source Byzantine Agreement underpins.
//!
//! ```text
//! cargo run --example cluster_census
//! ```

use byzantine_agreement::algos::ic::{self, IcFault};
use byzantine_agreement::algos::{agree, AgreeOptions};
use byzantine_agreement::crypto::{ProcessId, Value};

fn main() {
    let n = 7;
    let t = 2;
    // Each node's private measurement (requests/sec, say).
    let loads: Vec<Value> = vec![
        Value(120),
        Value(98),
        Value(143),
        Value(77),
        Value(101),
        Value(88),
        Value(134),
    ];

    // Node 1 lies differently to everyone about its own load; node 4 is
    // down. The census must still come out identical at every correct
    // node.
    let report = ic::run(
        n,
        t,
        &loads,
        IcFault::EquivocateOwnInstance {
            set: vec![ProcessId(1)],
        },
        42,
    );
    let census = report.common_vector().expect("cluster reached a census");

    println!(
        "agreed cluster census ({} messages exchanged):",
        report.outcome.metrics.messages_total()
    );
    for (i, v) in census.iter().enumerate() {
        let note = if i == 1 {
            "  <- equivocator, slot collapsed deterministically"
        } else {
            ""
        };
        println!("  node {i}: load {}{note}", v.0);
    }
    let total: u64 = census.iter().map(|v| v.0).sum();
    println!("aggregate load (identical at every correct node): {total}");

    // And the one-call facade for scalar agreement, for comparison.
    let r = agree(n, t, Value::ONE, AgreeOptions::default()).expect("agreement");
    println!(
        "\nscalar agree() on the same cluster picked {:?} via {:?} in {} phases",
        r.verdict.agreed, r.selected, r.metrics.phases
    );
}
