//! Deterministic parallel parameter sweeps.
//!
//! Every experiment cell in this workspace — one `(n, t, scheme, seed)`
//! simulation — is self-contained: it builds its own [`KeyRegistry`]
//! (ba_crypto::KeyRegistry), actors and engine, and shares no mutable
//! state with other cells. That makes a sweep embarrassingly parallel, and
//! the persistent [`WorkerPool`] lets us exploit it with no external
//! dependency (the crates-io registry is unreachable in this environment,
//! so a rayon-style crate is not an option) and without spawning fresh
//! threads per sweep: cells fan out over the same parked workers the
//! engine's intra-phase stepping uses.
//!
//! Determinism is preserved by construction:
//!
//! * each cell's seed is derived from the sweep base seed and the cell
//!   *index* ([`derive_seed`]), never from scheduling order;
//! * workers pull cell indices from the pool's dispenser but every result
//!   is written into the slot for its index, so the output `Vec` is
//!   identical for any thread count — including `threads == 1`, which runs
//!   inline with no threads at all;
//! * the crypto work counters ([`ba_crypto::stats`]) are thread-local and
//!   each cell runs wholly on one worker thread, so per-cell
//!   [`Metrics`](crate::metrics::Metrics) deltas are exact.
//!
//! Cells are free to use intra-phase parallelism themselves (nested
//! [`WorkerPool::run_chunks`] cannot deadlock — see the
//! [`pool`](crate::pool) docs), though sweeps usually saturate the machine
//! with cell-level parallelism alone.
//!
//! ```
//! use ba_sim::sweep::{run_sweep, derive_seed};
//!
//! let cells: Vec<u64> = (0..8).collect();
//! let seq = run_sweep(&cells, 1, |i, &c| c + derive_seed(7, i as u64) % 10);
//! let par = run_sweep(&cells, 4, |i, &c| c + derive_seed(7, i as u64) % 10);
//! assert_eq!(seq, par);
//! ```

use std::panic::AssertUnwindSafe;
use std::sync::Mutex;

pub use ba_crypto::rng::derive_seed;

use crate::metrics::Metrics;
use crate::pool::WorkerPool;

/// Number of worker threads a sweep should use by default: the
/// `BA_SWEEP_THREADS` environment variable when set, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("BA_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `run_cell` over every cell, fanning across the shared
/// [`WorkerPool`] with at most `threads` concurrent executors (the caller
/// participates), and returns the results in cell order.
///
/// `run_cell` receives the cell's index (use it with [`derive_seed`] for a
/// schedule-independent per-cell seed) and a reference to the cell. With
/// `threads <= 1` (or fewer than two cells) everything runs inline on the
/// calling thread; the returned vector is identical either way.
///
/// # Panics
/// Propagates a panic from any cell.
pub fn run_sweep<I, R, F>(cells: &[I], threads: usize, run_cell: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    if threads <= 1 || cells.len() <= 1 {
        return cells
            .iter()
            .enumerate()
            .map(|(i, c)| run_cell(i, c))
            .collect();
    }

    let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        WorkerPool::shared().run_chunks_capped(cells.len(), threads, |i| {
            let r = run_cell(i, &cells[i]);
            *slots[i].lock().expect("sweep slot poisoned") = Some(r);
        });
    }));
    if result.is_err() {
        // Keep the historical panic contract (scoped-thread join wording)
        // that callers and tests match on.
        panic!("sweep worker panicked");
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every cell index was dispensed exactly once")
        })
        .collect()
}

/// Folds per-cell metrics into one sweep-level summary (see
/// [`Metrics::merge`]).
pub fn merge_metrics<'a>(per_cell: impl IntoIterator<Item = &'a Metrics>) -> Metrics {
    let mut total = Metrics::default();
    for m in per_cell {
        total.merge(m);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, Envelope, Outbox};
    use crate::engine::Simulation;
    use ba_crypto::keys::{KeyRegistry, SchemeKind};
    use ba_crypto::{Chain, ProcessId, Value};

    #[test]
    fn parallel_results_match_sequential_in_order() {
        let cells: Vec<u64> = (0..37).collect();
        let run = |threads| run_sweep(&cells, threads, |i, &c| (i as u64) * 1000 + c);
        let seq = run(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
        assert_eq!(seq[5], 5005);
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        let none: Vec<u32> = Vec::new();
        assert!(run_sweep(&none, 4, |_, &c| c).is_empty());
        assert_eq!(run_sweep(&[9u32], 4, |i, &c| (i, c)), vec![(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn cell_panic_propagates() {
        let cells: Vec<u32> = (0..8).collect();
        run_sweep(&cells, 4, |_, &c| {
            assert!(c < 4, "boom");
            c
        });
    }

    #[test]
    fn derive_seed_is_schedule_independent() {
        let cells: Vec<()> = vec![(); 16];
        let seeds = |threads| run_sweep(&cells, threads, |i, _| derive_seed(99, i as u64));
        assert_eq!(seeds(1), seeds(8));
    }

    /// A relay actor driving real chain verification, to check that
    /// parallel cells produce byte-identical metrics (including the
    /// crypto counters) to a sequential run.
    #[derive(Debug)]
    struct Relay {
        registry: KeyRegistry,
        id: ProcessId,
        n: u32,
        best: Option<Chain>,
    }

    impl Actor<Chain> for Relay {
        fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
            if phase == 1 && self.id == ProcessId(0) {
                let mut c = Chain::new(1, Value::ONE);
                c.sign_and_append(&self.registry.signer(self.id));
                out.broadcast((0..self.n).map(ProcessId), c.clone());
                self.best = Some(c);
                return;
            }
            for env in inbox {
                if env.payload.verify(&self.registry.verifier()).is_ok()
                    && !env.payload.contains_signer(self.id)
                {
                    let mut relay = env.payload.clone();
                    relay.sign_and_append(&self.registry.signer(self.id));
                    out.broadcast((0..self.n).map(ProcessId), relay);
                }
                self.best.get_or_insert_with(|| env.payload.clone());
            }
        }
        fn decision(&self) -> Option<Value> {
            self.best.as_ref().map(|c| c.value())
        }
    }

    fn run_cell(seed: u64) -> (Vec<Option<Value>>, u64, u64) {
        let n = 4u32;
        let registry = KeyRegistry::new(n as usize, seed, SchemeKind::Fast);
        let actors: Vec<Box<dyn Actor<Chain>>> = (0..n)
            .map(|i| {
                Box::new(Relay {
                    registry: registry.clone(),
                    id: ProcessId(i),
                    n,
                    best: None,
                }) as Box<dyn Actor<Chain>>
            })
            .collect();
        let outcome = Simulation::new(actors).run(3);
        (
            outcome.decisions,
            outcome.metrics.crypto.hash_invocations,
            outcome.metrics.crypto.cache_hits,
        )
    }

    #[test]
    fn simulation_cells_are_deterministic_across_thread_counts() {
        let cells: Vec<u64> = (0..6).collect();
        let run = |threads| run_sweep(&cells, threads, |i, _| run_cell(derive_seed(5, i as u64)));
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq, par);
        // The relay pattern must actually exercise the verifier cache.
        assert!(seq.iter().all(|(_, hashes, hits)| *hashes > 0 && *hits > 0));
    }

    #[test]
    fn merge_metrics_sums_cells() {
        let mut a = Metrics::default();
        a.record_send(1, true, 1, 8, 0, "x");
        let mut b = Metrics::default();
        b.record_send(2, true, 3, 8, 0, "x");
        let total = merge_metrics([&a, &b]);
        assert_eq!(total.messages_by_correct, 2);
        assert_eq!(total.signatures_by_correct, 4);
        assert_eq!(total.per_phase.len(), 2);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
