//! Optional full message trace.
//!
//! When enabled on the [`Simulation`](crate::engine::Simulation), the trace
//! records every envelope of every phase — the executable analogue of the
//! paper's *history* (a sequence of labeled phase graphs). The formal-model
//! experiments use traces to compare a processor's *individual subhistory*
//! across runs, which is the heart of the Theorem 1 and Theorem 2 proofs.

use crate::actor::Envelope;
use ba_crypto::ProcessId;

/// All messages sent during one phase.
#[derive(Clone, Debug)]
pub struct PhaseTrace<P> {
    /// Envelopes in send order (deterministic: actors are stepped in id
    /// order and each actor's sends keep their staging order).
    pub envelopes: Vec<Envelope<P>>,
}

impl<P> Default for PhaseTrace<P> {
    fn default() -> Self {
        PhaseTrace {
            envelopes: Vec::new(),
        }
    }
}

/// A full run trace: one [`PhaseTrace`] per executed phase.
#[derive(Clone, Debug)]
pub struct Trace<P> {
    /// Per-phase message logs, phase 1 first.
    pub phases: Vec<PhaseTrace<P>>,
}

impl<P> Default for Trace<P> {
    fn default() -> Self {
        Trace { phases: Vec::new() }
    }
}

impl<P: Clone> Trace<P> {
    /// The messages delivered *to* processor `p` at each phase — the
    /// paper's individual subhistory `pH` (excluding phase 0).
    pub fn individual_subhistory(&self, p: ProcessId) -> Vec<Vec<Envelope<P>>> {
        self.phases
            .iter()
            .map(|ph| ph.envelopes.iter().filter(|e| e.to == p).cloned().collect())
            .collect()
    }

    /// Total number of messages in the trace.
    pub fn message_count(&self) -> usize {
        self.phases.iter().map(|p| p.envelopes.len()).sum()
    }

    /// Renders the trace as a Graphviz `dot` digraph: one cluster per
    /// phase, edges labeled with the payload's `Debug` form (truncated).
    /// Useful for teaching and for eyeballing small adversarial runs.
    pub fn to_dot(&self, title: &str) -> String
    where
        P: std::fmt::Debug,
    {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=LR; node [shape=circle];");
        for (k, phase) in self.phases.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_phase{} {{", k + 1);
            let _ = writeln!(out, "    label=\"phase {}\";", k + 1);
            for env in &phase.envelopes {
                let mut label = format!("{:?}", env.payload);
                if label.len() > 24 {
                    // Truncate on a char boundary to stay panic-free for
                    // any Debug output.
                    let cut = label
                        .char_indices()
                        .take_while(|(i, _)| *i <= 24)
                        .last()
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    label.truncate(cut);
                    label.push('…');
                }
                let label = label.replace('"', "'");
                let _ = writeln!(
                    out,
                    "    p{}_{k} -> p{}_{k} [label=\"{label}\"];",
                    env.from.0, env.to.0
                );
            }
            let _ = writeln!(out, "  }}");
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Number of traced phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether no phases were traced.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::Value;

    fn env(from: u32, to: u32, v: u64) -> Envelope<Value> {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(to),
            payload: Value(v),
        }
    }

    #[test]
    fn individual_subhistory_filters_by_target() {
        let trace = Trace {
            phases: vec![
                PhaseTrace {
                    envelopes: vec![env(0, 1, 7), env(0, 2, 8)],
                },
                PhaseTrace {
                    envelopes: vec![env(2, 1, 9)],
                },
            ],
        };
        let ish = trace.individual_subhistory(ProcessId(1));
        assert_eq!(ish.len(), 2);
        assert_eq!(ish[0], vec![env(0, 1, 7)]);
        assert_eq!(ish[1], vec![env(2, 1, 9)]);
        assert_eq!(trace.message_count(), 3);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn dot_rendering_contains_edges_and_phases() {
        let trace = Trace {
            phases: vec![PhaseTrace {
                envelopes: vec![env(0, 1, 7)],
            }],
        };
        let dot = trace.to_dot("demo");
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("cluster_phase1"));
        assert!(dot.contains("p0_0 -> p1_0"));
        assert!(dot.contains("Value(7)"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_trace() {
        let trace: Trace<Value> = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.message_count(), 0);
        assert!(trace.individual_subhistory(ProcessId(0)).is_empty());
    }
}
