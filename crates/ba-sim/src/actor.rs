//! The actor abstraction: protocol roles as state machines stepped once per
//! phase.

use ba_crypto::{ProcessId, Value};
use core::fmt;

/// A message payload that the metrics subsystem can account for.
///
/// Implemented for any clonable debug-printable type; override
/// [`signature_count`](Payload::signature_count) for payloads carrying
/// signatures so the engine can reproduce the paper's signature counts, and
/// [`weight_bytes`](Payload::weight_bytes) when encoded size is meaningful.
///
/// `Send + Sync` is required so the engine can step actors across scoped
/// worker threads (see [`Simulation::with_threads`]); every payload in the
/// workspace is plain data, so the bound costs nothing in practice.
///
/// [`Simulation::with_threads`]: crate::engine::Simulation::with_threads
pub trait Payload: Clone + fmt::Debug + Send + Sync {
    /// Number of signatures appended to this message (the paper's second
    /// cost measure). Defaults to zero for unauthenticated payloads.
    fn signature_count(&self) -> usize {
        0
    }

    /// Approximate encoded size in bytes, for bandwidth accounting.
    /// Defaults to zero (unknown).
    fn weight_bytes(&self) -> usize {
        0
    }

    /// The portion of [`weight_bytes`](Payload::weight_bytes) that is
    /// application payload — user data being agreed on, as opposed to
    /// protocol control (framing, signatures, digests). The single-value
    /// targets carry none; the extension layer's coded chunks report
    /// their data slices here so metrics can split wire volume into
    /// payload vs control. Must never exceed `weight_bytes`.
    fn payload_bytes(&self) -> usize {
        0
    }

    /// A short label classifying this message for the per-kind metrics
    /// breakdown (e.g. Algorithm 5 reports "activate" / "grid" /
    /// "chain"). Defaults to `"message"`.
    fn kind(&self) -> &'static str {
        "message"
    }

    /// The signature chain this payload carries, if any — the hook behind
    /// the engine's batched phase-barrier verification
    /// ([`Simulation::with_batched_verification`]): payloads that return
    /// `Some` are verified once per unique chain at the barrier instead of
    /// once per recipient. Defaults to `None` (no batching possible).
    ///
    /// [`Simulation::with_batched_verification`]:
    ///     crate::engine::Simulation::with_batched_verification
    fn batch_chain(&self) -> Option<&ba_crypto::Chain> {
        None
    }
}

impl Payload for Value {}
impl Payload for u64 {}
impl Payload for () {}

impl Payload for ba_crypto::Chain {
    fn signature_count(&self) -> usize {
        self.len()
    }
    fn weight_bytes(&self) -> usize {
        16 + self
            .signatures()
            .iter()
            .map(|s| s.encoded_len())
            .sum::<usize>()
    }
    fn kind(&self) -> &'static str {
        "chain"
    }
    fn batch_chain(&self) -> Option<&ba_crypto::Chain> {
        Some(self)
    }
}

/// A message in flight: source, destination and payload.
///
/// Per the paper's model, the receiver always knows the true source of an
/// edge — "no processor can send a message to `p` claiming to be somebody
/// else" — so `from` is stamped by the engine, never by the sender.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope<P> {
    /// The sending processor (stamped by the engine).
    pub from: ProcessId,
    /// The receiving processor.
    pub to: ProcessId,
    /// The message contents.
    pub payload: P,
}

/// Collects the messages an actor sends during one phase.
///
/// Obtained only from the engine; actors cannot fabricate the `from` field.
#[derive(Debug)]
pub struct Outbox<P> {
    from: ProcessId,
    staged: Vec<Envelope<P>>,
    omitted: u64,
}

impl<P: Payload> Outbox<P> {
    /// Creates an outbox sending as `from`.
    ///
    /// The engine creates the real outbox each step; adversary wrappers may
    /// create *scratch* outboxes to intercept an honest actor's sends
    /// before forwarding a filtered subset (only the engine's own outbox
    /// reaches the network, so this cannot spoof identities).
    pub fn new(from: ProcessId) -> Self {
        Outbox {
            from,
            staged: Vec::new(),
            omitted: 0,
        }
    }

    /// Creates an outbox sending as `from`, recycling `buf` as the staging
    /// storage. The buffer is cleared but its capacity is kept — the
    /// engine's mailbox pool uses this so steady-state phases allocate
    /// nothing.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn with_buffer(from: ProcessId, mut buf: Vec<Envelope<P>>) -> Self {
        buf.clear();
        Outbox {
            from,
            staged: buf,
            omitted: 0,
        }
    }

    /// Creates an outbox sending as `from` that appends to `buf` *without*
    /// clearing it. The engine's segment arena stages every actor in a
    /// worker's range into one shared buffer; the caller records the
    /// buffer length before and after each actor's step to recover the
    /// per-actor runs.
    pub(crate) fn resume(from: ProcessId, buf: Vec<Envelope<P>>) -> Self {
        Outbox {
            from,
            staged: buf,
            omitted: 0,
        }
    }

    /// The identity this outbox sends as.
    pub fn sender(&self) -> ProcessId {
        self.from
    }

    /// Queues `payload` for delivery to `to` at the start of the next
    /// phase. Self-sends are ignored (the model has no self-edges).
    pub fn send(&mut self, to: ProcessId, payload: P) {
        if to == self.from {
            return;
        }
        self.staged.push(Envelope {
            from: self.from,
            to,
            payload,
        });
    }

    /// Queues `payload` for every identity in `targets` except the sender.
    ///
    /// The payload is moved into the last send rather than cloned for every
    /// target, so a broadcast to `k` recipients costs `k − 1` clones. With
    /// [`Chain`](ba_crypto::Chain)'s shared signature storage each of those
    /// clones is O(1), making chain fan-out effectively zero-copy.
    pub fn broadcast<I>(&mut self, targets: I, payload: P)
    where
        I: IntoIterator<Item = ProcessId>,
        P: Clone,
    {
        let mut iter = targets.into_iter();
        // Hold one target in `pending` so the final send can consume the
        // payload by value.
        let Some(mut pending) = iter.next() else {
            return;
        };
        for next in iter {
            self.send(pending, payload.clone());
            pending = next;
        }
        self.send(pending, payload);
    }

    /// Number of messages staged so far this phase.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Records that `count` messages the wrapped honest actor wanted to
    /// send were suppressed before reaching the network. Adversary
    /// wrappers ([`OmitTo`](crate::adversary::OmitTo),
    /// [`RandomOmit`](crate::random::RandomOmit), …) call this when they
    /// filter a scratch outbox, so
    /// [`Metrics::omitted_messages`](crate::metrics::Metrics::omitted_messages)
    /// can distinguish a *quiet* run (nothing was ever sent) from a
    /// *censored* one (traffic was produced and then suppressed).
    pub fn note_omitted(&mut self, count: u64) {
        self.omitted += count;
    }

    /// Number of suppressed sends recorded via
    /// [`note_omitted`](Outbox::note_omitted).
    pub fn omitted_count(&self) -> u64 {
        self.omitted
    }

    /// Consumes the outbox, returning the staged envelopes (used by the
    /// engine and by adversary wrappers inspecting a scratch outbox).
    pub fn into_staged(self) -> Vec<Envelope<P>> {
        self.staged
    }
}

/// A protocol role driven by the synchronous engine.
///
/// The engine calls [`step`](Actor::step) once per phase `k = 1, 2, …` with
/// the messages sent to this actor during phase `k − 1` (empty at phase 1),
/// and [`finalize`](Actor::finalize) once after the last phase with the
/// last phase's messages. [`decision`](Actor::decision) is read after
/// `finalize`.
///
/// Byzantine processors are simply different implementations of this trait
/// (or honest implementations wrapped by the combinators in
/// [`adversary`](crate::adversary)); the engine is oblivious. What a
/// Byzantine actor *cannot* do is forge signatures — it only ever holds its
/// own [`Signer`](ba_crypto::Signer) handle.
///
/// The `Send` supertrait lets the engine move actors to scoped worker
/// threads for intra-phase parallel stepping
/// ([`Simulation::with_threads`](crate::engine::Simulation::with_threads));
/// actor state in this workspace is owned plain data, so the bound is free.
pub trait Actor<P: Payload>: fmt::Debug + Send {
    /// Executes phase `phase` given the previous phase's inbox, staging
    /// sends into `out`.
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>);

    /// Consumes the final phase's inbox. Default: re-dispatches to a
    /// phase-numbered [`step`](Actor::step) with a dead outbox is *not*
    /// done automatically — override when the protocol decides on
    /// last-phase messages.
    fn finalize(&mut self, inbox: &[Envelope<P>]) {
        let _ = inbox;
    }

    /// The decision value, once reached. The checker treats `None` from a
    /// correct processor after the final phase as a violation.
    fn decision(&self) -> Option<Value>;

    /// Whether this actor models a correct processor (used by metrics and
    /// the checker). Honest protocol implementations keep the default
    /// `true`; adversarial implementations and wrappers report `false`.
    fn is_correct(&self) -> bool {
        true
    }
}

impl<P: Payload> Actor<P> for Box<dyn Actor<P>> {
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        (**self).step(phase, inbox, out)
    }
    fn finalize(&mut self, inbox: &[Envelope<P>]) {
        (**self).finalize(inbox)
    }
    fn decision(&self) -> Option<Value> {
        (**self).decision()
    }
    fn is_correct(&self) -> bool {
        (**self).is_correct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_drops_self_sends() {
        let mut out: Outbox<Value> = Outbox::new(ProcessId(2));
        out.send(ProcessId(2), Value::ONE);
        out.send(ProcessId(3), Value::ONE);
        assert_eq!(out.staged_len(), 1);
        let staged = out.into_staged();
        assert_eq!(staged[0].to, ProcessId(3));
        assert_eq!(staged[0].from, ProcessId(2));
    }

    #[test]
    fn broadcast_skips_sender() {
        let mut out: Outbox<Value> = Outbox::new(ProcessId(0));
        out.broadcast((0..4).map(ProcessId), Value::ZERO);
        assert_eq!(out.staged_len(), 3);
    }

    #[derive(Debug)]
    struct CountingPayload(std::sync::Arc<std::sync::atomic::AtomicUsize>);
    impl Clone for CountingPayload {
        fn clone(&self) -> Self {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            CountingPayload(self.0.clone())
        }
    }
    impl Payload for CountingPayload {}

    #[test]
    fn broadcast_moves_payload_into_final_send() {
        let clones = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut out: Outbox<CountingPayload> = Outbox::new(ProcessId(0));
        out.broadcast((0..4).map(ProcessId), CountingPayload(clones.clone()));
        // Four targets, one of which is the sender: three envelopes staged,
        // and the payload moved into the last send — so exactly three
        // clones total (the sender's copy is cloned then dropped by the
        // self-send filter, the final target receives the original).
        assert_eq!(out.staged_len(), 3);
        assert_eq!(clones.load(std::sync::atomic::Ordering::Relaxed), 3);

        // Without the sender among the targets: k targets, k − 1 clones.
        clones.store(0, std::sync::atomic::Ordering::Relaxed);
        let mut out: Outbox<CountingPayload> = Outbox::new(ProcessId(9));
        out.broadcast((0..4).map(ProcessId), CountingPayload(clones.clone()));
        assert_eq!(out.staged_len(), 4);
        assert_eq!(clones.load(std::sync::atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn broadcast_to_empty_target_list_is_a_no_op() {
        let mut out: Outbox<Value> = Outbox::new(ProcessId(0));
        out.broadcast(std::iter::empty(), Value::ONE);
        assert_eq!(out.staged_len(), 0);
    }

    #[test]
    fn with_buffer_recycles_capacity() {
        let mut out: Outbox<Value> = Outbox::new(ProcessId(0));
        out.send(ProcessId(1), Value::ONE);
        out.send(ProcessId(2), Value::ONE);
        let buf = out.into_staged();
        let cap = buf.capacity();
        assert!(cap >= 2);
        let recycled: Outbox<Value> = Outbox::with_buffer(ProcessId(5), buf);
        assert_eq!(recycled.staged_len(), 0);
        assert_eq!(recycled.sender(), ProcessId(5));
        assert_eq!(recycled.staged.capacity(), cap);
    }

    #[test]
    fn default_payload_counts() {
        assert_eq!(Value::ONE.signature_count(), 0);
        assert_eq!(Value::ONE.weight_bytes(), 0);
        assert_eq!(().signature_count(), 0);
    }

    #[test]
    fn envelope_is_plain_data() {
        let env = Envelope {
            from: ProcessId(0),
            to: ProcessId(1),
            payload: Value(4),
        };
        let clone = env.clone();
        assert_eq!(env, clone);
        assert!(format!("{env:?}").contains("payload"));
    }
}
