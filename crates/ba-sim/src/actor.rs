//! The actor abstraction: protocol roles as state machines stepped once per
//! phase.

use ba_crypto::{ProcessId, Value};
use core::fmt;

/// A message payload that the metrics subsystem can account for.
///
/// Implemented for any clonable debug-printable type; override
/// [`signature_count`](Payload::signature_count) for payloads carrying
/// signatures so the engine can reproduce the paper's signature counts, and
/// [`weight_bytes`](Payload::weight_bytes) when encoded size is meaningful.
pub trait Payload: Clone + fmt::Debug {
    /// Number of signatures appended to this message (the paper's second
    /// cost measure). Defaults to zero for unauthenticated payloads.
    fn signature_count(&self) -> usize {
        0
    }

    /// Approximate encoded size in bytes, for bandwidth accounting.
    /// Defaults to zero (unknown).
    fn weight_bytes(&self) -> usize {
        0
    }

    /// A short label classifying this message for the per-kind metrics
    /// breakdown (e.g. Algorithm 5 reports "activate" / "grid" /
    /// "chain"). Defaults to `"message"`.
    fn kind(&self) -> &'static str {
        "message"
    }
}

impl Payload for Value {}
impl Payload for u64 {}
impl Payload for () {}

impl Payload for ba_crypto::Chain {
    fn signature_count(&self) -> usize {
        self.len()
    }
    fn weight_bytes(&self) -> usize {
        16 + self
            .signatures()
            .iter()
            .map(|s| s.encoded_len())
            .sum::<usize>()
    }
    fn kind(&self) -> &'static str {
        "chain"
    }
}

/// A message in flight: source, destination and payload.
///
/// Per the paper's model, the receiver always knows the true source of an
/// edge — "no processor can send a message to `p` claiming to be somebody
/// else" — so `from` is stamped by the engine, never by the sender.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope<P> {
    /// The sending processor (stamped by the engine).
    pub from: ProcessId,
    /// The receiving processor.
    pub to: ProcessId,
    /// The message contents.
    pub payload: P,
}

/// Collects the messages an actor sends during one phase.
///
/// Obtained only from the engine; actors cannot fabricate the `from` field.
#[derive(Debug)]
pub struct Outbox<P> {
    from: ProcessId,
    staged: Vec<Envelope<P>>,
}

impl<P: Payload> Outbox<P> {
    /// Creates an outbox sending as `from`.
    ///
    /// The engine creates the real outbox each step; adversary wrappers may
    /// create *scratch* outboxes to intercept an honest actor's sends
    /// before forwarding a filtered subset (only the engine's own outbox
    /// reaches the network, so this cannot spoof identities).
    pub fn new(from: ProcessId) -> Self {
        Outbox {
            from,
            staged: Vec::new(),
        }
    }

    /// The identity this outbox sends as.
    pub fn sender(&self) -> ProcessId {
        self.from
    }

    /// Queues `payload` for delivery to `to` at the start of the next
    /// phase. Self-sends are ignored (the model has no self-edges).
    pub fn send(&mut self, to: ProcessId, payload: P) {
        if to == self.from {
            return;
        }
        self.staged.push(Envelope {
            from: self.from,
            to,
            payload,
        });
    }

    /// Queues `payload` for every identity in `targets` except the sender.
    pub fn broadcast<I>(&mut self, targets: I, payload: P)
    where
        I: IntoIterator<Item = ProcessId>,
        P: Clone,
    {
        for to in targets {
            self.send(to, payload.clone());
        }
    }

    /// Number of messages staged so far this phase.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Consumes the outbox, returning the staged envelopes (used by the
    /// engine and by adversary wrappers inspecting a scratch outbox).
    pub fn into_staged(self) -> Vec<Envelope<P>> {
        self.staged
    }
}

/// A protocol role driven by the synchronous engine.
///
/// The engine calls [`step`](Actor::step) once per phase `k = 1, 2, …` with
/// the messages sent to this actor during phase `k − 1` (empty at phase 1),
/// and [`finalize`](Actor::finalize) once after the last phase with the
/// last phase's messages. [`decision`](Actor::decision) is read after
/// `finalize`.
///
/// Byzantine processors are simply different implementations of this trait
/// (or honest implementations wrapped by the combinators in
/// [`adversary`](crate::adversary)); the engine is oblivious. What a
/// Byzantine actor *cannot* do is forge signatures — it only ever holds its
/// own [`Signer`](ba_crypto::Signer) handle.
pub trait Actor<P: Payload>: fmt::Debug {
    /// Executes phase `phase` given the previous phase's inbox, staging
    /// sends into `out`.
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>);

    /// Consumes the final phase's inbox. Default: re-dispatches to a
    /// phase-numbered [`step`](Actor::step) with a dead outbox is *not*
    /// done automatically — override when the protocol decides on
    /// last-phase messages.
    fn finalize(&mut self, inbox: &[Envelope<P>]) {
        let _ = inbox;
    }

    /// The decision value, once reached. The checker treats `None` from a
    /// correct processor after the final phase as a violation.
    fn decision(&self) -> Option<Value>;

    /// Whether this actor models a correct processor (used by metrics and
    /// the checker). Honest protocol implementations keep the default
    /// `true`; adversarial implementations and wrappers report `false`.
    fn is_correct(&self) -> bool {
        true
    }
}

impl<P: Payload> Actor<P> for Box<dyn Actor<P>> {
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        (**self).step(phase, inbox, out)
    }
    fn finalize(&mut self, inbox: &[Envelope<P>]) {
        (**self).finalize(inbox)
    }
    fn decision(&self) -> Option<Value> {
        (**self).decision()
    }
    fn is_correct(&self) -> bool {
        (**self).is_correct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_drops_self_sends() {
        let mut out: Outbox<Value> = Outbox::new(ProcessId(2));
        out.send(ProcessId(2), Value::ONE);
        out.send(ProcessId(3), Value::ONE);
        assert_eq!(out.staged_len(), 1);
        let staged = out.into_staged();
        assert_eq!(staged[0].to, ProcessId(3));
        assert_eq!(staged[0].from, ProcessId(2));
    }

    #[test]
    fn broadcast_skips_sender() {
        let mut out: Outbox<Value> = Outbox::new(ProcessId(0));
        out.broadcast((0..4).map(ProcessId), Value::ZERO);
        assert_eq!(out.staged_len(), 3);
    }

    #[test]
    fn default_payload_counts() {
        assert_eq!(Value::ONE.signature_count(), 0);
        assert_eq!(Value::ONE.weight_bytes(), 0);
        assert_eq!(().signature_count(), 0);
    }

    #[test]
    fn envelope_is_plain_data() {
        let env = Envelope {
            from: ProcessId(0),
            to: ProcessId(1),
            payload: Value(4),
        };
        let clone = env.clone();
        assert_eq!(env, clone);
        assert!(format!("{env:?}").contains("payload"));
    }
}
