//! Injectable lock-step transports: the per-envelope delivery decision,
//! extracted from the engine's routing barrier.
//!
//! The engine stages every envelope an actor sends and then routes the
//! staged traffic in actor-id order at the phase barrier. Historically the
//! only routing policy was "deliver everything except scheduled
//! [`LinkDrop`]s"; that policy now lives behind the [`Transport`] trait so
//! alternative delivery models can be injected without touching the
//! engine:
//!
//! * [`Reliable`] — the paper's synchronous model: every envelope sent in
//!   phase `k` arrives at phase `k + 1`;
//! * [`ScheduledDrops`] — the fault-schedule policy compiled from
//!   [`ScheduleSpec::link_drops`](crate::schedule::ScheduleSpec): exact
//!   `(phase, from, to)` matches are suppressed;
//! * [`Flaky`] — seeded stochastic loss ([`SimRng`]), the lock-step
//!   counterpart of the `ba-net` chaos profiles: useful for probing how an
//!   algorithm's *accounting* behaves when the synchrony assumption is
//!   violated underneath it.
//!
//! Determinism contract: [`Transport::admit`] is only ever called on the
//! engine's routing thread, in actor-id order, once per staged envelope
//! (scheduled link drops are checked first and do not reach the
//! transport). A transport may therefore keep internal state — an RNG, a
//! counter — and the run remains byte-identical for any worker-thread
//! count.

use crate::schedule::LinkDrop;
use ba_crypto::rng::SimRng;
use ba_crypto::ProcessId;
use std::collections::BTreeSet;

/// The fate of one staged envelope at the routing barrier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fate {
    /// Deliver at the next phase barrier.
    Deliver,
    /// Suppress: the send still happened (the system is not quiescent) but
    /// nothing reaches the wire; accounted under
    /// [`Metrics::omitted_messages`](crate::metrics::Metrics::omitted_messages).
    Omit,
}

/// A per-envelope delivery policy consulted at the routing barrier.
///
/// Implementations are stateful and single-threaded by contract (see the
/// [module docs](self)); `Send` is required only so the owning
/// [`Simulation`](crate::engine::Simulation) stays `Send`.
pub trait Transport: Send + std::fmt::Debug {
    /// Decides the fate of the envelope `from → to` staged during `phase`.
    fn admit(&mut self, phase: usize, from: ProcessId, to: ProcessId) -> Fate;
}

/// The synchronous model's transport: everything is delivered.
#[derive(Clone, Copy, Default, Debug)]
pub struct Reliable;

impl Transport for Reliable {
    fn admit(&mut self, _phase: usize, _from: ProcessId, _to: ProcessId) -> Fate {
        Fate::Deliver
    }
}

/// Suppresses exactly the scheduled `(phase, from, to)` links.
#[derive(Clone, Default, Debug)]
pub struct ScheduledDrops {
    drops: BTreeSet<LinkDrop>,
}

impl ScheduledDrops {
    /// Builds the policy from any collection of link drops.
    pub fn new(drops: impl IntoIterator<Item = LinkDrop>) -> Self {
        ScheduledDrops {
            drops: drops.into_iter().collect(),
        }
    }

    /// Whether any link is scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
    }
}

impl Transport for ScheduledDrops {
    fn admit(&mut self, phase: usize, from: ProcessId, to: ProcessId) -> Fate {
        if self.drops.contains(&LinkDrop { phase, from, to }) {
            Fate::Omit
        } else {
            Fate::Deliver
        }
    }
}

/// Seeded stochastic loss: each envelope is independently dropped with
/// probability `drop_per_mille / 1000`.
///
/// The RNG advances once per admitted envelope in routing order, so a run
/// is fully determined by `(seed, drop_per_mille)` — rerunning with the
/// same seed reproduces the same loss pattern exactly, at any thread
/// count.
#[derive(Clone, Debug)]
pub struct Flaky {
    rng: SimRng,
    drop_per_mille: u16,
}

impl Flaky {
    /// Creates a lossy transport dropping ~`drop_per_mille`/1000 of
    /// envelopes, driven by `seed`.
    pub fn new(seed: u64, drop_per_mille: u16) -> Self {
        Flaky {
            rng: SimRng::new(seed),
            drop_per_mille: drop_per_mille.min(1000),
        }
    }
}

impl Transport for Flaky {
    fn admit(&mut self, _phase: usize, _from: ProcessId, _to: ProcessId) -> Fate {
        if self.rng.range_u64(0, 1000) < u64::from(self.drop_per_mille) {
            Fate::Omit
        } else {
            Fate::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_always_delivers() {
        let mut t = Reliable;
        for phase in 1..5 {
            assert_eq!(t.admit(phase, ProcessId(0), ProcessId(1)), Fate::Deliver);
        }
    }

    #[test]
    fn scheduled_drops_match_exactly() {
        let mut t = ScheduledDrops::new([LinkDrop {
            phase: 2,
            from: ProcessId(0),
            to: ProcessId(1),
        }]);
        assert!(!t.is_empty());
        assert_eq!(t.admit(2, ProcessId(0), ProcessId(1)), Fate::Omit);
        assert_eq!(t.admit(1, ProcessId(0), ProcessId(1)), Fate::Deliver);
        assert_eq!(t.admit(2, ProcessId(1), ProcessId(0)), Fate::Deliver);
        assert_eq!(t.admit(2, ProcessId(0), ProcessId(2)), Fate::Deliver);
        assert!(ScheduledDrops::default().is_empty());
    }

    #[test]
    fn flaky_is_seed_deterministic() {
        let fates = |seed: u64| -> Vec<Fate> {
            let mut t = Flaky::new(seed, 300);
            (0..64)
                .map(|i| t.admit(1, ProcessId(i % 4), ProcessId((i + 1) % 4)))
                .collect()
        };
        assert_eq!(fates(7), fates(7));
        assert_ne!(fates(7), fates(8), "different seeds drop differently");
        let drops = fates(7).iter().filter(|f| **f == Fate::Omit).count();
        assert!(drops > 0, "a 30% loss rate drops something in 64 frames");
        assert!(drops < 64, "and delivers something");
    }

    #[test]
    fn flaky_extremes() {
        let mut never = Flaky::new(1, 0);
        let mut always = Flaky::new(1, 1000);
        for _ in 0..32 {
            assert_eq!(never.admit(1, ProcessId(0), ProcessId(1)), Fate::Deliver);
            assert_eq!(always.admit(1, ProcessId(0), ProcessId(1)), Fate::Omit);
        }
        // Rates above 1000 clamp rather than panic.
        let mut clamped = Flaky::new(1, u16::MAX);
        assert_eq!(clamped.admit(1, ProcessId(0), ProcessId(1)), Fate::Omit);
    }
}
