//! Generic Byzantine behaviours.
//!
//! The paper's lower bounds only need adversaries that are *restrictions* of
//! correct behaviour — staying silent, omitting messages to chosen targets,
//! ignoring a prefix of received messages (Theorem 2 explicitly notes it
//! "only uses the ability of a faulty processor to send to some and not to
//! others"). These combinators wrap an honest [`Actor`] and apply such
//! restrictions; protocol-specific attacks (equivocating transmitters,
//! chain-withholding relays, corrupt tree roots) live next to each
//! algorithm in `ba-algos`.
//!
//! Every wrapper reports [`is_correct`](Actor::is_correct) as `false`, so
//! metrics and the checker treat the processor as faulty.

use crate::actor::{Actor, Envelope, Outbox, Payload};
use ba_crypto::{ProcessId, Value};
use std::collections::BTreeSet;

/// A processor that never sends and never decides (a crash before phase 1,
/// or the paper's "never sends a message" faulty behaviour).
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl<P: Payload> Actor<P> for Silent {
    fn step(&mut self, _phase: usize, _inbox: &[Envelope<P>], _out: &mut Outbox<P>) {}
    fn decision(&self) -> Option<Value> {
        None
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Behaves exactly like the wrapped honest actor until (and excluding)
/// `crash_phase`, then goes permanently silent.
#[derive(Debug)]
pub struct Crash<A> {
    inner: A,
    crash_phase: usize,
}

impl<A> Crash<A> {
    /// Wraps `inner`; it stops participating at `crash_phase`.
    pub fn new(inner: A, crash_phase: usize) -> Self {
        Crash { inner, crash_phase }
    }
}

impl<P: Payload, A: Actor<P>> Actor<P> for Crash<A> {
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        if phase < self.crash_phase {
            self.inner.step(phase, inbox, out);
        }
    }
    fn finalize(&mut self, _inbox: &[Envelope<P>]) {}
    fn decision(&self) -> Option<Value> {
        None
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Behaves like the wrapped honest actor except that messages to the given
/// targets are suppressed — the faulty behaviour used to build history `H″`
/// in the proof of Theorem 2 ("they behave like correct processors except
/// that they do not send any messages to `p`").
#[derive(Debug)]
pub struct OmitTo<A> {
    inner: A,
    suppressed: BTreeSet<ProcessId>,
}

impl<A> OmitTo<A> {
    /// Wraps `inner`, suppressing all sends to `suppressed`.
    pub fn new(inner: A, suppressed: impl IntoIterator<Item = ProcessId>) -> Self {
        OmitTo {
            inner,
            suppressed: suppressed.into_iter().collect(),
        }
    }
}

impl<P: Payload, A: Actor<P>> Actor<P> for OmitTo<A> {
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        // Run the honest actor into a scratch outbox, then forward only the
        // permitted envelopes, counting every suppression.
        let mut scratch = Outbox::new(out.sender());
        self.inner.step(phase, inbox, &mut scratch);
        out.note_omitted(scratch.omitted_count());
        for env in scratch.into_staged() {
            if self.suppressed.contains(&env.to) {
                out.note_omitted(1);
            } else {
                out.send(env.to, env.payload);
            }
        }
    }
    fn finalize(&mut self, inbox: &[Envelope<P>]) {
        self.inner.finalize(inbox);
    }
    fn decision(&self) -> Option<Value> {
        self.inner.decision()
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Behaves like the wrapped honest actor except that it ignores the first
/// `k` messages it receives from processors in `from_set` (all processors
/// when the set is empty) — the faulty behaviour of the set `B` in the
/// proof of Theorem 2 ("it ignores the first ⌈t/2⌉ messages received").
#[derive(Debug)]
pub struct IgnoreFirst<A> {
    inner: A,
    remaining: usize,
    from_set: BTreeSet<ProcessId>,
}

impl<A> IgnoreFirst<A> {
    /// Wraps `inner`, discarding the first `k` messages received from
    /// `from_set` (from anyone when `from_set` is empty).
    pub fn new(inner: A, k: usize, from_set: impl IntoIterator<Item = ProcessId>) -> Self {
        IgnoreFirst {
            inner,
            remaining: k,
            from_set: from_set.into_iter().collect(),
        }
    }

    /// How many messages are still to be discarded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl<A> IgnoreFirst<A> {
    fn filter<P: Clone>(&mut self, inbox: &[Envelope<P>]) -> Vec<Envelope<P>> {
        let mut kept = Vec::with_capacity(inbox.len());
        for env in inbox {
            let matches = self.from_set.is_empty() || self.from_set.contains(&env.from);
            if matches && self.remaining > 0 {
                self.remaining -= 1;
            } else {
                kept.push(env.clone());
            }
        }
        kept
    }
}

impl<P: Payload, A: Actor<P>> Actor<P> for IgnoreFirst<A> {
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        let kept = self.filter(inbox);
        self.inner.step(phase, &kept, out);
    }
    fn finalize(&mut self, inbox: &[Envelope<P>]) {
        let kept = self.filter(inbox);
        self.inner.finalize(&kept);
    }
    fn decision(&self) -> Option<Value> {
        self.inner.decision()
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Behaves like the wrapped honest actor but only accepts messages from and
/// only sends messages to a restricted peer set — used to build the
/// split-world histories of Theorem 1, where the coalition `A(p)` behaves
/// one way toward `p` and another way toward everyone else.
#[derive(Debug)]
pub struct RestrictPeers<A> {
    inner: A,
    peers: BTreeSet<ProcessId>,
}

impl<A> RestrictPeers<A> {
    /// Wraps `inner`; traffic to/from identities outside `peers` is dropped.
    pub fn new(inner: A, peers: impl IntoIterator<Item = ProcessId>) -> Self {
        RestrictPeers {
            inner,
            peers: peers.into_iter().collect(),
        }
    }
}

impl<P: Payload, A: Actor<P>> Actor<P> for RestrictPeers<A> {
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        let kept: Vec<Envelope<P>> = inbox
            .iter()
            .filter(|e| self.peers.contains(&e.from))
            .cloned()
            .collect();
        let mut scratch = Outbox::new(out.sender());
        self.inner.step(phase, &kept, &mut scratch);
        out.note_omitted(scratch.omitted_count());
        for env in scratch.into_staged() {
            if self.peers.contains(&env.to) {
                out.send(env.to, env.payload);
            } else {
                out.note_omitted(1);
            }
        }
    }
    fn finalize(&mut self, inbox: &[Envelope<P>]) {
        let kept: Vec<Envelope<P>> = inbox
            .iter()
            .filter(|e| self.peers.contains(&e.from))
            .cloned()
            .collect();
        self.inner.finalize(&kept);
    }
    fn decision(&self) -> Option<Value> {
        self.inner.decision()
    }
    fn is_correct(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received payload back to its sender and to p0; decides
    /// on the first value heard.
    #[derive(Debug, Default)]
    struct Echo {
        first: Option<Value>,
    }

    impl Actor<Value> for Echo {
        fn step(&mut self, phase: usize, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
            if phase == 1 {
                out.send(ProcessId(0), Value(42));
            }
            for env in inbox {
                self.first.get_or_insert(env.payload);
                out.send(env.from, env.payload);
            }
        }
        fn decision(&self) -> Option<Value> {
            self.first
        }
    }

    fn env(from: u32, v: u64) -> Envelope<Value> {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(1),
            payload: Value(v),
        }
    }

    #[test]
    fn silent_never_sends_or_decides() {
        let mut s = Silent;
        let mut out: Outbox<Value> = Outbox::new(ProcessId(1));
        Actor::<Value>::step(&mut s, 1, &[env(0, 1)], &mut out);
        assert_eq!(out.staged_len(), 0);
        assert_eq!(Actor::<Value>::decision(&s), None);
        assert!(!Actor::<Value>::is_correct(&s));
    }

    #[test]
    fn crash_stops_at_phase() {
        let mut c = Crash::new(Echo::default(), 2);
        let mut out = Outbox::new(ProcessId(1));
        c.step(1, &[], &mut out);
        assert_eq!(out.staged_len(), 1, "phase 1 still active");
        let mut out = Outbox::new(ProcessId(1));
        c.step(2, &[env(0, 5)], &mut out);
        assert_eq!(out.staged_len(), 0, "crashed at phase 2");
        assert_eq!(c.decision(), None);
    }

    #[test]
    fn omit_to_filters_targets_only() {
        let mut o = OmitTo::new(Echo::default(), [ProcessId(0)]);
        let mut out = Outbox::new(ProcessId(1));
        o.step(2, &[env(0, 5), env(2, 6)], &mut out);
        assert_eq!(out.omitted_count(), 1, "the suppressed p0 echo is counted");
        let staged = out.into_staged();
        // Echo would send to p0 (twice: echo of env(0) and p0-copy is the
        // phase-1 only send) and p2; only the p2 echo survives.
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].to, ProcessId(2));
        assert_eq!(o.decision(), Some(Value(5)), "inbox untouched");
    }

    #[test]
    fn ignore_first_discards_prefix() {
        let mut i = IgnoreFirst::new(Echo::default(), 2, []);
        let mut out = Outbox::new(ProcessId(1));
        i.step(2, &[env(0, 5), env(2, 6), env(3, 7)], &mut out);
        // First two discarded; only env(3,7) reaches the inner actor.
        assert_eq!(i.decision(), Some(Value(7)));
        assert_eq!(i.remaining(), 0);
        let staged = out.into_staged();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].to, ProcessId(3));
    }

    #[test]
    fn ignore_first_respects_from_set() {
        let mut i = IgnoreFirst::new(Echo::default(), 1, [ProcessId(2)]);
        let mut out = Outbox::new(ProcessId(1));
        i.step(2, &[env(0, 5), env(2, 6)], &mut out);
        // env(0,5) passes (not in from_set); env(2,6) is the first match and
        // is discarded.
        assert_eq!(i.decision(), Some(Value(5)));
    }

    #[test]
    fn restrict_peers_drops_both_directions() {
        let mut r = RestrictPeers::new(Echo::default(), [ProcessId(2)]);
        let mut out = Outbox::new(ProcessId(1));
        r.step(1, &[env(0, 5), env(2, 6)], &mut out);
        // Inbox from p0 dropped; echo of p2 kept; the phase-1 send to p0 dropped.
        let staged = out.into_staged();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].to, ProcessId(2));
        assert_eq!(r.decision(), Some(Value(6)));
    }

    mod props {
        use super::*;
        use crate::engine::{RunOutcome, Simulation};
        use ba_crypto::rng::{derive_seed, SimRng};
        use ba_crypto::testkit::run_cases;

        /// A deterministic pseudo-random gossiper: folds its inbox into a
        /// running digest and sends a seed-dependent number of messages to
        /// seed-dependent targets every phase. Rich enough that any
        /// behavioural difference between an honest actor and its `Crash`
        /// wrapper before the crash phase would show up in the trace.
        #[derive(Debug)]
        struct Gossip {
            rng: SimRng,
            n: u32,
            sum: u64,
        }

        impl Actor<Value> for Gossip {
            fn step(&mut self, _phase: usize, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
                for env in inbox {
                    self.sum = self
                        .sum
                        .wrapping_mul(31)
                        .wrapping_add(env.payload.0 ^ env.from.index() as u64);
                }
                let sends = self.rng.range_u32(1, self.n + 1);
                for _ in 0..sends {
                    let to = ProcessId(self.rng.range_u32(0, self.n));
                    out.send(to, Value(self.sum ^ self.rng.next_u64()));
                }
            }
            fn decision(&self) -> Option<Value> {
                Some(Value(self.sum))
            }
        }

        fn gossip_run(
            n: usize,
            seed: u64,
            crash: Option<(usize, usize)>,
            phases: usize,
        ) -> RunOutcome<Value> {
            let actors: Vec<Box<dyn Actor<Value>>> = (0..n)
                .map(|i| {
                    let honest = Box::new(Gossip {
                        rng: SimRng::new(derive_seed(seed, i as u64)),
                        n: n as u32,
                        sum: i as u64,
                    }) as Box<dyn Actor<Value>>;
                    match crash {
                        Some((j, cp)) if j == i => {
                            Box::new(Crash::new(honest, cp)) as Box<dyn Actor<Value>>
                        }
                        _ => honest,
                    }
                })
                .collect();
            Simulation::new(actors).with_trace().run(phases)
        }

        /// The doc comment on [`Crash`] claims it "behaves exactly like the
        /// wrapped honest actor until (and excluding) `crash_phase`". Pin
        /// that equivalence: for every phase before the crash, the traced
        /// envelopes are byte-identical and the per-phase message totals
        /// match; at the crash phase itself exactly the crashed processor's
        /// sends disappear.
        #[test]
        fn prop_crash_prefix_is_byte_identical_to_honest() {
            let phases = 6;
            run_cases(24, 0xC5A5, |gen| {
                let n = gen.usize_in(2, 6);
                let j = gen.usize_in(0, n);
                let cp = gen.usize_in(1, phases + 2);
                let seed = gen.u64();
                let baseline = gossip_run(n, seed, None, phases);
                let crashed = gossip_run(n, seed, Some((j, cp)), phases);

                for k in 0..cp.saturating_sub(1).min(phases) {
                    assert_eq!(
                        baseline.trace.phases[k].envelopes,
                        crashed.trace.phases[k].envelopes,
                        "phase {} trace diverged before the crash (n={n} j={j} cp={cp})",
                        k + 1
                    );
                    let b = baseline
                        .metrics
                        .per_phase
                        .get(k)
                        .copied()
                        .unwrap_or_default();
                    let c = crashed
                        .metrics
                        .per_phase
                        .get(k)
                        .copied()
                        .unwrap_or_default();
                    assert_eq!(
                        b.messages_by_correct + b.messages_by_faulty,
                        c.messages_by_correct + c.messages_by_faulty,
                        "phase {} message totals diverged before the crash",
                        k + 1
                    );
                }
                if cp <= phases {
                    let k = cp - 1;
                    let expect: Vec<Envelope<Value>> = baseline.trace.phases[k]
                        .envelopes
                        .iter()
                        .filter(|e| e.from.index() != j)
                        .cloned()
                        .collect();
                    assert_eq!(
                        crashed.trace.phases[k].envelopes, expect,
                        "at the crash phase only processor {j}'s sends may vanish"
                    );
                }
            });
        }
    }

    #[test]
    fn wrappers_report_faulty() {
        assert!(!Actor::<Value>::is_correct(&Crash::new(Echo::default(), 1)));
        assert!(!Actor::<Value>::is_correct(&OmitTo::new(
            Echo::default(),
            []
        )));
        assert!(!Actor::<Value>::is_correct(&IgnoreFirst::new(
            Echo::default(),
            0,
            []
        )));
        assert!(!Actor::<Value>::is_correct(&RestrictPeers::new(
            Echo::default(),
            []
        )));
    }
}
