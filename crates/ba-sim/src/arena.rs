//! Flat struct-of-arrays mailbox storage.
//!
//! The seed engine kept one `Vec<Envelope>` per actor for inboxes and one
//! per actor for outbox staging — 3·n vectors resized and walked every
//! phase, with routing moving envelopes between them one `push` at a time.
//! This module replaces that per-actor Vec dance with two arenas:
//!
//! * [`Inboxes`] — all of a phase's deliveries in **one** contiguous
//!   buffer, partitioned by an `offsets` table so actor `i`'s inbox is the
//!   slice `slots[offsets[i]..offsets[i + 1]]`. The actor-facing API is
//!   unchanged (`&[Envelope<P>]`).
//! * [`Segment`] — one per worker: every envelope the worker's actors
//!   staged this phase, appended to a single buffer in (actor, send-seq)
//!   order, with a per-actor table of end offsets and omitted counts.
//!   An actor's `Outbox` writes straight into the segment buffer
//!   ([`Outbox`](crate::actor::Outbox) resumes over it), so staging does
//!   no per-actor allocation at all.
//!
//! The deterministic merge the engine depends on falls out of the layout:
//! workers own contiguous ascending actor ranges, so walking segments in
//! worker order and each segment in staging order visits every envelope in
//! exactly the `(sender, seq)` order a sequential run would produce —
//! routing, metrics, trace and delivery order are byte-identical at any
//! thread count.
//!
//! Scattering staged envelopes into the next phase's inbox arena is the
//! one `unsafe` block in the crate: pass A (the engine's routing loop)
//! decides each envelope's fate and counts deliveries per recipient, pass
//! B turns counts into prefix-sum offsets, and [`Inboxes::fill_from`]
//! (pass C) moves every delivered envelope into its reserved slot with no
//! user code running between the writes and the final `set_len`.

use crate::actor::{Envelope, Payload};

/// One phase's deliveries for all `n` actors, in one contiguous buffer.
#[derive(Debug)]
pub struct Inboxes<P> {
    slots: Vec<Envelope<P>>,
    /// `n + 1` entries; actor `i` owns `slots[offsets[i]..offsets[i+1]]`.
    offsets: Vec<usize>,
}

impl<P: Payload> Inboxes<P> {
    /// An empty arena for `n` actors.
    pub fn new(n: usize) -> Self {
        Inboxes {
            slots: Vec::new(),
            offsets: vec![0; n + 1],
        }
    }

    /// Actor `i`'s inbox for the current phase.
    pub fn of(&self, i: usize) -> &[Envelope<P>] {
        &self.slots[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total envelopes currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no envelopes are held.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over every held envelope in delivery order (recipient-major
    /// — used by the engine's batched-verification barrier pass).
    pub fn iter(&self) -> impl Iterator<Item = &Envelope<P>> {
        self.slots.iter()
    }

    /// Drops all envelopes, keeping the arena's capacity for the next
    /// phase.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.offsets.fill(0);
    }

    /// Rebuilds this arena from the phase's staged segments: `counts[i]`
    /// deliverable envelopes per recipient `i` (computed by the engine's
    /// routing pass), `fates[k]` telling whether the `k`-th staged envelope
    /// (in segment-major, staging order — the deterministic merge order) is
    /// delivered. Consumes every segment's staged buffer; envelopes with a
    /// `false` fate are dropped here. `cursors` is caller-provided scratch
    /// (recycled across phases).
    pub(crate) fn fill_from(
        &mut self,
        segments: &mut [Segment<P>],
        fates: &[bool],
        counts: &[usize],
        cursors: &mut Vec<usize>,
    ) {
        let n = self.offsets.len() - 1;
        debug_assert_eq!(counts.len(), n);
        self.slots.clear();
        let mut total = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            self.offsets[i] = total;
            total += c;
        }
        self.offsets[n] = total;
        self.slots.reserve(total);
        cursors.clear();
        cursors.extend_from_slice(&self.offsets[..n]);

        let spare = self.slots.spare_capacity_mut();
        let mut ord = 0usize;
        for seg in segments.iter_mut() {
            for env in seg.staged.drain(..) {
                if fates[ord] {
                    let to = env.to.index();
                    spare[cursors[to]].write(env);
                    cursors[to] += 1;
                }
                // A false fate drops the envelope right here. If its drop
                // panics, already-written envelopes leak (len is still 0,
                // so they are never touched again) — a leak, never a
                // double drop.
                ord += 1;
            }
        }
        debug_assert_eq!(ord, fates.len());
        // SAFETY: every index in `0..total` was written exactly once:
        // pass A counted, per recipient `i`, exactly `counts[i]` envelopes
        // with a true fate, and `cursors[i]` walked the half-open range
        // `offsets[i]..offsets[i + 1]` — ranges that partition `0..total`.
        unsafe { self.slots.set_len(total) };
        debug_assert!((0..n).all(|i| self.offsets[i] <= self.offsets[i + 1]));
    }
}

/// One worker's staged output for a phase: all of its actors' sends in one
/// buffer, plus a per-actor table recording where each actor's run of
/// envelopes ends and how many sends adversary wrappers suppressed.
#[derive(Debug)]
pub struct Segment<P> {
    /// Envelopes in (actor, send-seq) order within this worker's actor
    /// range.
    pub(crate) staged: Vec<Envelope<P>>,
    /// Per actor (in ascending id order within the worker's range):
    /// exclusive end offset into `staged`, and the actor's
    /// [`Outbox::note_omitted`](crate::actor::Outbox::note_omitted) count.
    pub(crate) per_actor: Vec<(usize, u64)>,
}

impl<P: Payload> Segment<P> {
    /// An empty segment.
    pub fn new() -> Self {
        Segment {
            staged: Vec::new(),
            per_actor: Vec::new(),
        }
    }

    /// Clears the segment for a new phase, retaining capacity.
    pub(crate) fn begin_phase(&mut self) {
        self.staged.clear();
        self.per_actor.clear();
    }

    /// Number of envelopes currently staged.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Iterates `(actor_offset, envelopes, omitted)` per actor, in actor
    /// order: `actor_offset` is the actor's position within the worker's
    /// range.
    pub(crate) fn per_actor_runs(&self) -> impl Iterator<Item = (usize, &[Envelope<P>], u64)> + '_ {
        let mut start = 0usize;
        self.per_actor
            .iter()
            .enumerate()
            .map(move |(j, &(end, omitted))| {
                let run = &self.staged[start..end];
                start = end;
                (j, run, omitted)
            })
    }
}

impl<P: Payload> Default for Segment<P> {
    fn default() -> Self {
        Segment::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::{ProcessId, Value};

    fn env(from: u32, to: u32, v: u64) -> Envelope<Value> {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(to),
            payload: Value(v),
        }
    }

    #[test]
    fn empty_arena_has_empty_inboxes() {
        let inboxes: Inboxes<Value> = Inboxes::new(3);
        for i in 0..3 {
            assert!(inboxes.of(i).is_empty());
        }
        assert!(inboxes.is_empty());
    }

    #[test]
    fn fill_from_scatters_in_merge_order() {
        // Two segments (workers over actors {0,1} and {2,3}); envelopes
        // to shared recipients must land in segment-major staging order.
        let mut seg_a: Segment<Value> = Segment::new();
        seg_a.staged = vec![env(0, 3, 10), env(0, 2, 11), env(1, 3, 12)];
        seg_a.per_actor = vec![(2, 0), (3, 1)];
        let mut seg_b: Segment<Value> = Segment::new();
        seg_b.staged = vec![env(2, 3, 13), env(3, 0, 14)];
        seg_b.per_actor = vec![(1, 0), (2, 0)];

        let mut inboxes: Inboxes<Value> = Inboxes::new(4);
        let fates = vec![true, true, true, true, false];
        let counts = vec![0, 0, 1, 3];
        let mut cursors = Vec::new();
        inboxes.fill_from(&mut [seg_a, seg_b], &fates, &counts, &mut cursors);

        assert_eq!(inboxes.len(), 4);
        assert!(inboxes.of(0).is_empty(), "fate=false envelope dropped");
        assert!(inboxes.of(1).is_empty());
        assert_eq!(inboxes.of(2), &[env(0, 2, 11)]);
        assert_eq!(
            inboxes.of(3),
            &[env(0, 3, 10), env(1, 3, 12), env(2, 3, 13)],
            "recipient 3 sees senders in (sender, seq) order"
        );
    }

    #[test]
    fn clear_retains_capacity_and_empties_inboxes() {
        let mut seg: Segment<Value> = Segment::new();
        seg.staged = vec![env(0, 1, 1), env(0, 1, 2)];
        seg.per_actor = vec![(2, 0)];
        let mut inboxes: Inboxes<Value> = Inboxes::new(2);
        let mut cursors = Vec::new();
        inboxes.fill_from(&mut [seg], &[true, true], &[0, 2], &mut cursors);
        assert_eq!(inboxes.of(1).len(), 2);
        let cap = inboxes.slots.capacity();
        inboxes.clear();
        assert!(inboxes.of(1).is_empty());
        assert_eq!(inboxes.slots.capacity(), cap);
    }

    #[test]
    fn per_actor_runs_splits_staging() {
        let mut seg: Segment<Value> = Segment::new();
        seg.staged = vec![env(0, 1, 1), env(1, 0, 2), env(1, 2, 3)];
        seg.per_actor = vec![(1, 0), (3, 5)];
        let runs: Vec<_> = seg.per_actor_runs().collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, 0);
        assert_eq!(runs[0].1.len(), 1);
        assert_eq!(runs[0].2, 0);
        assert_eq!(runs[1].0, 1);
        assert_eq!(runs[1].1, &[env(1, 0, 2), env(1, 2, 3)]);
        assert_eq!(runs[1].2, 5);
    }
}
