//! Randomized Byzantine behaviours for fuzz-style robustness testing.
//!
//! The scripted adversaries in [`adversary`](crate::adversary) replay the
//! paper's proof constructions; the actors here instead probe the *parsing
//! and validation* surface of a protocol: a [`Spammer`] floods random
//! targets with arbitrary payloads every phase, and [`RandomOmit`] drops
//! each outgoing message of an honest actor with a configured probability.
//! Both are deterministic in their seed ([`SimRng`]).
//!
//! A correct protocol must tolerate any number of spammed bytes from its
//! `t` faulty processors: every algorithm crate runs fuzz suites built on
//! these actors.

use crate::actor::{Actor, Envelope, Outbox, Payload};
use ba_crypto::rng::SimRng;
use ba_crypto::{ProcessId, Value};

/// Generates one adversarial payload per call.
///
/// `Send` because fuzzers live inside actors, which the engine may step on
/// worker threads ([`Actor`]'s supertrait).
pub trait PayloadFuzzer<P>: std::fmt::Debug + Send {
    /// Produces the next payload aimed at `target` during `phase`.
    fn next(&mut self, rng: &mut SimRng, phase: usize, target: ProcessId) -> P;
}

/// A faulty processor that sends `per_phase` random payloads to random
/// targets every phase, decides nothing, and ignores its inbox.
#[derive(Debug)]
pub struct Spammer<P, F> {
    rng: SimRng,
    n: usize,
    per_phase: usize,
    fuzzer: F,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> Spammer<P, F> {
    /// Creates the spammer over `n` targets.
    pub fn new(n: usize, per_phase: usize, seed: u64, fuzzer: F) -> Self {
        Spammer {
            rng: SimRng::new(seed),
            n,
            per_phase,
            fuzzer,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<P: Payload, F: PayloadFuzzer<P>> Actor<P> for Spammer<P, F> {
    fn step(&mut self, phase: usize, _inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        for _ in 0..self.per_phase {
            let target = ProcessId(self.rng.range_u32(0, self.n as u32));
            let payload = self.fuzzer.next(&mut self.rng, phase, target);
            out.send(target, payload);
        }
    }
    fn decision(&self) -> Option<Value> {
        None
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Wraps an honest actor, dropping each outgoing message independently
/// with probability `drop_per_mille / 1000` — randomized omission faults.
#[derive(Debug)]
pub struct RandomOmit<A> {
    inner: A,
    rng: SimRng,
    drop_per_mille: u32,
}

impl<A> RandomOmit<A> {
    /// Creates the wrapper; `drop_per_mille` of 1000 drops everything.
    pub fn new(inner: A, drop_per_mille: u32, seed: u64) -> Self {
        RandomOmit {
            inner,
            rng: SimRng::new(seed),
            drop_per_mille,
        }
    }
}

impl<P: Payload, A: Actor<P>> Actor<P> for RandomOmit<A> {
    fn step(&mut self, phase: usize, inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        let mut scratch = Outbox::new(out.sender());
        self.inner.step(phase, inbox, &mut scratch);
        out.note_omitted(scratch.omitted_count());
        for env in scratch.into_staged() {
            if self.rng.range_u32(0, 1000) >= self.drop_per_mille {
                out.send(env.to, env.payload);
            } else {
                out.note_omitted(1);
            }
        }
    }
    fn finalize(&mut self, inbox: &[Envelope<P>]) {
        self.inner.finalize(inbox);
    }
    fn decision(&self) -> Option<Value> {
        self.inner.decision()
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// A trivial fuzzer emitting random [`Value`]s (useful for engine tests;
/// protocol crates provide chain-aware fuzzers).
#[derive(Debug, Default)]
pub struct ValueFuzzer;

impl PayloadFuzzer<Value> for ValueFuzzer {
    fn next(&mut self, rng: &mut SimRng, _phase: usize, _target: ProcessId) -> Value {
        Value(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    #[derive(Debug, Default)]
    struct Counter {
        heard: usize,
    }
    impl Actor<Value> for Counter {
        fn step(&mut self, _p: usize, inbox: &[Envelope<Value>], _o: &mut Outbox<Value>) {
            self.heard += inbox.len();
        }
        fn finalize(&mut self, inbox: &[Envelope<Value>]) {
            self.heard += inbox.len();
        }
        fn decision(&self) -> Option<Value> {
            Some(Value(self.heard as u64))
        }
    }

    #[test]
    fn spammer_floods_deterministically() {
        let run = || {
            let mut sim = Simulation::new(vec![
                Box::new(Spammer::new(2, 5, 42, ValueFuzzer)) as Box<dyn Actor<Value>>,
                Box::new(Counter::default()),
            ]);
            sim.run(4)
        };
        let a = run();
        let b = run();
        assert_eq!(a.decisions, b.decisions, "seeded determinism");
        assert_eq!(a.metrics.messages_by_faulty, b.metrics.messages_by_faulty);
        assert!(a.metrics.messages_by_faulty > 0);
        assert_eq!(a.metrics.messages_by_correct, 0);
    }

    #[test]
    fn spammer_self_sends_are_dropped_by_outbox() {
        let mut sim = Simulation::new(vec![
            Box::new(Spammer::new(1, 10, 1, ValueFuzzer)) as Box<dyn Actor<Value>>
        ]);
        let outcome = sim.run(3);
        assert_eq!(
            outcome.metrics.messages_total(),
            0,
            "only self-targets exist"
        );
    }

    #[test]
    fn random_omit_zero_keeps_everything_and_1000_drops_everything() {
        #[derive(Debug)]
        struct Chatty;
        impl Actor<Value> for Chatty {
            fn step(&mut self, _p: usize, _i: &[Envelope<Value>], out: &mut Outbox<Value>) {
                out.send(ProcessId(1), Value::ONE);
            }
            fn decision(&self) -> Option<Value> {
                Some(Value::ONE)
            }
        }
        for (per_mille, expect) in [(0u32, 3u64), (1000, 0)] {
            let mut sim = Simulation::new(vec![
                Box::new(RandomOmit::new(Chatty, per_mille, 7)) as Box<dyn Actor<Value>>,
                Box::new(Counter::default()),
            ]);
            let outcome = sim.run(3);
            assert_eq!(
                outcome.metrics.messages_by_faulty, expect,
                "per_mille={per_mille}"
            );
            // Suppressed sends surface as omitted_messages — a "censored"
            // run is distinguishable from a quiet one.
            assert_eq!(
                outcome.metrics.omitted_messages,
                3 - expect,
                "per_mille={per_mille}"
            );
        }
    }

    #[test]
    fn random_omit_partial_drops_some() {
        #[derive(Debug)]
        struct Chatty;
        impl Actor<Value> for Chatty {
            fn step(&mut self, _p: usize, _i: &[Envelope<Value>], out: &mut Outbox<Value>) {
                for _ in 0..20 {
                    out.send(ProcessId(1), Value::ONE);
                }
            }
            fn decision(&self) -> Option<Value> {
                Some(Value::ONE)
            }
        }
        let mut sim = Simulation::new(vec![
            Box::new(RandomOmit::new(Chatty, 500, 3)) as Box<dyn Actor<Value>>,
            Box::new(Counter::default()),
        ]);
        let outcome = sim.run(5);
        let sent = outcome.metrics.messages_by_faulty;
        assert!(sent > 10 && sent < 90, "~50% of 100: {sent}");
    }
}
