//! A persistent worker pool shared by the engine, parameter sweeps and the
//! `ba-net` runtime.
//!
//! The seed engine spawned fresh scoped threads for every phase of every
//! run, so a 10-phase simulation at 4 threads paid 40 thread creations —
//! and `BENCH_engine.json` showed parallel stepping *losing* to sequential
//! on every workload because of it. This pool replaces spawn-per-phase with
//! long-lived threads that park on a condition variable between dispatches:
//! a phase barrier costs one lock + notify instead of `threads` clones of a
//! whole OS thread.
//!
//! # Dispatch model
//!
//! [`run_chunks`](WorkerPool::run_chunks) executes `f(0), f(1), …,
//! f(count − 1)` with the *calling thread participating as a worker*:
//! chunk indices are handed out from a shared atomic dispenser
//! (generation-free work stealing — each call carries its own dispenser,
//! so no cross-call state to stamp), helper tasks are enqueued for parked
//! workers, and the caller drains the dispenser itself. Three properties
//! follow by construction:
//!
//! * **Progress without workers.** If every pool thread is busy (or the
//!   pool is empty), the caller simply runs all chunks inline; helper
//!   tasks that were never picked up are cancelled before returning. The
//!   pool can therefore be used re-entrantly — a simulation cell running
//!   inside a sweep worker can itself call `run_chunks` — with no
//!   deadlock possible, because no participant ever waits for a task that
//!   has not started.
//! * **Determinism is untouched.** The pool only decides *where* a chunk
//!   runs, never *what* it computes or in which order results are
//!   combined; callers keep all order-sensitive work on their own thread
//!   (the engine routes envelopes in actor-id order after the barrier, a
//!   sweep re-sorts results by cell index).
//! * **Panics propagate.** A panic in any chunk is captured, the dispenser
//!   is drained so other participants stop early, and the panic resumes on
//!   the caller after every participant has quiesced — matching
//!   `std::thread::scope` semantics.
//!
//! [`spawn_detached`](WorkerPool::spawn_detached) runs a `'static` job on
//! a parked worker when one is free, growing the pool up to its cap
//! otherwise, and falling back to a dedicated thread when the pool is
//! saturated — so a job is never queued behind a long-running occupant.
//! The `ba-net` runtime leases its per-run message-pump workers this way
//! instead of spawning fresh threads every run; a worker whose job blocks
//! forever (a deliberately stalled chaos actor) costs the pool one thread,
//! which the fallback path replaces on demand.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool threads: far above any useful parallelism in this
/// workspace, low enough that a runaway caller cannot exhaust the host.
const MAX_POOL_WORKERS: usize = 64;

/// Handle to a worker pool. Cloning shares the same workers (`Arc`
/// inside); the process-wide instance from [`WorkerPool::shared`] is what
/// the engine, sweeps and `ba-net` use unless a specific pool is injected.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().expect("pool state poisoned");
        f.debug_struct("WorkerPool")
            .field("max_workers", &self.inner.max_workers)
            .field("live", &st.live)
            .field("idle", &st.idle)
            .field("queued", &st.queue.len())
            .finish()
    }
}

struct PoolInner {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    max_workers: usize,
}

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Task>,
    /// Worker threads spawned so far (they never exit; a detached job that
    /// blocks forever permanently occupies one).
    live: usize,
    /// Workers currently parked on `work_ready`.
    idle: usize,
}

enum Task {
    Chunk(ChunkTask),
    Detached(Box<dyn FnOnce() + Send + 'static>),
}

/// One helper's share of a `run_chunks` call: a lifetime-erased pointer to
/// the caller's chunk closure plus the call's control block.
struct ChunkTask {
    job: RawChunkFn,
    ctl: Arc<ChunkCtl>,
}

/// Lifetime-erased `&(dyn Fn(usize) + Sync)`.
///
/// Soundness: the pointee lives on the `run_chunks` caller's stack, and
/// `run_chunks` does not return (or unwind) until every `ChunkTask`
/// holding this pointer has either finished executing or been cancelled
/// while still queued — enforced by the `outstanding` latch in
/// [`ChunkCtl`]. No dereference can outlive the closure.
#[derive(Clone, Copy)]
struct RawChunkFn(*const (dyn Fn(usize) + Sync));

// The pointee is `Sync` (required by `run_chunks`' bound), so sharing the
// pointer across threads is safe; see `RawChunkFn` for the lifetime
// argument.
unsafe impl Send for RawChunkFn {}

/// Per-`run_chunks` control block: the chunk-index dispenser, the
/// helper-completion latch and the first captured panic.
struct ChunkCtl {
    /// Next chunk index to hand out; `>= count` means drained (or
    /// poisoned by a panic to stop other participants early).
    next: AtomicUsize,
    count: usize,
    /// Helper tasks enqueued and neither finished nor cancelled. The
    /// caller waits for this to reach zero before returning, which is what
    /// makes the lifetime erasure in [`RawChunkFn`] sound.
    outstanding: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ChunkCtl {
    fn new(count: usize) -> Self {
        ChunkCtl {
            next: AtomicUsize::new(0),
            count,
            outstanding: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Claims chunk indices until the dispenser runs dry, running `f` on
    /// each. On panic the dispenser is poisoned so other participants stop
    /// handing out work, and the first panic payload is kept for the
    /// caller to resume.
    fn drain(&self, f: &(dyn Fn(usize) + Sync)) {
        let result = catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                break;
            }
            f(i);
        }));
        if let Err(payload) = result {
            self.next.store(self.count, Ordering::Relaxed);
            let mut slot = self.panic.lock().expect("chunk panic slot poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }

    fn finish_helpers(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut outstanding = self.outstanding.lock().expect("chunk latch poisoned");
        *outstanding -= n;
        if *outstanding == 0 {
            self.done.notify_all();
        }
    }
}

fn run_chunk_task(task: ChunkTask) {
    // SAFETY: see `RawChunkFn` — the caller of `run_chunks` is still
    // blocked in its completion wait, so the closure is alive.
    let f = unsafe { &*task.job.0 };
    task.ctl.drain(f);
    task.ctl.finish_helpers(1);
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let task = {
            let mut st = inner.state.lock().expect("pool state poisoned");
            loop {
                if let Some(task) = st.queue.pop_front() {
                    break task;
                }
                st.idle += 1;
                st = inner.work_ready.wait(st).expect("pool state poisoned");
                st.idle -= 1;
            }
        };
        match task {
            Task::Chunk(chunk) => run_chunk_task(chunk),
            Task::Detached(job) => job(),
        }
    }
}

impl WorkerPool {
    /// Creates a pool that will grow on demand up to `max_workers`
    /// threads (clamped to a hard cap of 64). Workers are spawned lazily
    /// on first use and live for the rest of the process — prefer
    /// [`shared`](Self::shared) unless a test needs an isolated pool.
    pub fn new(max_workers: usize) -> Self {
        WorkerPool {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState::default()),
                work_ready: Condvar::new(),
                max_workers: max_workers.min(MAX_POOL_WORKERS),
            }),
        }
    }

    /// The process-wide pool. Sized to the machine's available parallelism
    /// (at least 8, so oversubscribed determinism tests still get real
    /// helpers), overridable with the `BA_POOL_MAX_WORKERS` environment
    /// variable.
    pub fn shared() -> WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED
            .get_or_init(|| {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let cap = std::env::var("BA_POOL_MAX_WORKERS")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| cores.max(8));
                WorkerPool::new(cap)
            })
            .clone()
    }

    /// Maximum number of worker threads this pool may grow to.
    pub fn max_workers(&self) -> usize {
        self.inner.max_workers
    }

    /// Worker threads currently alive (diagnostics).
    pub fn live_workers(&self) -> usize {
        self.inner.state.lock().expect("pool state poisoned").live
    }

    /// Spawns up to `wanted` additional workers, bounded by the cap and by
    /// how many parked workers already exist.
    fn grow_locked(&self, st: &mut PoolState, wanted: usize) {
        let deficit = wanted.saturating_sub(st.idle);
        let room = self.inner.max_workers.saturating_sub(st.live);
        for _ in 0..deficit.min(room) {
            st.live += 1;
            let inner = self.inner.clone();
            std::thread::Builder::new()
                .name("ba-pool".into())
                .spawn(move || worker_loop(inner))
                .expect("spawn pool worker");
        }
    }

    /// Runs `f(0) … f(count − 1)` exactly once each, fanning across parked
    /// pool workers with the calling thread participating. Returns after
    /// every chunk has completed. See the [module docs](self) for the
    /// progress, determinism and panic guarantees.
    ///
    /// # Panics
    /// Resumes the first panic raised by any chunk, after all
    /// participants have quiesced.
    pub fn run_chunks<F>(&self, count: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_chunks_capped(count, usize::MAX, f);
    }

    /// [`run_chunks`](Self::run_chunks) with at most `participants`
    /// concurrent executors (the caller plus up to `participants − 1`
    /// pool helpers). Lets a caller with its own thread-count contract —
    /// a sweep asked to use `threads` workers — fan out on the shared
    /// pool without oversubscribing past what it promised.
    ///
    /// # Panics
    /// As [`run_chunks`](Self::run_chunks).
    pub fn run_chunks_capped<F>(&self, count: usize, participants: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return;
        }
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        if count == 1 || participants <= 1 || self.inner.max_workers == 0 {
            let ctl = ChunkCtl::new(count);
            ctl.drain(f_ref);
            if let Some(payload) = ctl.panic.lock().expect("chunk panic slot poisoned").take() {
                resume_unwind(payload);
            }
            return;
        }

        let ctl = Arc::new(ChunkCtl::new(count));
        // SAFETY: lifetime erasure justified at `RawChunkFn`: this
        // function cancels or awaits every task holding the pointer before
        // returning or unwinding.
        let raw = RawChunkFn(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f_ref as *const _,
            )
        });
        let helpers = (count - 1)
            .min(self.inner.max_workers)
            .min(participants - 1);
        {
            let mut st = self.inner.state.lock().expect("pool state poisoned");
            *ctl.outstanding.lock().expect("chunk latch poisoned") = helpers;
            for _ in 0..helpers {
                st.queue.push_back(Task::Chunk(ChunkTask {
                    job: raw,
                    ctl: ctl.clone(),
                }));
            }
            self.grow_locked(&mut st, helpers);
        }
        self.inner.work_ready.notify_all();

        // Participate: the caller drains the dispenser alongside any
        // helpers, so progress never depends on a worker being free.
        ctl.drain(f_ref);

        // Cancel helper tasks that no worker picked up (their chunks have
        // already been executed by whoever drained the dispenser).
        {
            let mut st = self.inner.state.lock().expect("pool state poisoned");
            let before = st.queue.len();
            st.queue.retain(|task| match task {
                Task::Chunk(chunk) => !Arc::ptr_eq(&chunk.ctl, &ctl),
                Task::Detached(_) => true,
            });
            let cancelled = before - st.queue.len();
            drop(st);
            ctl.finish_helpers(cancelled);
        }

        // Wait for helpers that did start; after this no reference to `f`
        // survives anywhere.
        let mut outstanding = ctl.outstanding.lock().expect("chunk latch poisoned");
        while *outstanding > 0 {
            outstanding = ctl.done.wait(outstanding).expect("chunk latch poisoned");
        }
        drop(outstanding);

        let payload = ctl.panic.lock().expect("chunk panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs `job` on a parked worker when one is free; otherwise grows the
    /// pool (up to its cap), and when saturated falls back to a dedicated
    /// thread so the job starts promptly no matter what currently occupies
    /// the pool. Fire-and-forget: completion is the job's own business
    /// (the `ba-net` runtime coordinates its leased workers over
    /// channels).
    pub fn spawn_detached<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let job: Box<dyn FnOnce() + Send> = Box::new(job);
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        if st.idle > st.queue.len() {
            st.queue.push_back(Task::Detached(job));
            drop(st);
            self.inner.work_ready.notify_all();
        } else if st.live < self.inner.max_workers {
            st.live += 1;
            st.queue.push_back(Task::Detached(job));
            let inner = self.inner.clone();
            drop(st);
            std::thread::Builder::new()
                .name("ba-pool".into())
                .spawn(move || worker_loop(inner))
                .expect("spawn pool worker");
            self.inner.work_ready.notify_all();
        } else {
            drop(st);
            std::thread::Builder::new()
                .name("ba-detached".into())
                .spawn(job)
                .expect("spawn detached worker");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for count in [0usize, 1, 2, 7, 64, 300] {
            let hits: Vec<AtomicUsize> = (0..count).map(|_| AtomicUsize::new(0)).collect();
            pool.run_chunks(count, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i} of {count}");
            }
        }
    }

    #[test]
    fn zero_capacity_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let sum = AtomicU64::new(0);
        pool.run_chunks(10, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
        assert_eq!(pool.live_workers(), 0, "no threads ever spawned");
    }

    #[test]
    fn workers_persist_across_dispatches() {
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            let sum = AtomicU64::new(0);
            pool.run_chunks(6, |i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 21);
        }
        assert!(
            pool.live_workers() <= 3,
            "pool never exceeds its cap: {:?}",
            pool
        );
    }

    #[test]
    fn nested_run_chunks_does_not_deadlock() {
        // Every outer chunk re-enters the pool; with 2 workers most inner
        // calls find no one free and must make progress inline.
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        pool.run_chunks(4, |_| {
            pool.run_chunks(4, |j| {
                total.fetch_add(j as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10);
    }

    #[test]
    fn chunk_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(8, |i| {
                assert!(i != 3, "chunk exploded");
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("chunk exploded"), "payload: {msg}");
        // The pool survives a panicked dispatch.
        let sum = AtomicU64::new(0);
        pool.run_chunks(4, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn detached_jobs_run_and_reuse_workers() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..6u32 {
            let tx = tx.clone();
            pool.spawn_detached(move || {
                tx.send(i).unwrap();
            });
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn detached_jobs_never_starve_behind_blocked_occupants() {
        // Two jobs park forever on a channel, filling the 2-worker pool;
        // a third must still run (fallback thread) and release them.
        let pool = WorkerPool::new(2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Arc::new(Mutex::new(release_rx));
        let (done_tx, done_rx) = mpsc::channel();
        for _ in 0..2 {
            let rx = release_rx.clone();
            let done = done_tx.clone();
            pool.spawn_detached(move || {
                rx.lock().unwrap().recv().unwrap();
                done.send("blocked").unwrap();
            });
        }
        let done = done_tx.clone();
        pool.spawn_detached(move || {
            done.send("free").unwrap();
        });
        assert_eq!(done_rx.recv().unwrap(), "free");
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert_eq!(done_rx.recv().unwrap(), "blocked");
        assert_eq!(done_rx.recv().unwrap(), "blocked");
    }

    #[test]
    fn shared_pool_is_one_instance() {
        let a = WorkerPool::shared();
        let b = WorkerPool::shared();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert!(a.max_workers() >= 1);
    }

    #[test]
    fn results_are_visible_after_return() {
        // The completion latch must publish worker writes to the caller.
        let pool = WorkerPool::new(4);
        for _ in 0..100 {
            let cells: Vec<Mutex<u64>> = (0..16).map(|_| Mutex::new(0)).collect();
            pool.run_chunks(16, |i| {
                *cells[i].lock().unwrap() = (i as u64) * 3;
            });
            for (i, c) in cells.iter().enumerate() {
                assert_eq!(*c.lock().unwrap(), (i as u64) * 3);
            }
        }
    }
}
