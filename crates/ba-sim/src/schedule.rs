//! Schedule-driven fault vocabulary: the bridge between a declarative
//! fault schedule and the [`adversary`](crate::adversary) wrappers.
//!
//! The model checker (`ba-check`) explores the space of adversarial
//! *schedules*: who is faulty, how each faulty processor deviates, and
//! which links drop in which phases. This module defines the in-memory
//! vocabulary for that space — [`FaultBehavior`], [`LinkDrop`] and
//! [`ScheduleSpec`] — and the adapter ([`FaultBehavior::apply`]) that
//! compiles a behaviour into the existing actor wrappers. The serializable
//! `FaultSchedule` (JSON corpus format, target binding) lives in
//! `ba-check`; algorithm crates consume `ScheduleSpec` to build checkable
//! runs without depending on the checker.
//!
//! Every behaviour here is a *restriction* of correct behaviour (silence,
//! crashing, selective omission) except [`FaultBehavior::Equivocate`],
//! which is protocol-specific: the adapter cannot fabricate signed
//! equivocations generically, so check targets must map it to their own
//! equivocating adversary before calling [`FaultBehavior::apply`].

use crate::actor::{Actor, Payload};
use crate::adversary::{Crash, OmitTo, Silent};
use ba_crypto::ProcessId;
use core::fmt;

/// Why a [`FaultBehavior`] could not be compiled onto an honest actor.
///
/// Returned (not panicked) so callers that drive many schedules — the
/// `ba-check` explorer, the `ba-net` soak harness — can surface the
/// problem as a per-schedule report instead of aborting the whole
/// exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ScheduleError {
    /// [`FaultBehavior::Equivocate`] reached the generic adapter: the
    /// check target must map equivocation to its own signed-message
    /// adversary before falling through to [`FaultBehavior::apply`].
    UnmappedEquivocation,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnmappedEquivocation => write!(
                f,
                "equivocation is protocol-specific: the check target must map it \
                 to its own adversary before applying the generic adapter"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// How one faulty processor deviates from its correctness rule.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FaultBehavior {
    /// Never sends, never decides (the paper's "never sends a message").
    Silent,
    /// Honest until (and excluding) `phase`, then permanently silent.
    CrashAt {
        /// First phase in which the processor no longer participates.
        phase: usize,
    },
    /// Honest except that all sends to `targets` are suppressed.
    OmitTo {
        /// The censored recipients, sorted and deduplicated.
        targets: Vec<ProcessId>,
    },
    /// Behaves exactly like the honest actor but is *modeled* as faulty —
    /// the carrier for schedules whose only deviation is engine-level link
    /// drops (a link may only drop if its sender is faulty, otherwise the
    /// schedule would exceed the fault model).
    Passive,
    /// Protocol-specific equivocation: send value `1` to `ones` and `0`
    /// to the rest. Only meaningful for processors the target algorithm
    /// exposes an equivocating adversary for (typically the transmitter);
    /// [`FaultBehavior::apply`] panics on it by design.
    Equivocate {
        /// Recipients of value `1`.
        ones: Vec<ProcessId>,
    },
}

impl FaultBehavior {
    /// Compiles this behaviour into an actor by wrapping `honest`.
    ///
    /// # Errors
    /// [`ScheduleError::UnmappedEquivocation`] on
    /// [`FaultBehavior::Equivocate`]: equivocation needs the target
    /// algorithm's own signed-message adversary; callers must intercept it
    /// before falling through to this adapter.
    pub fn apply<P: Payload + 'static>(
        &self,
        honest: Box<dyn Actor<P>>,
    ) -> Result<Box<dyn Actor<P>>, ScheduleError> {
        match self {
            FaultBehavior::Silent => Ok(Box::new(Silent)),
            FaultBehavior::CrashAt { phase } => Ok(Box::new(Crash::new(honest, *phase))),
            FaultBehavior::OmitTo { targets } => {
                Ok(Box::new(OmitTo::new(honest, targets.iter().copied())))
            }
            // An `OmitTo` with no targets forwards everything unchanged
            // while reporting `is_correct() == false`.
            FaultBehavior::Passive => Ok(Box::new(OmitTo::new(honest, []))),
            FaultBehavior::Equivocate { .. } => Err(ScheduleError::UnmappedEquivocation),
        }
    }

    /// Short stable tag used by the JSON schedule format and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultBehavior::Silent => "silent",
            FaultBehavior::CrashAt { .. } => "crash-at",
            FaultBehavior::OmitTo { .. } => "omit-to",
            FaultBehavior::Passive => "passive",
            FaultBehavior::Equivocate { .. } => "equivocate",
        }
    }
}

/// One suppressed link: the envelope from `from` to `to` sent during
/// `phase` never reaches the wire (see
/// [`Simulation::with_link_drops`](crate::engine::Simulation::with_link_drops)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct LinkDrop {
    /// The phase whose send is suppressed (1-based, exact match).
    pub phase: usize,
    /// The sending processor (must be faulty in a well-formed schedule).
    pub from: ProcessId,
    /// The receiving processor.
    pub to: ProcessId,
}

/// A complete in-memory fault schedule: per-processor behaviours plus
/// engine-level link drops.
///
/// Invariants a *well-formed* schedule maintains (checked by
/// [`validate`](ScheduleSpec::validate)):
///
/// * `faults` is sorted by processor id with no duplicates;
/// * every [`LinkDrop::from`] names a faulty processor — otherwise the
///   schedule would model message loss on a correct sender, which the
///   paper's fault model (and hence the checker) excludes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScheduleSpec {
    /// The faulty processors and their behaviours, sorted by id.
    pub faults: Vec<(ProcessId, FaultBehavior)>,
    /// Scheduled per-phase link drops.
    pub link_drops: Vec<LinkDrop>,
}

impl ScheduleSpec {
    /// The behaviour assigned to `p`, if `p` is faulty.
    pub fn behavior_of(&self, p: ProcessId) -> Option<&FaultBehavior> {
        self.faults.iter().find(|(q, _)| *q == p).map(|(_, b)| b)
    }

    /// Whether `p` is scheduled as faulty.
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.behavior_of(p).is_some()
    }

    /// Number of faulty processors.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Checks well-formedness against `n` processors and fault budget `t`.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self, n: usize, t: usize) -> Result<(), String> {
        if self.faults.len() > t {
            return Err(format!(
                "{} faulty processors exceed the budget t = {t}",
                self.faults.len()
            ));
        }
        for w in self.faults.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("faults not sorted/unique at {}", w[1].0));
            }
        }
        for (p, behavior) in &self.faults {
            if p.index() >= n {
                return Err(format!("faulty {p} out of range for n = {n}"));
            }
            if let FaultBehavior::OmitTo { targets } = behavior {
                for q in targets {
                    if q.index() >= n {
                        return Err(format!("omission target {q} out of range for n = {n}"));
                    }
                }
            }
            if let FaultBehavior::Equivocate { ones } = behavior {
                for q in ones {
                    if q.index() >= n {
                        return Err(format!("equivocation target {q} out of range for n = {n}"));
                    }
                }
            }
        }
        for drop in &self.link_drops {
            if drop.from.index() >= n || drop.to.index() >= n {
                return Err(format!(
                    "link drop {}->{} out of range for n = {n}",
                    drop.from, drop.to
                ));
            }
            if !self.is_faulty(drop.from) {
                return Err(format!(
                    "link drop from correct {} — only faulty senders may omit",
                    drop.from
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Envelope, Outbox};
    use ba_crypto::Value;

    #[derive(Debug, Default)]
    struct Echo;
    impl Actor<Value> for Echo {
        fn step(&mut self, _phase: usize, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
            for env in inbox {
                out.send(env.from, env.payload);
            }
        }
        fn decision(&self) -> Option<Value> {
            Some(Value::ONE)
        }
    }

    fn env(from: u32) -> Envelope<Value> {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(1),
            payload: Value(9),
        }
    }

    #[test]
    fn apply_compiles_each_restriction() {
        let behaviors = [
            FaultBehavior::Silent,
            FaultBehavior::CrashAt { phase: 1 },
            FaultBehavior::OmitTo {
                targets: vec![ProcessId(0)],
            },
            FaultBehavior::Passive,
        ];
        for b in &behaviors {
            let mut actor = b.apply(Box::new(Echo) as Box<dyn Actor<Value>>).unwrap();
            assert!(!actor.is_correct(), "{}", b.tag());
            let mut out = Outbox::new(ProcessId(1));
            actor.step(2, &[env(0), env(2)], &mut out);
            let sent = out.staged_len();
            match b {
                FaultBehavior::Silent | FaultBehavior::CrashAt { .. } => assert_eq!(sent, 0),
                FaultBehavior::OmitTo { .. } => assert_eq!(sent, 1, "p0 echo censored"),
                FaultBehavior::Passive => assert_eq!(sent, 2, "passive forwards everything"),
                FaultBehavior::Equivocate { .. } => unreachable!(),
            }
        }
    }

    #[test]
    fn apply_rejects_equivocation_with_typed_error() {
        let err = FaultBehavior::Equivocate { ones: vec![] }
            .apply(Box::new(Echo) as Box<dyn Actor<Value>>)
            .unwrap_err();
        assert_eq!(err, ScheduleError::UnmappedEquivocation);
        assert!(err.to_string().contains("protocol-specific"), "{err}");
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ScheduleError>();
    }

    #[test]
    fn validate_enforces_the_fault_model() {
        let spec = ScheduleSpec {
            faults: vec![(ProcessId(1), FaultBehavior::Silent)],
            link_drops: vec![LinkDrop {
                phase: 1,
                from: ProcessId(0),
                to: ProcessId(2),
            }],
        };
        let err = spec.validate(4, 2).unwrap_err();
        assert!(err.contains("only faulty senders"), "{err}");

        let ok = ScheduleSpec {
            faults: vec![(ProcessId(0), FaultBehavior::Passive)],
            link_drops: vec![LinkDrop {
                phase: 1,
                from: ProcessId(0),
                to: ProcessId(2),
            }],
        };
        assert!(ok.validate(4, 1).is_ok());
        assert!(ok.validate(4, 0).is_err(), "budget exceeded");
        assert!(ok.is_faulty(ProcessId(0)));
        assert!(!ok.is_faulty(ProcessId(2)));
        assert_eq!(ok.fault_count(), 1);
    }

    #[test]
    fn validate_rejects_unsorted_or_out_of_range() {
        let dup = ScheduleSpec {
            faults: vec![
                (ProcessId(2), FaultBehavior::Silent),
                (ProcessId(1), FaultBehavior::Silent),
            ],
            link_drops: vec![],
        };
        assert!(dup.validate(4, 3).unwrap_err().contains("sorted"));

        let oob = ScheduleSpec {
            faults: vec![(
                ProcessId(1),
                FaultBehavior::OmitTo {
                    targets: vec![ProcessId(9)],
                },
            )],
            link_drops: vec![],
        };
        assert!(oob.validate(4, 3).unwrap_err().contains("out of range"));
    }
}
