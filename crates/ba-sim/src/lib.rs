//! Deterministic synchronous-round simulator for Byzantine Agreement
//! protocols.
//!
//! The Dolev–Reischuk paper models computation as a sequence of *phases*:
//! at the beginning of phase `k` a processor knows exactly its individual
//! subhistory of the first `k − 1` phases and nothing else; during phase `k`
//! it sends labeled messages chosen by its correctness rule. This crate is
//! that model as an executable substrate:
//!
//! * [`actor`] — the [`Actor`] trait (one implementation per
//!   protocol role), [`Envelope`]s and the
//!   [`Outbox`];
//! * [`engine`] — the lock-step [`Simulation`] driver;
//! * [`metrics`] — message/signature/phase accounting with the paper's
//!   convention (count traffic *sent by correct processors*);
//! * [`adversary`] — generic Byzantine behaviours (silence, crashing,
//!   selective omission, inbox starvation) that wrap honest actors; richer,
//!   protocol-specific attacks live next to each algorithm;
//! * [`checker`] — post-run verification of the two Byzantine Agreement
//!   conditions;
//! * [`schedule`] — the declarative fault-schedule vocabulary
//!   ([`FaultBehavior`], [`LinkDrop`], [`ScheduleSpec`]) that the
//!   `ba-check` model checker compiles onto the adversary wrappers and the
//!   engine's link-drop hook;
//! * [`transport`] — the injectable per-envelope delivery policy the
//!   routing barrier consults ([`Reliable`], [`ScheduledDrops`], seeded
//!   [`Flaky`] loss); the `ba-net` crate builds its real message-passing
//!   runtime on the same actor contract with a richer chaos model;
//! * [`trace`] — optional full message trace for debugging and for the
//!   formal-model experiments;
//! * [`pool`] — the persistent [`WorkerPool`] shared by the engine's
//!   intra-phase stepping, the sweep fan-out and the `ba-net` runtime:
//!   long-lived threads parked between dispatches instead of
//!   spawn-per-phase;
//! * [`arena`] — flat struct-of-arrays mailbox storage: one contiguous
//!   inbox arena per phase plus per-worker outbox segments, merged in
//!   deterministic `(sender, seq)` order at the barrier;
//! * [`sweep`] — deterministic fan-out of independent experiment cells
//!   across the shared worker pool, with per-cell seed derivation and
//!   metrics merging.
//!
//! # Example
//!
//! A two-processor "echo" protocol where the transmitter sends its value
//! once and the receiver decides on whatever it hears:
//!
//! ```
//! use ba_crypto::{ProcessId, Value};
//! use ba_sim::actor::{Actor, Envelope, Outbox};
//! use ba_sim::engine::Simulation;
//!
//! #[derive(Debug)]
//! struct Sender(Value);
//! #[derive(Debug)]
//! struct Receiver(Option<Value>);
//!
//! impl Actor<Value> for Sender {
//!     fn step(&mut self, phase: usize, _inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
//!         if phase == 1 {
//!             out.send(ProcessId(1), self.0);
//!         }
//!     }
//!     fn decision(&self) -> Option<Value> { Some(self.0) }
//! }
//!
//! impl Actor<Value> for Receiver {
//!     fn step(&mut self, _phase: usize, inbox: &[Envelope<Value>], _out: &mut Outbox<Value>) {
//!         if let Some(env) = inbox.first() {
//!             self.0 = Some(env.payload);
//!         }
//!     }
//!     fn decision(&self) -> Option<Value> { self.0 }
//! }
//!
//! let mut sim = Simulation::new(vec![
//!     Box::new(Sender(Value::ONE)),
//!     Box::new(Receiver(None)),
//! ]);
//! let outcome = sim.run(2);
//! assert_eq!(outcome.decisions, vec![Some(Value::ONE), Some(Value::ONE)]);
//! assert_eq!(outcome.metrics.messages_by_correct, 1);
//! ```

pub mod actor;
pub mod adversary;
pub mod arena;
pub mod checker;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod random;
pub mod schedule;
pub mod sweep;
pub mod trace;
pub mod transport;

pub use actor::{Actor, Envelope, Outbox, Payload};
pub use checker::{check_byzantine_agreement, AgreementViolation, RunVerdict};
pub use engine::{RunOutcome, Simulation};
pub use metrics::{Metrics, QueueStats};
pub use pool::WorkerPool;
pub use schedule::{FaultBehavior, LinkDrop, ScheduleError, ScheduleSpec};
pub use transport::{Fate, Flaky, Reliable, ScheduledDrops, Transport};
