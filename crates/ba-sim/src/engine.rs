//! The lock-step phase engine.
//!
//! # Data plane
//!
//! Mailboxes live in flat struct-of-arrays arenas (see [`crate::arena`]):
//! each phase's deliveries occupy one contiguous [`Inboxes`] buffer
//! partitioned by an offsets table, double-buffered and swapped at the
//! phase barrier; each worker stages its actors' sends into one
//! [`Segment`] buffer in (actor, send-seq) order. With pooling enabled
//! (the default) every arena retains its capacity across phases, so a
//! steady-state phase allocates nothing.
//!
//! # Intra-phase parallelism
//!
//! In the lock-step model actors are independent *within* a phase — every
//! actor only reads its own inbox (frozen at the barrier) and writes its
//! own outbox. [`Simulation::with_threads`] exploits this by stepping
//! contiguous actor chunks on the persistent [`WorkerPool`] — long-lived
//! threads parked between phases, replacing the seed engine's
//! spawn-per-phase `std::thread::scope` (whose thread churn made parallel
//! stepping *lose* to sequential). Everything order-sensitive stays on the
//! calling thread: staged envelopes are routed (and metrics/trace
//! recorded) strictly in actor-id order after the barrier — worker
//! segments cover ascending actor ranges, so walking segments in order
//! reproduces the sequential send order exactly — making `Metrics`, the
//! trace and every decision byte-identical for any thread count. Per-phase
//! crypto counters stay identical too: each chunk measures its own
//! thread-local [`CryptoStats`] delta (the sum over chunks is
//! schedule-independent), and a run wired to a [`KeyRegistry`] via
//! [`Simulation::with_registry`] puts the shared verifier cache into
//! deferred phase-snapshot mode, so intra-phase cache lookups see only the
//! state frozen at the previous barrier regardless of scheduling.
//!
//! # Batched phase-barrier verification
//!
//! [`Simulation::with_batched_verification`] moves signature-chain
//! verification from the receivers to the barrier: after routing, the
//! engine walks the next phase's inbox arena, verifies each *unique* chain
//! once (deduplicated by shared signature storage — a broadcast fan-out is
//! one entry), and stamps the chain's buffer as verified under this run's
//! registry. When recipients call [`Chain::verify`](ba_crypto::Chain)
//! during the next phase, the stamp short-circuits to a cache hit — so a
//! Dolev–Strong phase delivering O(n²) envelopes pays crypto for O(unique
//! chains) instead of O(n²) full verifications. Accept/reject outcomes,
//! decisions, message counts and traces are untouched; only the `crypto`
//! work counters shrink (the barrier's work is attributed to the phase in
//! which the messages are delivered, where per-delivery verification would
//! have paid it). Counters remain byte-identical across thread counts —
//! the barrier pass runs on the calling thread in delivery order.

use crate::actor::{Actor, Envelope, Outbox, Payload};
use crate::arena::{Inboxes, Segment};
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::schedule::LinkDrop;
use crate::trace::{PhaseTrace, Trace};
use crate::transport::{Fate, ScheduledDrops, Transport};
use ba_crypto::keys::KeyRegistry;
use ba_crypto::stats::CryptoStats;
use ba_crypto::{ProcessId, Value};
use std::collections::{BTreeSet, HashSet};
use std::sync::Mutex;

/// Result of driving a [`Simulation`] to completion.
#[derive(Debug)]
pub struct RunOutcome<P> {
    /// Each processor's decision, indexed by processor id.
    pub decisions: Vec<Option<Value>>,
    /// Which processors were modeled as correct.
    pub correct: Vec<bool>,
    /// Traffic accounting.
    pub metrics: Metrics,
    /// Full message trace when tracing was enabled, otherwise empty.
    pub trace: Trace<P>,
}

impl<P> RunOutcome<P> {
    /// Decisions of correct processors only, with their ids.
    pub fn correct_decisions(&self) -> impl Iterator<Item = (ProcessId, Option<Value>)> + '_ {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| self.correct[*i])
            .map(|(i, d)| (ProcessId(i as u32), *d))
    }
}

/// A per-phase observer: called with the phase number and that phase's
/// sent envelopes (see [`Simulation::with_observer`]).
pub type PhaseObserver<P> = Box<dyn FnMut(usize, &[Envelope<P>])>;

/// A synchronous simulation of `n` processors.
///
/// Phases execute in lock step: at phase `k` every actor is stepped (in id
/// order) with the messages addressed to it during phase `k − 1`; the
/// messages it stages are delivered at phase `k + 1`. After the last phase,
/// [`Actor::finalize`] delivers the final inbox and decisions are read.
///
/// See the [crate docs](crate) for a complete example.
pub struct Simulation<P: Payload> {
    actors: Vec<Box<dyn Actor<P>>>,
    record_trace: bool,
    observer: Option<PhaseObserver<P>>,
    threads: usize,
    pooling: bool,
    registry: Option<KeyRegistry>,
    link_drops: BTreeSet<LinkDrop>,
    transport: Option<Box<dyn Transport>>,
    pool: Option<WorkerPool>,
    batch_verify: bool,
}

impl<P: Payload> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.actors.len())
            .field("record_trace", &self.record_trace)
            .field("threads", &self.threads)
            .field("pooling", &self.pooling)
            .field("batch_verify", &self.batch_verify)
            .finish()
    }
}

impl<P: Payload> Simulation<P> {
    /// Creates a simulation over `actors`; actor `i` is processor `i`.
    pub fn new(actors: Vec<Box<dyn Actor<P>>>) -> Self {
        Simulation {
            actors,
            record_trace: false,
            observer: None,
            threads: 1,
            pooling: true,
            registry: None,
            link_drops: BTreeSet::new(),
            transport: None,
            pool: None,
            batch_verify: false,
        }
    }

    /// Enables full message tracing (see [`Trace`]).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Steps actors across `threads` worker chunks within each phase (see
    /// the [module docs](self) for the determinism contract). `0` and `1`
    /// both mean sequential, the default. Chunks run on the persistent
    /// [`WorkerPool`] — the process-shared pool unless
    /// [`with_pool`](Self::with_pool) injected one.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Uses `pool` for intra-phase stepping instead of the process-shared
    /// [`WorkerPool::shared`]. The pool only decides where chunks run;
    /// results are byte-identical for any pool.
    pub fn with_pool(mut self, pool: &WorkerPool) -> Self {
        self.pool = Some(pool.clone());
        self
    }

    /// Declares the [`KeyRegistry`] whose verifier cache this run's actors
    /// share. For the duration of the run the cache operates in deferred
    /// phase-snapshot mode (flushed at every phase barrier), which makes
    /// the per-phase cache hit/miss counters independent of how actors are
    /// scheduled within a phase. Required for byte-identical `Metrics`
    /// across thread counts when actors verify chains; runs that never
    /// touch a shared cache don't need it.
    pub fn with_registry(mut self, registry: &KeyRegistry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Declares scheduled link drops: an envelope sent from `drop.from` to
    /// `drop.to` during phase `drop.phase` is suppressed at the routing
    /// barrier — it is never delivered, traced or counted as sent, only
    /// accounted under [`Metrics::omitted_messages`]. Dropping happens on
    /// the calling thread in actor-id order, so results stay byte-identical
    /// for any thread count. Fault schedules use this to model a faulty
    /// sender omitting specific links in specific phases without touching
    /// the actor itself.
    ///
    /// [`Metrics::omitted_messages`]: crate::metrics::Metrics::omitted_messages
    pub fn with_link_drops(mut self, drops: impl IntoIterator<Item = LinkDrop>) -> Self {
        self.link_drops.extend(drops);
        self
    }

    /// Injects a [`Transport`] consulted for every staged envelope that
    /// survives the scheduled link drops. An [`Fate::Omit`] verdict is
    /// accounted exactly like a scheduled drop: the send happened (the
    /// system is not quiescent) but nothing is delivered, traced or
    /// counted as sent — only [`Metrics::omitted_messages`] grows.
    ///
    /// The transport runs on the calling thread in actor-id order (see the
    /// [`transport`](crate::transport) module docs), so stateful policies
    /// such as [`Flaky`](crate::transport::Flaky) stay byte-identical for
    /// any worker-thread count. Defaults to
    /// [`Reliable`](crate::transport::Reliable).
    ///
    /// [`Metrics::omitted_messages`]: crate::metrics::Metrics::omitted_messages
    pub fn with_transport(mut self, transport: impl Transport + 'static) -> Self {
        self.transport = Some(Box::new(transport));
        self
    }

    /// Enables or disables the mailbox arenas' capacity retention
    /// (default: enabled). With pooling off the engine allocates fresh
    /// arena buffers every phase — the seed behaviour, kept reachable so
    /// the engine benchmark can measure what pooling buys.
    pub fn with_mailbox_pooling(mut self, pooling: bool) -> Self {
        self.pooling = pooling;
        self
    }

    /// Enables batched phase-barrier verification (see the [module
    /// docs](self)): each unique signature chain delivered in a phase is
    /// verified once at the barrier and its shared buffer stamped, so
    /// recipients' `verify` calls short-circuit. Requires
    /// [`with_registry`](Self::with_registry) (the barrier needs a
    /// verifier); without a registry this is a no-op. Off by default:
    /// batching honestly *reduces* the `crypto` work counters, so runs
    /// being compared against per-delivery baselines must opt in on both
    /// sides.
    pub fn with_batched_verification(mut self, batch: bool) -> Self {
        self.batch_verify = batch;
        self
    }

    /// Registers an observer called after every phase with that phase's
    /// sent envelopes (before delivery) — live invariant checks, progress
    /// displays, per-phase assertions in tests.
    pub fn with_observer(mut self, observer: PhaseObserver<P>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// Runs exactly `phases` phases and returns the outcome.
    pub fn run(&mut self, phases: usize) -> RunOutcome<P> {
        self.run_inner(phases, false)
    }

    /// Runs at most `max_phases` phases, stopping early once a phase
    /// produces no messages at all (the system is quiescent). Useful for
    /// measuring how many phases a protocol actually uses.
    pub fn run_until_quiescent(&mut self, max_phases: usize) -> RunOutcome<P> {
        self.run_inner(max_phases, true)
    }

    fn run_inner(&mut self, phases: usize, stop_when_quiet: bool) -> RunOutcome<P> {
        let n = self.actors.len();
        let correct: Vec<bool> = self.actors.iter().map(|a| a.is_correct()).collect();
        let mut metrics = Metrics::default();
        let mut trace = Trace::default();

        // Worker geometry: contiguous ascending actor chunks, one segment
        // per chunk. `chunks` can be smaller than the requested thread
        // count when n is small (matching `slice::chunks_mut`).
        let workers = self.threads.min(n.max(1)).max(1);
        let chunk_size = n.div_ceil(workers).max(1);
        let chunks = n.div_ceil(chunk_size).max(1);
        // The persistent pool: acquired once per run, its threads parked
        // between phases. Sequential runs never touch it.
        let pool = if chunks > 1 {
            Some(self.pool.clone().unwrap_or_else(WorkerPool::shared))
        } else {
            None
        };

        // Double-buffered inbox arenas: `cur` holds messages delivered to
        // actors this phase, `nxt` collects deliveries for phase k + 1;
        // the pair swaps at the barrier. One staging segment per worker
        // chunk.
        let mut cur: Inboxes<P> = Inboxes::new(n);
        let mut nxt: Inboxes<P> = Inboxes::new(n);
        let mut segments: Vec<Segment<P>> = (0..chunks).map(|_| Segment::new()).collect();
        // Routing scratch, recycled across phases: per-envelope delivery
        // fates (in deterministic merge order), per-recipient delivery
        // counts, and the scatter cursors.
        let mut fates: Vec<bool> = Vec::new();
        let mut counts: Vec<usize> = vec![0; n];
        let mut cursors: Vec<usize> = Vec::new();
        // Batched-verification scratch: unique chains seen this barrier.
        let mut seen_chains: HashSet<(usize, u32, u64)> = HashSet::new();
        // Barrier crypto work carried into the phase where the verified
        // messages are delivered (where per-delivery mode would pay it).
        let mut carry_crypto = CryptoStats::default();
        let mut executed = 0usize;

        if let Some(registry) = &self.registry {
            registry.cache().set_deferred(true);
        }

        // The routing policy: scheduled link drops are checked first, then
        // the injected transport (default: deliver everything). Both run
        // on this thread in actor-id order, keeping results byte-identical
        // for any worker-thread count.
        let mut scheduled = ScheduledDrops::new(self.link_drops.iter().copied());

        let keep_phase_log = self.record_trace || self.observer.is_some();
        for phase in 1..=phases {
            executed = phase;
            let mut phase_trace = PhaseTrace::default();
            let mut any_sent = false;

            let mut phase_crypto =
                self.step_phase(phase, chunk_size, &cur, &mut segments, pool.as_ref());
            phase_crypto = phase_crypto.add(&std::mem::take(&mut carry_crypto));

            // Route strictly in actor-id order on this thread — the single
            // point where ordering matters, so metrics, trace and delivery
            // order are independent of how the stepping was scheduled.
            // Pass A: decide fates, account, count per recipient.
            fates.clear();
            counts.fill(0);
            for (w, seg) in segments.iter().enumerate() {
                let base = w * chunk_size;
                for (j, staged_run, omitted) in seg.per_actor_runs() {
                    let i = base + j;
                    metrics.record_omitted(phase, omitted);
                    for env in staged_run {
                        let to = env.to.index();
                        if to >= n {
                            // Sends to nonexistent processors are dropped;
                            // a correct protocol never does this, an
                            // adversary may.
                            fates.push(false);
                            continue;
                        }
                        let fate = if scheduled.admit(phase, env.from, env.to) == Fate::Omit {
                            Fate::Omit
                        } else if let Some(transport) = self.transport.as_mut() {
                            transport.admit(phase, env.from, env.to)
                        } else {
                            Fate::Deliver
                        };
                        if fate == Fate::Omit {
                            // The transport suppresses this link this
                            // phase: the processor still "sent" (the
                            // system is not quiet), but nothing reaches
                            // the wire.
                            any_sent = true;
                            metrics.record_omitted(phase, 1);
                            fates.push(false);
                            continue;
                        }
                        any_sent = true;
                        metrics.record_send(
                            phase,
                            correct[i],
                            env.payload.signature_count(),
                            env.payload.weight_bytes(),
                            env.payload.payload_bytes(),
                            env.payload.kind(),
                        );
                        if keep_phase_log {
                            phase_trace.envelopes.push(env.clone());
                        }
                        counts[to] += 1;
                        fates.push(true);
                    }
                }
            }
            // Passes B + C: prefix-sum the offsets and scatter every
            // delivered envelope into the next phase's contiguous arena.
            nxt.fill_from(&mut segments, &fates, &counts, &mut cursors);

            metrics.record_phase_crypto(phase, phase_crypto);
            if let Some(observer) = &mut self.observer {
                observer(phase, &phase_trace.envelopes);
            }
            if self.record_trace {
                trace.phases.push(phase_trace);
            }
            if let Some(registry) = &self.registry {
                registry.cache().flush_pending();
            }

            // Batched verification: verify each unique chain delivered
            // this barrier once, stamp its shared buffer, and publish the
            // digests so next phase's lookups (for anything unstamped)
            // still benefit. Runs on this thread in delivery order —
            // deterministic at any thread count.
            if self.batch_verify {
                if let Some(registry) = &self.registry {
                    let before = CryptoStats::snapshot();
                    let verifier = registry.verifier();
                    seen_chains.clear();
                    for env in nxt.iter() {
                        let Some(chain) = env.payload.batch_chain() else {
                            continue;
                        };
                        if chain.is_empty() {
                            continue;
                        }
                        let key = (chain.storage_id(), chain.domain(), chain.value().0);
                        if seen_chains.insert(key) && chain.verify(&verifier).is_ok() {
                            chain.mark_verified(&verifier);
                        }
                    }
                    registry.cache().flush_pending();
                    carry_crypto = CryptoStats::snapshot().since(&before);
                }
            }

            // Phase barrier: consumed inboxes become next phase's
            // collection arena. Pooling keeps every buffer's capacity;
            // without it the arenas are reallocated from scratch (seed
            // behaviour).
            std::mem::swap(&mut cur, &mut nxt);
            if self.pooling {
                nxt.clear();
            } else {
                nxt = Inboxes::new(n);
                segments = (0..chunks).map(|_| Segment::new()).collect();
            }

            if stop_when_quiet && !any_sent {
                break;
            }
        }

        // Deliver the last phase's messages (sequentially: finalize is
        // cheap and order-stable accounting matters more than speed here).
        // Barrier work for these deliveries (if batching) is absorbed the
        // same way per-delivery finalize verification would be.
        let crypto_before = CryptoStats::snapshot();
        for (i, actor) in self.actors.iter_mut().enumerate() {
            actor.finalize(cur.of(i));
        }
        let finalize_crypto = CryptoStats::snapshot().since(&crypto_before);
        metrics.absorb_crypto(finalize_crypto.add(&carry_crypto));

        if let Some(registry) = &self.registry {
            registry.cache().set_deferred(false);
        }

        metrics.phases = executed;
        RunOutcome {
            decisions: self.actors.iter().map(|a| a.decision()).collect(),
            correct,
            metrics,
            trace,
        }
    }

    /// Steps every actor once for `phase`, staging each worker chunk's
    /// sends into its segment. Sequential (one segment) runs inline;
    /// otherwise chunks are dispatched onto the persistent pool, each
    /// chunk measuring its own thread-local [`CryptoStats`] delta. Returns
    /// the phase's total stepping crypto delta (schedule-independent: the
    /// per-chunk work is deterministic and the sum is order-free).
    fn step_phase(
        &mut self,
        phase: usize,
        chunk_size: usize,
        cur: &Inboxes<P>,
        segments: &mut [Segment<P>],
        pool: Option<&WorkerPool>,
    ) -> CryptoStats {
        if segments.len() <= 1 {
            let before = CryptoStats::snapshot();
            if let Some(segment) = segments.first_mut() {
                step_chunk(&mut self.actors, 0, phase, cur, segment);
            }
            return CryptoStats::snapshot().since(&before);
        }

        struct ChunkJob<'a, P: Payload> {
            base: usize,
            actors: &'a mut [Box<dyn Actor<P>>],
            segment: &'a mut Segment<P>,
            delta: CryptoStats,
        }

        let jobs: Vec<Mutex<ChunkJob<'_, P>>> = self
            .actors
            .chunks_mut(chunk_size)
            .zip(segments.iter_mut())
            .enumerate()
            .map(|(w, (actors, segment))| {
                Mutex::new(ChunkJob {
                    base: w * chunk_size,
                    actors,
                    segment,
                    delta: CryptoStats::default(),
                })
            })
            .collect();

        let pool = pool.expect("parallel stepping requires a pool");
        pool.run_chunks(jobs.len(), |w| {
            let mut guard = jobs[w].lock().expect("chunk job poisoned");
            let job = &mut *guard;
            let before = CryptoStats::snapshot();
            step_chunk(job.actors, job.base, phase, cur, job.segment);
            job.delta = CryptoStats::snapshot().since(&before);
        });

        jobs.into_iter()
            .map(|job| job.into_inner().expect("chunk job poisoned").delta)
            .fold(CryptoStats::default(), |acc, d| acc.add(&d))
    }
}

/// Steps one contiguous actor chunk (ids `base..base + actors.len()`),
/// staging every actor's sends into `segment` in (actor, send-seq) order.
fn step_chunk<P: Payload>(
    actors: &mut [Box<dyn Actor<P>>],
    base: usize,
    phase: usize,
    cur: &Inboxes<P>,
    segment: &mut Segment<P>,
) {
    segment.begin_phase();
    let mut buf = std::mem::take(&mut segment.staged);
    for (j, actor) in actors.iter_mut().enumerate() {
        let i = base + j;
        let mut out = Outbox::resume(ProcessId(i as u32), buf);
        actor.step(phase, cur.of(i), &mut out);
        let omitted = out.omitted_count();
        buf = out.into_staged();
        segment.per_actor.push((buf.len(), omitted));
    }
    segment.staged = buf;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Outbox;

    /// Floods `Value` to everyone each phase until `stop_after`.
    #[derive(Debug)]
    struct Flooder {
        n: usize,
        value: Value,
        stop_after: usize,
    }

    impl Actor<Value> for Flooder {
        fn step(&mut self, phase: usize, _inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
            if phase <= self.stop_after {
                out.broadcast((0..self.n as u32).map(ProcessId), self.value);
            }
        }
        fn decision(&self) -> Option<Value> {
            Some(self.value)
        }
    }

    /// Records everything it hears; decides on the first payload seen.
    #[derive(Debug, Default)]
    struct Listener {
        heard: Vec<(usize, Value)>,
        phase: usize,
        decided: Option<Value>,
    }

    impl Actor<Value> for Listener {
        fn step(&mut self, phase: usize, inbox: &[Envelope<Value>], _out: &mut Outbox<Value>) {
            self.phase = phase;
            for env in inbox {
                self.heard.push((phase, env.payload));
                self.decided.get_or_insert(env.payload);
            }
        }
        fn finalize(&mut self, inbox: &[Envelope<Value>]) {
            for env in inbox {
                self.heard.push((self.phase + 1, env.payload));
                self.decided.get_or_insert(env.payload);
            }
        }
        fn decision(&self) -> Option<Value> {
            self.decided
        }
    }

    #[test]
    fn messages_arrive_next_phase() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(5),
                stop_after: 1,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run(2);
        // Flooder sends in phase 1 -> listener hears it while stepping phase 2.
        assert_eq!(outcome.decisions[1], Some(Value(5)));
        assert_eq!(outcome.metrics.messages_by_correct, 1);
        assert_eq!(outcome.metrics.phases, 2);
    }

    #[test]
    fn final_phase_messages_delivered_via_finalize() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(9),
                stop_after: 1,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        // Only one phase executes; the send happens in phase 1 and must be
        // seen via finalize.
        let outcome = sim.run(1);
        assert_eq!(outcome.decisions[1], Some(Value(9)));
    }

    #[test]
    fn quiescence_stops_early() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 3,
                value: Value(1),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run_until_quiescent(100);
        // Phases 1,2 send; phase 3 sends nothing and stops the run.
        assert_eq!(outcome.metrics.phases, 3);
        assert_eq!(outcome.metrics.last_active_phase, 2);
        assert_eq!(outcome.metrics.messages_by_correct, 4);
    }

    #[test]
    fn trace_records_all_envelopes() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(3),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ])
        .with_trace();
        let outcome = sim.run(3);
        assert_eq!(outcome.trace.len(), 3);
        assert_eq!(outcome.trace.message_count(), 2);
        let ish = outcome.trace.individual_subhistory(ProcessId(1));
        assert_eq!(ish[0].len(), 1);
        assert_eq!(ish[1].len(), 1);
        assert_eq!(ish[2].len(), 0);
    }

    #[test]
    fn observer_sees_every_phase() {
        use std::sync::{Arc, Mutex};
        let log: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(1),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ])
        .with_observer(Box::new(move |phase, sent| {
            log2.lock().unwrap().push((phase, sent.len()));
        }));
        sim.run(3);
        assert_eq!(*log.lock().unwrap(), vec![(1, 1), (2, 1), (3, 0)]);
    }

    #[test]
    fn sends_to_nonexistent_ids_are_dropped() {
        #[derive(Debug)]
        struct Wild;
        impl Actor<Value> for Wild {
            fn step(&mut self, _p: usize, _i: &[Envelope<Value>], out: &mut Outbox<Value>) {
                out.send(ProcessId(99), Value::ONE);
            }
            fn decision(&self) -> Option<Value> {
                Some(Value::ZERO)
            }
        }
        let mut sim = Simulation::new(vec![Box::new(Wild) as Box<dyn Actor<Value>>]);
        let outcome = sim.run(1);
        assert_eq!(outcome.metrics.messages_total(), 0);
    }

    /// Dolev-Strong-style chain relay: actor 0 starts a signed chain in
    /// phase 1; every actor verifies incoming chains against the shared
    /// registry (exercising the verifier cache), endorses the longest one
    /// once, and rebroadcasts. Heavy enough to make scheduling effects
    /// visible if the engine had any.
    #[derive(Debug)]
    struct ChainRelay {
        signer: ba_crypto::keys::Signer,
        verifier: ba_crypto::keys::Verifier,
        n: usize,
        relayed: bool,
        accepted: Option<Value>,
    }

    impl Actor<ba_crypto::Chain> for ChainRelay {
        fn step(
            &mut self,
            phase: usize,
            inbox: &[Envelope<ba_crypto::Chain>],
            out: &mut Outbox<ba_crypto::Chain>,
        ) {
            if phase == 1 && out.sender() == ProcessId(0) && !self.relayed {
                self.relayed = true;
                let mut chain = ba_crypto::Chain::new(7, Value::ONE);
                chain.sign_and_append(&self.signer);
                self.accepted = Some(chain.value());
                out.broadcast((0..self.n as u32).map(ProcessId), chain);
                return;
            }
            for env in inbox {
                if env.payload.verify(&self.verifier).is_err() {
                    continue;
                }
                self.accepted.get_or_insert(env.payload.value());
                if !self.relayed {
                    self.relayed = true;
                    let mut chain = env.payload.clone();
                    chain.sign_and_append(&self.signer);
                    out.broadcast((0..self.n as u32).map(ProcessId), chain);
                }
            }
        }
        fn decision(&self) -> Option<Value> {
            self.accepted
        }
    }

    fn chain_relay_sim(
        n: usize,
        threads: usize,
        pooling: bool,
    ) -> (Simulation<ba_crypto::Chain>, ba_crypto::keys::KeyRegistry) {
        use ba_crypto::keys::{KeyRegistry, SchemeKind};
        // Fresh registry per run: the shared verifier cache starts cold, so
        // cache counters are comparable across runs.
        let registry = KeyRegistry::new(n, 99, SchemeKind::Fast);
        let actors: Vec<Box<dyn Actor<ba_crypto::Chain>>> = (0..n)
            .map(|i| {
                Box::new(ChainRelay {
                    signer: registry.signer(ProcessId(i as u32)),
                    verifier: registry.verifier(),
                    n,
                    relayed: false,
                    accepted: None,
                }) as Box<dyn Actor<ba_crypto::Chain>>
            })
            .collect();
        let sim = Simulation::new(actors)
            .with_trace()
            .with_threads(threads)
            .with_registry(&registry)
            .with_mailbox_pooling(pooling);
        (sim, registry)
    }

    fn chain_relay_run(n: usize, threads: usize, pooling: bool) -> RunOutcome<ba_crypto::Chain> {
        chain_relay_sim(n, threads, pooling).0.run(3)
    }

    #[test]
    fn parallel_stepping_matches_sequential_byte_for_byte() {
        let baseline = chain_relay_run(8, 1, true);
        for threads in [2, 4, 8] {
            let run = chain_relay_run(8, threads, true);
            assert_eq!(run.decisions, baseline.decisions, "threads={threads}");
            assert_eq!(run.correct, baseline.correct, "threads={threads}");
            assert_eq!(run.metrics, baseline.metrics, "threads={threads}");
            assert_eq!(run.trace.len(), baseline.trace.len(), "threads={threads}");
            for (k, (a, b)) in run
                .trace
                .phases
                .iter()
                .zip(baseline.trace.phases.iter())
                .enumerate()
            {
                assert_eq!(a.envelopes, b.envelopes, "threads={threads} phase={k}");
            }
        }
    }

    #[test]
    fn per_phase_crypto_totals_equal_across_thread_counts() {
        // Satellite: pin the CryptoStats accounting specifically — every
        // phase's hash and signature-check totals under multi-threaded
        // stepping equal the sequential run's exactly.
        let sequential = chain_relay_run(8, 1, true);
        let parallel = chain_relay_run(8, 4, true);
        assert_eq!(
            sequential.metrics.per_phase.len(),
            parallel.metrics.per_phase.len()
        );
        for (k, (seq, par)) in sequential
            .metrics
            .per_phase
            .iter()
            .zip(parallel.metrics.per_phase.iter())
            .enumerate()
        {
            assert_eq!(
                seq.hash_invocations,
                par.hash_invocations,
                "phase {} hash totals",
                k + 1
            );
            assert_eq!(
                seq.sig_verifications,
                par.sig_verifications,
                "phase {} signature-check totals",
                k + 1
            );
        }
        assert_eq!(sequential.metrics.crypto, parallel.metrics.crypto);
        assert!(sequential.metrics.crypto.hash_invocations > 0);
        assert!(sequential.metrics.crypto.sig_verifications > 0);
    }

    #[test]
    fn mailbox_pooling_does_not_change_results() {
        let pooled = chain_relay_run(6, 1, true);
        let unpooled = chain_relay_run(6, 1, false);
        assert_eq!(pooled.decisions, unpooled.decisions);
        assert_eq!(pooled.metrics, unpooled.metrics);
        let pooled_par = chain_relay_run(6, 4, true);
        let unpooled_par = chain_relay_run(6, 4, false);
        assert_eq!(pooled_par.decisions, unpooled_par.decisions);
        assert_eq!(pooled_par.metrics, unpooled_par.metrics);
        assert_eq!(pooled.metrics, unpooled_par.metrics);
    }

    #[test]
    fn batched_verification_preserves_outcomes_and_cuts_sig_checks() {
        // Same workload, per-delivery vs batched: decisions, message
        // counts and traces are byte-identical; signature-check work
        // drops (each unique chain verified once per barrier instead of
        // once per recipient — deferred-mode recipients can't see each
        // other's intra-phase verifications, so per-delivery pays per
        // recipient).
        let per_delivery = chain_relay_run(8, 1, true);
        let run_batched = |threads: usize| {
            let (sim, _reg) = chain_relay_sim(8, threads, true);
            let mut sim = sim.with_batched_verification(true);
            sim.run(3)
        };
        let batched = run_batched(1);
        assert_eq!(batched.decisions, per_delivery.decisions);
        assert_eq!(batched.correct, per_delivery.correct);
        assert_eq!(
            batched.metrics.messages_by_correct,
            per_delivery.metrics.messages_by_correct
        );
        assert_eq!(
            batched.metrics.signatures_by_correct,
            per_delivery.metrics.signatures_by_correct
        );
        for (a, b) in batched
            .trace
            .phases
            .iter()
            .zip(per_delivery.trace.phases.iter())
        {
            assert_eq!(a.envelopes, b.envelopes);
        }
        assert!(
            batched.metrics.crypto.sig_verifications
                < per_delivery.metrics.crypto.sig_verifications,
            "batched {} < per-delivery {}",
            batched.metrics.crypto.sig_verifications,
            per_delivery.metrics.crypto.sig_verifications
        );
        // And the batched counters are themselves thread-count
        // independent.
        for threads in [2, 4, 8] {
            let par = run_batched(threads);
            assert_eq!(par.metrics, batched.metrics, "threads={threads}");
            assert_eq!(par.decisions, batched.decisions, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_is_treated_as_sequential() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(5),
                stop_after: 1,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ])
        .with_threads(0);
        let outcome = sim.run(2);
        assert_eq!(outcome.decisions[1], Some(Value(5)));
    }

    #[test]
    fn empty_simulation_runs() {
        let mut sim: Simulation<Value> = Simulation::new(Vec::new()).with_threads(4);
        let outcome = sim.run(3);
        assert!(outcome.decisions.is_empty());
        assert_eq!(outcome.metrics.phases, 3);
    }

    #[test]
    fn parallel_run_preserves_quiescence_and_finalize_semantics() {
        let run = |threads: usize| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 3,
                    value: Value(1),
                    stop_after: 2,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_threads(threads);
            sim.run_until_quiescent(100)
        };
        let seq = run(1);
        let par = run(3);
        assert_eq!(par.metrics.phases, 3);
        assert_eq!(par.metrics, seq.metrics);
        assert_eq!(par.decisions, seq.decisions);
    }

    #[test]
    fn injected_pool_is_used_and_results_identical() {
        let pool = WorkerPool::new(2);
        let (sim, _reg) = chain_relay_sim(8, 4, true);
        let outcome = sim.with_pool(&pool).run(3);
        let baseline = chain_relay_run(8, 1, true);
        assert_eq!(outcome.decisions, baseline.decisions);
        assert_eq!(outcome.metrics, baseline.metrics);
        assert!(pool.live_workers() <= 2);
    }

    #[test]
    fn link_drops_suppress_deliver_and_count() {
        let run = |drops: Vec<LinkDrop>| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 3,
                    value: Value(5),
                    stop_after: 2,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_trace()
            .with_link_drops(drops);
            sim.run(2)
        };
        let clean = run(vec![]);
        assert_eq!(clean.metrics.omitted_messages, 0);
        assert_eq!(clean.decisions[1], Some(Value(5)));
        assert_eq!(clean.decisions[2], Some(Value(5)));

        // Drop only the phase-1 send to p1: p1 still hears phase 2's flood,
        // but the dropped envelope is neither traced nor counted as sent.
        let partial = run(vec![LinkDrop {
            phase: 1,
            from: ProcessId(0),
            to: ProcessId(1),
        }]);
        assert_eq!(partial.metrics.omitted_messages, 1);
        assert_eq!(
            partial.metrics.messages_by_correct,
            clean.metrics.messages_by_correct - 1
        );
        assert_eq!(
            partial.trace.message_count(),
            clean.trace.message_count() - 1
        );
        assert_eq!(partial.decisions[1], Some(Value(5)));

        // Drop both phases to p1: p1 never hears anything and stays
        // undecided while p2 is untouched.
        let censored = run(vec![
            LinkDrop {
                phase: 1,
                from: ProcessId(0),
                to: ProcessId(1),
            },
            LinkDrop {
                phase: 2,
                from: ProcessId(0),
                to: ProcessId(1),
            },
        ]);
        assert_eq!(censored.metrics.omitted_messages, 2);
        assert_eq!(censored.decisions[1], None);
        assert_eq!(censored.decisions[2], Some(Value(5)));
    }

    #[test]
    fn link_drops_are_thread_count_independent() {
        let run = |threads: usize| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 4,
                    value: Value(3),
                    stop_after: 2,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_trace()
            .with_threads(threads)
            .with_link_drops([
                LinkDrop {
                    phase: 1,
                    from: ProcessId(0),
                    to: ProcessId(2),
                },
                LinkDrop {
                    phase: 2,
                    from: ProcessId(0),
                    to: ProcessId(3),
                },
            ]);
            sim.run(2)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.metrics.omitted_messages, 2);
        assert_eq!(par.metrics, seq.metrics);
        assert_eq!(par.decisions, seq.decisions);
        for (a, b) in par.trace.phases.iter().zip(seq.trace.phases.iter()) {
            assert_eq!(a.envelopes, b.envelopes);
        }
    }

    #[test]
    fn injected_transport_composes_with_link_drops() {
        use crate::transport::{Fate, Transport};
        // A transport that censors everything addressed to p2.
        #[derive(Debug)]
        struct CensorP2;
        impl Transport for CensorP2 {
            fn admit(&mut self, _phase: usize, _from: ProcessId, to: ProcessId) -> Fate {
                if to == ProcessId(2) {
                    Fate::Omit
                } else {
                    Fate::Deliver
                }
            }
        }
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 3,
                value: Value(5),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
            Box::new(Listener::default()),
        ])
        .with_trace()
        .with_transport(CensorP2)
        .with_link_drops([LinkDrop {
            phase: 1,
            from: ProcessId(0),
            to: ProcessId(1),
        }]);
        let outcome = sim.run(2);
        // Phase 1: sends to p1 (scheduled drop) and p2 (transport omit);
        // phase 2: p1 delivered, p2 omitted again — 3 omissions, 1 send.
        assert_eq!(outcome.metrics.omitted_messages, 3);
        assert_eq!(outcome.metrics.messages_by_correct, 1);
        assert_eq!(outcome.decisions[1], Some(Value(5)));
        assert_eq!(outcome.decisions[2], None, "p2 never hears anything");
        assert_eq!(outcome.trace.message_count(), 1);
    }

    #[test]
    fn flaky_transport_is_seed_deterministic_across_thread_counts() {
        use crate::transport::Flaky;
        let run = |threads: usize, seed: u64| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 4,
                    value: Value(9),
                    stop_after: 3,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_threads(threads)
            .with_transport(Flaky::new(seed, 400));
            sim.run(3)
        };
        let seq = run(1, 7);
        let par = run(4, 7);
        assert_eq!(seq.metrics, par.metrics);
        assert_eq!(seq.decisions, par.decisions);
        assert!(seq.metrics.omitted_messages > 0, "40% loss drops something");
        assert!(
            seq.metrics.messages_by_correct > 0,
            "and delivers something"
        );
        assert_eq!(
            seq.metrics.messages_by_correct + seq.metrics.omitted_messages,
            9,
            "every staged envelope is either sent or omitted"
        );
    }

    /// Satellite: `run_until_quiescent` under scheduled link drops — the
    /// run still quiesces (drops must not make the engine think traffic is
    /// pending), and the `sent + omitted` totals are identical for any
    /// worker-thread count.
    #[test]
    fn quiescence_under_link_drops_is_reached_and_thread_independent() {
        let run = |threads: usize| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 4,
                    value: Value(2),
                    stop_after: 3,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_threads(threads)
            .with_link_drops([
                LinkDrop {
                    phase: 1,
                    from: ProcessId(0),
                    to: ProcessId(1),
                },
                LinkDrop {
                    phase: 2,
                    from: ProcessId(0),
                    to: ProcessId(3),
                },
                LinkDrop {
                    phase: 3,
                    from: ProcessId(0),
                    to: ProcessId(2),
                },
            ]);
            sim.run_until_quiescent(100)
        };
        let baseline = run(1);
        // The flooder stops after phase 3; phase 4 is quiet and ends the
        // run well before the 100-phase cap.
        assert_eq!(baseline.metrics.phases, 4);
        assert_eq!(baseline.metrics.omitted_messages, 3);
        assert_eq!(
            baseline.metrics.messages_by_correct + baseline.metrics.omitted_messages,
            9,
            "3 phases × 3 peers, split between delivered and dropped"
        );
        for threads in [2, 4, 8] {
            let run = run(threads);
            assert_eq!(run.metrics.phases, baseline.metrics.phases, "{threads}");
            assert_eq!(
                run.metrics.messages_by_correct + run.metrics.omitted_messages,
                baseline.metrics.messages_by_correct + baseline.metrics.omitted_messages,
                "sent + omitted at threads={threads}"
            );
            assert_eq!(run.metrics, baseline.metrics, "threads={threads}");
            assert_eq!(run.decisions, baseline.decisions, "threads={threads}");
        }
    }

    #[test]
    fn correct_flags_flow_to_outcome() {
        #[derive(Debug)]
        struct Faulty;
        impl Actor<Value> for Faulty {
            fn step(&mut self, _p: usize, _i: &[Envelope<Value>], out: &mut Outbox<Value>) {
                out.send(ProcessId(1), Value(7));
            }
            fn decision(&self) -> Option<Value> {
                None
            }
            fn is_correct(&self) -> bool {
                false
            }
        }
        let mut sim = Simulation::new(vec![
            Box::new(Faulty) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run(2);
        assert_eq!(outcome.correct, vec![false, true]);
        assert_eq!(outcome.metrics.messages_by_faulty, 2);
        assert_eq!(outcome.metrics.messages_by_correct, 0);
        let correct: Vec<_> = outcome.correct_decisions().collect();
        assert_eq!(correct, vec![(ProcessId(1), Some(Value(7)))]);
    }
}
