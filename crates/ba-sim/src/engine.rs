//! The lock-step phase engine.
//!
//! # Data plane
//!
//! The engine owns a double-buffered mailbox pool: one `Vec<Envelope>` per
//! actor for the current phase's deliveries, one collecting the next
//! phase's, swapped at the phase barrier. With pooling enabled (the
//! default) the buffers retain their capacity across phases, so a
//! steady-state phase allocates nothing; per-actor outbox staging buffers
//! are recycled the same way through [`Outbox::with_buffer`].
//!
//! # Intra-phase parallelism
//!
//! In the lock-step model actors are independent *within* a phase — every
//! actor only reads its own inbox (frozen at the barrier) and writes its
//! own outbox. [`Simulation::with_threads`] exploits this by stepping
//! contiguous actor chunks on scoped worker threads. Everything
//! order-sensitive stays on the calling thread: staged envelopes are routed
//! (and metrics/trace recorded) strictly in actor-id order after all
//! workers join, so `Metrics`, the trace and every decision are
//! byte-identical for any thread count. Per-phase crypto counters stay
//! identical too: each worker returns its thread-local [`CryptoStats`]
//! delta (the sum over workers is schedule-independent), and a run wired to
//! a [`KeyRegistry`] via [`Simulation::with_registry`] puts the shared
//! verifier cache into deferred phase-snapshot mode, so intra-phase cache
//! lookups see only the state frozen at the previous barrier regardless of
//! scheduling.

use crate::actor::{Actor, Envelope, Outbox, Payload};
use crate::metrics::Metrics;
use crate::schedule::LinkDrop;
use crate::trace::{PhaseTrace, Trace};
use crate::transport::{Fate, ScheduledDrops, Transport};
use ba_crypto::keys::KeyRegistry;
use ba_crypto::stats::CryptoStats;
use ba_crypto::{ProcessId, Value};
use std::collections::BTreeSet;

/// Result of driving a [`Simulation`] to completion.
#[derive(Debug)]
pub struct RunOutcome<P> {
    /// Each processor's decision, indexed by processor id.
    pub decisions: Vec<Option<Value>>,
    /// Which processors were modeled as correct.
    pub correct: Vec<bool>,
    /// Traffic accounting.
    pub metrics: Metrics,
    /// Full message trace when tracing was enabled, otherwise empty.
    pub trace: Trace<P>,
}

impl<P> RunOutcome<P> {
    /// Decisions of correct processors only, with their ids.
    pub fn correct_decisions(&self) -> impl Iterator<Item = (ProcessId, Option<Value>)> + '_ {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| self.correct[*i])
            .map(|(i, d)| (ProcessId(i as u32), *d))
    }
}

/// A per-phase observer: called with the phase number and that phase's
/// sent envelopes (see [`Simulation::with_observer`]).
pub type PhaseObserver<P> = Box<dyn FnMut(usize, &[Envelope<P>])>;

/// A synchronous simulation of `n` processors.
///
/// Phases execute in lock step: at phase `k` every actor is stepped (in id
/// order) with the messages addressed to it during phase `k − 1`; the
/// messages it stages are delivered at phase `k + 1`. After the last phase,
/// [`Actor::finalize`] delivers the final inbox and decisions are read.
///
/// See the [crate docs](crate) for a complete example.
pub struct Simulation<P: Payload> {
    actors: Vec<Box<dyn Actor<P>>>,
    record_trace: bool,
    observer: Option<PhaseObserver<P>>,
    threads: usize,
    pooling: bool,
    registry: Option<KeyRegistry>,
    link_drops: BTreeSet<LinkDrop>,
    transport: Option<Box<dyn Transport>>,
}

impl<P: Payload> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.actors.len())
            .field("record_trace", &self.record_trace)
            .field("threads", &self.threads)
            .field("pooling", &self.pooling)
            .finish()
    }
}

impl<P: Payload> Simulation<P> {
    /// Creates a simulation over `actors`; actor `i` is processor `i`.
    pub fn new(actors: Vec<Box<dyn Actor<P>>>) -> Self {
        Simulation {
            actors,
            record_trace: false,
            observer: None,
            threads: 1,
            pooling: true,
            registry: None,
            link_drops: BTreeSet::new(),
            transport: None,
        }
    }

    /// Enables full message tracing (see [`Trace`]).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Steps actors across `threads` scoped worker threads within each
    /// phase (see the [module docs](self) for the determinism contract).
    /// `0` and `1` both mean sequential, the default.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Declares the [`KeyRegistry`] whose verifier cache this run's actors
    /// share. For the duration of the run the cache operates in deferred
    /// phase-snapshot mode (flushed at every phase barrier), which makes
    /// the per-phase cache hit/miss counters independent of how actors are
    /// scheduled within a phase. Required for byte-identical `Metrics`
    /// across thread counts when actors verify chains; runs that never
    /// touch a shared cache don't need it.
    pub fn with_registry(mut self, registry: &KeyRegistry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Declares scheduled link drops: an envelope sent from `drop.from` to
    /// `drop.to` during phase `drop.phase` is suppressed at the routing
    /// barrier — it is never delivered, traced or counted as sent, only
    /// accounted under [`Metrics::omitted_messages`]. Dropping happens on
    /// the calling thread in actor-id order, so results stay byte-identical
    /// for any thread count. Fault schedules use this to model a faulty
    /// sender omitting specific links in specific phases without touching
    /// the actor itself.
    ///
    /// [`Metrics::omitted_messages`]: crate::metrics::Metrics::omitted_messages
    pub fn with_link_drops(mut self, drops: impl IntoIterator<Item = LinkDrop>) -> Self {
        self.link_drops.extend(drops);
        self
    }

    /// Injects a [`Transport`] consulted for every staged envelope that
    /// survives the scheduled link drops. An [`Fate::Omit`] verdict is
    /// accounted exactly like a scheduled drop: the send happened (the
    /// system is not quiescent) but nothing is delivered, traced or
    /// counted as sent — only [`Metrics::omitted_messages`] grows.
    ///
    /// The transport runs on the calling thread in actor-id order (see the
    /// [`transport`](crate::transport) module docs), so stateful policies
    /// such as [`Flaky`](crate::transport::Flaky) stay byte-identical for
    /// any worker-thread count. Defaults to
    /// [`Reliable`](crate::transport::Reliable).
    ///
    /// [`Metrics::omitted_messages`]: crate::metrics::Metrics::omitted_messages
    pub fn with_transport(mut self, transport: impl Transport + 'static) -> Self {
        self.transport = Some(Box::new(transport));
        self
    }

    /// Enables or disables the mailbox pool (default: enabled). With
    /// pooling off the engine allocates fresh inbox and outbox buffers
    /// every phase — the seed behaviour, kept reachable so the engine
    /// benchmark can measure what pooling buys.
    pub fn with_mailbox_pooling(mut self, pooling: bool) -> Self {
        self.pooling = pooling;
        self
    }

    /// Registers an observer called after every phase with that phase's
    /// sent envelopes (before delivery) — live invariant checks, progress
    /// displays, per-phase assertions in tests.
    pub fn with_observer(mut self, observer: PhaseObserver<P>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// Runs exactly `phases` phases and returns the outcome.
    pub fn run(&mut self, phases: usize) -> RunOutcome<P> {
        self.run_inner(phases, false)
    }

    /// Runs at most `max_phases` phases, stopping early once a phase
    /// produces no messages at all (the system is quiescent). Useful for
    /// measuring how many phases a protocol actually uses.
    pub fn run_until_quiescent(&mut self, max_phases: usize) -> RunOutcome<P> {
        self.run_inner(max_phases, true)
    }

    fn run_inner(&mut self, phases: usize, stop_when_quiet: bool) -> RunOutcome<P> {
        let n = self.actors.len();
        let correct: Vec<bool> = self.actors.iter().map(|a| a.is_correct()).collect();
        let mut metrics = Metrics::default();
        let mut trace = Trace::default();

        // Double-buffered mailbox pool: `inboxes[i]` holds messages
        // delivered to actor i this phase, `next_inboxes[i]` collects its
        // deliveries for phase k + 1; the pair swaps at the barrier.
        // `outboxes[i]` is actor i's recycled staging buffer.
        let mut inboxes: Vec<Vec<Envelope<P>>> = vec![Vec::new(); n];
        let mut next_inboxes: Vec<Vec<Envelope<P>>> = vec![Vec::new(); n];
        let mut outboxes: Vec<Vec<Envelope<P>>> = vec![Vec::new(); n];
        // Per-actor suppressed-send counts reported by adversary wrappers
        // through `Outbox::note_omitted`, folded into the metrics in
        // actor-id order after every phase.
        let mut omitted: Vec<u64> = vec![0; n];
        let mut executed = 0usize;

        if let Some(registry) = &self.registry {
            registry.cache().set_deferred(true);
        }

        // The routing policy: scheduled link drops are checked first, then
        // the injected transport (default: deliver everything). Both run
        // on this thread in actor-id order, keeping results byte-identical
        // for any worker-thread count.
        let mut scheduled = ScheduledDrops::new(self.link_drops.iter().copied());

        let keep_phase_log = self.record_trace || self.observer.is_some();
        for phase in 1..=phases {
            executed = phase;
            let mut phase_trace = PhaseTrace::default();
            let mut any_sent = false;

            // The calling thread's counter delta covers sequential stepping
            // (and is ~zero under parallel stepping, where each worker
            // reports its own thread-local delta instead).
            let crypto_before = CryptoStats::snapshot();
            let worker_deltas = self.step_phase(phase, &inboxes, &mut outboxes, &mut omitted);
            let mut phase_crypto = CryptoStats::snapshot().since(&crypto_before);
            for delta in &worker_deltas {
                phase_crypto = phase_crypto.add(delta);
            }

            // Route strictly in actor-id order on this thread — the single
            // point where ordering matters, so metrics, trace and delivery
            // order are independent of how the stepping was scheduled.
            for (i, staged) in outboxes.iter_mut().enumerate() {
                metrics.record_omitted(phase, omitted[i]);
                for env in staged.drain(..) {
                    let to = env.to.index();
                    if to >= n {
                        // Sends to nonexistent processors are dropped; a
                        // correct protocol never does this, an adversary may.
                        continue;
                    }
                    let fate = if scheduled.admit(phase, env.from, env.to) == Fate::Omit {
                        Fate::Omit
                    } else if let Some(transport) = self.transport.as_mut() {
                        transport.admit(phase, env.from, env.to)
                    } else {
                        Fate::Deliver
                    };
                    if fate == Fate::Omit {
                        // The transport suppresses this link this phase:
                        // the processor still "sent" (the system is not
                        // quiet), but nothing reaches the wire.
                        any_sent = true;
                        metrics.record_omitted(phase, 1);
                        continue;
                    }
                    any_sent = true;
                    metrics.record_send(
                        phase,
                        correct[i],
                        env.payload.signature_count(),
                        env.payload.weight_bytes(),
                        env.payload.kind(),
                    );
                    if keep_phase_log {
                        phase_trace.envelopes.push(env.clone());
                    }
                    next_inboxes[to].push(env);
                }
            }

            metrics.record_phase_crypto(phase, phase_crypto);
            if let Some(observer) = &mut self.observer {
                observer(phase, &phase_trace.envelopes);
            }
            if self.record_trace {
                trace.phases.push(phase_trace);
            }
            if let Some(registry) = &self.registry {
                registry.cache().flush_pending();
            }

            // Phase barrier: consumed inboxes become next phase's
            // collection buffers. Pooling keeps their capacity; without it
            // they are reallocated from scratch (seed behaviour).
            std::mem::swap(&mut inboxes, &mut next_inboxes);
            if self.pooling {
                for buf in &mut next_inboxes {
                    buf.clear();
                }
            } else {
                next_inboxes = vec![Vec::new(); n];
                outboxes = vec![Vec::new(); n];
            }

            if stop_when_quiet && !any_sent {
                break;
            }
        }

        // Deliver the last phase's messages (sequentially: finalize is
        // cheap and order-stable accounting matters more than speed here).
        let crypto_before = CryptoStats::snapshot();
        for (i, actor) in self.actors.iter_mut().enumerate() {
            actor.finalize(&inboxes[i]);
        }
        metrics.absorb_crypto(CryptoStats::snapshot().since(&crypto_before));

        if let Some(registry) = &self.registry {
            registry.cache().set_deferred(false);
        }

        metrics.phases = executed;
        RunOutcome {
            decisions: self.actors.iter().map(|a| a.decision()).collect(),
            correct,
            metrics,
            trace,
        }
    }

    /// Steps every actor once for `phase`, staging each actor's sends into
    /// `outboxes[i]`. Sequential when one worker suffices; otherwise actors
    /// are split into contiguous chunks stepped on scoped threads, and each
    /// worker's thread-local [`CryptoStats`] delta is returned for the
    /// caller to fold into the per-phase metrics.
    fn step_phase(
        &mut self,
        phase: usize,
        inboxes: &[Vec<Envelope<P>>],
        outboxes: &mut [Vec<Envelope<P>>],
        omitted: &mut [u64],
    ) -> Vec<CryptoStats> {
        let n = self.actors.len();
        let pooling = self.pooling;
        let workers = self.threads.min(n);
        if workers <= 1 {
            for (i, actor) in self.actors.iter_mut().enumerate() {
                let id = ProcessId(i as u32);
                let mut out = if pooling {
                    Outbox::with_buffer(id, std::mem::take(&mut outboxes[i]))
                } else {
                    Outbox::new(id)
                };
                actor.step(phase, &inboxes[i], &mut out);
                omitted[i] = out.omitted_count();
                outboxes[i] = out.into_staged();
            }
            return Vec::new();
        }

        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, ((actor_chunk, omitted_chunk), (inbox_chunk, outbox_chunk))) in self
                .actors
                .chunks_mut(chunk)
                .zip(omitted.chunks_mut(chunk))
                .zip(inboxes.chunks(chunk).zip(outboxes.chunks_mut(chunk)))
                .enumerate()
            {
                let base = w * chunk;
                handles.push(scope.spawn(move || {
                    let before = CryptoStats::snapshot();
                    for (j, actor) in actor_chunk.iter_mut().enumerate() {
                        let id = ProcessId((base + j) as u32);
                        let mut out = if pooling {
                            Outbox::with_buffer(id, std::mem::take(&mut outbox_chunk[j]))
                        } else {
                            Outbox::new(id)
                        };
                        actor.step(phase, &inbox_chunk[j], &mut out);
                        omitted_chunk[j] = out.omitted_count();
                        outbox_chunk[j] = out.into_staged();
                    }
                    CryptoStats::snapshot().since(&before)
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(delta) => delta,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Outbox;

    /// Floods `Value` to everyone each phase until `stop_after`.
    #[derive(Debug)]
    struct Flooder {
        n: usize,
        value: Value,
        stop_after: usize,
    }

    impl Actor<Value> for Flooder {
        fn step(&mut self, phase: usize, _inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
            if phase <= self.stop_after {
                out.broadcast((0..self.n as u32).map(ProcessId), self.value);
            }
        }
        fn decision(&self) -> Option<Value> {
            Some(self.value)
        }
    }

    /// Records everything it hears; decides on the first payload seen.
    #[derive(Debug, Default)]
    struct Listener {
        heard: Vec<(usize, Value)>,
        phase: usize,
        decided: Option<Value>,
    }

    impl Actor<Value> for Listener {
        fn step(&mut self, phase: usize, inbox: &[Envelope<Value>], _out: &mut Outbox<Value>) {
            self.phase = phase;
            for env in inbox {
                self.heard.push((phase, env.payload));
                self.decided.get_or_insert(env.payload);
            }
        }
        fn finalize(&mut self, inbox: &[Envelope<Value>]) {
            for env in inbox {
                self.heard.push((self.phase + 1, env.payload));
                self.decided.get_or_insert(env.payload);
            }
        }
        fn decision(&self) -> Option<Value> {
            self.decided
        }
    }

    #[test]
    fn messages_arrive_next_phase() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(5),
                stop_after: 1,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run(2);
        // Flooder sends in phase 1 -> listener hears it while stepping phase 2.
        assert_eq!(outcome.decisions[1], Some(Value(5)));
        assert_eq!(outcome.metrics.messages_by_correct, 1);
        assert_eq!(outcome.metrics.phases, 2);
    }

    #[test]
    fn final_phase_messages_delivered_via_finalize() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(9),
                stop_after: 1,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        // Only one phase executes; the send happens in phase 1 and must be
        // seen via finalize.
        let outcome = sim.run(1);
        assert_eq!(outcome.decisions[1], Some(Value(9)));
    }

    #[test]
    fn quiescence_stops_early() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 3,
                value: Value(1),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run_until_quiescent(100);
        // Phases 1,2 send; phase 3 sends nothing and stops the run.
        assert_eq!(outcome.metrics.phases, 3);
        assert_eq!(outcome.metrics.last_active_phase, 2);
        assert_eq!(outcome.metrics.messages_by_correct, 4);
    }

    #[test]
    fn trace_records_all_envelopes() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(3),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ])
        .with_trace();
        let outcome = sim.run(3);
        assert_eq!(outcome.trace.len(), 3);
        assert_eq!(outcome.trace.message_count(), 2);
        let ish = outcome.trace.individual_subhistory(ProcessId(1));
        assert_eq!(ish[0].len(), 1);
        assert_eq!(ish[1].len(), 1);
        assert_eq!(ish[2].len(), 0);
    }

    #[test]
    fn observer_sees_every_phase() {
        use std::sync::{Arc, Mutex};
        let log: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(1),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ])
        .with_observer(Box::new(move |phase, sent| {
            log2.lock().unwrap().push((phase, sent.len()));
        }));
        sim.run(3);
        assert_eq!(*log.lock().unwrap(), vec![(1, 1), (2, 1), (3, 0)]);
    }

    #[test]
    fn sends_to_nonexistent_ids_are_dropped() {
        #[derive(Debug)]
        struct Wild;
        impl Actor<Value> for Wild {
            fn step(&mut self, _p: usize, _i: &[Envelope<Value>], out: &mut Outbox<Value>) {
                out.send(ProcessId(99), Value::ONE);
            }
            fn decision(&self) -> Option<Value> {
                Some(Value::ZERO)
            }
        }
        let mut sim = Simulation::new(vec![Box::new(Wild) as Box<dyn Actor<Value>>]);
        let outcome = sim.run(1);
        assert_eq!(outcome.metrics.messages_total(), 0);
    }

    /// Dolev-Strong-style chain relay: actor 0 starts a signed chain in
    /// phase 1; every actor verifies incoming chains against the shared
    /// registry (exercising the verifier cache), endorses the longest one
    /// once, and rebroadcasts. Heavy enough to make scheduling effects
    /// visible if the engine had any.
    #[derive(Debug)]
    struct ChainRelay {
        signer: ba_crypto::keys::Signer,
        verifier: ba_crypto::keys::Verifier,
        n: usize,
        relayed: bool,
        accepted: Option<Value>,
    }

    impl Actor<ba_crypto::Chain> for ChainRelay {
        fn step(
            &mut self,
            phase: usize,
            inbox: &[Envelope<ba_crypto::Chain>],
            out: &mut Outbox<ba_crypto::Chain>,
        ) {
            if phase == 1 && out.sender() == ProcessId(0) && !self.relayed {
                self.relayed = true;
                let mut chain = ba_crypto::Chain::new(7, Value::ONE);
                chain.sign_and_append(&self.signer);
                self.accepted = Some(chain.value());
                out.broadcast((0..self.n as u32).map(ProcessId), chain);
                return;
            }
            for env in inbox {
                if env.payload.verify(&self.verifier).is_err() {
                    continue;
                }
                self.accepted.get_or_insert(env.payload.value());
                if !self.relayed {
                    self.relayed = true;
                    let mut chain = env.payload.clone();
                    chain.sign_and_append(&self.signer);
                    out.broadcast((0..self.n as u32).map(ProcessId), chain);
                }
            }
        }
        fn decision(&self) -> Option<Value> {
            self.accepted
        }
    }

    fn chain_relay_run(n: usize, threads: usize, pooling: bool) -> RunOutcome<ba_crypto::Chain> {
        use ba_crypto::keys::{KeyRegistry, SchemeKind};
        // Fresh registry per run: the shared verifier cache starts cold, so
        // cache counters are comparable across runs.
        let registry = KeyRegistry::new(n, 99, SchemeKind::Fast);
        let actors: Vec<Box<dyn Actor<ba_crypto::Chain>>> = (0..n)
            .map(|i| {
                Box::new(ChainRelay {
                    signer: registry.signer(ProcessId(i as u32)),
                    verifier: registry.verifier(),
                    n,
                    relayed: false,
                    accepted: None,
                }) as Box<dyn Actor<ba_crypto::Chain>>
            })
            .collect();
        let mut sim = Simulation::new(actors)
            .with_trace()
            .with_threads(threads)
            .with_registry(&registry)
            .with_mailbox_pooling(pooling);
        sim.run(3)
    }

    #[test]
    fn parallel_stepping_matches_sequential_byte_for_byte() {
        let baseline = chain_relay_run(8, 1, true);
        for threads in [2, 4, 8] {
            let run = chain_relay_run(8, threads, true);
            assert_eq!(run.decisions, baseline.decisions, "threads={threads}");
            assert_eq!(run.correct, baseline.correct, "threads={threads}");
            assert_eq!(run.metrics, baseline.metrics, "threads={threads}");
            assert_eq!(run.trace.len(), baseline.trace.len(), "threads={threads}");
            for (k, (a, b)) in run
                .trace
                .phases
                .iter()
                .zip(baseline.trace.phases.iter())
                .enumerate()
            {
                assert_eq!(a.envelopes, b.envelopes, "threads={threads} phase={k}");
            }
        }
    }

    #[test]
    fn per_phase_crypto_totals_equal_across_thread_counts() {
        // Satellite: pin the CryptoStats accounting specifically — every
        // phase's hash and signature-check totals under multi-threaded
        // stepping equal the sequential run's exactly.
        let sequential = chain_relay_run(8, 1, true);
        let parallel = chain_relay_run(8, 4, true);
        assert_eq!(
            sequential.metrics.per_phase.len(),
            parallel.metrics.per_phase.len()
        );
        for (k, (seq, par)) in sequential
            .metrics
            .per_phase
            .iter()
            .zip(parallel.metrics.per_phase.iter())
            .enumerate()
        {
            assert_eq!(
                seq.hash_invocations,
                par.hash_invocations,
                "phase {} hash totals",
                k + 1
            );
            assert_eq!(
                seq.sig_verifications,
                par.sig_verifications,
                "phase {} signature-check totals",
                k + 1
            );
        }
        assert_eq!(sequential.metrics.crypto, parallel.metrics.crypto);
        assert!(sequential.metrics.crypto.hash_invocations > 0);
        assert!(sequential.metrics.crypto.sig_verifications > 0);
    }

    #[test]
    fn mailbox_pooling_does_not_change_results() {
        let pooled = chain_relay_run(6, 1, true);
        let unpooled = chain_relay_run(6, 1, false);
        assert_eq!(pooled.decisions, unpooled.decisions);
        assert_eq!(pooled.metrics, unpooled.metrics);
        let pooled_par = chain_relay_run(6, 4, true);
        let unpooled_par = chain_relay_run(6, 4, false);
        assert_eq!(pooled_par.decisions, unpooled_par.decisions);
        assert_eq!(pooled_par.metrics, unpooled_par.metrics);
        assert_eq!(pooled.metrics, unpooled_par.metrics);
    }

    #[test]
    fn zero_threads_is_treated_as_sequential() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(5),
                stop_after: 1,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ])
        .with_threads(0);
        let outcome = sim.run(2);
        assert_eq!(outcome.decisions[1], Some(Value(5)));
    }

    #[test]
    fn parallel_run_preserves_quiescence_and_finalize_semantics() {
        let run = |threads: usize| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 3,
                    value: Value(1),
                    stop_after: 2,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_threads(threads);
            sim.run_until_quiescent(100)
        };
        let seq = run(1);
        let par = run(3);
        assert_eq!(par.metrics.phases, 3);
        assert_eq!(par.metrics, seq.metrics);
        assert_eq!(par.decisions, seq.decisions);
    }

    #[test]
    fn link_drops_suppress_deliver_and_count() {
        let run = |drops: Vec<LinkDrop>| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 3,
                    value: Value(5),
                    stop_after: 2,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_trace()
            .with_link_drops(drops);
            sim.run(2)
        };
        let clean = run(vec![]);
        assert_eq!(clean.metrics.omitted_messages, 0);
        assert_eq!(clean.decisions[1], Some(Value(5)));
        assert_eq!(clean.decisions[2], Some(Value(5)));

        // Drop only the phase-1 send to p1: p1 still hears phase 2's flood,
        // but the dropped envelope is neither traced nor counted as sent.
        let partial = run(vec![LinkDrop {
            phase: 1,
            from: ProcessId(0),
            to: ProcessId(1),
        }]);
        assert_eq!(partial.metrics.omitted_messages, 1);
        assert_eq!(
            partial.metrics.messages_by_correct,
            clean.metrics.messages_by_correct - 1
        );
        assert_eq!(
            partial.trace.message_count(),
            clean.trace.message_count() - 1
        );
        assert_eq!(partial.decisions[1], Some(Value(5)));

        // Drop both phases to p1: p1 never hears anything and stays
        // undecided while p2 is untouched.
        let censored = run(vec![
            LinkDrop {
                phase: 1,
                from: ProcessId(0),
                to: ProcessId(1),
            },
            LinkDrop {
                phase: 2,
                from: ProcessId(0),
                to: ProcessId(1),
            },
        ]);
        assert_eq!(censored.metrics.omitted_messages, 2);
        assert_eq!(censored.decisions[1], None);
        assert_eq!(censored.decisions[2], Some(Value(5)));
    }

    #[test]
    fn link_drops_are_thread_count_independent() {
        let run = |threads: usize| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 4,
                    value: Value(3),
                    stop_after: 2,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_trace()
            .with_threads(threads)
            .with_link_drops([
                LinkDrop {
                    phase: 1,
                    from: ProcessId(0),
                    to: ProcessId(2),
                },
                LinkDrop {
                    phase: 2,
                    from: ProcessId(0),
                    to: ProcessId(3),
                },
            ]);
            sim.run(2)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.metrics.omitted_messages, 2);
        assert_eq!(par.metrics, seq.metrics);
        assert_eq!(par.decisions, seq.decisions);
        for (a, b) in par.trace.phases.iter().zip(seq.trace.phases.iter()) {
            assert_eq!(a.envelopes, b.envelopes);
        }
    }

    #[test]
    fn injected_transport_composes_with_link_drops() {
        use crate::transport::{Fate, Transport};
        // A transport that censors everything addressed to p2.
        #[derive(Debug)]
        struct CensorP2;
        impl Transport for CensorP2 {
            fn admit(&mut self, _phase: usize, _from: ProcessId, to: ProcessId) -> Fate {
                if to == ProcessId(2) {
                    Fate::Omit
                } else {
                    Fate::Deliver
                }
            }
        }
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 3,
                value: Value(5),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
            Box::new(Listener::default()),
        ])
        .with_trace()
        .with_transport(CensorP2)
        .with_link_drops([LinkDrop {
            phase: 1,
            from: ProcessId(0),
            to: ProcessId(1),
        }]);
        let outcome = sim.run(2);
        // Phase 1: sends to p1 (scheduled drop) and p2 (transport omit);
        // phase 2: p1 delivered, p2 omitted again — 3 omissions, 1 send.
        assert_eq!(outcome.metrics.omitted_messages, 3);
        assert_eq!(outcome.metrics.messages_by_correct, 1);
        assert_eq!(outcome.decisions[1], Some(Value(5)));
        assert_eq!(outcome.decisions[2], None, "p2 never hears anything");
        assert_eq!(outcome.trace.message_count(), 1);
    }

    #[test]
    fn flaky_transport_is_seed_deterministic_across_thread_counts() {
        use crate::transport::Flaky;
        let run = |threads: usize, seed: u64| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 4,
                    value: Value(9),
                    stop_after: 3,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_threads(threads)
            .with_transport(Flaky::new(seed, 400));
            sim.run(3)
        };
        let seq = run(1, 7);
        let par = run(4, 7);
        assert_eq!(seq.metrics, par.metrics);
        assert_eq!(seq.decisions, par.decisions);
        assert!(seq.metrics.omitted_messages > 0, "40% loss drops something");
        assert!(
            seq.metrics.messages_by_correct > 0,
            "and delivers something"
        );
        assert_eq!(
            seq.metrics.messages_by_correct + seq.metrics.omitted_messages,
            9,
            "every staged envelope is either sent or omitted"
        );
    }

    /// Satellite: `run_until_quiescent` under scheduled link drops — the
    /// run still quiesces (drops must not make the engine think traffic is
    /// pending), and the `sent + omitted` totals are identical for any
    /// worker-thread count.
    #[test]
    fn quiescence_under_link_drops_is_reached_and_thread_independent() {
        let run = |threads: usize| {
            let mut sim = Simulation::new(vec![
                Box::new(Flooder {
                    n: 4,
                    value: Value(2),
                    stop_after: 3,
                }) as Box<dyn Actor<Value>>,
                Box::new(Listener::default()),
                Box::new(Listener::default()),
                Box::new(Listener::default()),
            ])
            .with_threads(threads)
            .with_link_drops([
                LinkDrop {
                    phase: 1,
                    from: ProcessId(0),
                    to: ProcessId(1),
                },
                LinkDrop {
                    phase: 2,
                    from: ProcessId(0),
                    to: ProcessId(3),
                },
                LinkDrop {
                    phase: 3,
                    from: ProcessId(0),
                    to: ProcessId(2),
                },
            ]);
            sim.run_until_quiescent(100)
        };
        let baseline = run(1);
        // The flooder stops after phase 3; phase 4 is quiet and ends the
        // run well before the 100-phase cap.
        assert_eq!(baseline.metrics.phases, 4);
        assert_eq!(baseline.metrics.omitted_messages, 3);
        assert_eq!(
            baseline.metrics.messages_by_correct + baseline.metrics.omitted_messages,
            9,
            "3 phases × 3 peers, split between delivered and dropped"
        );
        for threads in [2, 4, 8] {
            let run = run(threads);
            assert_eq!(run.metrics.phases, baseline.metrics.phases, "{threads}");
            assert_eq!(
                run.metrics.messages_by_correct + run.metrics.omitted_messages,
                baseline.metrics.messages_by_correct + baseline.metrics.omitted_messages,
                "sent + omitted at threads={threads}"
            );
            assert_eq!(run.metrics, baseline.metrics, "threads={threads}");
            assert_eq!(run.decisions, baseline.decisions, "threads={threads}");
        }
    }

    #[test]
    fn correct_flags_flow_to_outcome() {
        #[derive(Debug)]
        struct Faulty;
        impl Actor<Value> for Faulty {
            fn step(&mut self, _p: usize, _i: &[Envelope<Value>], out: &mut Outbox<Value>) {
                out.send(ProcessId(1), Value(7));
            }
            fn decision(&self) -> Option<Value> {
                None
            }
            fn is_correct(&self) -> bool {
                false
            }
        }
        let mut sim = Simulation::new(vec![
            Box::new(Faulty) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run(2);
        assert_eq!(outcome.correct, vec![false, true]);
        assert_eq!(outcome.metrics.messages_by_faulty, 2);
        assert_eq!(outcome.metrics.messages_by_correct, 0);
        let correct: Vec<_> = outcome.correct_decisions().collect();
        assert_eq!(correct, vec![(ProcessId(1), Some(Value(7)))]);
    }
}
