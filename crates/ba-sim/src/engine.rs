//! The lock-step phase engine.

use crate::actor::{Actor, Envelope, Outbox, Payload};
use crate::metrics::Metrics;
use crate::trace::{PhaseTrace, Trace};
use ba_crypto::stats::CryptoStats;
use ba_crypto::{ProcessId, Value};

/// Result of driving a [`Simulation`] to completion.
#[derive(Debug)]
pub struct RunOutcome<P> {
    /// Each processor's decision, indexed by processor id.
    pub decisions: Vec<Option<Value>>,
    /// Which processors were modeled as correct.
    pub correct: Vec<bool>,
    /// Traffic accounting.
    pub metrics: Metrics,
    /// Full message trace when tracing was enabled, otherwise empty.
    pub trace: Trace<P>,
}

impl<P> RunOutcome<P> {
    /// Decisions of correct processors only, with their ids.
    pub fn correct_decisions(&self) -> impl Iterator<Item = (ProcessId, Option<Value>)> + '_ {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| self.correct[*i])
            .map(|(i, d)| (ProcessId(i as u32), *d))
    }
}

/// A per-phase observer: called with the phase number and that phase's
/// sent envelopes (see [`Simulation::with_observer`]).
pub type PhaseObserver<P> = Box<dyn FnMut(usize, &[Envelope<P>])>;

/// A synchronous simulation of `n` processors.
///
/// Phases execute in lock step: at phase `k` every actor is stepped (in id
/// order) with the messages addressed to it during phase `k − 1`; the
/// messages it stages are delivered at phase `k + 1`. After the last phase,
/// [`Actor::finalize`] delivers the final inbox and decisions are read.
///
/// See the [crate docs](crate) for a complete example.
pub struct Simulation<P: Payload> {
    actors: Vec<Box<dyn Actor<P>>>,
    record_trace: bool,
    observer: Option<PhaseObserver<P>>,
}

impl<P: Payload> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.actors.len())
            .field("record_trace", &self.record_trace)
            .finish()
    }
}

impl<P: Payload> Simulation<P> {
    /// Creates a simulation over `actors`; actor `i` is processor `i`.
    pub fn new(actors: Vec<Box<dyn Actor<P>>>) -> Self {
        Simulation {
            actors,
            record_trace: false,
            observer: None,
        }
    }

    /// Enables full message tracing (see [`Trace`]).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Registers an observer called after every phase with that phase's
    /// sent envelopes (before delivery) — live invariant checks, progress
    /// displays, per-phase assertions in tests.
    pub fn with_observer(mut self, observer: PhaseObserver<P>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// Runs exactly `phases` phases and returns the outcome.
    pub fn run(&mut self, phases: usize) -> RunOutcome<P> {
        self.run_inner(phases, false)
    }

    /// Runs at most `max_phases` phases, stopping early once a phase
    /// produces no messages at all (the system is quiescent). Useful for
    /// measuring how many phases a protocol actually uses.
    pub fn run_until_quiescent(&mut self, max_phases: usize) -> RunOutcome<P> {
        self.run_inner(max_phases, true)
    }

    fn run_inner(&mut self, phases: usize, stop_when_quiet: bool) -> RunOutcome<P> {
        let n = self.actors.len();
        let correct: Vec<bool> = self.actors.iter().map(|a| a.is_correct()).collect();
        let mut metrics = Metrics::default();
        let mut trace = Trace::default();

        // inboxes[i] holds messages delivered to actor i this phase.
        let mut inboxes: Vec<Vec<Envelope<P>>> = vec![Vec::new(); n];
        let mut executed = 0usize;

        let keep_phase_log = self.record_trace || self.observer.is_some();
        for phase in 1..=phases {
            executed = phase;
            let mut next_inboxes: Vec<Vec<Envelope<P>>> = vec![Vec::new(); n];
            let mut phase_trace = PhaseTrace::default();
            let mut any_sent = false;
            // Everything below runs on this thread, so the thread-local
            // crypto counters give an exact per-phase work delta.
            let crypto_before = CryptoStats::snapshot();

            for (i, actor) in self.actors.iter_mut().enumerate() {
                let id = ProcessId(i as u32);
                let mut out = Outbox::new(id);
                actor.step(phase, &inboxes[i], &mut out);
                for env in out.into_staged() {
                    let to = env.to.index();
                    if to >= n {
                        // Sends to nonexistent processors are dropped; a
                        // correct protocol never does this, an adversary may.
                        continue;
                    }
                    any_sent = true;
                    metrics.record_send(
                        phase,
                        correct[i],
                        env.payload.signature_count(),
                        env.payload.weight_bytes(),
                        env.payload.kind(),
                    );
                    if keep_phase_log {
                        phase_trace.envelopes.push(env.clone());
                    }
                    next_inboxes[to].push(env);
                }
            }

            metrics.record_phase_crypto(phase, CryptoStats::snapshot().since(&crypto_before));
            if let Some(observer) = &mut self.observer {
                observer(phase, &phase_trace.envelopes);
            }
            if self.record_trace {
                trace.phases.push(phase_trace);
            }
            inboxes = next_inboxes;

            if stop_when_quiet && !any_sent {
                break;
            }
        }

        // Deliver the last phase's messages.
        let crypto_before = CryptoStats::snapshot();
        for (i, actor) in self.actors.iter_mut().enumerate() {
            actor.finalize(&inboxes[i]);
        }
        metrics.absorb_crypto(CryptoStats::snapshot().since(&crypto_before));

        metrics.phases = executed;
        RunOutcome {
            decisions: self.actors.iter().map(|a| a.decision()).collect(),
            correct,
            metrics,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Outbox;

    /// Floods `Value` to everyone each phase until `stop_after`.
    #[derive(Debug)]
    struct Flooder {
        n: usize,
        value: Value,
        stop_after: usize,
    }

    impl Actor<Value> for Flooder {
        fn step(&mut self, phase: usize, _inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
            if phase <= self.stop_after {
                out.broadcast((0..self.n as u32).map(ProcessId), self.value);
            }
        }
        fn decision(&self) -> Option<Value> {
            Some(self.value)
        }
    }

    /// Records everything it hears; decides on the first payload seen.
    #[derive(Debug, Default)]
    struct Listener {
        heard: Vec<(usize, Value)>,
        phase: usize,
        decided: Option<Value>,
    }

    impl Actor<Value> for Listener {
        fn step(&mut self, phase: usize, inbox: &[Envelope<Value>], _out: &mut Outbox<Value>) {
            self.phase = phase;
            for env in inbox {
                self.heard.push((phase, env.payload));
                self.decided.get_or_insert(env.payload);
            }
        }
        fn finalize(&mut self, inbox: &[Envelope<Value>]) {
            for env in inbox {
                self.heard.push((self.phase + 1, env.payload));
                self.decided.get_or_insert(env.payload);
            }
        }
        fn decision(&self) -> Option<Value> {
            self.decided
        }
    }

    #[test]
    fn messages_arrive_next_phase() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(5),
                stop_after: 1,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run(2);
        // Flooder sends in phase 1 -> listener hears it while stepping phase 2.
        assert_eq!(outcome.decisions[1], Some(Value(5)));
        assert_eq!(outcome.metrics.messages_by_correct, 1);
        assert_eq!(outcome.metrics.phases, 2);
    }

    #[test]
    fn final_phase_messages_delivered_via_finalize() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(9),
                stop_after: 1,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        // Only one phase executes; the send happens in phase 1 and must be
        // seen via finalize.
        let outcome = sim.run(1);
        assert_eq!(outcome.decisions[1], Some(Value(9)));
    }

    #[test]
    fn quiescence_stops_early() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 3,
                value: Value(1),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run_until_quiescent(100);
        // Phases 1,2 send; phase 3 sends nothing and stops the run.
        assert_eq!(outcome.metrics.phases, 3);
        assert_eq!(outcome.metrics.last_active_phase, 2);
        assert_eq!(outcome.metrics.messages_by_correct, 4);
    }

    #[test]
    fn trace_records_all_envelopes() {
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(3),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ])
        .with_trace();
        let outcome = sim.run(3);
        assert_eq!(outcome.trace.len(), 3);
        assert_eq!(outcome.trace.message_count(), 2);
        let ish = outcome.trace.individual_subhistory(ProcessId(1));
        assert_eq!(ish[0].len(), 1);
        assert_eq!(ish[1].len(), 1);
        assert_eq!(ish[2].len(), 0);
    }

    #[test]
    fn observer_sees_every_phase() {
        use std::sync::{Arc, Mutex};
        let log: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        let mut sim = Simulation::new(vec![
            Box::new(Flooder {
                n: 2,
                value: Value(1),
                stop_after: 2,
            }) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ])
        .with_observer(Box::new(move |phase, sent| {
            log2.lock().unwrap().push((phase, sent.len()));
        }));
        sim.run(3);
        assert_eq!(*log.lock().unwrap(), vec![(1, 1), (2, 1), (3, 0)]);
    }

    #[test]
    fn sends_to_nonexistent_ids_are_dropped() {
        #[derive(Debug)]
        struct Wild;
        impl Actor<Value> for Wild {
            fn step(&mut self, _p: usize, _i: &[Envelope<Value>], out: &mut Outbox<Value>) {
                out.send(ProcessId(99), Value::ONE);
            }
            fn decision(&self) -> Option<Value> {
                Some(Value::ZERO)
            }
        }
        let mut sim = Simulation::new(vec![Box::new(Wild) as Box<dyn Actor<Value>>]);
        let outcome = sim.run(1);
        assert_eq!(outcome.metrics.messages_total(), 0);
    }

    #[test]
    fn correct_flags_flow_to_outcome() {
        #[derive(Debug)]
        struct Faulty;
        impl Actor<Value> for Faulty {
            fn step(&mut self, _p: usize, _i: &[Envelope<Value>], out: &mut Outbox<Value>) {
                out.send(ProcessId(1), Value(7));
            }
            fn decision(&self) -> Option<Value> {
                None
            }
            fn is_correct(&self) -> bool {
                false
            }
        }
        let mut sim = Simulation::new(vec![
            Box::new(Faulty) as Box<dyn Actor<Value>>,
            Box::new(Listener::default()),
        ]);
        let outcome = sim.run(2);
        assert_eq!(outcome.correct, vec![false, true]);
        assert_eq!(outcome.metrics.messages_by_faulty, 2);
        assert_eq!(outcome.metrics.messages_by_correct, 0);
        let correct: Vec<_> = outcome.correct_decisions().collect();
        assert_eq!(correct, vec![(ProcessId(1), Some(Value(7)))]);
    }
}
