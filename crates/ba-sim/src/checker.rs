//! Post-run verification of the Byzantine Agreement conditions.
//!
//! The paper (Section 1) defines Byzantine Agreement as achieved when
//!
//! 1. all correctly operating processors agree on the same value, and
//! 2. if the transmitter is correct, they agree on *its* value.
//!
//! [`check_byzantine_agreement`] verifies both conditions on a
//! [`RunOutcome`], treating an undecided correct processor as a violation.

use crate::actor::Payload;
use crate::engine::RunOutcome;
use ba_crypto::{ProcessId, Value};
use core::fmt;

/// Why a run failed the Byzantine Agreement conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum AgreementViolation {
    /// A correct processor reached no decision.
    Undecided {
        /// The undecided processor.
        process: ProcessId,
    },
    /// Two correct processors decided differently (condition (i)).
    Disagreement {
        /// First processor and its decision.
        a: ProcessId,
        /// First decision.
        a_value: Value,
        /// Second processor.
        b: ProcessId,
        /// Second decision.
        b_value: Value,
    },
    /// The transmitter was correct but some correct processor decided on a
    /// different value (condition (ii)).
    ValidityBroken {
        /// The deviating processor.
        process: ProcessId,
        /// What it decided.
        decided: Value,
        /// What the correct transmitter sent.
        sent: Value,
    },
}

impl fmt::Display for AgreementViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgreementViolation::Undecided { process } => {
                write!(f, "correct processor {process} reached no decision")
            }
            AgreementViolation::Disagreement {
                a,
                a_value,
                b,
                b_value,
            } => write!(
                f,
                "correct processors disagree: {a} decided {a_value}, {b} decided {b_value}"
            ),
            AgreementViolation::ValidityBroken {
                process,
                decided,
                sent,
            } => write!(
                f,
                "{process} decided {decided} but the correct transmitter sent {sent}"
            ),
        }
    }
}

impl std::error::Error for AgreementViolation {}

/// A successful verification: the common value and context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunVerdict {
    /// The value all correct processors agreed on (`None` only when the run
    /// had no correct processors at all).
    pub agreed: Option<Value>,
    /// Number of correct processors.
    pub correct_count: usize,
    /// Whether the transmitter was correct.
    pub transmitter_correct: bool,
}

/// Checks both Byzantine Agreement conditions on `outcome`.
///
/// `transmitter` is the distinguished sender and `sent` the value it was
/// given at phase 0; condition (ii) is only enforced when the transmitter
/// is modeled as correct in the outcome.
///
/// # Errors
/// The first [`AgreementViolation`] found, scanning processors in id order.
///
/// ```
/// # use ba_sim::engine::Simulation;
/// # use ba_sim::actor::{Actor, Envelope, Outbox};
/// # use ba_crypto::{ProcessId, Value};
/// use ba_sim::check_byzantine_agreement;
/// # #[derive(Debug)] struct Fixed(Value);
/// # impl Actor<Value> for Fixed {
/// #     fn step(&mut self, _: usize, _: &[Envelope<Value>], _: &mut Outbox<Value>) {}
/// #     fn decision(&self) -> Option<Value> { Some(self.0) }
/// # }
/// let mut sim = Simulation::new(vec![
///     Box::new(Fixed(Value::ONE)) as Box<dyn Actor<Value>>,
///     Box::new(Fixed(Value::ONE)),
/// ]);
/// let outcome = sim.run(1);
/// let verdict = check_byzantine_agreement(&outcome, ProcessId(0), Value::ONE)?;
/// assert_eq!(verdict.agreed, Some(Value::ONE));
/// # Ok::<(), ba_sim::AgreementViolation>(())
/// ```
pub fn check_byzantine_agreement<P: Payload>(
    outcome: &RunOutcome<P>,
    transmitter: ProcessId,
    sent: Value,
) -> Result<RunVerdict, AgreementViolation> {
    let transmitter_correct = outcome
        .correct
        .get(transmitter.index())
        .copied()
        .unwrap_or(false);

    let mut first: Option<(ProcessId, Value)> = None;
    let mut correct_count = 0usize;

    for (p, decision) in outcome.correct_decisions() {
        correct_count += 1;
        let v = decision.ok_or(AgreementViolation::Undecided { process: p })?;
        match first {
            None => first = Some((p, v)),
            Some((q, w)) if w != v => {
                return Err(AgreementViolation::Disagreement {
                    a: q,
                    a_value: w,
                    b: p,
                    b_value: v,
                });
            }
            _ => {}
        }
        if transmitter_correct && v != sent {
            return Err(AgreementViolation::ValidityBroken {
                process: p,
                decided: v,
                sent,
            });
        }
    }

    Ok(RunVerdict {
        agreed: first.map(|(_, v)| v),
        correct_count,
        transmitter_correct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::trace::Trace;

    fn outcome(decisions: Vec<Option<Value>>, correct: Vec<bool>) -> RunOutcome<Value> {
        RunOutcome {
            decisions,
            correct,
            metrics: Metrics::default(),
            trace: Trace::default(),
        }
    }

    #[test]
    fn unanimous_correct_passes() {
        let o = outcome(
            vec![Some(Value::ONE), Some(Value::ONE), Some(Value(9))],
            vec![true, true, false],
        );
        let verdict = check_byzantine_agreement(&o, ProcessId(0), Value::ONE).unwrap();
        assert_eq!(verdict.agreed, Some(Value::ONE));
        assert_eq!(verdict.correct_count, 2);
        assert!(verdict.transmitter_correct);
    }

    #[test]
    fn disagreement_detected() {
        let o = outcome(vec![Some(Value::ONE), Some(Value::ZERO)], vec![true, true]);
        let err = check_byzantine_agreement(&o, ProcessId(0), Value::ONE).unwrap_err();
        assert!(matches!(err, AgreementViolation::Disagreement { .. }));
        assert!(err.to_string().contains("disagree"));
    }

    #[test]
    fn undecided_correct_processor_detected() {
        let o = outcome(vec![Some(Value::ONE), None], vec![true, true]);
        let err = check_byzantine_agreement(&o, ProcessId(0), Value::ONE).unwrap_err();
        assert_eq!(
            err,
            AgreementViolation::Undecided {
                process: ProcessId(1)
            }
        );
    }

    #[test]
    fn faulty_processors_are_ignored() {
        let o = outcome(vec![None, Some(Value::ZERO)], vec![false, true]);
        // Transmitter p0 is faulty: validity is not enforced, p1 alone agrees.
        let verdict = check_byzantine_agreement(&o, ProcessId(0), Value::ONE).unwrap();
        assert_eq!(verdict.agreed, Some(Value::ZERO));
        assert!(!verdict.transmitter_correct);
    }

    #[test]
    fn validity_enforced_for_correct_transmitter() {
        let o = outcome(vec![Some(Value::ZERO), Some(Value::ZERO)], vec![true, true]);
        let err = check_byzantine_agreement(&o, ProcessId(0), Value::ONE).unwrap_err();
        assert!(matches!(err, AgreementViolation::ValidityBroken { .. }));
    }

    #[test]
    fn empty_run_vacuously_agrees() {
        let o = outcome(vec![None], vec![false]);
        let verdict = check_byzantine_agreement(&o, ProcessId(0), Value::ONE).unwrap();
        assert_eq!(verdict.agreed, None);
        assert_eq!(verdict.correct_count, 0);
    }

    #[test]
    fn violation_is_error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<AgreementViolation>();
    }
}
