//! Message, signature and phase accounting.
//!
//! The paper measures "the total number of messages the participating
//! processors have to send in the worst case" and, for authenticated
//! algorithms, "the number of signatures appended to messages", in both
//! cases restricted to traffic sent by *correct* processors (a faulty
//! processor could inflate any count arbitrarily). [`Metrics`] therefore
//! tracks correct-sender counts as the primary figures and total counts for
//! diagnostics.

use core::fmt;
use std::collections::BTreeMap;

/// Per-phase traffic snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseMetrics {
    /// Messages sent by correct processors during this phase.
    pub messages_by_correct: u64,
    /// Signatures carried by those messages.
    pub signatures_by_correct: u64,
    /// Messages sent by faulty processors during this phase.
    pub messages_by_faulty: u64,
}

/// Aggregated run statistics.
///
/// ```
/// use ba_sim::Metrics;
/// let m = Metrics::default();
/// assert_eq!(m.messages_total(), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Metrics {
    /// Number of phases executed.
    pub phases: usize,
    /// The last phase in which any correct processor sent a message
    /// (`0` when no correct processor ever sent).
    pub last_active_phase: usize,
    /// Messages sent by correct processors — the paper's message count.
    pub messages_by_correct: u64,
    /// Signatures appended to messages sent by correct processors — the
    /// paper's signature count.
    pub signatures_by_correct: u64,
    /// Approximate bytes sent by correct processors.
    pub bytes_by_correct: u64,
    /// Messages sent by faulty processors (diagnostic only).
    pub messages_by_faulty: u64,
    /// Per-phase breakdown.
    pub per_phase: Vec<PhaseMetrics>,
    /// Correct-sender message counts by payload kind (see
    /// [`Payload::kind`](crate::actor::Payload::kind)).
    pub by_kind_correct: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Messages sent by anyone.
    pub fn messages_total(&self) -> u64 {
        self.messages_by_correct + self.messages_by_faulty
    }

    /// Records one sent message.
    pub(crate) fn record_send(
        &mut self,
        phase: usize,
        correct_sender: bool,
        signatures: usize,
        bytes: usize,
        kind: &'static str,
    ) {
        if self.per_phase.len() < phase {
            self.per_phase.resize(phase, PhaseMetrics::default());
        }
        let slot = &mut self.per_phase[phase - 1];
        if correct_sender {
            slot.messages_by_correct += 1;
            slot.signatures_by_correct += signatures as u64;
            self.messages_by_correct += 1;
            self.signatures_by_correct += signatures as u64;
            self.bytes_by_correct += bytes as u64;
            *self.by_kind_correct.entry(kind).or_insert(0) += 1;
            self.last_active_phase = self.last_active_phase.max(phase);
        } else {
            slot.messages_by_faulty += 1;
            self.messages_by_faulty += 1;
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phases={} msgs(correct)={} sigs(correct)={} msgs(faulty)={}",
            self.phases,
            self.messages_by_correct,
            self.signatures_by_correct,
            self.messages_by_faulty
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_aggregates_by_correctness() {
        let mut m = Metrics::default();
        m.record_send(1, true, 2, 10, "a");
        m.record_send(1, false, 5, 99, "a");
        m.record_send(3, true, 0, 4, "b");
        assert_eq!(m.messages_by_correct, 2);
        assert_eq!(m.signatures_by_correct, 2);
        assert_eq!(m.messages_by_faulty, 1);
        assert_eq!(m.bytes_by_correct, 14);
        assert_eq!(m.messages_total(), 3);
        assert_eq!(m.last_active_phase, 3);
        assert_eq!(m.per_phase.len(), 3);
        assert_eq!(m.per_phase[0].messages_by_correct, 1);
        assert_eq!(m.per_phase[0].messages_by_faulty, 1);
        assert_eq!(m.per_phase[1], PhaseMetrics::default());
        assert_eq!(m.per_phase[2].messages_by_correct, 1);
        assert_eq!(m.by_kind_correct.get("a"), Some(&1));
        assert_eq!(m.by_kind_correct.get("b"), Some(&1));
    }

    #[test]
    fn faulty_sends_do_not_advance_last_active_phase() {
        let mut m = Metrics::default();
        m.record_send(5, false, 0, 0, "a");
        assert_eq!(m.last_active_phase, 0);
    }

    #[test]
    fn display_summarizes() {
        let mut m = Metrics {
            phases: 4,
            ..Default::default()
        };
        m.record_send(2, true, 1, 0, "a");
        let s = m.to_string();
        assert!(s.contains("phases=4"));
        assert!(s.contains("msgs(correct)=1"));
    }
}
