//! Message, signature and phase accounting.
//!
//! The paper measures "the total number of messages the participating
//! processors have to send in the worst case" and, for authenticated
//! algorithms, "the number of signatures appended to messages", in both
//! cases restricted to traffic sent by *correct* processors (a faulty
//! processor could inflate any count arbitrarily). [`Metrics`] therefore
//! tracks correct-sender counts as the primary figures and total counts for
//! diagnostics.
//!
//! Beyond the paper's message/signature counts, the engine folds in the
//! cryptographic work counters from [`ba_crypto::stats`] — hash
//! invocations, signature verifications and verifier-cache hit/miss totals
//! — per phase and per run, so the effect of the incremental chain
//! verification is visible in experiment output and not just wall-clock.

use ba_crypto::stats::CryptoStats;
use core::fmt;
use std::collections::BTreeMap;

/// Per-phase traffic snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseMetrics {
    /// Messages sent by correct processors during this phase.
    pub messages_by_correct: u64,
    /// Signatures carried by those messages.
    pub signatures_by_correct: u64,
    /// Wire bytes sent by correct processors during this phase.
    pub bytes_by_correct: u64,
    /// The application-payload portion of those bytes (see
    /// [`Metrics::payload_bytes_by_correct`]).
    pub payload_bytes_by_correct: u64,
    /// Messages sent by faulty processors during this phase.
    pub messages_by_faulty: u64,
    /// SHA-256 invocations performed while executing this phase.
    pub hash_invocations: u64,
    /// Individual signature verifications performed this phase.
    pub sig_verifications: u64,
    /// Messages suppressed during this phase — by an adversary wrapper
    /// filtering an honest actor's outbox, or by a scheduled link drop in
    /// the engine.
    pub omitted: u64,
}

/// Aggregated run statistics.
///
/// ```
/// use ba_sim::Metrics;
/// let m = Metrics::default();
/// assert_eq!(m.messages_total(), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Metrics {
    /// Number of phases executed.
    pub phases: usize,
    /// The last phase in which any correct processor sent a message
    /// (`0` when no correct processor ever sent).
    pub last_active_phase: usize,
    /// Messages sent by correct processors — the paper's message count.
    pub messages_by_correct: u64,
    /// Signatures appended to messages sent by correct processors — the
    /// paper's signature count.
    pub signatures_by_correct: u64,
    /// Approximate bytes sent by correct processors — the *bits exchanged*
    /// figure, with the same correct-sender restriction as the message
    /// count. Like the crypto counters this is schedule-independent: it
    /// depends only on what each correct actor sends, never on how a phase
    /// was threaded or which runtime carried the traffic.
    pub bytes_by_correct: u64,
    /// The application-payload portion of [`bytes_by_correct`]
    /// (Metrics::bytes_by_correct): bytes of user data being agreed on, as
    /// reported by [`Payload::payload_bytes`]
    /// (crate::actor::Payload::payload_bytes). Zero for the single-value
    /// targets; the extension layer's coded chunks report their data
    /// slices here, so `bytes_by_correct - payload_bytes_by_correct` is
    /// the protocol-control overhead.
    pub payload_bytes_by_correct: u64,
    /// Messages sent by faulty processors (diagnostic only).
    pub messages_by_faulty: u64,
    /// Messages suppressed by adversaries or scheduled link drops: traffic
    /// an honest behaviour produced that never reached the network.
    /// Distinguishes a *quiet* run from a *censored* one in checker
    /// reports.
    pub omitted_messages: u64,
    /// Per-phase breakdown.
    pub per_phase: Vec<PhaseMetrics>,
    /// Correct-sender message counts by payload kind (see
    /// [`Payload::kind`](crate::actor::Payload::kind)).
    pub by_kind_correct: BTreeMap<&'static str, u64>,
    /// Cryptographic work performed over the whole run (all actors): hash
    /// invocations, signature verifications, verifier-cache hits/misses.
    pub crypto: CryptoStats,
}

impl Metrics {
    /// Messages sent by anyone.
    pub fn messages_total(&self) -> u64 {
        self.messages_by_correct + self.messages_by_faulty
    }

    /// Total wire bytes sent by correct processors — the headline
    /// bits-exchanged figure (bench rows report it as `bytes_sent`).
    pub fn wire_bytes(&self) -> u64 {
        self.bytes_by_correct
    }

    /// The control (non-payload) portion of the correct senders' wire
    /// bytes: framing, signatures, digests, repair requests.
    pub fn control_bytes_by_correct(&self) -> u64 {
        self.bytes_by_correct - self.payload_bytes_by_correct
    }

    /// Records one sent message.
    ///
    /// Public (not `pub(crate)`) because the `ba-net` runtime drives the
    /// same accounting from outside this crate: byte-identical `Metrics`
    /// between the lock-step engine and the message-passing runtime is the
    /// equivalence harness's contract, so both must share the recording
    /// primitives rather than reimplement them.
    pub fn record_send(
        &mut self,
        phase: usize,
        correct_sender: bool,
        signatures: usize,
        bytes: usize,
        payload_bytes: usize,
        kind: &'static str,
    ) {
        debug_assert!(
            payload_bytes <= bytes,
            "payload portion ({payload_bytes}) exceeds wire bytes ({bytes})"
        );
        if self.per_phase.len() < phase {
            self.per_phase.resize(phase, PhaseMetrics::default());
        }
        let slot = &mut self.per_phase[phase - 1];
        if correct_sender {
            slot.messages_by_correct += 1;
            slot.signatures_by_correct += signatures as u64;
            slot.bytes_by_correct += bytes as u64;
            slot.payload_bytes_by_correct += payload_bytes as u64;
            self.messages_by_correct += 1;
            self.signatures_by_correct += signatures as u64;
            self.bytes_by_correct += bytes as u64;
            self.payload_bytes_by_correct += payload_bytes as u64;
            *self.by_kind_correct.entry(kind).or_insert(0) += 1;
            self.last_active_phase = self.last_active_phase.max(phase);
        } else {
            slot.messages_by_faulty += 1;
            self.messages_by_faulty += 1;
        }
    }

    /// Records `count` suppressed messages during `phase` (1-based) — see
    /// [`omitted_messages`](Metrics::omitted_messages).
    pub fn record_omitted(&mut self, phase: usize, count: u64) {
        if count == 0 {
            return;
        }
        if self.per_phase.len() < phase {
            self.per_phase.resize(phase, PhaseMetrics::default());
        }
        self.per_phase[phase - 1].omitted += count;
        self.omitted_messages += count;
    }

    /// Attributes a phase's cryptographic work delta to `phase` (1-based)
    /// and to the run totals.
    pub fn record_phase_crypto(&mut self, phase: usize, delta: CryptoStats) {
        if self.per_phase.len() < phase {
            self.per_phase.resize(phase, PhaseMetrics::default());
        }
        let slot = &mut self.per_phase[phase - 1];
        slot.hash_invocations += delta.hash_invocations;
        slot.sig_verifications += delta.sig_verifications;
        self.crypto = self.crypto.add(&delta);
    }

    /// Adds cryptographic work to the run totals without a phase
    /// attribution (used for finalize-time delivery).
    pub fn absorb_crypto(&mut self, delta: CryptoStats) {
        self.crypto = self.crypto.add(&delta);
    }

    /// Folds `other` into `self`: counters add, phase counts take the
    /// maximum, per-phase rows add element-wise. Used by parameter sweeps
    /// to aggregate independent cells into one run-level summary.
    pub fn merge(&mut self, other: &Metrics) {
        self.phases = self.phases.max(other.phases);
        self.last_active_phase = self.last_active_phase.max(other.last_active_phase);
        self.messages_by_correct += other.messages_by_correct;
        self.signatures_by_correct += other.signatures_by_correct;
        self.bytes_by_correct += other.bytes_by_correct;
        self.payload_bytes_by_correct += other.payload_bytes_by_correct;
        self.messages_by_faulty += other.messages_by_faulty;
        self.omitted_messages += other.omitted_messages;
        if self.per_phase.len() < other.per_phase.len() {
            self.per_phase
                .resize(other.per_phase.len(), PhaseMetrics::default());
        }
        for (slot, theirs) in self.per_phase.iter_mut().zip(&other.per_phase) {
            slot.messages_by_correct += theirs.messages_by_correct;
            slot.signatures_by_correct += theirs.signatures_by_correct;
            slot.bytes_by_correct += theirs.bytes_by_correct;
            slot.payload_bytes_by_correct += theirs.payload_bytes_by_correct;
            slot.messages_by_faulty += theirs.messages_by_faulty;
            slot.hash_invocations += theirs.hash_invocations;
            slot.sig_verifications += theirs.sig_verifications;
            slot.omitted += theirs.omitted;
        }
        for (kind, count) in &other.by_kind_correct {
            *self.by_kind_correct.entry(kind).or_insert(0) += count;
        }
        self.crypto = self.crypto.add(&other.crypto);
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phases={} msgs(correct)={} sigs(correct)={} msgs(faulty)={}",
            self.phases,
            self.messages_by_correct,
            self.signatures_by_correct,
            self.messages_by_faulty
        )
    }
}

/// Admission-queue accounting for an open-loop serving layer.
///
/// [`Metrics`] counts what a single agreement costs; a service admitting a
/// *stream* of agreements also has to account for the work it refused or
/// shed, and for how deep the waiting line got while it refused. These
/// counters are the queue-side complement: every submission ends up in
/// exactly one of `admitted` (eventually ran), `shed` (evicted from the
/// queue by a later arrival) — and `rejected` submissions never received a
/// ticket at all, so `submitted = admitted + shed + still-queued` holds at
/// any instant.
///
/// Depth is sampled once per service tick (after admission), so
/// [`mean_depth`](QueueStats::mean_depth) is a tick-weighted average, not a
/// per-submission one.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct QueueStats {
    /// Submissions that received a ticket (enqueued or directly admitted).
    pub submitted: u64,
    /// Tickets moved from the queue into flight.
    pub admitted: u64,
    /// Queued tickets evicted by a shed-oldest admission.
    pub shed: u64,
    /// Submissions refused outright (no ticket issued).
    pub rejected: u64,
    /// Submissions that had to wait for queue space (block-with-deadline).
    pub blocked_submits: u64,
    /// Service ticks spent inside blocking submissions, in total.
    pub blocked_ticks: u64,
    /// The deepest the queue ever got.
    pub peak_depth: usize,
    /// Sum of sampled queue depths (numerator of the mean).
    pub depth_sum: u64,
    /// Number of depth samples taken (denominator of the mean).
    pub depth_samples: u64,
}

impl QueueStats {
    /// Records one per-tick queue-depth sample.
    pub fn record_depth(&mut self, depth: usize) {
        self.peak_depth = self.peak_depth.max(depth);
        self.depth_sum += depth as u64;
        self.depth_samples += 1;
    }

    /// Tick-weighted mean queue depth (`0.0` before any sample).
    pub fn mean_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }
}

impl fmt::Display for QueueStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "submitted={} admitted={} shed={} rejected={} blocked={}({} ticks) \
             depth(peak={} mean={:.2})",
            self.submitted,
            self.admitted,
            self.shed,
            self.rejected,
            self.blocked_submits,
            self.blocked_ticks,
            self.peak_depth,
            self.mean_depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_aggregates_by_correctness() {
        let mut m = Metrics::default();
        m.record_send(1, true, 2, 10, 6, "a");
        m.record_send(1, false, 5, 99, 0, "a");
        m.record_send(3, true, 0, 4, 0, "b");
        assert_eq!(m.messages_by_correct, 2);
        assert_eq!(m.signatures_by_correct, 2);
        assert_eq!(m.messages_by_faulty, 1);
        assert_eq!(m.bytes_by_correct, 14);
        assert_eq!(m.messages_total(), 3);
        assert_eq!(m.last_active_phase, 3);
        assert_eq!(m.per_phase.len(), 3);
        assert_eq!(m.per_phase[0].messages_by_correct, 1);
        assert_eq!(m.per_phase[0].messages_by_faulty, 1);
        assert_eq!(m.per_phase[1], PhaseMetrics::default());
        assert_eq!(m.per_phase[2].messages_by_correct, 1);
        assert_eq!(m.by_kind_correct.get("a"), Some(&1));
        assert_eq!(m.by_kind_correct.get("b"), Some(&1));
    }

    #[test]
    fn queue_stats_depth_sampling_and_display() {
        let mut q = QueueStats::default();
        assert_eq!(q.mean_depth(), 0.0);
        q.record_depth(3);
        q.record_depth(5);
        q.record_depth(0);
        q.submitted = 4;
        q.admitted = 3;
        q.shed = 1;
        assert_eq!(q.peak_depth, 5);
        assert_eq!(q.depth_samples, 3);
        assert!((q.mean_depth() - 8.0 / 3.0).abs() < 1e-12);
        let text = q.to_string();
        assert!(text.contains("submitted=4"), "{text}");
        assert!(text.contains("shed=1"), "{text}");
        assert!(text.contains("peak=5"), "{text}");
    }

    #[test]
    fn faulty_sends_do_not_advance_last_active_phase() {
        let mut m = Metrics::default();
        m.record_send(5, false, 0, 0, 0, "a");
        assert_eq!(m.last_active_phase, 0);
    }

    #[test]
    fn phase_crypto_and_merge_accumulate() {
        let delta = CryptoStats {
            hash_invocations: 10,
            tag_ops: 4,
            sig_verifications: 3,
            cache_hits: 1,
            cache_misses: 2,
        };
        let mut a = Metrics::default();
        a.record_send(1, true, 1, 8, 2, "x");
        a.record_phase_crypto(2, delta);
        assert_eq!(a.per_phase[1].hash_invocations, 10);
        assert_eq!(a.per_phase[1].sig_verifications, 3);
        assert_eq!(a.crypto.cache_hits, 1);
        a.absorb_crypto(delta);
        assert_eq!(a.crypto.hash_invocations, 20);

        let mut b = Metrics {
            phases: 5,
            ..Default::default()
        };
        b.record_send(3, false, 0, 0, 0, "x");
        b.record_send(1, true, 2, 4, 4, "y");
        b.record_phase_crypto(1, delta);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.phases, 5);
        assert_eq!(merged.messages_by_correct, 2);
        assert_eq!(merged.messages_by_faulty, 1);
        assert_eq!(merged.per_phase.len(), 3);
        assert_eq!(merged.per_phase[0].hash_invocations, 10);
        assert_eq!(merged.crypto.hash_invocations, 30);
        assert_eq!(merged.by_kind_correct.get("x"), Some(&1));
        assert_eq!(merged.by_kind_correct.get("y"), Some(&1));
    }

    #[test]
    fn omitted_counts_accumulate_and_merge() {
        let mut m = Metrics::default();
        m.record_omitted(2, 3);
        m.record_omitted(2, 0); // zero is a no-op: no phase row materialized beyond 2
        assert_eq!(m.omitted_messages, 3);
        assert_eq!(m.per_phase.len(), 2);
        assert_eq!(m.per_phase[1].omitted, 3);
        assert_eq!(m.per_phase[0].omitted, 0);

        let mut other = Metrics::default();
        other.record_omitted(1, 5);
        m.merge(&other);
        assert_eq!(m.omitted_messages, 8);
        assert_eq!(m.per_phase[0].omitted, 5);
    }

    #[test]
    fn display_summarizes() {
        let mut m = Metrics {
            phases: 4,
            ..Default::default()
        };
        m.record_send(2, true, 1, 0, 0, "a");
        let s = m.to_string();
        assert!(s.contains("phases=4"));
        assert!(s.contains("msgs(correct)=1"));
    }
}
