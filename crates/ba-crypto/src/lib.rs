//! Cryptographic substrate for the Dolev–Reischuk Byzantine Agreement
//! reproduction.
//!
//! The paper ("Bounds on Information Exchange for Byzantine Agreement",
//! PODC 1982 / JACM 1985) assumes an authentication (signature) scheme with
//! the following properties:
//!
//! * every receiver recognizes a message as signed by its signer;
//! * nobody can change the contents of a signed message or the signature
//!   undetectably;
//! * faulty processors may collude, so any message carrying only signatures
//!   of faulty processors can be produced by them — but they can never forge
//!   a *correct* processor's signature on new content.
//!
//! This crate provides that abstraction for an in-process simulation:
//!
//! * [`sha256`] — a from-scratch FIPS 180-4 SHA-256 implementation;
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104);
//! * [`keys`] — a [`KeyRegistry`] holding one secret per
//!   processor. Actors receive a [`Signer`] handle bound to a
//!   single identity, so a Byzantine actor can replay signatures it has seen
//!   but cannot mint another identity's signature on new content;
//! * [`chain`] — signature chains (value + ordered list of signatures, each
//!   covering the value and all previous signatures), the workhorse of the
//!   paper's authenticated algorithms;
//! * [`wire`] — a tiny deterministic binary encoding used as the canonical
//!   byte representation that signatures cover, plus the internal
//!   [`Bytes`] buffer type;
//! * [`rng`], [`testkit`], [`stats`] — a seedable splitmix64 generator, a
//!   deterministic property-test harness, and thread-local work counters
//!   (hash invocations, signature verifications, cache hits) so the
//!   simulation can account for cryptographic cost precisely.
//!
//! Two interchangeable schemes are offered (see [`keys::SchemeKind`]):
//! `Hmac` (full 256-bit tags) and `Fast` (64-bit keyed-mix tags) for large
//! parameter sweeps. Both enforce the unforgeability contract above; the
//! substitution from real public-key signatures is documented in DESIGN.md.
//!
//! # Example
//!
//! ```
//! use ba_crypto::keys::{KeyRegistry, SchemeKind};
//! use ba_crypto::{ProcessId, Value};
//!
//! let registry = KeyRegistry::new(4, 0xfeed, SchemeKind::Hmac);
//! let signer = registry.signer(ProcessId(2));
//! let sig = signer.sign(b"hello");
//! assert!(registry.verifier().verify(&sig, b"hello"));
//! assert!(!registry.verifier().verify(&sig, b"tampered"));
//! ```

pub mod chain;
pub mod error;
pub mod hmac;
pub mod keys;
pub mod rng;
pub mod sha256;
pub mod stats;
pub mod testkit;
pub mod wire;

pub use chain::Chain;
pub use error::CryptoError;
pub use keys::{KeyRegistry, SchemeKind, Signature, Signer, Verifier, VerifierCache};
pub use stats::CryptoStats;
pub use wire::Bytes;

use core::fmt;

/// Identity of a participating processor.
///
/// Processors are numbered `0..n`. By convention in this workspace the
/// transmitter (the paper's distinguished sender) is processor `0` unless a
/// run configures otherwise. The identity doubles as the signing identity in
/// the [`keys::KeyRegistry`].
///
/// ```
/// use ba_crypto::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.to_string(), "p3");
/// assert_eq!(p.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the identity as a `usize` index, convenient for vector
    /// indexing in the simulator.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// A value the transmitter may send.
///
/// The paper's lower bounds use binary values; the algorithms generalize to
/// any finite value set `W`, so the reproduction uses a 64-bit payload.
/// `Value(0)` and `Value(1)` play the role of the paper's `0` and `1`.
///
/// ```
/// use ba_crypto::Value;
/// assert_eq!(Value::ZERO.0, 0);
/// assert_eq!(Value::ONE.0, 1);
/// assert_eq!(Value(7).to_string(), "v7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Value(pub u64);

impl Value {
    /// The paper's value `0` (also the fallback decision of Algorithm 1).
    pub const ZERO: Value = Value(0);
    /// The paper's value `1`.
    pub const ONE: Value = Value(1);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip_and_order() {
        let a = ProcessId(1);
        let b = ProcessId::from(2);
        assert!(a < b);
        assert_eq!(b.index(), 2);
        assert_eq!(format!("{a:?}"), "ProcessId(1)");
    }

    #[test]
    fn value_constants() {
        assert_ne!(Value::ZERO, Value::ONE);
        assert_eq!(Value::from(9), Value(9));
        assert_eq!(Value::default(), Value::ZERO);
    }

    #[test]
    fn ids_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProcessId>();
        assert_send_sync::<Value>();
    }
}
