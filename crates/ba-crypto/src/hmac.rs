//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1), built on the in-tree
//! [`Sha256`](crate::sha256).
//!
//! The signature schemes in [`keys`](crate::keys) use HMAC with a secret key
//! per processor as the simulation stand-in for public-key signatures: the
//! registry (the simulator) holds all keys and verifies on behalf of
//! receivers, so a tag constitutes an unforgeable statement "processor `p`
//! said these bytes" — exactly what the paper's authentication model needs.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the SHA-256 block size are hashed first, per RFC 2104.
///
/// ```
/// use ba_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0], 0xf7);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = Sha256::digest(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-shape comparison of two tags.
///
/// The simulation does not face timing attacks, but comparing the whole tag
/// avoids accidentally short-circuiting on truncated inputs.
pub fn tags_equal(a: &[u8; DIGEST_LEN], b: &[u8; DIGEST_LEN]) -> bool {
    let mut diff = 0u8;
    for i in 0..DIGEST_LEN {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"This is a test using a larger than block-size key and a larger than \
              block-size data. The key needs to be hashed before being used by the \
              HMAC algorithm.",
        );
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn tags_equal_detects_any_flip() {
        let a = hmac_sha256(b"k", b"m");
        assert!(tags_equal(&a, &a.clone()));
        for i in 0..32 {
            let mut b = a;
            b[i] ^= 1;
            assert!(!tags_equal(&a, &b), "flip at byte {i} undetected");
        }
    }

    mod props {
        use super::*;
        use crate::testkit::run_cases;

        #[test]
        fn prop_deterministic() {
            run_cases(48, 0x41, |gen| {
                let key = gen.vec_u8(0, 100);
                let msg = gen.vec_u8(0, 300);
                assert_eq!(hmac_sha256(&key, &msg), hmac_sha256(&key, &msg));
            });
        }

        #[test]
        fn prop_message_tamper_detected() {
            run_cases(48, 0x42, |gen| {
                let key = gen.vec_u8(1, 64);
                let msg = gen.vec_u8(1, 128);
                let idx = gen.usize();
                let mut tampered = msg.clone();
                let i = idx % tampered.len();
                tampered[i] ^= 0x01;
                assert_ne!(hmac_sha256(&key, &msg), hmac_sha256(&key, &tampered));
            });
        }
    }
}
