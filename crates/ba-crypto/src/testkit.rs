//! A minimal deterministic property-test harness.
//!
//! The workspace previously used `proptest` for randomized tests, but the
//! crates-io registry is unreachable in the build environments this
//! reproduction targets — even *optional* external dependencies fail to
//! resolve. This module replaces it with the smallest thing that preserves
//! the tests' value: a seeded case runner over [`SimRng`](crate::rng::SimRng)
//! generators. Failures print the case seed so a failing case can be
//! replayed exactly.
//!
//! Set `BA_TESTKIT_CASES` to raise the per-property case count (default
//! 48) for a deeper soak.
//!
//! ```
//! use ba_crypto::testkit::run_cases;
//!
//! run_cases(8, 0xC0FFEE, |gen| {
//!     let v: Vec<u8> = gen.vec_u8(0, 32);
//!     assert!(v.len() < 32);
//! });
//! ```

use crate::rng::{derive_seed, SimRng};

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 48;

/// Per-case value generator handed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Creates a generator for one case.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: SimRng::new(seed),
        }
    }

    /// An arbitrary `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// An arbitrary `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// An arbitrary `usize`.
    pub fn usize(&mut self) -> usize {
        self.rng.next_u64() as usize
    }

    /// An arbitrary `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_bool()
    }

    /// A draw from `lo..hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range_usize(lo, hi)
    }

    /// A draw from `lo..hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.range_u64(lo, hi)
    }

    /// A draw from `lo..hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.range_u32(lo, hi)
    }

    /// A byte vector with length drawn from `min_len..max_len`.
    pub fn vec_u8(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = self.rng.range_usize(min_len, max_len);
        self.rng.bytes(len)
    }

    /// A vector of draws from `lo..hi`, with length from `min_len..max_len`.
    pub fn vec_u32_in(&mut self, lo: u32, hi: u32, min_len: usize, max_len: usize) -> Vec<u32> {
        let len = self.rng.range_usize(min_len, max_len);
        (0..len).map(|_| self.rng.range_u32(lo, hi)).collect()
    }

    /// Direct access to the underlying RNG for bespoke draws.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

/// Number of cases to run, honoring `BA_TESTKIT_CASES`.
pub fn case_count(default: usize) -> usize {
    std::env::var("BA_TESTKIT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `property` against `cases` deterministically-seeded generators.
/// The effective case count is scaled by `BA_TESTKIT_CASES` when set.
///
/// # Panics
/// Propagates the property's panic, prefixed with the failing case seed
/// (replay with `Gen::new(seed)`).
pub fn run_cases(cases: usize, base_seed: u64, mut property: impl FnMut(&mut Gen)) {
    let cases = case_count(cases);
    for case in 0..cases {
        let seed = derive_seed(base_seed, case as u64);
        let mut gen = Gen::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut gen);
        }));
        if let Err(payload) = outcome {
            eprintln!("testkit: property failed at case {case} (replay seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            run_cases(5, 99, |gen| seen.push(gen.u64()));
            seen
        };
        assert_eq!(collect(), collect());
        assert_eq!(collect().len(), case_count(5));
    }

    #[test]
    fn failure_seed_is_reported_and_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_cases(3, 1, |gen| {
                let _ = gen.u64();
                panic!("intentional");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn generators_cover_helpers() {
        run_cases(4, 2, |gen| {
            assert!(gen.usize_in(1, 5) < 5);
            assert!(gen.u64_in(0, 9) < 9);
            assert!(gen.u32_in(0, 3) < 3);
            let v = gen.vec_u8(2, 6);
            assert!((2..6).contains(&v.len()));
            let ids = gen.vec_u32_in(0, 8, 1, 4);
            assert!(ids.iter().all(|&i| i < 8));
            let _ = gen.bool();
            let _ = gen.u32();
            let _ = gen.rng().next_u8();
        });
    }
}
