//! Error types for the crypto substrate.

use crate::ProcessId;
use core::fmt;

/// Errors produced while verifying signatures, chains or decoding wire data.
///
/// ```
/// use ba_crypto::CryptoError;
/// let err = CryptoError::BadSignature { signer: ba_crypto::ProcessId(3) };
/// assert_eq!(err.to_string(), "signature by p3 does not verify");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CryptoError {
    /// A signature tag did not verify against the registry key.
    BadSignature {
        /// The claimed signer.
        signer: ProcessId,
    },
    /// A signer identity outside the registry's `0..n` range was used.
    UnknownSigner {
        /// The claimed signer.
        signer: ProcessId,
        /// Number of registered identities.
        registered: usize,
    },
    /// A signature chain is empty where at least one signature is required.
    EmptyChain,
    /// The same processor appears twice in a chain that must be a simple
    /// path.
    DuplicateSigner {
        /// The repeated signer.
        signer: ProcessId,
    },
    /// The wire decoder ran out of bytes or met a malformed length prefix.
    Truncated,
    /// A decoded discriminant did not match any known variant.
    BadDiscriminant {
        /// The unexpected raw value.
        found: u8,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadSignature { signer } => {
                write!(f, "signature by {signer} does not verify")
            }
            CryptoError::UnknownSigner { signer, registered } => {
                write!(
                    f,
                    "unknown signer {signer} (registry holds {registered} identities)"
                )
            }
            CryptoError::EmptyChain => write!(f, "signature chain is empty"),
            CryptoError::DuplicateSigner { signer } => {
                write!(f, "signer {signer} appears twice in a simple-path chain")
            }
            CryptoError::Truncated => write!(f, "wire data is truncated or malformed"),
            CryptoError::BadDiscriminant { found } => {
                write!(f, "unknown wire discriminant {found}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let msgs = [
            CryptoError::BadSignature {
                signer: ProcessId(1),
            }
            .to_string(),
            CryptoError::UnknownSigner {
                signer: ProcessId(9),
                registered: 4,
            }
            .to_string(),
            CryptoError::EmptyChain.to_string(),
            CryptoError::DuplicateSigner {
                signer: ProcessId(2),
            }
            .to_string(),
            CryptoError::Truncated.to_string(),
            CryptoError::BadDiscriminant { found: 250 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CryptoError>();
    }
}
