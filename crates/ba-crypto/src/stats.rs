//! Thread-local instrumentation counters for the crypto hot path.
//!
//! Signature-chain verification dominates every simulated run, so the
//! substrate counts its own work: SHA-256 digest computations, tag
//! operations (sign + verify) and verifier-cache hits/misses. The counters
//! are **thread-local**: a parameter sweep running cells on worker threads
//! gets exact per-cell deltas with no cross-cell interference, which keeps
//! the printed per-run numbers byte-identical between sequential and
//! parallel sweeps.
//!
//! The simulation engine snapshots these around every phase and folds the
//! deltas into [`ba_sim::Metrics`]-style accounting; tests use them to
//! assert the asymptotics (an L-signature chain must verify in O(L) hash
//! invocations, and a cached re-verification of an extended chain must pay
//! only for the new signatures).

use std::cell::Cell;

thread_local! {
    static HASHES: Cell<u64> = const { Cell::new(0) };
    static TAG_OPS: Cell<u64> = const { Cell::new(0) };
    static SIG_VERIFICATIONS: Cell<u64> = const { Cell::new(0) };
    static CACHE_HITS: Cell<u64> = const { Cell::new(0) };
    static CACHE_MISSES: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn record_hash() {
    HASHES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_tag_op() {
    TAG_OPS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_sig_verification() {
    SIG_VERIFICATIONS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_cache_hit() {
    CACHE_HITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_cache_miss() {
    CACHE_MISSES.with(|c| c.set(c.get() + 1));
}

/// A snapshot (or difference) of the crypto work counters on the current
/// thread.
///
/// ```
/// use ba_crypto::stats::CryptoStats;
/// use ba_crypto::sha256::Sha256;
///
/// let before = CryptoStats::snapshot();
/// let _ = Sha256::digest(b"content");
/// let delta = CryptoStats::snapshot().since(&before);
/// assert_eq!(delta.hash_invocations, 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CryptoStats {
    /// SHA-256 digest computations (one per `Sha256::finalize`).
    pub hash_invocations: u64,
    /// Tag computations: every sign and every verification recomputes one
    /// authentication tag.
    pub tag_ops: u64,
    /// Individual signature verifications performed by a `Verifier`.
    pub sig_verifications: u64,
    /// Chain verifications that resumed from a cached verified prefix.
    pub cache_hits: u64,
    /// Chain verifications that found no cached prefix.
    pub cache_misses: u64,
}

impl CryptoStats {
    /// Reads the current thread's counters.
    pub fn snapshot() -> Self {
        CryptoStats {
            hash_invocations: HASHES.with(Cell::get),
            tag_ops: TAG_OPS.with(Cell::get),
            sig_verifications: SIG_VERIFICATIONS.with(Cell::get),
            cache_hits: CACHE_HITS.with(Cell::get),
            cache_misses: CACHE_MISSES.with(Cell::get),
        }
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &CryptoStats) -> CryptoStats {
        CryptoStats {
            hash_invocations: self
                .hash_invocations
                .saturating_sub(earlier.hash_invocations),
            tag_ops: self.tag_ops.saturating_sub(earlier.tag_ops),
            sig_verifications: self
                .sig_verifications
                .saturating_sub(earlier.sig_verifications),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
        }
    }

    /// Counter-wise sum.
    pub fn add(&self, other: &CryptoStats) -> CryptoStats {
        CryptoStats {
            hash_invocations: self.hash_invocations + other.hash_invocations,
            tag_ops: self.tag_ops + other.tag_ops,
            sig_verifications: self.sig_verifications + other.sig_verifications,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
        }
    }

    /// Fraction of chain verifications that hit the cache (`0.0` when no
    /// verification ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Sha256;

    #[test]
    fn snapshot_delta_tracks_hashing() {
        let before = CryptoStats::snapshot();
        let _ = Sha256::digest(b"a");
        let _ = Sha256::digest(b"b");
        let delta = CryptoStats::snapshot().since(&before);
        assert_eq!(delta.hash_invocations, 2);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CryptoStats::default().cache_hit_rate(), 0.0);
        let s = CryptoStats {
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.cache_hit_rate(), 0.75);
    }

    #[test]
    fn add_and_since_are_inverse() {
        let a = CryptoStats {
            hash_invocations: 5,
            tag_ops: 2,
            sig_verifications: 2,
            cache_hits: 1,
            cache_misses: 0,
        };
        let b = CryptoStats {
            hash_invocations: 7,
            ..Default::default()
        };
        assert_eq!(a.add(&b).since(&b), a);
    }
}
