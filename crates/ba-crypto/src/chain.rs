//! Signature chains: a value plus an ordered list of signatures, each
//! covering the value and all preceding signatures.
//!
//! Chains are the information currency of the paper's authenticated
//! algorithms: a "correct 1-message" in Algorithm 1 is a chain whose signers
//! form a simple path from the transmitter; an "increasing message" in
//! Algorithm 2 is a chain with ascending signer labels; a "valid message" in
//! Algorithm 5 is a chain with at least `t + 1` active-processor signatures.
//!
//! Because every signature covers the whole prefix, an adversary can only
//! *truncate* a chain it has observed or *extend* it with signatures of
//! colluding faulty processors — it can never splice a correct processor's
//! signature onto different content. The unit tests exercise exactly those
//! attacks.

use crate::error::CryptoError;
use crate::keys::{Signature, Signer, Verifier};
use crate::wire::{Decoder, Encoder};
use crate::{ProcessId, Value};
use std::fmt;

/// A signed chain: `domain`-tagged value plus ordered signatures.
///
/// The `domain` separates the message spaces of different protocols (and
/// protocol roles) so a signature produced inside one algorithm cannot be
/// replayed into another.
///
/// ```
/// use ba_crypto::keys::{KeyRegistry, SchemeKind};
/// use ba_crypto::{Chain, ProcessId, Value};
///
/// let reg = KeyRegistry::new(3, 1, SchemeKind::Hmac);
/// let mut chain = Chain::new(7, Value::ONE);
/// chain.sign_and_append(&reg.signer(ProcessId(0)));
/// chain.sign_and_append(&reg.signer(ProcessId(2)));
/// chain.verify(&reg.verifier())?;
/// assert_eq!(chain.len(), 2);
/// assert!(chain.contains_signer(ProcessId(2)));
/// # Ok::<(), ba_crypto::CryptoError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chain {
    domain: u32,
    value: Value,
    sigs: Vec<Signature>,
}

impl Chain {
    /// Creates an unsigned chain carrying `value` in protocol `domain`.
    pub fn new(domain: u32, value: Value) -> Self {
        Chain {
            domain,
            value,
            sigs: Vec::new(),
        }
    }

    /// The protocol domain tag.
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// The carried value.
    pub fn value(&self) -> Value {
        self.value
    }

    /// Number of signatures on the chain.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the chain carries no signatures yet.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The signatures, oldest first.
    pub fn signatures(&self) -> &[Signature] {
        &self.sigs
    }

    /// Iterator over signer identities, oldest first.
    pub fn signers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.sigs.iter().map(|s| s.signer())
    }

    /// The most recent signer, if any.
    pub fn last_signer(&self) -> Option<ProcessId> {
        self.sigs.last().map(|s| s.signer())
    }

    /// The first signer (the chain's originator), if any.
    pub fn first_signer(&self) -> Option<ProcessId> {
        self.sigs.first().map(|s| s.signer())
    }

    /// Whether `id` has signed this chain.
    pub fn contains_signer(&self, id: ProcessId) -> bool {
        self.signers().any(|s| s == id)
    }

    /// The canonical bytes covered by the signature at position `upto`
    /// (i.e. the domain, the value and the first `upto` signatures).
    fn content_at(&self, upto: usize) -> bytes::Bytes {
        let mut enc = Encoder::with_capacity(16 + upto * 40);
        enc.u32(self.domain).value(self.value);
        for sig in &self.sigs[..upto] {
            sig.encode(&mut enc);
        }
        enc.finish()
    }

    /// Signs the current chain state with `signer` and appends the
    /// signature. Returns `&mut self` for chaining.
    pub fn sign_and_append(&mut self, signer: &Signer) -> &mut Self {
        let content = self.content_at(self.sigs.len());
        self.sigs.push(signer.sign(&content));
        self
    }

    /// Verifies every signature against its prefix.
    ///
    /// # Errors
    /// [`CryptoError::EmptyChain`] when no signatures are present, or the
    /// first failing signature's error.
    pub fn verify(&self, verifier: &Verifier) -> Result<(), CryptoError> {
        if self.sigs.is_empty() {
            return Err(CryptoError::EmptyChain);
        }
        for i in 0..self.sigs.len() {
            let content = self.content_at(i);
            verifier.check(&self.sigs[i], &content)?;
        }
        Ok(())
    }

    /// Verifies the chain *and* that the signers are pairwise distinct
    /// (a simple path, as Algorithm 1's "correct 1-message" requires).
    ///
    /// # Errors
    /// As [`verify`](Self::verify), plus [`CryptoError::DuplicateSigner`].
    pub fn verify_simple_path(&self, verifier: &Verifier) -> Result<(), CryptoError> {
        self.verify(verifier)?;
        for (i, a) in self.sigs.iter().enumerate() {
            for b in &self.sigs[..i] {
                if a.signer() == b.signer() {
                    return Err(CryptoError::DuplicateSigner { signer: a.signer() });
                }
            }
        }
        Ok(())
    }

    /// Returns a copy truncated to the first `len` signatures — the only
    /// chain mutation (besides extension) available to an adversary.
    pub fn truncated(&self, len: usize) -> Chain {
        Chain {
            domain: self.domain,
            value: self.value,
            sigs: self.sigs[..len.min(self.sigs.len())].to_vec(),
        }
    }

    /// Appends the canonical encoding of the whole chain to `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.domain)
            .value(self.value)
            .u32(self.sigs.len() as u32);
        for sig in &self.sigs {
            sig.encode(enc);
        }
    }

    /// Decodes a chain.
    ///
    /// # Errors
    /// Wire errors from malformed input; the decoded chain still needs
    /// [`verify`](Self::verify).
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CryptoError> {
        let domain = dec.u32()?;
        let value = dec.value()?;
        let count = dec.u32()? as usize;
        // Cap pre-allocation: adversarial counts must not trigger OOM.
        let mut sigs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            sigs.push(Signature::decode(dec)?);
        }
        Ok(Chain {
            domain,
            value,
            sigs,
        })
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain[{} {}", self.domain, self.value)?;
        for s in self.signers() {
            write!(f, " {s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{KeyRegistry, SchemeKind};

    fn reg() -> KeyRegistry {
        KeyRegistry::new(6, 99, SchemeKind::Hmac)
    }

    fn signed_chain(reg: &KeyRegistry, ids: &[u32]) -> Chain {
        let mut c = Chain::new(1, Value::ONE);
        for &id in ids {
            c.sign_and_append(&reg.signer(ProcessId(id)));
        }
        c
    }

    #[test]
    fn build_and_verify() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.first_signer(), Some(ProcessId(0)));
        assert_eq!(c.last_signer(), Some(ProcessId(2)));
        c.verify(&reg.verifier()).unwrap();
        c.verify_simple_path(&reg.verifier()).unwrap();
    }

    #[test]
    fn empty_chain_rejected() {
        let reg = reg();
        let c = Chain::new(1, Value::ZERO);
        assert!(c.is_empty());
        assert_eq!(c.verify(&reg.verifier()), Err(CryptoError::EmptyChain));
    }

    #[test]
    fn value_tamper_detected() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1]);
        let mut tampered = c.clone();
        tampered.value = Value(9);
        assert!(tampered.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn domain_tamper_detected() {
        let reg = reg();
        let c = signed_chain(&reg, &[0]);
        let mut tampered = c;
        tampered.domain = 2;
        assert!(tampered.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn reorder_attack_detected() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2]);
        let mut tampered = c.clone();
        tampered.sigs.swap(1, 2);
        assert!(tampered.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn splice_attack_detected() {
        // Take p1's signature from a chain on value ONE and splice it onto a
        // chain carrying value ZERO: must fail.
        let reg = reg();
        let good = signed_chain(&reg, &[0, 1]);
        let mut fake = Chain::new(1, Value::ZERO);
        fake.sign_and_append(&reg.signer(ProcessId(0)));
        fake.sigs.push(good.sigs[1].clone());
        assert!(fake.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn truncation_keeps_validity_of_prefix() {
        // Truncation is the one manipulation an adversary CAN do; the
        // truncated prefix remains a valid chain, as in the real scheme.
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2, 3]);
        let t = c.truncated(2);
        assert_eq!(t.len(), 2);
        t.verify(&reg.verifier()).unwrap();
        let over = c.truncated(10);
        assert_eq!(over.len(), 4);
    }

    #[test]
    fn duplicate_signer_rejected_for_simple_path() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 0]);
        // Plain verification passes (the chain is honestly signed)...
        c.verify(&reg.verifier()).unwrap();
        // ...but the simple-path requirement fails.
        assert_eq!(
            c.verify_simple_path(&reg.verifier()),
            Err(CryptoError::DuplicateSigner {
                signer: ProcessId(0)
            })
        );
    }

    #[test]
    fn extension_by_faulty_processor_is_fine_but_forgery_is_not() {
        let reg = reg();
        // Faulty p5 extends a correct chain: allowed (it has its own key).
        let mut c = signed_chain(&reg, &[0, 1]);
        c.sign_and_append(&reg.signer(ProcessId(5)));
        c.verify(&reg.verifier()).unwrap();

        // Faulty p5 forges p2's signature: rejected.
        let mut f = signed_chain(&reg, &[0, 1]);
        f.sigs
            .push(Signature::forged(ProcessId(2), SchemeKind::Hmac));
        assert!(f.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let reg = reg();
        let c = signed_chain(&reg, &[3, 4, 5]);
        let mut enc = Encoder::new();
        c.encode(&mut enc);
        let buf = enc.finish();
        let d = Chain::decode(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(d, c);
        d.verify(&reg.verifier()).unwrap();
    }

    #[test]
    fn decode_truncated_errors() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1]);
        let mut enc = Encoder::new();
        c.encode(&mut enc);
        let buf = enc.finish();
        for cut in [0, 3, 12, buf.len() - 1] {
            assert!(
                Chain::decode(&mut Decoder::new(&buf[..cut])).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn display_lists_signers() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 2]);
        assert_eq!(c.to_string(), "chain[1 v1 p0 p2]");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_roundtrip_preserves_verification(
                seed in any::<u64>(),
                ids in proptest::collection::vec(0u32..8, 1..8),
                value in any::<u64>(),
                domain in any::<u32>(),
            ) {
                let reg = KeyRegistry::new(8, seed, SchemeKind::Fast);
                let mut c = Chain::new(domain, Value(value));
                for &id in &ids {
                    c.sign_and_append(&reg.signer(ProcessId(id)));
                }
                c.verify(&reg.verifier()).unwrap();
                let mut enc = Encoder::new();
                c.encode(&mut enc);
                let buf = enc.finish();
                let d = Chain::decode(&mut Decoder::new(&buf)).unwrap();
                prop_assert_eq!(&d, &c);
                d.verify(&reg.verifier()).unwrap();
            }

            #[test]
            fn prop_any_prefix_verifies(
                seed in any::<u64>(),
                ids in proptest::collection::vec(0u32..8, 1..8),
                cut in any::<usize>(),
            ) {
                let reg = KeyRegistry::new(8, seed, SchemeKind::Fast);
                let mut c = Chain::new(0, Value::ONE);
                for &id in &ids {
                    c.sign_and_append(&reg.signer(ProcessId(id)));
                }
                let t = c.truncated(1 + cut % ids.len());
                t.verify(&reg.verifier()).unwrap();
            }

            #[test]
            fn prop_garbage_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
                let _ = Chain::decode(&mut Decoder::new(&data));
            }
        }
    }
}
