//! Signature chains: a value plus an ordered list of signatures, each
//! covering the value and all preceding signatures.
//!
//! Chains are the information currency of the paper's authenticated
//! algorithms: a "correct 1-message" in Algorithm 1 is a chain whose signers
//! form a simple path from the transmitter; an "increasing message" in
//! Algorithm 2 is a chain with ascending signer labels; a "valid message" in
//! Algorithm 5 is a chain with at least `t + 1` active-processor signatures.
//!
//! Because every signature covers the whole prefix, an adversary can only
//! *truncate* a chain it has observed or *extend* it with signatures of
//! colluding faulty processors — it can never splice a correct processor's
//! signature onto different content. The unit tests exercise exactly those
//! attacks.
//!
//! # Rolling prefix digests
//!
//! Signature `i` does not cover the re-encoded prefix bytes directly (that
//! would make verifying a length-`L` chain O(L²) hashing). Instead each
//! signature covers a constant-size *prefix digest*:
//!
//! ```text
//! d_0     = H("ba-chain" || domain || value)
//! d_{i+1} = H(d_i || encode(sig_i))
//! sig_i covers d_i
//! ```
//!
//! Collision resistance of `H` makes `d_i` bind the domain, the value and
//! every signature before position `i`, so the unforgeability argument is
//! unchanged while full verification costs exactly `L + 1` hash
//! invocations plus `L` constant-content signature checks — O(L) total.
//! The chain keeps the running `d_L` ("tip") so appending a signature is
//! O(1); verification always recomputes the digests from the fields so a
//! tampered chain can never ride a stale tip.
//!
//! # Shared signature storage
//!
//! The signature buffer lives behind an [`Arc`]: `Chain::clone` is O(1)
//! (a refcount bump), so broadcasting a length-`L` chain to `n − 1`
//! recipients costs one allocation instead of `n − 1` signature-vector
//! copies. [`sign_and_append`](Chain::sign_and_append) is copy-on-write —
//! it copies the buffer exactly once when clones still share it — which
//! moves the relay pattern's per-hop cost from `O(n·L)` copied signatures
//! to `O(L)`. Sharing is an ownership optimization only: chains remain
//! value types (cloning then mutating never aliases), enforced by the
//! copy-on-write tests.
//!
//! [`verify`](Chain::verify) additionally consults the registry's shared
//! [`VerifierCache`](crate::keys::VerifierCache): digests of fully verified
//! prefixes are memoized, so re-verifying a chain that grew by `k`
//! signatures since it was last seen (the Dolev-Strong relay pattern) pays
//! for only the `k` new signature checks. [`verify_uncached`]
//! (Chain::verify_uncached) skips the cache, and [`verify_reference`]
//! (Chain::verify_reference) is a deliberately naive O(L²) implementation
//! retained as the oracle for the equivalence property tests.

use crate::error::CryptoError;
use crate::keys::{Signature, Signer, Verifier};
use crate::rng::splitmix64;
use crate::sha256::{Sha256, DIGEST_LEN};
use crate::wire::{Decoder, Encoder};
use crate::{ProcessId, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared signature buffer plus its batched-verification stamp.
///
/// The stamp implements the engine's *batched phase-barrier verification*:
/// after [`Chain::verify`] succeeds at a phase barrier, the engine calls
/// [`Chain::mark_verified`], which writes a token derived from the
/// verifying registry, the chain's domain and its value into the buffer.
/// Every clone sharing the buffer (a broadcast fan-out) then short-circuits
/// [`Chain::verify`] to an O(1) stamp comparison. The stamp can never
/// validate the wrong content: it is compared against a value recomputed
/// from the *asking* chain's domain/value and the *asking* verifier's
/// registry token, and any mutation of the buffer (append, copy-on-write,
/// test surgery) resets it to the never-valid `0`.
#[derive(Debug)]
struct SigBuf {
    sigs: Vec<Signature>,
    /// `0` = unstamped; otherwise [`expected_stamp`] of the registry that
    /// verified this exact buffer under the owning chain's domain/value.
    stamp: AtomicU64,
}

impl SigBuf {
    fn new(sigs: Vec<Signature>) -> Self {
        SigBuf {
            sigs,
            stamp: AtomicU64::new(0),
        }
    }
}

/// Cloning the buffer (the copy-on-write path, *not* `Chain::clone`, which
/// only bumps the [`Arc`]) starts unstamped: the clone exists to be
/// mutated.
impl Clone for SigBuf {
    fn clone(&self) -> Self {
        SigBuf::new(self.sigs.clone())
    }
}

/// The stamp a verifier over `token`'s registry writes for a verified
/// buffer carried under (`domain`, `value`). Always odd, hence never the
/// unstamped `0`.
fn expected_stamp(token: u64, domain: u32, value: Value) -> u64 {
    let mut s = token ^ ((domain as u64) << 32) ^ value.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s) | 1
}

/// A signed chain: `domain`-tagged value plus ordered signatures.
///
/// The `domain` separates the message spaces of different protocols (and
/// protocol roles) so a signature produced inside one algorithm cannot be
/// replayed into another.
///
/// ```
/// use ba_crypto::keys::{KeyRegistry, SchemeKind};
/// use ba_crypto::{Chain, ProcessId, Value};
///
/// let reg = KeyRegistry::new(3, 1, SchemeKind::Hmac);
/// let mut chain = Chain::new(7, Value::ONE);
/// chain.sign_and_append(&reg.signer(ProcessId(0)));
/// chain.sign_and_append(&reg.signer(ProcessId(2)));
/// chain.verify(&reg.verifier())?;
/// assert_eq!(chain.len(), 2);
/// assert!(chain.contains_signer(ProcessId(2)));
/// # Ok::<(), ba_crypto::CryptoError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Chain {
    domain: u32,
    value: Value,
    /// Shared signature buffer. `Chain::clone` bumps a refcount instead of
    /// copying `L` signatures, so a broadcast of a length-`L` chain to
    /// `n − 1` peers costs one allocation total rather than `n − 1`
    /// signature-vector copies. [`sign_and_append`](Self::sign_and_append)
    /// is copy-on-write: it copies the buffer only when another chain still
    /// shares it (the relay pattern — receive, clone, extend — pays exactly
    /// one copy at the extension point, where the seed engine paid one copy
    /// per recipient at the broadcast point). The buffer also carries the
    /// batched-verification stamp (see [`SigBuf`]).
    sigs: Arc<SigBuf>,
    /// Rolling digest over everything above (`d_L`); makes
    /// [`sign_and_append`](Self::sign_and_append) O(1). Never trusted by
    /// verification, which recomputes digests from the other fields.
    tip: [u8; DIGEST_LEN],
}

/// Equality ignores the cached tip: it is derived state, and test code
/// deliberately constructs field-tampered chains whose tip is stale.
impl PartialEq for Chain {
    fn eq(&self, other: &Self) -> bool {
        self.domain == other.domain
            && self.value == other.value
            // Chains cloned from one another share the buffer; compare the
            // pointer first so the common broadcast case is O(1).
            && (Arc::ptr_eq(&self.sigs, &other.sigs) || self.sigs.sigs == other.sigs.sigs)
    }
}

impl Eq for Chain {}

/// `d_0`: binds the protocol domain and the carried value.
fn seed_digest(domain: u32, value: Value) -> [u8; DIGEST_LEN] {
    let mut enc = Encoder::with_capacity(20);
    enc.raw(b"ba-chain").u32(domain).value(value);
    Sha256::digest(enc.as_slice())
}

/// `d_{i+1} = H(d_i || encode(sig_i))`.
fn extend_digest(prev: &[u8; DIGEST_LEN], sig: &Signature) -> [u8; DIGEST_LEN] {
    let mut enc = Encoder::with_capacity(DIGEST_LEN + sig.encoded_len());
    enc.raw(prev);
    sig.encode(&mut enc);
    Sha256::digest(enc.as_slice())
}

impl Chain {
    /// Creates an unsigned chain carrying `value` in protocol `domain`.
    pub fn new(domain: u32, value: Value) -> Self {
        Chain {
            domain,
            value,
            sigs: Arc::new(SigBuf::new(Vec::new())),
            tip: seed_digest(domain, value),
        }
    }

    /// The protocol domain tag.
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// The carried value.
    pub fn value(&self) -> Value {
        self.value
    }

    /// Number of signatures on the chain.
    pub fn len(&self) -> usize {
        self.sigs.sigs.len()
    }

    /// Whether the chain carries no signatures yet.
    pub fn is_empty(&self) -> bool {
        self.sigs.sigs.is_empty()
    }

    /// The signatures, oldest first.
    pub fn signatures(&self) -> &[Signature] {
        &self.sigs.sigs
    }

    /// Iterator over signer identities, oldest first.
    pub fn signers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.sigs.sigs.iter().map(|s| s.signer())
    }

    /// The most recent signer, if any.
    pub fn last_signer(&self) -> Option<ProcessId> {
        self.sigs.sigs.last().map(|s| s.signer())
    }

    /// The first signer (the chain's originator), if any.
    pub fn first_signer(&self) -> Option<ProcessId> {
        self.sigs.sigs.first().map(|s| s.signer())
    }

    /// An address identifying this chain's shared signature buffer —
    /// chains cloned from one another (a broadcast fan-out) report the
    /// same id. The engine's batched-verification barrier uses it to
    /// verify each unique buffer once per phase. Only meaningful while
    /// the chains are alive (it is the buffer's heap address).
    pub fn storage_id(&self) -> usize {
        Arc::as_ptr(&self.sigs) as usize
    }

    /// Whether `id` has signed this chain.
    pub fn contains_signer(&self, id: ProcessId) -> bool {
        self.signers().any(|s| s == id)
    }

    /// Recomputes the `L + 1` prefix digests `d_0 ..= d_L` from the chain's
    /// fields — exactly `L + 1` hash invocations.
    fn prefix_digests(&self) -> Vec<[u8; DIGEST_LEN]> {
        let mut digests = Vec::with_capacity(self.sigs.sigs.len() + 1);
        let mut d = seed_digest(self.domain, self.value);
        digests.push(d);
        for sig in self.sigs.sigs.iter() {
            d = extend_digest(&d, sig);
            digests.push(d);
        }
        digests
    }

    /// Signs the current chain state with `signer` and appends the
    /// signature. O(1) thanks to the rolling tip digest — except when the
    /// signature buffer is still shared with a clone (copy-on-write: the
    /// buffer is copied once, then this chain owns it exclusively).
    /// Returns `&mut self` for chaining.
    pub fn sign_and_append(&mut self, signer: &Signer) -> &mut Self {
        let sig = signer.sign(&self.tip);
        self.tip = extend_digest(&self.tip, &sig);
        let buf = Arc::make_mut(&mut self.sigs);
        // The buffer's content changes: any batched-verification stamp no
        // longer describes it. (The copy-on-write clone already starts
        // unstamped; this covers the sole-owner fast path.)
        *buf.stamp.get_mut() = 0;
        buf.sigs.push(sig);
        self
    }

    /// Whether this chain's signature buffer is shared with another chain
    /// (diagnostics and tests; a shared buffer is what makes
    /// [`Clone`] O(1)).
    pub fn shares_storage_with(&self, other: &Chain) -> bool {
        Arc::ptr_eq(&self.sigs, &other.sigs)
    }

    /// Verifies every signature against its prefix digest, resuming after
    /// the longest prefix the registry's [`VerifierCache`]
    /// (crate::keys::VerifierCache) already knows to be valid. On success
    /// all prefixes of this chain are added to the cache.
    ///
    /// The cache changes cost only, never outcome: a cached prefix contains
    /// no invalid signature (it could not have entered the cache
    /// otherwise), so the first failing index — and hence the returned
    /// error — is identical with and without it.
    ///
    /// # Errors
    /// [`CryptoError::EmptyChain`] when no signatures are present, or the
    /// first failing signature's error.
    pub fn verify(&self, verifier: &Verifier) -> Result<(), CryptoError> {
        self.verify_inner(verifier, true)
    }

    /// [`verify`](Self::verify) without the cache: always checks every
    /// signature (still O(L) hashing). Used by benchmarks and equivalence
    /// tests.
    ///
    /// # Errors
    /// As [`verify`](Self::verify).
    pub fn verify_uncached(&self, verifier: &Verifier) -> Result<(), CryptoError> {
        self.verify_inner(verifier, false)
    }

    fn verify_inner(&self, verifier: &Verifier, use_cache: bool) -> Result<(), CryptoError> {
        if self.sigs.sigs.is_empty() {
            return Err(CryptoError::EmptyChain);
        }
        // Batched-verification fast path: the engine's phase barrier
        // already verified this exact buffer under this registry for this
        // (domain, value) and stamped it (see [`mark_verified`]
        // (Self::mark_verified)). O(1): no digests are recomputed.
        if use_cache
            && self.sigs.stamp.load(Ordering::Acquire)
                == expected_stamp(verifier.batch_token(), self.domain, self.value)
        {
            verifier.cache().note_stamp_hit();
            return Ok(());
        }
        let digests = self.prefix_digests();
        // digests[1..][j] is d_{j+1}, the digest binding the first j+1
        // signatures; finding it cached means verification can resume at
        // signature j+1.
        let start = if use_cache {
            verifier
                .cache()
                .longest_verified_prefix(&digests[1..])
                .map_or(0, |j| j + 1)
        } else {
            0
        };
        for (sig, digest) in self.sigs.sigs.iter().zip(&digests).skip(start) {
            verifier.check(sig, digest)?;
        }
        if use_cache {
            verifier.cache().insert_verified(&digests[1..]);
        }
        Ok(())
    }

    /// Stamps this chain's shared signature buffer as verified by
    /// `verifier`'s registry, making [`verify`](Self::verify) on *any*
    /// chain sharing the buffer (and carrying the same domain and value)
    /// an O(1) stamp comparison. Called by the simulation engine's batched
    /// phase-barrier pass after a successful [`verify`](Self::verify);
    /// callers must not stamp unverified chains. Sound against misuse of
    /// shared buffers: the stamp binds the registry, domain and value, and
    /// any buffer mutation resets it.
    pub fn mark_verified(&self, verifier: &Verifier) {
        self.sigs.stamp.store(
            expected_stamp(verifier.batch_token(), self.domain, self.value),
            Ordering::Release,
        );
    }

    /// A deliberately naive O(L²) verification retained as the oracle for
    /// the equivalence property tests: each signature's prefix digest is
    /// re-derived from scratch instead of rolled forward, and no cache is
    /// consulted.
    ///
    /// # Errors
    /// As [`verify`](Self::verify).
    pub fn verify_reference(&self, verifier: &Verifier) -> Result<(), CryptoError> {
        if self.sigs.sigs.is_empty() {
            return Err(CryptoError::EmptyChain);
        }
        for i in 0..self.sigs.sigs.len() {
            let mut d = seed_digest(self.domain, self.value);
            for sig in &self.sigs.sigs[..i] {
                d = extend_digest(&d, sig);
            }
            verifier.check(&self.sigs.sigs[i], &d)?;
        }
        Ok(())
    }

    /// Verifies the chain *and* that the signers are pairwise distinct
    /// (a simple path, as Algorithm 1's "correct 1-message" requires).
    ///
    /// # Errors
    /// As [`verify`](Self::verify), plus [`CryptoError::DuplicateSigner`].
    pub fn verify_simple_path(&self, verifier: &Verifier) -> Result<(), CryptoError> {
        self.verify(verifier)?;
        for (i, a) in self.sigs.sigs.iter().enumerate() {
            for b in &self.sigs.sigs[..i] {
                if a.signer() == b.signer() {
                    return Err(CryptoError::DuplicateSigner { signer: a.signer() });
                }
            }
        }
        Ok(())
    }

    /// Returns a copy truncated to the first `len` signatures — the only
    /// chain mutation (besides extension) available to an adversary.
    /// A no-op truncation (`len >= self.len()`) shares storage with `self`.
    pub fn truncated(&self, len: usize) -> Chain {
        if len >= self.sigs.sigs.len() {
            return self.clone();
        }
        let sigs = self.sigs.sigs[..len].to_vec();
        let mut tip = seed_digest(self.domain, self.value);
        for sig in &sigs {
            tip = extend_digest(&tip, sig);
        }
        Chain {
            domain: self.domain,
            value: self.value,
            sigs: Arc::new(SigBuf::new(sigs)),
            tip,
        }
    }

    /// Appends the canonical encoding of the whole chain to `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.domain)
            .value(self.value)
            .u32(self.sigs.sigs.len() as u32);
        for sig in self.sigs.sigs.iter() {
            sig.encode(enc);
        }
    }

    /// Decodes a chain, rebuilding the rolling tip digest.
    ///
    /// # Errors
    /// Wire errors from malformed input; the decoded chain still needs
    /// [`verify`](Self::verify).
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CryptoError> {
        let domain = dec.u32()?;
        let value = dec.value()?;
        let count = dec.u32()? as usize;
        // Cap pre-allocation: adversarial counts must not trigger OOM.
        let mut sigs = Vec::with_capacity(count.min(1024));
        let mut tip = seed_digest(domain, value);
        for _ in 0..count {
            let sig = Signature::decode(dec)?;
            tip = extend_digest(&tip, &sig);
            sigs.push(sig);
        }
        Ok(Chain {
            domain,
            value,
            sigs: Arc::new(SigBuf::new(sigs)),
            tip,
        })
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain[{} {}", self.domain, self.value)?;
        for s in self.signers() {
            write!(f, " {s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{KeyRegistry, SchemeKind};
    use crate::stats::CryptoStats;

    fn reg() -> KeyRegistry {
        KeyRegistry::new(6, 99, SchemeKind::Hmac)
    }

    /// Direct access to the signature buffer for building tampered chains
    /// (an adversary re-assembling observed signatures; real code only ever
    /// goes through [`Chain::sign_and_append`] / [`Chain::truncated`]).
    fn sigs_mut(c: &mut Chain) -> &mut Vec<Signature> {
        let buf = Arc::make_mut(&mut c.sigs);
        // Buffer surgery invalidates any batched-verification stamp, just
        // as sign_and_append does.
        *buf.stamp.get_mut() = 0;
        &mut buf.sigs
    }

    fn signed_chain(reg: &KeyRegistry, ids: &[u32]) -> Chain {
        let mut c = Chain::new(1, Value::ONE);
        for &id in ids {
            c.sign_and_append(&reg.signer(ProcessId(id)));
        }
        c
    }

    #[test]
    fn build_and_verify() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.first_signer(), Some(ProcessId(0)));
        assert_eq!(c.last_signer(), Some(ProcessId(2)));
        c.verify(&reg.verifier()).unwrap();
        c.verify_simple_path(&reg.verifier()).unwrap();
    }

    #[test]
    fn empty_chain_rejected() {
        let reg = reg();
        let c = Chain::new(1, Value::ZERO);
        assert!(c.is_empty());
        assert_eq!(c.verify(&reg.verifier()), Err(CryptoError::EmptyChain));
        assert_eq!(
            c.verify_reference(&reg.verifier()),
            Err(CryptoError::EmptyChain)
        );
    }

    #[test]
    fn value_tamper_detected() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1]);
        let mut tampered = c.clone();
        tampered.value = Value(9);
        assert!(tampered.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn domain_tamper_detected() {
        let reg = reg();
        let c = signed_chain(&reg, &[0]);
        let mut tampered = c;
        tampered.domain = 2;
        assert!(tampered.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn reorder_attack_detected() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2]);
        let mut tampered = c.clone();
        sigs_mut(&mut tampered).swap(1, 2);
        assert!(tampered.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn splice_attack_detected() {
        // Take p1's signature from a chain on value ONE and splice it onto a
        // chain carrying value ZERO: must fail.
        let reg = reg();
        let good = signed_chain(&reg, &[0, 1]);
        let mut fake = Chain::new(1, Value::ZERO);
        fake.sign_and_append(&reg.signer(ProcessId(0)));
        let spliced = good.sigs.sigs[1].clone();
        sigs_mut(&mut fake).push(spliced);
        assert!(fake.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn truncation_keeps_validity_of_prefix() {
        // Truncation is the one manipulation an adversary CAN do; the
        // truncated prefix remains a valid chain, as in the real scheme.
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2, 3]);
        let t = c.truncated(2);
        assert_eq!(t.len(), 2);
        t.verify(&reg.verifier()).unwrap();
        let over = c.truncated(10);
        assert_eq!(over.len(), 4);
    }

    #[test]
    fn truncated_chain_can_be_extended() {
        // The rebuilt tip must let signing continue from the cut point.
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2]);
        let mut t = c.truncated(1);
        t.sign_and_append(&reg.signer(ProcessId(3)));
        t.verify(&reg.verifier()).unwrap();
    }

    #[test]
    fn duplicate_signer_rejected_for_simple_path() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 0]);
        // Plain verification passes (the chain is honestly signed)...
        c.verify(&reg.verifier()).unwrap();
        // ...but the simple-path requirement fails.
        assert_eq!(
            c.verify_simple_path(&reg.verifier()),
            Err(CryptoError::DuplicateSigner {
                signer: ProcessId(0)
            })
        );
    }

    #[test]
    fn extension_by_faulty_processor_is_fine_but_forgery_is_not() {
        let reg = reg();
        // Faulty p5 extends a correct chain: allowed (it has its own key).
        let mut c = signed_chain(&reg, &[0, 1]);
        c.sign_and_append(&reg.signer(ProcessId(5)));
        c.verify(&reg.verifier()).unwrap();

        // Faulty p5 forges p2's signature: rejected.
        let mut f = signed_chain(&reg, &[0, 1]);
        sigs_mut(&mut f).push(Signature::forged(ProcessId(2), SchemeKind::Hmac));
        assert!(f.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let reg = reg();
        let c = signed_chain(&reg, &[3, 4, 5]);
        let mut enc = Encoder::new();
        c.encode(&mut enc);
        let buf = enc.finish();
        let d = Chain::decode(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(d, c);
        d.verify(&reg.verifier()).unwrap();
        // The decoded chain's rebuilt tip supports further signing.
        let mut d = d;
        d.sign_and_append(&reg.signer(ProcessId(0)));
        d.verify(&reg.verifier()).unwrap();
    }

    #[test]
    fn decode_truncated_errors() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1]);
        let mut enc = Encoder::new();
        c.encode(&mut enc);
        let buf = enc.finish();
        for cut in [0, 3, 12, buf.len() - 1] {
            assert!(
                Chain::decode(&mut Decoder::new(&buf[..cut])).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn display_lists_signers() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 2]);
        assert_eq!(c.to_string(), "chain[1 v1 p0 p2]");
    }

    #[test]
    fn clone_shares_signature_storage() {
        // The zero-copy fan-out contract: cloning is a refcount bump, so a
        // broadcast of one chain to n − 1 peers performs no signature
        // copies at all.
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2]);
        let copies: Vec<Chain> = (0..8).map(|_| c.clone()).collect();
        for copy in &copies {
            assert!(copy.shares_storage_with(&c));
            assert_eq!(copy, &c);
        }
        c.verify(&reg.verifier()).unwrap();
    }

    #[test]
    fn append_after_clone_is_copy_on_write() {
        // The relay pattern: receive a chain, clone it, extend the clone.
        // The extension must not disturb the original (or any other clone),
        // and the extended chain stops sharing storage.
        let reg = reg();
        let original = signed_chain(&reg, &[0, 1]);
        let mut relay = original.clone();
        relay.sign_and_append(&reg.signer(ProcessId(2)));
        assert!(!relay.shares_storage_with(&original));
        assert_eq!(original.len(), 2, "original untouched by the COW append");
        assert_eq!(relay.len(), 3);
        original.verify(&reg.verifier()).unwrap();
        relay.verify(&reg.verifier()).unwrap();

        // Unshared append keeps the O(1) push path (no reallocation of a
        // fresh buffer per signature): the buffer pointer is stable while
        // capacity suffices.
        let mut solo = signed_chain(&reg, &[0]);
        let before = solo.clone();
        solo.sign_and_append(&reg.signer(ProcessId(1)));
        assert!(!solo.shares_storage_with(&before));
        assert_eq!(before.len(), 1);
    }

    #[test]
    fn noop_truncation_shares_storage() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1, 2]);
        assert!(c.truncated(3).shares_storage_with(&c));
        assert!(c.truncated(10).shares_storage_with(&c));
        assert!(!c.truncated(2).shares_storage_with(&c));
    }

    #[test]
    fn verify_hashing_is_linear_in_chain_length() {
        // With SchemeKind::Fast the only hashing is the prefix-digest
        // chain, so verifying L signatures costs exactly L + 1 hash
        // invocations (d_0 ..= d_L) — the tentpole O(L) guarantee.
        let reg = KeyRegistry::new(40, 7, SchemeKind::Fast);
        for l in [1usize, 4, 8, 32] {
            let mut c = Chain::new(3, Value::ONE);
            for id in 0..l as u32 {
                c.sign_and_append(&reg.signer(ProcessId(id)));
            }
            let before = CryptoStats::snapshot();
            c.verify_uncached(&reg.verifier()).unwrap();
            let delta = CryptoStats::snapshot().since(&before);
            assert_eq!(delta.hash_invocations, l as u64 + 1, "length {l}");
            assert_eq!(delta.sig_verifications, l as u64, "length {l}");
        }
    }

    #[test]
    fn cache_makes_extension_cost_constant() {
        let reg = KeyRegistry::new(12, 5, SchemeKind::Fast);
        let v = reg.verifier();
        let mut c = Chain::new(2, Value::ONE);
        for id in 0..8 {
            c.sign_and_append(&reg.signer(ProcessId(id)));
        }

        // First sight: a miss, all 8 signatures checked.
        let before = CryptoStats::snapshot();
        c.verify(&v).unwrap();
        let delta = CryptoStats::snapshot().since(&before);
        assert_eq!(delta.cache_misses, 1);
        assert_eq!(delta.sig_verifications, 8);

        // Extend by one (the relay pattern): only the new signature is
        // checked — O(1) additional verification work.
        c.sign_and_append(&reg.signer(ProcessId(8)));
        let before = CryptoStats::snapshot();
        c.verify(&v).unwrap();
        let delta = CryptoStats::snapshot().since(&before);
        assert_eq!(delta.cache_hits, 1);
        assert_eq!(delta.sig_verifications, 1);

        // Identical chain again: nothing left to check.
        let before = CryptoStats::snapshot();
        c.verify(&v).unwrap();
        let delta = CryptoStats::snapshot().since(&before);
        assert_eq!(delta.cache_hits, 1);
        assert_eq!(delta.sig_verifications, 0);
        assert!(v.cache().hit_rate() > 0.5);
    }

    #[test]
    fn cap_pressure_cannot_force_redundant_reverification() {
        // Regression: a per-shard cap-clear used to evict the prefix
        // digest a verify had just reused, so the *next* verify of the
        // same chain in the same tick re-checked every signature (and,
        // under HMAC, re-hashed every tag). The touched-this-flush pin
        // keeps the hot prefix across the clear.
        let reg = KeyRegistry::new(12, 13, SchemeKind::Fast);
        reg.cache().set_shard_cap(4);
        let v = reg.verifier();
        let mut c = Chain::new(4, Value::ONE);
        for id in 0..8 {
            c.sign_and_append(&reg.signer(ProcessId(id)));
        }
        c.verify(&v).unwrap();

        // Reuse the full prefix once — this pins it for the current
        // flush window.
        let before = CryptoStats::snapshot();
        c.verify(&v).unwrap();
        assert_eq!(CryptoStats::snapshot().since(&before).sig_verifications, 0);

        // Cap pressure from other traffic: 16 unrelated digests per shard
        // (XOR fold of i < 256 is its low byte, so i % 16 walks the
        // shards), overflowing every shard's cap of 4 several times over
        // and evicting everything unpinned.
        let mut d = [0u8; DIGEST_LEN];
        for i in 0..256u64 {
            d[..8].copy_from_slice(&i.to_be_bytes());
            reg.cache().insert_verified(&[d]);
        }
        assert!(reg.cache().evictions() > 0);

        // The reused prefix survived: still zero redundant signature
        // checks (pre-fix this delta was 8 — the whole chain again).
        let before = CryptoStats::snapshot();
        c.verify(&v).unwrap();
        let delta = CryptoStats::snapshot().since(&before);
        assert_eq!(delta.cache_hits, 1);
        assert_eq!(
            delta.sig_verifications, 0,
            "pinned prefix was evicted under cap pressure"
        );
    }

    #[test]
    fn cache_never_rescues_a_tampered_chain() {
        // Verify a good chain (populating the cache), then tamper with a
        // *suffix* signature: the cached prefix is reused but the bad
        // signature is still caught.
        let reg = KeyRegistry::new(6, 11, SchemeKind::Fast);
        let v = reg.verifier();
        let mut c = Chain::new(0, Value::ONE);
        for id in 0..4 {
            c.sign_and_append(&reg.signer(ProcessId(id)));
        }
        c.verify(&v).unwrap();
        let mut bad = c.clone();
        sigs_mut(&mut bad).push(Signature::forged(ProcessId(5), SchemeKind::Fast));
        assert!(bad.verify(&v).is_err());
        // And the failed chain's prefixes beyond the valid part must not
        // have been cached: re-verifying still fails.
        assert!(bad.verify(&v).is_err());
        // The untampered chain still passes.
        c.verify(&v).unwrap();
    }

    #[test]
    fn stamp_short_circuits_shared_clones() {
        let reg = KeyRegistry::new(6, 3, SchemeKind::Fast);
        let v = reg.verifier();
        let c = signed_chain(&reg, &[0, 1, 2]);
        c.verify(&v).unwrap();
        c.mark_verified(&v);
        // Every clone shares the stamped buffer: verify is pure stamp
        // comparison — zero hashes, zero signature checks.
        let clone = c.clone();
        assert_eq!(clone.storage_id(), c.storage_id());
        let before = CryptoStats::snapshot();
        clone.verify(&v).unwrap();
        let delta = CryptoStats::snapshot().since(&before);
        assert_eq!(delta.hash_invocations, 0);
        assert_eq!(delta.sig_verifications, 0);
        assert_eq!(delta.cache_hits, 1, "the stamp hit is accounted");
    }

    #[test]
    fn stamp_is_reset_by_any_buffer_mutation() {
        let reg = KeyRegistry::new(6, 4, SchemeKind::Fast);
        let v = reg.verifier();
        let mut c = signed_chain(&reg, &[0, 1]);
        c.verify(&v).unwrap();
        c.mark_verified(&v);

        // Relay extension (copy-on-write): the extended chain's new
        // signature is actually checked, not waved through.
        let mut relayed = c.clone();
        relayed.sign_and_append(&reg.signer(ProcessId(2)));
        let before = CryptoStats::snapshot();
        relayed.verify(&v).unwrap();
        let delta = CryptoStats::snapshot().since(&before);
        assert!(delta.sig_verifications >= 1, "stamp did not survive COW");

        // Sole-owner extension resets too.
        c.sign_and_append(&reg.signer(ProcessId(3)));
        let before = CryptoStats::snapshot();
        c.verify(&v).unwrap();
        let delta = CryptoStats::snapshot().since(&before);
        assert!(
            delta.sig_verifications >= 1,
            "stamp did not survive in-place append"
        );
    }

    #[test]
    fn stamp_binds_registry_domain_and_value() {
        let reg = KeyRegistry::new(6, 5, SchemeKind::Fast);
        let other = KeyRegistry::new(6, 5, SchemeKind::Fast);
        let c = signed_chain(&reg, &[0, 1]);
        c.verify(&reg.verifier()).unwrap();
        c.mark_verified(&reg.verifier());

        // A different registry's verifier must not honor the stamp (it
        // never verified anything) — and signature checks really run.
        let before = CryptoStats::snapshot();
        let _ = c.verify(&other.verifier());
        let delta = CryptoStats::snapshot().since(&before);
        assert!(delta.sig_verifications >= 1);

        // A clone whose value was tampered shares the stamped buffer but
        // must still be rejected: the stamp binds the value.
        let mut tampered = c.clone();
        tampered.value = Value(77);
        assert!(tampered.verify(&reg.verifier()).is_err());
        let mut wrong_domain = c.clone();
        wrong_domain.domain ^= 1;
        assert!(wrong_domain.verify(&reg.verifier()).is_err());
    }

    #[test]
    fn storage_id_tracks_sharing() {
        let reg = reg();
        let c = signed_chain(&reg, &[0, 1]);
        let shared = c.clone();
        assert_eq!(shared.storage_id(), c.storage_id());
        let mut extended = c.clone();
        extended.sign_and_append(&reg.signer(ProcessId(2)));
        assert_ne!(extended.storage_id(), c.storage_id());
    }

    mod props {
        use super::*;
        use crate::testkit::{run_cases, Gen};

        fn random_chain(gen: &mut Gen, reg: &KeyRegistry, domain: u32, value: Value) -> Chain {
            let mut c = Chain::new(domain, value);
            let len = gen.usize_in(0, 9);
            for _ in 0..len {
                let id = gen.u32_in(0, 8);
                c.sign_and_append(&reg.signer(ProcessId(id)));
            }
            c
        }

        #[test]
        fn prop_roundtrip_preserves_verification() {
            run_cases(48, 0x31, |gen| {
                let reg = KeyRegistry::new(8, gen.u64(), SchemeKind::Fast);
                let domain = gen.u32();
                let value = Value(gen.u64());
                let mut c = random_chain(gen, &reg, domain, value);
                if c.is_empty() {
                    c.sign_and_append(&reg.signer(ProcessId(0)));
                }
                c.verify(&reg.verifier()).unwrap();
                let mut enc = Encoder::new();
                c.encode(&mut enc);
                let buf = enc.finish();
                let d = Chain::decode(&mut Decoder::new(&buf)).unwrap();
                assert_eq!(&d, &c);
                d.verify(&reg.verifier()).unwrap();
            });
        }

        #[test]
        fn prop_any_prefix_verifies() {
            run_cases(48, 0x32, |gen| {
                let reg = KeyRegistry::new(8, gen.u64(), SchemeKind::Fast);
                let ids = gen.vec_u32_in(0, 8, 1, 8);
                let cut = gen.usize();
                let mut c = Chain::new(0, Value::ONE);
                for &id in &ids {
                    c.sign_and_append(&reg.signer(ProcessId(id)));
                }
                let t = c.truncated(1 + cut % ids.len());
                t.verify(&reg.verifier()).unwrap();
            });
        }

        #[test]
        fn prop_garbage_decode_never_panics() {
            run_cases(48, 0x33, |gen| {
                let data = gen.vec_u8(0, 128);
                let _ = Chain::decode(&mut Decoder::new(&data));
            });
        }

        /// The equivalence oracle required by the issue: the cached and
        /// incremental verifiers must accept and reject *exactly* the same
        /// chains — with the same error — as the naive O(L²) reference,
        /// across honest chains and truncate/splice/extend/tamper attacks.
        #[test]
        fn prop_cached_and_incremental_match_reference() {
            run_cases(96, 0x34, |gen| {
                let kind = if gen.bool() {
                    SchemeKind::Fast
                } else {
                    SchemeKind::Hmac
                };
                let seed = gen.u64();
                let reg = KeyRegistry::new(8, seed, kind);
                let foreign = KeyRegistry::new(8, seed ^ 0x5555, kind);
                let domain = gen.u32_in(0, 4);
                let value = Value(gen.u64_in(0, 4));
                let mut c = random_chain(gen, &reg, domain, value);

                // One random manipulation drawn from the attack repertoire.
                match gen.usize_in(0, 8) {
                    0 => {} // honest chain, untouched
                    1 => c = c.truncated(gen.usize_in(0, c.len() + 2)),
                    2 => c.value = Value(gen.u64()), // value tamper
                    3 => c.domain = gen.u32(),       // domain tamper
                    4 => {
                        // reorder
                        if c.len() >= 2 {
                            let i = gen.usize_in(0, c.len());
                            let j = gen.usize_in(0, c.len());
                            sigs_mut(&mut c).swap(i, j);
                        }
                    }
                    5 => {
                        // forged extension
                        let id = gen.u32_in(0, 10);
                        sigs_mut(&mut c).push(Signature::forged(ProcessId(id), kind));
                    }
                    6 => {
                        // splice a signature minted under a different
                        // registry (wrong keys) onto this chain
                        let mut o = Chain::new(domain, value);
                        o.sign_and_append(&foreign.signer(ProcessId(gen.u32_in(0, 8))));
                        let spliced = o.sigs.sigs[0].clone();
                        sigs_mut(&mut c).push(spliced);
                    }
                    _ => {
                        // honest extension
                        c.sign_and_append(&reg.signer(ProcessId(gen.u32_in(0, 8))));
                    }
                }

                let v = reg.verifier();
                let reference = c.verify_reference(&v);
                assert_eq!(c.verify_uncached(&v), reference);
                // Twice through the cached path: cold and (possibly) warm.
                assert_eq!(c.verify(&v), reference);
                assert_eq!(c.verify(&v), reference);
            });
        }
    }
}
