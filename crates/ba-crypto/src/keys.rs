//! Per-processor keys, signer handles and verification.
//!
//! The simulation models the paper's signature scheme with symmetric keys
//! held by a trusted [`KeyRegistry`] (the simulator itself):
//!
//! * each processor `p` owns a secret derived from the run seed;
//! * a [`Signer`] handle is bound to exactly one identity — the simulator
//!   gives each actor only its own handle, so Byzantine actors cannot mint
//!   other processors' signatures on new content (they may freely *replay*
//!   signatures they have observed, which is all the paper's adversary is
//!   allowed);
//! * a [`Verifier`] checks any signature against the registry.
//!
//! Two tag constructions are provided: [`SchemeKind::Hmac`] (HMAC-SHA-256,
//! 32-byte tags) and [`SchemeKind::Fast`] (64-bit keyed-mix tags) for large
//! parameter sweeps where hashing would dominate runtime. Both are
//! deterministic in the run seed.
//!
//! Each registry also carries a shared [`VerifierCache`] memoizing the
//! prefix digests of signature chains that have already fully verified, so
//! a receiver seeing a chain extended by `k` signatures re-verifies only
//! the `k` new ones (the Dolev-Strong relay pattern). See
//! [`chain`](crate::chain) for how the digests are formed.

use crate::error::CryptoError;
use crate::hmac::hmac_sha256;
use crate::rng::splitmix64;
use crate::sha256::{Sha256, DIGEST_LEN};
use crate::wire::{Decoder, Encoder};
use crate::ProcessId;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which tag construction a [`KeyRegistry`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SchemeKind {
    /// HMAC-SHA-256, 32-byte tags. The default; cryptographically faithful.
    #[default]
    Hmac,
    /// 64-bit keyed mixing, 8-byte tags. Fast mode for big sweeps; still
    /// unforgeable against the scripted adversaries in this workspace.
    Fast,
}

/// A signature: the claimed signer plus an authentication tag over the
/// signed content.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    signer: ProcessId,
    tag: Tag,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Tag {
    Hmac([u8; 32]),
    Fast(u64),
}

impl Signature {
    /// The identity that (claims to have) produced this signature.
    pub fn signer(&self) -> ProcessId {
        self.signer
    }

    /// Length in bytes of the encoded signature.
    pub fn encoded_len(&self) -> usize {
        match self.tag {
            Tag::Hmac(_) => 4 + 1 + 32,
            Tag::Fast(_) => 4 + 1 + 8,
        }
    }

    /// Appends the canonical encoding of this signature to `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.process_id(self.signer);
        match &self.tag {
            Tag::Hmac(t) => {
                enc.u8(0);
                enc.raw(t);
            }
            Tag::Fast(t) => {
                enc.u8(1);
                enc.u64(*t);
            }
        }
    }

    /// Decodes a signature from `dec`.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] on short input and
    /// [`CryptoError::BadDiscriminant`] on an unknown tag kind.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CryptoError> {
        let signer = dec.process_id()?;
        let kind = dec.u8()?;
        let tag = match kind {
            0 => {
                let raw = dec.raw(32)?;
                let mut t = [0u8; 32];
                t.copy_from_slice(raw);
                Tag::Hmac(t)
            }
            1 => Tag::Fast(dec.u64()?),
            other => return Err(CryptoError::BadDiscriminant { found: other }),
        };
        Ok(Signature { signer, tag })
    }

    /// Produces a deliberately invalid signature claiming to be from
    /// `signer` — used by adversaries attempting forgery and by tests that
    /// check forged signatures are rejected.
    pub fn forged(signer: ProcessId, kind: SchemeKind) -> Self {
        let tag = match kind {
            SchemeKind::Hmac => Tag::Hmac([0xAB; 32]),
            SchemeKind::Fast => Tag::Fast(0xDEAD_BEEF_DEAD_BEEF),
        };
        Signature { signer, tag }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig({})", self.signer)
    }
}

/// Memoization of fully verified signature-chain prefixes.
///
/// The cache stores the *rolling prefix digests* of chains that a
/// [`Verifier`] over the same registry has already accepted. A digest
/// collision-resistantly binds the chain's domain, value and every
/// signature in the prefix, so finding a digest in the cache proves that
/// exact prefix verified before — re-verification can resume after it and
/// pay only for the new signatures.
///
/// The cache is shared by every `Verifier` cloned from one
/// [`KeyRegistry`] (all actors of one simulated run), which is sound
/// because signature validity depends only on the registry's keys, never
/// on who is asking. It is a pure runtime optimization: accept/reject
/// behavior is bit-identical with or without it.
///
/// A cache may additionally be shared *across* registries via
/// [`KeyRegistry::with_shared_cache`], but only when every participating
/// registry is built from the same `(n, seed, kind)` — keys are derived
/// purely from the seed, so such registries agree on which chains verify
/// and a digest cached by one is a sound skip for all. The service layer
/// uses this to verify repeated signer prefixes once fleet-wide across
/// concurrent BA instances of one cluster identity. Sharing across
/// *different* seeds would be unsound (a digest valid under one key set
/// would skip verification under another) and must not be done.
///
/// # Deferred (phase-snapshot) mode
///
/// With immediate writes, the cache's hit/miss pattern — and therefore the
/// per-run work counters — depends on the order in which actors verify
/// chains *within* one simulation phase. A parallel engine stepping actors
/// on worker threads cannot reproduce the sequential order, so the
/// counters would become schedule-dependent. [`set_deferred`]
/// (Self::set_deferred) switches the cache to snapshot semantics: lookups
/// see only the state the cache had at the last [`flush_pending`]
/// (Self::flush_pending) (the engine flushes at every phase barrier), and
/// inserts accumulate in a pending buffer until that flush. Every actor in
/// a phase then observes the same cache state no matter how the phase is
/// scheduled, making hit/miss/verification counts byte-identical for any
/// thread count. Deferred mode never changes accept/reject outcomes —
/// only which verifications are skipped as redundant.
///
/// # Sharding
///
/// The digest set is split across [`CACHE_SHARDS`] independently locked
/// shards so that worker threads verifying different chains in the same
/// phase do not serialize on one mutex. A digest's shard is a pure
/// function of its bytes (an XOR fold), so which shard holds which digest
/// — and therefore every hit/miss decision and every per-shard cap-clear
/// decision — is schedule-independent: sharding changes contention, never
/// counters.
#[derive(Debug)]
pub struct VerifierCache {
    shards: Vec<CacheShard>,
    /// Whether inserts are currently buffered instead of applied.
    deferred: AtomicBool,
    /// Per-shard entry bound; a shard at its cap is cleared before the next
    /// insert (the cheap whole-shard eviction). Configurable so long
    /// multi-instance runs can trade hit rate for memory.
    shard_cap: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Total digests discarded by cap-clears since creation.
    evictions: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheShard {
    verified: Mutex<HashSet<[u8; DIGEST_LEN]>>,
    /// Inserts buffered while in deferred mode, applied at the next flush.
    /// Duplicates are fine (the target is a set); only the *multiset* of
    /// buffered digests must be schedule-independent, which it is because
    /// each actor's verifications are deterministic.
    pending: Mutex<Vec<[u8; DIGEST_LEN]>>,
    /// Digests a lookup reused since the last flush: the *hot* prefixes.
    /// A cap-clear retains these instead of wiping the whole shard, so
    /// eviction under cap pressure can no longer discard a digest that the
    /// very next verification in the same tick would redundantly re-hash.
    /// The set is schedule independent (a phase's reused prefixes are a
    /// deterministic union over actors) and is reset at every flush
    /// boundary, so it pins at most one flush window's working set.
    touched: Mutex<HashSet<[u8; DIGEST_LEN]>>,
}

impl CacheShard {
    /// Evicts down to the touched-this-flush pin set, charging the removed
    /// entries to `evictions`. The pin set survives the clear (repeated
    /// overflow within one flush window must not strip the pins) and is
    /// reset only at flush boundaries — except when it has itself grown to
    /// `cap`, where everything is wiped so the cap keeps bounding memory
    /// even for immediate-mode callers that never flush.
    fn evict_keeping_touched(
        &self,
        verified: &mut HashSet<[u8; DIGEST_LEN]>,
        evictions: &AtomicU64,
        cap: usize,
    ) {
        let mut touched = self.touched.lock().expect("verifier cache poisoned");
        let before = verified.len();
        if touched.is_empty() || touched.len() >= cap {
            verified.clear();
            touched.clear();
        } else {
            verified.retain(|d| touched.contains(d));
        }
        evictions.fetch_add((before - verified.len()) as u64, Ordering::Relaxed);
    }
}

/// Number of independently locked cache shards.
pub const CACHE_SHARDS: usize = 16;

/// Default bound on cached digests; a shard is cleared when full so a long
/// sweep cannot grow memory without bound (32 B/entry → ≤ 2 MiB total).
const CACHE_CAP: usize = 1 << 16;

/// Default per-shard digest bound (see
/// [`VerifierCache::set_shard_cap`] for overriding it).
const SHARD_CAP: usize = CACHE_CAP / CACHE_SHARDS;

/// A digest's home shard: XOR fold of all bytes. Content-determined, so
/// shard placement is identical for any scheduling of the inserts.
fn shard_of(digest: &[u8; DIGEST_LEN]) -> usize {
    digest.iter().fold(0u8, |acc, b| acc ^ b) as usize % CACHE_SHARDS
}

impl Default for VerifierCache {
    fn default() -> Self {
        VerifierCache::new()
    }
}

impl VerifierCache {
    /// Creates an empty cache with the default per-shard cap.
    pub fn new() -> Self {
        Self::with_shard_cap(SHARD_CAP)
    }

    /// Creates an empty cache whose shards each hold at most `cap` digests
    /// (clamped to at least 1).
    pub fn with_shard_cap(cap: usize) -> Self {
        VerifierCache {
            shards: (0..CACHE_SHARDS).map(|_| CacheShard::default()).collect(),
            deferred: AtomicBool::new(false),
            shard_cap: AtomicUsize::new(cap.max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Reconfigures the per-shard entry bound (clamped to at least 1).
    /// Shards over the new cap are cleared lazily on their next insert, so
    /// this is O(1) and safe to call mid-run.
    pub fn set_shard_cap(&self, cap: usize) {
        self.shard_cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// The current per-shard entry bound.
    pub fn shard_cap(&self) -> usize {
        self.shard_cap.load(Ordering::Relaxed)
    }

    /// Returns the largest index `i` such that `digests[i]` is a known
    /// verified prefix, scanning longest-first. Records a hit (some prefix
    /// was reusable) or a miss on this cache *and* on the thread-local
    /// [`CryptoStats`](crate::stats::CryptoStats) counters.
    pub fn longest_verified_prefix(&self, digests: &[[u8; DIGEST_LEN]]) -> Option<usize> {
        let found = digests.iter().rposition(|d| {
            self.shards[shard_of(d)]
                .verified
                .lock()
                .expect("verifier cache poisoned")
                .contains(d)
        });
        match found {
            Some(i) => {
                // Pin the reused prefix against cap-clears until the next
                // flush: evicting a digest that lookups in the same tick
                // still depend on would force a redundant re-hash.
                let d = &digests[i];
                self.shards[shard_of(d)]
                    .touched
                    .lock()
                    .expect("verifier cache poisoned")
                    .insert(*d);
                self.hits.fetch_add(1, Ordering::Relaxed);
                crate::stats::record_cache_hit();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::stats::record_cache_miss();
            }
        }
        found
    }

    /// Marks every digest in `digests` as a verified prefix. In deferred
    /// mode the digests only become visible to lookups at the next
    /// [`flush_pending`](Self::flush_pending).
    pub fn insert_verified(&self, digests: &[[u8; DIGEST_LEN]]) {
        let deferred = self.deferred.load(Ordering::Acquire);
        for d in digests {
            let shard = &self.shards[shard_of(d)];
            if deferred {
                shard
                    .pending
                    .lock()
                    .expect("verifier cache poisoned")
                    .push(*d);
                continue;
            }
            let cap = self.shard_cap();
            let mut verified = shard.verified.lock().expect("verifier cache poisoned");
            if verified.len() >= cap {
                shard.evict_keeping_touched(&mut verified, &self.evictions, cap);
            }
            verified.insert(*d);
        }
    }

    /// Records a batched-verification stamp hit (see
    /// [`Chain::mark_verified`](crate::Chain::mark_verified)) on this
    /// cache's hit counter and the thread-local
    /// [`CryptoStats`](crate::stats::CryptoStats) counters: the stamp is
    /// this cache's O(1) front end, so its reuse counts as cache reuse.
    pub(crate) fn note_stamp_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        crate::stats::record_cache_hit();
    }

    /// Switches between immediate writes (the default) and deferred
    /// phase-snapshot writes (see the type docs). Turning deferred mode
    /// *off* flushes any buffered inserts.
    pub fn set_deferred(&self, deferred: bool) {
        self.deferred.store(deferred, Ordering::Release);
        if !deferred {
            self.flush_pending();
        }
    }

    /// Whether inserts are currently deferred.
    pub fn is_deferred(&self) -> bool {
        self.deferred.load(Ordering::Acquire)
    }

    /// Publishes all buffered inserts to lookups — the simulation engine's
    /// phase barrier. Each shard's buffer is applied as one batch so the
    /// cap-clear decision depends only on the (schedule-independent)
    /// per-shard buffered digests, never on intra-phase ordering.
    pub fn flush_pending(&self) {
        for shard in &self.shards {
            let mut pending = shard.pending.lock().expect("verifier cache poisoned");
            if pending.is_empty() {
                // Flush is still a tick boundary: expire the shard's pins
                // so a quiet phase does not extend their lifetime.
                shard
                    .touched
                    .lock()
                    .expect("verifier cache poisoned")
                    .clear();
                continue;
            }
            let cap = self.shard_cap();
            let mut verified = shard.verified.lock().expect("verifier cache poisoned");
            if verified.len() + pending.len() > cap {
                shard.evict_keeping_touched(&mut verified, &self.evictions, cap);
            }
            // Flush is the pin boundary: the window's pins expire here.
            shard
                .touched
                .lock()
                .expect("verifier cache poisoned")
                .clear();
            verified.extend(pending.drain(..));
        }
    }

    /// Number of lookups that found a reusable verified prefix (including
    /// O(1) stamp hits).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total digests discarded by per-shard cap-clears. A steadily climbing
    /// value means the working set exceeds the configured bound and the
    /// cap (see [`set_shard_cap`](Self::set_shard_cap)) is costing hits.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fraction of lookups that hit (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Number of digests currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.verified.lock().expect("verifier cache poisoned").len())
            .sum()
    }

    /// Whether the cache holds no digests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug)]
struct RegistryInner {
    hmac_keys: Vec<[u8; 32]>,
    fast_keys: Vec<u64>,
    kind: SchemeKind,
    cache: Arc<VerifierCache>,
    /// Process-unique instance token; the batched-verification stamp on a
    /// signature-chain buffer (see
    /// [`Chain::mark_verified`](crate::Chain::mark_verified)) mixes it in
    /// so a stamp written under one registry can never satisfy a verifier
    /// over another — even one built from the same seed.
    token: u64,
}

/// Source of registry instance tokens. Starts at 1 so a token of 0 never
/// exists (chain stamps use 0 as "unstamped").
static NEXT_REGISTRY_TOKEN: AtomicU64 = AtomicU64::new(1);

/// The trusted key registry: one secret per processor, derived from a seed.
///
/// Cloning is cheap (`Arc` inside). See the [module docs](self) for the
/// threat model.
///
/// ```
/// use ba_crypto::keys::{KeyRegistry, SchemeKind};
/// use ba_crypto::ProcessId;
///
/// let reg = KeyRegistry::new(3, 7, SchemeKind::Fast);
/// let sig = reg.signer(ProcessId(0)).sign(b"msg");
/// assert!(reg.verifier().verify(&sig, b"msg"));
/// ```
#[derive(Clone, Debug)]
pub struct KeyRegistry {
    inner: Arc<RegistryInner>,
}

impl KeyRegistry {
    /// Creates a registry for `n` processors with secrets derived from
    /// `seed`.
    pub fn new(n: usize, seed: u64, kind: SchemeKind) -> Self {
        Self::with_shared_cache(n, seed, kind, Arc::new(VerifierCache::new()))
    }

    /// Like [`new`](Self::new) but installing `cache` as the registry's
    /// chain-verification cache instead of a fresh one.
    ///
    /// Sharing one cache across registries is sound **only** when every
    /// registry handed the cache is built with the same `(n, seed, kind)`
    /// (see the cross-registry paragraph in [`VerifierCache`]'s docs); the
    /// caller owns that invariant. Batched-verification stamps never cross
    /// registries regardless — each registry keeps its own token.
    pub fn with_shared_cache(
        n: usize,
        seed: u64,
        kind: SchemeKind,
        cache: Arc<VerifierCache>,
    ) -> Self {
        let mut hmac_keys = Vec::with_capacity(n);
        let mut fast_keys = Vec::with_capacity(n);
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        for id in 0..n {
            let mut enc = Encoder::with_capacity(16);
            enc.u64(seed).u32(id as u32).raw(b"ba-key");
            hmac_keys.push(Sha256::digest(&enc.finish()));
            fast_keys.push(splitmix64(&mut state) | 1);
        }
        KeyRegistry {
            inner: Arc::new(RegistryInner {
                hmac_keys,
                fast_keys,
                kind,
                cache,
                token: NEXT_REGISTRY_TOKEN.fetch_add(1, Ordering::Relaxed),
            }),
        }
    }

    /// Number of registered identities.
    pub fn len(&self) -> usize {
        self.inner.hmac_keys.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.hmac_keys.is_empty()
    }

    /// The tag construction in use.
    pub fn kind(&self) -> SchemeKind {
        self.inner.kind
    }

    /// Returns the signing handle for `id`.
    ///
    /// # Panics
    /// Panics if `id` is outside `0..n`; handing out handles for
    /// nonexistent identities would mask configuration bugs.
    pub fn signer(&self, id: ProcessId) -> Signer {
        assert!(
            id.index() < self.len(),
            "signer {id} outside registry of {} identities",
            self.len()
        );
        Signer {
            registry: self.clone(),
            id,
        }
    }

    /// Returns a verifier over this registry.
    pub fn verifier(&self) -> Verifier {
        Verifier {
            registry: self.clone(),
        }
    }

    /// The chain-verification cache shared by every verifier over this
    /// registry.
    pub fn cache(&self) -> &VerifierCache {
        &self.inner.cache
    }

    /// An owned handle to the same cache, for installing it into further
    /// registries via [`with_shared_cache`](Self::with_shared_cache).
    pub fn shared_cache(&self) -> Arc<VerifierCache> {
        Arc::clone(&self.inner.cache)
    }

    /// This registry instance's unique batched-verification token (see
    /// [`RegistryInner::token`]).
    pub(crate) fn batch_token(&self) -> u64 {
        self.inner.token
    }

    fn tag_for(&self, id: ProcessId, content: &[u8]) -> Tag {
        crate::stats::record_tag_op();
        match self.inner.kind {
            SchemeKind::Hmac => Tag::Hmac(hmac_sha256(&self.inner.hmac_keys[id.index()], content)),
            SchemeKind::Fast => {
                // Keyed FNV-style absorb followed by a splitmix finalizer:
                // fast, and distinct keys give unrelated tag functions.
                let key = self.inner.fast_keys[id.index()];
                let mut acc = key ^ 0xcbf2_9ce4_8422_2325;
                for &b in content {
                    acc ^= b as u64;
                    acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut s = acc ^ key.rotate_left(17);
                Tag::Fast(splitmix64(&mut s))
            }
        }
    }
}

/// A signing handle bound to a single identity.
///
/// This is the only way to produce valid signatures, and the simulator hands
/// each actor the handle for its own identity only — the mechanical
/// enforcement of the paper's "no one can forge another's signature".
#[derive(Clone, Debug)]
pub struct Signer {
    registry: KeyRegistry,
    id: ProcessId,
}

impl Signer {
    /// The identity this handle signs as.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Signs `content`, returning a signature verifiable by any
    /// [`Verifier`] over the same registry.
    pub fn sign(&self, content: &[u8]) -> Signature {
        Signature {
            signer: self.id,
            tag: self.registry.tag_for(self.id, content),
        }
    }
}

/// Verifies signatures against a [`KeyRegistry`].
#[derive(Clone, Debug)]
pub struct Verifier {
    registry: KeyRegistry,
}

impl Verifier {
    /// Returns `true` when `sig` is a valid signature of `content` by its
    /// claimed signer.
    pub fn verify(&self, sig: &Signature, content: &[u8]) -> bool {
        self.check(sig, content).is_ok()
    }

    /// Like [`verify`](Self::verify) but reporting why verification failed.
    ///
    /// # Errors
    /// [`CryptoError::UnknownSigner`] for out-of-range identities and
    /// [`CryptoError::BadSignature`] for tag mismatches (including tags of
    /// the wrong scheme kind).
    pub fn check(&self, sig: &Signature, content: &[u8]) -> Result<(), CryptoError> {
        crate::stats::record_sig_verification();
        if sig.signer.index() >= self.registry.len() {
            return Err(CryptoError::UnknownSigner {
                signer: sig.signer,
                registered: self.registry.len(),
            });
        }
        let expected = self.registry.tag_for(sig.signer, content);
        // Compare variants structurally; a Fast tag never matches an Hmac
        // expectation and vice versa.
        let ok = match (&sig.tag, &expected) {
            (Tag::Hmac(a), Tag::Hmac(b)) => crate::hmac::tags_equal(a, b),
            (Tag::Fast(a), Tag::Fast(b)) => a == b,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(CryptoError::BadSignature { signer: sig.signer })
        }
    }

    /// Number of identities the underlying registry holds.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the underlying registry is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// The chain-verification cache shared with every verifier over the
    /// same registry.
    pub fn cache(&self) -> &VerifierCache {
        self.registry.cache()
    }

    /// The underlying registry's batched-verification token.
    pub(crate) fn batch_token(&self) -> u64 {
        self.registry.batch_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registries() -> [KeyRegistry; 2] {
        [
            KeyRegistry::new(5, 42, SchemeKind::Hmac),
            KeyRegistry::new(5, 42, SchemeKind::Fast),
        ]
    }

    #[test]
    fn sign_verify_roundtrip_both_kinds() {
        for reg in registries() {
            let sig = reg.signer(ProcessId(1)).sign(b"content");
            assert!(reg.verifier().verify(&sig, b"content"));
            assert_eq!(sig.signer(), ProcessId(1));
        }
    }

    #[test]
    fn tampered_content_rejected() {
        for reg in registries() {
            let sig = reg.signer(ProcessId(2)).sign(b"content");
            assert!(!reg.verifier().verify(&sig, b"Content"));
            assert_eq!(
                reg.verifier().check(&sig, b"other"),
                Err(CryptoError::BadSignature {
                    signer: ProcessId(2)
                })
            );
        }
    }

    #[test]
    fn forged_signatures_rejected() {
        for reg in registries() {
            let forged = Signature::forged(ProcessId(3), reg.kind());
            assert!(!reg.verifier().verify(&forged, b"anything"));
        }
    }

    #[test]
    fn cross_identity_signatures_do_not_verify() {
        for reg in registries() {
            let sig_by_0 = reg.signer(ProcessId(0)).sign(b"m");
            // An adversary re-labeling the signer must fail: rebuild a
            // signature claiming p1 with p0's tag via encode/decode surgery.
            let mut enc = Encoder::new();
            sig_by_0.encode(&mut enc);
            let buf = enc.finish();
            let mut forged_buf = buf.to_vec();
            forged_buf[3] = 1; // signer id low byte: 0 -> 1
            let forged = Signature::decode(&mut Decoder::new(&forged_buf)).unwrap();
            assert_eq!(forged.signer(), ProcessId(1));
            assert!(!reg.verifier().verify(&forged, b"m"));
        }
    }

    #[test]
    fn unknown_signer_reported() {
        let reg = KeyRegistry::new(3, 1, SchemeKind::Fast);
        let other = KeyRegistry::new(10, 1, SchemeKind::Fast);
        let sig = other.signer(ProcessId(7)).sign(b"m");
        assert_eq!(
            reg.verifier().check(&sig, b"m"),
            Err(CryptoError::UnknownSigner {
                signer: ProcessId(7),
                registered: 3
            })
        );
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = KeyRegistry::new(2, 1, SchemeKind::Hmac);
        let b = KeyRegistry::new(2, 2, SchemeKind::Hmac);
        let sig = a.signer(ProcessId(0)).sign(b"m");
        assert!(!b.verifier().verify(&sig, b"m"));
    }

    #[test]
    fn same_seed_reproducible() {
        let a = KeyRegistry::new(2, 9, SchemeKind::Fast);
        let b = KeyRegistry::new(2, 9, SchemeKind::Fast);
        let sig = a.signer(ProcessId(1)).sign(b"m");
        assert!(b.verifier().verify(&sig, b"m"));
    }

    #[test]
    fn scheme_kind_mismatch_rejected() {
        let hmac = KeyRegistry::new(2, 5, SchemeKind::Hmac);
        let fast = KeyRegistry::new(2, 5, SchemeKind::Fast);
        let sig = fast.signer(ProcessId(0)).sign(b"m");
        assert!(!hmac.verifier().verify(&sig, b"m"));
    }

    #[test]
    fn signature_encode_decode_roundtrip() {
        for reg in registries() {
            let sig = reg.signer(ProcessId(4)).sign(b"payload");
            let mut enc = Encoder::new();
            sig.encode(&mut enc);
            let buf = enc.finish();
            assert_eq!(buf.len(), sig.encoded_len());
            let decoded = Signature::decode(&mut Decoder::new(&buf)).unwrap();
            assert_eq!(decoded, sig);
            assert!(reg.verifier().verify(&decoded, b"payload"));
        }
    }

    #[test]
    fn decode_bad_discriminant() {
        let buf = [0, 0, 0, 1, 9];
        assert_eq!(
            Signature::decode(&mut Decoder::new(&buf)),
            Err(CryptoError::BadDiscriminant { found: 9 })
        );
    }

    #[test]
    #[should_panic(expected = "outside registry")]
    fn signer_out_of_range_panics() {
        let reg = KeyRegistry::new(2, 0, SchemeKind::Fast);
        let _ = reg.signer(ProcessId(2));
    }

    #[test]
    fn cache_tracks_prefixes_and_hit_rate() {
        let cache = VerifierCache::new();
        let d1 = [1u8; 32];
        let d2 = [2u8; 32];
        let d3 = [3u8; 32];
        assert!(cache.is_empty());
        assert_eq!(cache.longest_verified_prefix(&[d1, d2]), None);
        cache.insert_verified(&[d1, d2]);
        assert_eq!(cache.len(), 2);
        // Longest cached prefix wins, even when a shorter one is also cached.
        assert_eq!(cache.longest_verified_prefix(&[d1, d2, d3]), Some(1));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hit_rate(), 0.5);
    }

    #[test]
    fn cache_clears_when_full_instead_of_growing() {
        // The bounded-memory invariant, now per shard: no matter how many
        // distinct digests are inserted, no shard exceeds its cap (so the
        // whole cache never exceeds CACHE_CAP entries).
        let cache = VerifierCache::new();
        let mut digest = [0u8; 32];
        for i in 0..(2 * CACHE_CAP as u64) {
            digest[..8].copy_from_slice(&i.to_be_bytes());
            cache.insert_verified(&[digest]);
            if i % 4096 == 0 {
                assert!(cache.len() <= CACHE_CAP, "after {} inserts", i + 1);
            }
        }
        assert!(cache.len() <= CACHE_CAP);
        assert!(!cache.is_empty());

        // A shard at its cap clears and keeps only the overflowing digest:
        // hammer one shard (constant XOR fold) past SHARD_CAP.
        let cache = VerifierCache::new();
        let mut digest = [0u8; 32];
        for i in 0..(SHARD_CAP as u16) {
            digest[..2].copy_from_slice(&i.to_be_bytes());
            digest[2] = (i & 0xFF) as u8 ^ (i >> 8) as u8; // keep fold 0
            cache.insert_verified(&[digest]);
        }
        assert_eq!(cache.len(), SHARD_CAP);
        let i = SHARD_CAP as u16;
        digest[..2].copy_from_slice(&i.to_be_bytes());
        digest[2] = (i & 0xFF) as u8 ^ (i >> 8) as u8;
        cache.insert_verified(&[digest]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn deferred_inserts_invisible_until_flush() {
        let cache = VerifierCache::new();
        cache.set_deferred(true);
        assert!(cache.is_deferred());
        let d = [9u8; 32];
        cache.insert_verified(&[d]);
        // Buffered, not published: lookups still miss.
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.longest_verified_prefix(&[d]), None);
        cache.flush_pending();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.longest_verified_prefix(&[d]), Some(0));
    }

    #[test]
    fn disabling_deferred_mode_flushes() {
        let cache = VerifierCache::new();
        cache.set_deferred(true);
        cache.insert_verified(&[[4u8; 32]]);
        assert_eq!(cache.len(), 0);
        cache.set_deferred(false);
        assert!(!cache.is_deferred());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn deferred_flush_applies_cap_as_one_batch() {
        // Fill one shard (constant XOR fold of 0) to its cap…
        let fold0 = |i: u16| {
            let mut d = [0u8; 32];
            d[..2].copy_from_slice(&i.to_be_bytes());
            d[2] = (i & 0xFF) as u8 ^ (i >> 8) as u8;
            d
        };
        let cache = VerifierCache::new();
        for i in 0..(SHARD_CAP as u16) {
            cache.insert_verified(&[fold0(i)]);
        }
        assert_eq!(cache.len(), SHARD_CAP);
        cache.set_deferred(true);
        // …then buffer two more for the same shard; combined they overflow
        // its cap, so the flush clears the shard once and then applies the
        // whole batch.
        cache.insert_verified(&[fold0(SHARD_CAP as u16)]);
        cache.insert_verified(&[fold0(SHARD_CAP as u16 + 1)]);
        cache.flush_pending();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sharding_never_changes_lookup_outcomes() {
        // Digests land in content-determined shards; lookups agree with a
        // reference (unsharded) set over many mixed inserts.
        let cache = VerifierCache::new();
        let mut reference = HashSet::new();
        let digest = |i: u64| {
            let mut d = [0u8; 32];
            d[..8].copy_from_slice(&i.to_be_bytes());
            d[8..16].copy_from_slice(&i.wrapping_mul(0x9E37_79B9).to_be_bytes());
            d
        };
        for i in 0..512u64 {
            if i % 3 != 0 {
                cache.insert_verified(&[digest(i)]);
                reference.insert(digest(i));
            }
        }
        for i in 0..512u64 {
            let found = cache.longest_verified_prefix(&[digest(i)]).is_some();
            assert_eq!(found, reference.contains(&digest(i)), "digest {i}");
        }
    }

    #[test]
    fn cap_clears_count_as_evictions() {
        let cache = VerifierCache::with_shard_cap(4);
        assert_eq!(cache.shard_cap(), 4);
        // Hammer one shard (constant XOR fold of 0) well past its cap.
        let fold0 = |i: u16| {
            let mut d = [0u8; 32];
            d[..2].copy_from_slice(&i.to_be_bytes());
            d[2] = (i & 0xFF) as u8 ^ (i >> 8) as u8;
            d
        };
        for i in 0..9 {
            cache.insert_verified(&[fold0(i)]);
        }
        // Inserts 5 and 9 each found the shard full: two clears of 4.
        assert_eq!(cache.evictions(), 8);
        assert_eq!(cache.len(), 1);

        // The deferred flush path counts its clear too.
        cache.set_deferred(true);
        for i in 9..13 {
            cache.insert_verified(&[fold0(i)]);
        }
        cache.flush_pending();
        assert_eq!(cache.evictions(), 9);
    }

    #[test]
    fn cap_clear_retains_digests_touched_this_flush() {
        // Regression: a shard at its cap used to clear *everything*,
        // including a digest a lookup had reused moments earlier in the
        // same flush window — the next verification depending on that
        // prefix then redundantly re-verified the whole chain. A reused
        // digest is now pinned until the next flush boundary.
        let cache = VerifierCache::with_shard_cap(2);
        let fold0 = |i: u16| {
            let mut d = [0u8; 32];
            d[..2].copy_from_slice(&i.to_be_bytes());
            d[2] = (i & 0xFF) as u8 ^ (i >> 8) as u8; // keep fold 0
            d
        };
        let hot = fold0(0);
        cache.insert_verified(&[hot]);
        // A lookup reuses `hot`, pinning it for this flush window.
        assert_eq!(cache.longest_verified_prefix(&[hot]), Some(0));
        // Cap pressure in the same window: the shard overflows and
        // clears — but must keep the pinned digest.
        cache.insert_verified(&[fold0(1)]);
        cache.insert_verified(&[fold0(2)]);
        assert!(cache.evictions() > 0);
        assert_eq!(
            cache.longest_verified_prefix(&[hot]),
            Some(0),
            "cap-clear evicted a digest reused this flush"
        );
        // The pin expires at the flush boundary, so the cap still bounds
        // memory: after a flush an untouched `hot` is evictable again.
        cache.flush_pending();
        cache.insert_verified(&[fold0(3)]);
        assert_eq!(cache.longest_verified_prefix(&[hot]), None);
    }

    #[test]
    fn shard_cap_reconfigurable_mid_run() {
        let cache = VerifierCache::new();
        assert_eq!(cache.shard_cap(), SHARD_CAP);
        cache.set_shard_cap(0); // clamped
        assert_eq!(cache.shard_cap(), 1);
        let fold0 = |i: u16| {
            let mut d = [0u8; 32];
            d[..2].copy_from_slice(&i.to_be_bytes());
            d[2] = (i & 0xFF) as u8 ^ (i >> 8) as u8;
            d
        };
        cache.insert_verified(&[fold0(0)]);
        cache.insert_verified(&[fold0(1)]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn shared_cache_spans_same_seed_registries() {
        let a = KeyRegistry::new(3, 11, SchemeKind::Fast);
        let b = KeyRegistry::with_shared_cache(3, 11, SchemeKind::Fast, a.shared_cache());
        a.cache().insert_verified(&[[5u8; 32]]);
        assert_eq!(b.cache().len(), 1);
        // Distinct registries still get distinct batch tokens, so chain
        // stamps cannot cross even with a shared cache.
        assert_ne!(a.batch_token(), b.batch_token());
    }

    #[test]
    fn cache_is_shared_across_verifier_clones() {
        let reg = KeyRegistry::new(2, 0, SchemeKind::Fast);
        let v1 = reg.verifier();
        let v2 = reg.verifier();
        v1.cache().insert_verified(&[[7u8; 32]]);
        assert_eq!(v2.cache().len(), 1);
        assert_eq!(reg.cache().len(), 1);
    }

    mod props {
        use super::*;
        use crate::testkit::run_cases;

        #[test]
        fn prop_sign_verify() {
            run_cases(48, 0x21, |gen| {
                let seed = gen.u64();
                let id = gen.u32_in(0, 8);
                let msg = gen.vec_u8(0, 128);
                for kind in [SchemeKind::Hmac, SchemeKind::Fast] {
                    let reg = KeyRegistry::new(8, seed, kind);
                    let sig = reg.signer(ProcessId(id)).sign(&msg);
                    assert!(reg.verifier().verify(&sig, &msg));
                }
            });
        }

        #[test]
        fn prop_wrong_message_rejected() {
            run_cases(48, 0x22, |gen| {
                let seed = gen.u64();
                let msg = gen.vec_u8(1, 64);
                let flip = gen.usize();
                for kind in [SchemeKind::Hmac, SchemeKind::Fast] {
                    let reg = KeyRegistry::new(4, seed, kind);
                    let sig = reg.signer(ProcessId(0)).sign(&msg);
                    let mut tampered = msg.clone();
                    tampered[flip % msg.len()] ^= 1;
                    assert!(!reg.verifier().verify(&sig, &tampered));
                }
            });
        }

        #[test]
        fn prop_decode_garbage_never_panics() {
            run_cases(48, 0x23, |gen| {
                let data = gen.vec_u8(0, 48);
                let _ = Signature::decode(&mut Decoder::new(&data));
            });
        }
    }
}
