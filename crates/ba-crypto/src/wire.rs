//! Deterministic binary encoding used as the canonical byte representation
//! that signatures cover, plus the [`Bytes`] buffer type it produces.
//!
//! Signing a structured message requires a canonical serialization: two
//! correct processors must produce the *same* bytes for the same logical
//! content, and a tampered encoding must fail to decode or verify. The
//! format is intentionally minimal: fixed-width big-endian integers and
//! length-prefixed byte strings, with no self-description.
//!
//! The traits are sealed by construction (plain functions over `Vec<u8>` /
//! byte slices) so the format cannot diverge between crates.
//!
//! [`Bytes`] is an in-tree replacement for the `bytes` crate's type of the
//! same name: an immutable, cheaply clonable byte string backed by
//! `Arc<[u8]>`. The workspace builds in offline environments where the
//! crates-io registry is unreachable, so core crates carry no external
//! dependencies at all.

use crate::error::CryptoError;
use crate::{ProcessId, Value};
use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte string: a shared `Arc<[u8]>`
/// allocation plus a window `[start, end)` into it.
///
/// Equality, ordering and hashing follow the *visible* window contents, so
/// a slice compares equal to an owned copy of the same bytes.
///
/// ```
/// use ba_crypto::wire::Bytes;
///
/// let b = Bytes::from(vec![1u8, 2, 3]);
/// let c = b.clone(); // O(1), shares the allocation
/// assert_eq!(&b[..2], &[1, 2]);
/// assert_eq!(b, c);
/// let s = b.slice(1..3); // O(1), still shares the allocation
/// assert_eq!(s, &[2u8, 3][..]);
/// ```
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty byte string.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    fn whole(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Copies a static slice into a buffer (the in-tree type always owns
    /// its storage; the name matches the `bytes` crate for drop-in use).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::whole(Arc::from(data))
    }

    /// Copies an arbitrary slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::whole(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// A zero-copy sub-window: the returned `Bytes` shares this buffer's
    /// allocation and exposes `range` of it. O(1) — no bytes move. This is
    /// what lets a megabyte payload be framed into erasure-coded chunks
    /// that are all views of the one payload allocation.
    ///
    /// # Panics
    /// Panics when `range` is out of bounds or decreasing, matching slice
    /// indexing semantics.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {}..{} out of range for {} bytes",
            range.start,
            range.end,
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Whether `other` is a view of the same underlying allocation —
    /// diagnostic for zero-copy invariants in tests.
    pub fn shares_allocation(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::whole(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.iter().take(32) {
            write!(f, "{byte:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// Incremental encoder producing a canonical byte string.
///
/// ```
/// use ba_crypto::wire::Encoder;
/// use ba_crypto::{ProcessId, Value};
///
/// let mut enc = Encoder::new();
/// enc.u8(3).process_id(ProcessId(7)).value(Value::ONE);
/// let bytes = enc.finish();
/// assert_eq!(bytes.len(), 1 + 4 + 8);
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a processor identity (4 bytes).
    pub fn process_id(&mut self, id: ProcessId) -> &mut Self {
        self.u32(id.0)
    }

    /// Appends a value (8 bytes).
    pub fn value(&mut self, v: Value) -> &mut Self {
        self.u64(v.0)
    }

    /// Appends a length-prefixed byte string (`u32` length + data).
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.u32(data.len() as u32);
        self.buf.extend_from_slice(data);
        self
    }

    /// Appends raw bytes with no length prefix (caller knows the framing).
    pub fn raw(&mut self, data: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(data);
        self
    }

    /// Consumes the encoder, returning the immutable byte string.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Borrows the bytes written so far without consuming the encoder.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-style decoder over a byte slice.
///
/// Every accessor returns [`CryptoError::Truncated`] when the input is too
/// short, so malformed (possibly adversarial) messages surface as errors
/// rather than panics.
///
/// ```
/// use ba_crypto::wire::{Decoder, Encoder};
///
/// let mut enc = Encoder::new();
/// enc.u32(42).bytes(b"hi");
/// let buf = enc.finish();
/// let mut dec = Decoder::new(&buf);
/// assert_eq!(dec.u32()?, 42);
/// assert_eq!(dec.bytes()?, b"hi");
/// assert!(dec.is_exhausted());
/// # Ok::<(), ba_crypto::CryptoError>(())
/// ```
#[derive(Debug)]
pub struct Decoder<'a> {
    rest: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { rest: data }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CryptoError> {
        if self.rest.len() < n {
            return Err(CryptoError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if no bytes remain.
    pub fn u8(&mut self) -> Result<u8, CryptoError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CryptoError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CryptoError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a processor identity.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] on short input.
    pub fn process_id(&mut self) -> Result<ProcessId, CryptoError> {
        Ok(ProcessId(self.u32()?))
    }

    /// Reads a value.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] on short input.
    pub fn value(&mut self) -> Result<Value, CryptoError> {
        Ok(Value(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if the prefix or body is short.
    pub fn bytes(&mut self) -> Result<&'a [u8], CryptoError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CryptoError> {
        self.take(n)
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Whether all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.rest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut enc = Encoder::with_capacity(64);
        enc.u8(7)
            .u32(0xdead_beef)
            .u64(0x0123_4567_89ab_cdef)
            .process_id(ProcessId(9))
            .value(Value(55))
            .bytes(b"payload")
            .raw(&[1, 2, 3]);
        let buf = enc.finish();

        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(dec.process_id().unwrap(), ProcessId(9));
        assert_eq!(dec.value().unwrap(), Value(55));
        assert_eq!(dec.bytes().unwrap(), b"payload");
        assert_eq!(dec.raw(3).unwrap(), &[1, 2, 3]);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let mut enc = Encoder::new();
        enc.bytes(b"abcdef");
        let buf = enc.finish();

        // Cut the body short.
        let mut dec = Decoder::new(&buf[..buf.len() - 1]);
        assert_eq!(dec.bytes(), Err(CryptoError::Truncated));

        // Cut the length prefix short.
        let mut dec = Decoder::new(&buf[..2]);
        assert_eq!(dec.bytes(), Err(CryptoError::Truncated));

        let mut dec = Decoder::new(&[]);
        assert_eq!(dec.u8(), Err(CryptoError::Truncated));
        assert_eq!(dec.u32(), Err(CryptoError::Truncated));
        assert_eq!(dec.u64(), Err(CryptoError::Truncated));
    }

    #[test]
    fn adversarial_length_prefix_is_rejected() {
        // Length prefix claims 4 GiB of data.
        let buf = [0xff, 0xff, 0xff, 0xff, 1, 2, 3];
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.bytes(), Err(CryptoError::Truncated));
    }

    #[test]
    fn encoder_len_tracks_writes() {
        let mut enc = Encoder::new();
        assert!(enc.is_empty());
        enc.u8(1);
        assert_eq!(enc.len(), 1);
        enc.bytes(b"xy");
        assert_eq!(enc.len(), 1 + 4 + 2);
        assert_eq!(enc.as_slice().len(), enc.len());
    }

    #[test]
    fn encoding_is_deterministic() {
        let build = || {
            let mut e = Encoder::new();
            e.process_id(ProcessId(3)).value(Value(4)).bytes(b"zz");
            e.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn bytes_type_behaves_like_a_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(b.as_ref(), &[1u8, 2, 3, 4][..]);
        let clone = b.clone();
        assert_eq!(b, clone);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy"), Bytes::copy_from_slice(b"xy"));
        assert_eq!(Bytes::default(), Bytes::new());
        // Ordering and hashing follow the byte content (BTreeSet keys).
        let mut set = std::collections::BTreeSet::new();
        set.insert(Bytes::from_static(b"b"));
        set.insert(Bytes::from_static(b"a"));
        assert_eq!(set.iter().next().unwrap(), &Bytes::from_static(b"a"));
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let b = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let s = b.slice(4..12);
        assert_eq!(s.len(), 8);
        assert_eq!(&s[..], &(4u8..12).collect::<Vec<u8>>()[..]);
        assert!(b.shares_allocation(&s), "slice must not reallocate");
        // Slices of slices compose and stay views.
        let ss = s.slice(2..5);
        assert_eq!(&ss[..], &[6u8, 7, 8]);
        assert!(b.shares_allocation(&ss));
        // Content equality ignores provenance.
        assert_eq!(ss, Bytes::copy_from_slice(&[6, 7, 8]));
        assert!(!ss.shares_allocation(&Bytes::copy_from_slice(&[6, 7, 8])));
        // Empty and full-range slices behave.
        assert!(b.slice(3..3).is_empty());
        assert_eq!(b.slice(0..b.len()), b);
        // Hash/order follow content: a slice keys the same as its copy.
        let mut set = std::collections::BTreeSet::new();
        set.insert(b.slice(4..12));
        assert!(set.contains(&Bytes::copy_from_slice(&(4u8..12).collect::<Vec<u8>>())));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn bytes_debug_truncates_long_buffers() {
        let short = format!("{:?}", Bytes::from_static(&[0xAB, 0xCD]));
        assert_eq!(short, "b\"abcd\"");
        let long = format!("{:?}", Bytes::from(vec![0u8; 100]));
        assert!(long.contains("(100 bytes)"));
    }

    mod props {
        use super::*;
        use crate::testkit::run_cases;

        #[test]
        fn prop_bytes_roundtrip() {
            run_cases(48, 0x11, |gen| {
                let data = gen.vec_u8(0, 256);
                let mut enc = Encoder::new();
                enc.bytes(&data);
                let buf = enc.finish();
                let mut dec = Decoder::new(&buf);
                assert_eq!(dec.bytes().unwrap(), &data[..]);
                assert!(dec.is_exhausted());
            });
        }

        #[test]
        fn prop_mixed_roundtrip() {
            run_cases(48, 0x12, |gen| {
                let (a, b, c) = (gen.u32(), gen.u64(), gen.rng().next_u8());
                let mut enc = Encoder::new();
                enc.u32(a).u64(b).u8(c);
                let buf = enc.finish();
                let mut dec = Decoder::new(&buf);
                assert_eq!(dec.u32().unwrap(), a);
                assert_eq!(dec.u64().unwrap(), b);
                assert_eq!(dec.u8().unwrap(), c);
            });
        }

        #[test]
        fn prop_random_garbage_never_panics() {
            run_cases(48, 0x13, |gen| {
                let data = gen.vec_u8(0, 64);
                let mut dec = Decoder::new(&data);
                // Exercise every accessor; none may panic.
                let _ = dec.u8();
                let _ = dec.u32();
                let _ = dec.bytes();
                let _ = dec.u64();
                let _ = dec.process_id();
                let _ = dec.value();
            });
        }
    }
}
