//! Deterministic binary encoding used as the canonical byte representation
//! that signatures cover.
//!
//! Signing a structured message requires a canonical serialization: two
//! correct processors must produce the *same* bytes for the same logical
//! content, and a tampered encoding must fail to decode or verify. The
//! format is intentionally minimal: fixed-width big-endian integers and
//! length-prefixed byte strings, with no self-description.
//!
//! The traits are sealed by construction (plain functions over `BufMut` /
//! byte slices) so the format cannot diverge between crates.

use crate::error::CryptoError;
use crate::{ProcessId, Value};
use bytes::{BufMut, Bytes, BytesMut};

/// Incremental encoder producing a canonical byte string.
///
/// ```
/// use ba_crypto::wire::Encoder;
/// use ba_crypto::{ProcessId, Value};
///
/// let mut enc = Encoder::new();
/// enc.u8(3).process_id(ProcessId(7)).value(Value::ONE);
/// let bytes = enc.finish();
/// assert_eq!(bytes.len(), 1 + 4 + 8);
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::new(),
        }
    }

    /// Creates an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }

    /// Appends a processor identity (4 bytes).
    pub fn process_id(&mut self, id: ProcessId) -> &mut Self {
        self.u32(id.0)
    }

    /// Appends a value (8 bytes).
    pub fn value(&mut self, v: Value) -> &mut Self {
        self.u64(v.0)
    }

    /// Appends a length-prefixed byte string (`u32` length + data).
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.u32(data.len() as u32);
        self.buf.put_slice(data);
        self
    }

    /// Appends raw bytes with no length prefix (caller knows the framing).
    pub fn raw(&mut self, data: &[u8]) -> &mut Self {
        self.buf.put_slice(data);
        self
    }

    /// Consumes the encoder, returning the immutable byte string.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-style decoder over a byte slice.
///
/// Every accessor returns [`CryptoError::Truncated`] when the input is too
/// short, so malformed (possibly adversarial) messages surface as errors
/// rather than panics.
///
/// ```
/// use ba_crypto::wire::{Decoder, Encoder};
///
/// let mut enc = Encoder::new();
/// enc.u32(42).bytes(b"hi");
/// let buf = enc.finish();
/// let mut dec = Decoder::new(&buf);
/// assert_eq!(dec.u32()?, 42);
/// assert_eq!(dec.bytes()?, b"hi");
/// assert!(dec.is_exhausted());
/// # Ok::<(), ba_crypto::CryptoError>(())
/// ```
#[derive(Debug)]
pub struct Decoder<'a> {
    rest: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { rest: data }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CryptoError> {
        if self.rest.len() < n {
            return Err(CryptoError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if no bytes remain.
    pub fn u8(&mut self) -> Result<u8, CryptoError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CryptoError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CryptoError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a processor identity.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] on short input.
    pub fn process_id(&mut self) -> Result<ProcessId, CryptoError> {
        Ok(ProcessId(self.u32()?))
    }

    /// Reads a value.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] on short input.
    pub fn value(&mut self) -> Result<Value, CryptoError> {
        Ok(Value(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if the prefix or body is short.
    pub fn bytes(&mut self) -> Result<&'a [u8], CryptoError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    /// Returns [`CryptoError::Truncated`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CryptoError> {
        self.take(n)
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Whether all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.rest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut enc = Encoder::with_capacity(64);
        enc.u8(7)
            .u32(0xdead_beef)
            .u64(0x0123_4567_89ab_cdef)
            .process_id(ProcessId(9))
            .value(Value(55))
            .bytes(b"payload")
            .raw(&[1, 2, 3]);
        let buf = enc.finish();

        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(dec.process_id().unwrap(), ProcessId(9));
        assert_eq!(dec.value().unwrap(), Value(55));
        assert_eq!(dec.bytes().unwrap(), b"payload");
        assert_eq!(dec.raw(3).unwrap(), &[1, 2, 3]);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let mut enc = Encoder::new();
        enc.bytes(b"abcdef");
        let buf = enc.finish();

        // Cut the body short.
        let mut dec = Decoder::new(&buf[..buf.len() - 1]);
        assert_eq!(dec.bytes(), Err(CryptoError::Truncated));

        // Cut the length prefix short.
        let mut dec = Decoder::new(&buf[..2]);
        assert_eq!(dec.bytes(), Err(CryptoError::Truncated));

        let mut dec = Decoder::new(&[]);
        assert_eq!(dec.u8(), Err(CryptoError::Truncated));
        assert_eq!(dec.u32(), Err(CryptoError::Truncated));
        assert_eq!(dec.u64(), Err(CryptoError::Truncated));
    }

    #[test]
    fn adversarial_length_prefix_is_rejected() {
        // Length prefix claims 4 GiB of data.
        let buf = [0xff, 0xff, 0xff, 0xff, 1, 2, 3];
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.bytes(), Err(CryptoError::Truncated));
    }

    #[test]
    fn encoder_len_tracks_writes() {
        let mut enc = Encoder::new();
        assert!(enc.is_empty());
        enc.u8(1);
        assert_eq!(enc.len(), 1);
        enc.bytes(b"xy");
        assert_eq!(enc.len(), 1 + 4 + 2);
    }

    #[test]
    fn encoding_is_deterministic() {
        let build = || {
            let mut e = Encoder::new();
            e.process_id(ProcessId(3)).value(Value(4)).bytes(b"zz");
            e.finish()
        };
        assert_eq!(build(), build());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
                let mut enc = Encoder::new();
                enc.bytes(&data);
                let buf = enc.finish();
                let mut dec = Decoder::new(&buf);
                prop_assert_eq!(dec.bytes().unwrap(), &data[..]);
                prop_assert!(dec.is_exhausted());
            }

            #[test]
            fn prop_mixed_roundtrip(a in any::<u32>(), b in any::<u64>(), c in any::<u8>()) {
                let mut enc = Encoder::new();
                enc.u32(a).u64(b).u8(c);
                let buf = enc.finish();
                let mut dec = Decoder::new(&buf);
                prop_assert_eq!(dec.u32().unwrap(), a);
                prop_assert_eq!(dec.u64().unwrap(), b);
                prop_assert_eq!(dec.u8().unwrap(), c);
            }

            #[test]
            fn prop_random_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
                let mut dec = Decoder::new(&data);
                // Exercise every accessor; none may panic.
                let _ = dec.u8();
                let _ = dec.u32();
                let _ = dec.bytes();
                let _ = dec.u64();
                let _ = dec.process_id();
                let _ = dec.value();
            }
        }
    }
}
