//! A tiny deterministic pseudo-random generator (splitmix64).
//!
//! The crates-io registry is unreachable in the environments this
//! reproduction targets, so the workspace carries no external `rand`
//! dependency. Everything that needs randomness — the fuzz adversaries in
//! `ba-sim`/`ba-algos`, the in-tree property-test harness
//! ([`testkit`](crate::testkit)) and the sweep seed derivation — uses this
//! generator instead. Splitmix64 passes BigCrush, is seedable from a single
//! `u64`, and its tiny state makes per-cell seed derivation trivial, which
//! is exactly what deterministic parallel sweeps require.

/// Advances a splitmix64 state and returns the next output word.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed from a base seed and an index —
/// used for per-cell seeds in parameter sweeps and per-case seeds in the
/// property-test harness.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut s = base ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// A seedable deterministic RNG.
///
/// ```
/// use ba_crypto::rng::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.range_u32(0, 10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: seed ^ 0x6C62_272E_07BB_0142,
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// The next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// The next boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform draw from `lo..hi` (half-open).
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Modulo bias is irrelevant for simulation fuzzing purposes.
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw from `lo..hi` as `u32`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform draw from `lo..hi` as `usize`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A vector of `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u8()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(SimRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            let v = r.range_u64(3, 17);
            assert!((3..17).contains(&v));
            let u = r.range_usize(0, 5);
            assert!(u < 5);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[r.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range_u64(5, 5);
    }

    #[test]
    fn derive_seed_spreads() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn bytes_have_requested_length() {
        assert_eq!(SimRng::new(3).bytes(37).len(), 37);
        assert!(SimRng::new(3).bytes(0).is_empty());
    }
}
