//! Regression net for the persistent worker pool's determinism contract.
//!
//! Two guarantees the data-plane rebuild must never lose:
//!
//! * every checkable target produces byte-identical outcomes (verdict,
//!   message counts, crypto counters) at any intra-phase thread count,
//!   including under fault schedules with silent / crashing / omitting
//!   processors and link drops;
//! * batched phase-barrier verification is an *accounting* optimisation:
//!   decisions, message counts and phase counts are unchanged, signature
//!   verifications can only shrink, and both modes stay thread-count
//!   invariant on their own.

use ba_algos::checkable::{targets, CheckConfig, CheckOutcome};
use ba_algos::dolev_strong;
use ba_crypto::{ProcessId, SchemeKind, Value};
use ba_sim::schedule::{FaultBehavior, LinkDrop, ScheduleSpec};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// A deterministic fingerprint of everything a checked run reports. The
/// `Debug` rendering covers the verdict (including violation details) and
/// the full metrics are summarised by the count fields the bound
/// predicates consume.
fn fingerprint(outcome: &CheckOutcome) -> String {
    format!(
        "verdict={:?} msgs={} bound={} omitted={} phases={} err={:?}",
        outcome.verdict,
        outcome.messages_by_correct,
        outcome.message_bound,
        outcome.omitted_messages,
        outcome.phases,
        outcome.schedule_error,
    )
}

/// A non-trivial schedule for an `(n, t)` target: one silent relay, one
/// that crashes mid-run, and a link drop from the silent one (link drops
/// must name a faulty sender). Processor 0 stays honest so the ds targets
/// keep their transmitter.
fn schedule_for(n: usize, t: usize) -> ScheduleSpec {
    let mut faults = vec![(ProcessId(1), FaultBehavior::Silent)];
    if t >= 2 && n >= 4 {
        faults.push((ProcessId(2), FaultBehavior::CrashAt { phase: 2 }));
    }
    ScheduleSpec {
        faults,
        link_drops: vec![LinkDrop {
            phase: 1,
            from: ProcessId(1),
            to: ProcessId(0),
        }],
    }
}

#[test]
fn every_checkable_target_is_thread_count_invariant() {
    for target in targets() {
        // alg1 requires n == 2t + 1; the ds family takes anything with
        // n >= t + 2. Both accept (7, 3).
        let (n, t) = (7usize, 3usize);
        assert!(
            target.supports(n, t),
            "{}: grid point (7, 3) unexpectedly unsupported",
            target.name
        );
        let spec = schedule_for(n, t);
        spec.validate(n, t).expect("schedule is well-formed");
        let run = |threads: usize| {
            target.run(&CheckConfig::new(
                n,
                t,
                Value::ONE,
                11,
                threads,
                spec.clone(),
            ))
        };
        let baseline = fingerprint(&run(1));
        for threads in THREAD_COUNTS {
            assert_eq!(
                fingerprint(&run(threads)),
                baseline,
                "{}: outcome diverged at threads={threads}",
                target.name
            );
        }
    }
}

#[test]
fn fault_free_targets_are_thread_count_invariant() {
    for target in targets() {
        let (n, t) = (9usize, 4usize);
        assert!(target.supports(n, t), "{}", target.name);
        let run = |threads: usize| {
            target.run(&CheckConfig::new(
                n,
                t,
                Value::ZERO,
                3,
                threads,
                ScheduleSpec::default(),
            ))
        };
        let baseline = fingerprint(&run(1));
        for threads in THREAD_COUNTS {
            assert_eq!(
                fingerprint(&run(threads)),
                baseline,
                "{}: fault-free outcome diverged at threads={threads}",
                target.name
            );
        }
    }
}

/// Batched phase-barrier verification versus per-delivery verification,
/// both swept across thread counts: the protocol-visible outcome is a
/// property of neither knob, and batching can only reduce signature
/// verifications.
#[test]
fn batched_verification_is_pure_accounting() {
    let (n, t) = (16usize, 4usize);
    let run = |threads: usize, batch_verify: bool| {
        dolev_strong::run(
            n,
            t,
            Value::ONE,
            dolev_strong::DsOptions {
                variant: dolev_strong::Variant::Broadcast,
                scheme: SchemeKind::Fast,
                threads,
                batch_verify,
                ..Default::default()
            },
        )
        .unwrap()
    };

    let per_delivery = run(1, false);
    let batched = run(1, true);

    // Protocol-visible outcome identical.
    assert_eq!(batched.verdict.agreed, per_delivery.verdict.agreed);
    assert_eq!(
        batched.verdict.correct_count,
        per_delivery.verdict.correct_count
    );
    let (bm, pm) = (&batched.outcome.metrics, &per_delivery.outcome.metrics);
    assert_eq!(bm.messages_by_correct, pm.messages_by_correct);
    assert_eq!(bm.signatures_by_correct, pm.signatures_by_correct);
    assert_eq!(bm.omitted_messages, pm.omitted_messages);
    assert_eq!(bm.phases, pm.phases);
    assert_eq!(bm.per_phase.len(), pm.per_phase.len());

    // Batching verifies each unique chain once instead of per delivery.
    assert!(
        bm.crypto.sig_verifications < pm.crypto.sig_verifications,
        "batched {} >= per-delivery {}",
        bm.crypto.sig_verifications,
        pm.crypto.sig_verifications
    );

    // Each mode is thread-count invariant on its own, crypto counters
    // included.
    for batch_verify in [false, true] {
        let baseline = run(1, batch_verify).outcome.metrics;
        for threads in THREAD_COUNTS {
            assert_eq!(
                run(threads, batch_verify).outcome.metrics,
                baseline,
                "batch_verify={batch_verify} diverged at threads={threads}"
            );
        }
    }
}
