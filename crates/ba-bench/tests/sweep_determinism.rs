//! `ba_sim::sweep` on real experiment cells (not the doc example): the
//! sweep output must be byte-identical for any worker-thread count, even
//! when the cells themselves use the engine's parallel stepping.

use ba_algos::{algorithm3, dolev_strong};
use ba_crypto::{SchemeKind, Value};
use ba_sim::sweep::run_sweep;

/// One sweep cell: a real protocol run, returning the full accounting a
/// sweep consumer would aggregate.
type CellResult = (String, Option<Value>, ba_sim::Metrics);

fn run_cells(threads: usize) -> Vec<CellResult> {
    // A mixed grid like the experiment binaries build: Dolev-Strong
    // broadcast cells across n, plus Algorithm 3 cells across (n, s). Each
    // cell builds its own registry, so cells are independent.
    let cells: Vec<(&str, usize, usize, usize)> = vec![
        ("ds", 8, 2, 0),
        ("ds", 16, 3, 0),
        ("ds", 25, 3, 0),
        ("alg3", 50, 2, 8),
        ("alg3", 64, 3, 12),
    ];
    run_sweep(&cells, threads, |idx, (kind, n, t, s)| match *kind {
        "ds" => {
            let r = dolev_strong::run(
                *n,
                *t,
                Value::ONE,
                dolev_strong::DsOptions {
                    variant: dolev_strong::Variant::Broadcast,
                    seed: idx as u64,
                    scheme: SchemeKind::Fast,
                    // Cells use parallel intra-phase stepping too: the
                    // engine contract keeps results thread-count-invariant.
                    threads: 2,
                    ..Default::default()
                },
            )
            .unwrap();
            (
                format!("ds n={n} t={t}"),
                r.verdict.agreed,
                r.outcome.metrics,
            )
        }
        "alg3" => {
            let r = algorithm3::run(
                *n,
                *t,
                *s,
                Value::ONE,
                algorithm3::Alg3Options {
                    seed: idx as u64,
                    scheme: SchemeKind::Fast,
                    threads: 2,
                    ..Default::default()
                },
            )
            .unwrap();
            (
                format!("alg3 n={n} s={s}"),
                r.verdict.agreed,
                r.outcome.metrics,
            )
        }
        other => panic!("unknown cell kind {other}"),
    })
}

#[test]
fn sweep_output_identical_for_1_2_and_8_threads() {
    let baseline = run_cells(1);
    assert_eq!(baseline.len(), 5);
    for (label, agreed, _) in &baseline {
        assert_eq!(*agreed, Some(Value::ONE), "{label}");
    }
    for threads in [2usize, 8] {
        let got = run_cells(threads);
        assert_eq!(got, baseline, "threads={threads}");
    }
}
