//! Criterion benches for the substrates: the from-scratch crypto and the
//! synchronous engine itself.

use ba_crypto::keys::{KeyRegistry, SchemeKind};
use ba_crypto::sha256::Sha256;
use ba_crypto::{Chain, ProcessId, Value};
use ba_sim::actor::{Actor, Envelope, Outbox};
use ba_sim::engine::Simulation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| black_box(Sha256::digest(data)))
        });
    }
    g.finish();
}

fn bench_signing(c: &mut Criterion) {
    let mut g = c.benchmark_group("signing");
    for kind in [SchemeKind::Hmac, SchemeKind::Fast] {
        let registry = KeyRegistry::new(8, 1, kind);
        let signer = registry.signer(ProcessId(0));
        let verifier = registry.verifier();
        let msg = vec![7u8; 128];
        g.bench_function(BenchmarkId::new("sign", format!("{kind:?}")), |b| {
            b.iter(|| black_box(signer.sign(&msg)))
        });
        let sig = signer.sign(&msg);
        g.bench_function(BenchmarkId::new("verify", format!("{kind:?}")), |b| {
            b.iter(|| black_box(verifier.verify(&sig, &msg)))
        });
    }
    g.finish();
}

fn bench_chains(c: &mut Criterion) {
    let mut g = c.benchmark_group("chains");
    for len in [2usize, 8, 32] {
        let registry = KeyRegistry::new(64, 1, SchemeKind::Hmac);
        let mut chain = Chain::new(1, Value::ONE);
        for i in 0..len {
            chain.sign_and_append(&registry.signer(ProcessId(i as u32)));
        }
        let verifier = registry.verifier();
        g.bench_with_input(BenchmarkId::new("verify", len), &chain, |b, chain| {
            b.iter(|| black_box(chain.verify(&verifier).is_ok()))
        });
    }
    g.finish();
}

/// A flood actor for measuring raw engine dispatch overhead.
#[derive(Debug)]
struct Flood {
    n: usize,
}

impl Actor<Value> for Flood {
    fn step(&mut self, _phase: usize, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
        black_box(inbox.len());
        out.broadcast((0..self.n as u32).map(ProcessId), Value::ONE);
    }
    fn decision(&self) -> Option<Value> {
        Some(Value::ONE)
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_flood");
    for n in [16usize, 64] {
        g.throughput(Throughput::Elements((n * (n - 1) * 5) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let actors: Vec<Box<dyn Actor<Value>>> = (0..n)
                    .map(|_| Box::new(Flood { n }) as Box<dyn Actor<Value>>)
                    .collect();
                let mut sim = Simulation::new(actors);
                black_box(sim.run(5).metrics.messages_by_correct)
            })
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(30)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_sha256, bench_signing, bench_chains, bench_engine
}
criterion_main!(benches);
