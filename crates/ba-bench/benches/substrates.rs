//! Benches for the substrates — the from-scratch crypto and the
//! synchronous engine itself — timed with the in-tree
//! `ba_bench::microbench` harness.
//!
//! ```text
//! cargo bench -p ba-bench --bench substrates
//! ```

use ba_bench::microbench::{bench, print_samples, Sample};
use ba_crypto::keys::{KeyRegistry, SchemeKind};
use ba_crypto::sha256::Sha256;
use ba_crypto::{Chain, ProcessId, Value};
use ba_sim::actor::{Actor, Envelope, Outbox};
use ba_sim::engine::Simulation;
use std::hint::black_box;

fn bench_sha256() -> Vec<Sample> {
    [64usize, 1024, 16 * 1024]
        .iter()
        .map(|&size| {
            let data = vec![0xABu8; size];
            bench(format!("{size} bytes"), move || Sha256::digest(&data))
        })
        .collect()
}

fn bench_signing() -> Vec<Sample> {
    let mut samples = Vec::new();
    for kind in [SchemeKind::Hmac, SchemeKind::Fast] {
        let registry = KeyRegistry::new(8, 1, kind);
        let signer = registry.signer(ProcessId(0));
        let verifier = registry.verifier();
        let msg = vec![7u8; 128];
        samples.push(bench(format!("sign {kind:?}"), {
            let signer = signer.clone();
            let msg = msg.clone();
            move || signer.sign(&msg)
        }));
        let sig = signer.sign(&msg);
        samples.push(bench(format!("verify {kind:?}"), move || {
            verifier.verify(&sig, &msg)
        }));
    }
    samples
}

fn bench_chains() -> Vec<Sample> {
    let mut samples = Vec::new();
    for len in [2usize, 8, 32] {
        let registry = KeyRegistry::new(64, 1, SchemeKind::Hmac);
        let mut chain = Chain::new(1, Value::ONE);
        for i in 0..len {
            chain.sign_and_append(&registry.signer(ProcessId(i as u32)));
        }
        let verifier = registry.verifier();
        samples.push(bench(format!("verify len={len}"), move || {
            chain.verify(&verifier).is_ok()
        }));
    }
    samples
}

/// A flood actor for measuring raw engine dispatch overhead.
#[derive(Debug)]
struct Flood {
    n: usize,
}

impl Actor<Value> for Flood {
    fn step(&mut self, _phase: usize, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
        black_box(inbox.len());
        out.broadcast((0..self.n as u32).map(ProcessId), Value::ONE);
    }
    fn decision(&self) -> Option<Value> {
        Some(Value::ONE)
    }
}

fn bench_engine() -> Vec<Sample> {
    [16usize, 64]
        .iter()
        .map(|&n| {
            bench(format!("flood n={n} (5 phases)"), move || {
                let actors: Vec<Box<dyn Actor<Value>>> = (0..n)
                    .map(|_| Box::new(Flood { n }) as Box<dyn Actor<Value>>)
                    .collect();
                let mut sim = Simulation::new(actors);
                sim.run(5).metrics.messages_by_correct
            })
        })
        .collect()
}

fn main() {
    print_samples("sha256", &bench_sha256());
    print_samples("signing", &bench_signing());
    print_samples("chains", &bench_chains());
    print_samples("engine flood", &bench_engine());
}
