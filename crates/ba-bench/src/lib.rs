//! Benchmark harness: regenerates every quantitative claim of the paper.
//!
//! The paper has no numbered tables or figures — its evaluation content is
//! the set of theorem bounds. Each experiment `E1..E10` (see DESIGN.md's
//! experiment index) reruns the relevant algorithm/attack sweep and prints
//! a markdown table of *paper bound vs measured count*:
//!
//! | Id | Claim |
//! |----|-------|
//! | E1 | Theorem 1 — `≥ n(t+1)/4` signatures (authenticated) |
//! | E2 | Corollary 1 — `≥ n(t+1)/4` messages (unauthenticated) |
//! | E3 | Theorem 2 — `≥ max{⌈(n−1)/2⌉, (1+t/2)²}` messages |
//! | E4 | Theorem 3 — Algorithm 1: `t+2` phases, `≤ 2t²+2t` messages |
//! | E5 | Theorem 4 — Algorithm 2: `3t+3` phases, `≤ 5t²+5t` messages, proofs |
//! | E6 | Lemma 1 / Theorem 5 — Algorithm 3 sweep, `s = 4t` ⇒ `O(n+t³)` |
//! | E7 | Theorem 6 — Algorithm 4: 3 phases, `≤ 3(m−1)m²`, `≥ N−2t` succeed |
//! | E8 | Lemma 5 / Theorem 7 — Algorithm 5 sweep, `s = t` ⇒ `O(n+t²)` |
//! | E9 | Intro trade-off — phases vs messages via Algorithm 3 group size |
//! | E10 | Who wins — message comparison across all algorithms |
//! | E11 | Lemma 4 — Algorithm 5 activation audit |
//! | E12 | Ablation — proof-of-work activation gating vs always-activate |
//! | E13 | Algorithm 1 decision latency vs the `t+2` bound |
//! | E14 | Crypto cost — hashes, signature checks, verifier-cache hit rate |
//! | E15 | Engine scaling — sequential vs parallel stepping, byte-identical |
//!
//! Run them with `cargo run -p ba-bench --bin experiments -- all` (or a
//! single id); ids fan out across worker threads by default (`--seq` /
//! `--threads N` to control it) with byte-identical stdout either way.
//! Runtime benches live in `benches/`, timed by the in-tree [`microbench`]
//! harness (no external dependency; the registry is unreachable in the
//! environments this workspace targets).
//! `cargo run -p ba-bench --release --bin bench_chain_verify` regenerates
//! `BENCH_chain_verify.json`, and
//! `cargo run -p ba-bench --release --bin bench_engine` regenerates
//! `BENCH_engine.json` (mailbox pooling, O(1) chain cloning and parallel
//! intra-phase stepping; `--dump-trace N` prints a traced run for the CI
//! determinism check).

pub mod experiments;
pub mod microbench;
pub mod table;

pub use table::Table;
