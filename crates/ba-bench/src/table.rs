//! Minimal markdown table rendering for the experiment reports.

use std::fmt::Write as _;

/// A titled markdown table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting; the title goes
    /// into a leading `#` comment line).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = format!("# {}\n", self.title);
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let body = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ");
            format!("| {body} |")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

/// Shorthand for building a row of display-formatted cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["a", "long-header"]);
        t.row(cells!["x", 42]);
        t.row(cells![12345, "y"]);
        let s = t.render();
        assert!(s.contains("### Demo"));
        assert!(s.contains("| a     | long-header |"));
        assert!(s.contains("| x     | 42          |"));
        assert!(s.contains("| 12345 | y           |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_csv_with_quoting() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(cells!["plain", "with,comma"]);
        t.row(cells!["with\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("# T\n"));
        assert!(csv.contains("a,b\n"));
        assert!(csv.contains("plain,\"with,comma\"\n"));
        assert!(csv.contains("\"with\"\"quote\",x\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(cells!["only-one"]);
    }
}
