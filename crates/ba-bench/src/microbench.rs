//! A tiny self-contained wall-clock benchmark harness.
//!
//! The workspace builds with no external crates (the registry is
//! unreachable in the environments it targets), so the `benches/` targets
//! cannot use criterion. This module provides the small subset we need:
//! warm-up, batch-size calibration to a target batch duration, a fixed
//! number of measured batches, and median/mean/min per-iteration times.
//!
//! Timings are written to **stderr** by [`print_samples`] so benchmark
//! binaries can keep stdout byte-stable for any machine-readable output.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark: per-iteration statistics over all batches.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark label.
    pub name: String,
    /// Iterations per measured batch (after calibration).
    pub batch_iters: u32,
    /// Number of measured batches.
    pub batches: u32,
    /// Median per-iteration time across batches, in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time across batches, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest batch's per-iteration time, in nanoseconds.
    pub min_ns: f64,
}

impl Sample {
    /// Renders the median as a human-friendly time string.
    pub fn human_median(&self) -> String {
        human_ns(self.median_ns)
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Target duration of one measured batch. `BA_BENCH_BATCH_MS` overrides
/// the default (20 ms); smaller values make the whole suite faster and
/// noisier.
fn batch_target() -> Duration {
    let ms = std::env::var("BA_BENCH_BATCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_millis(ms.max(1))
}

const MEASURED_BATCHES: u32 = 7;

/// Times `f`, returning per-iteration statistics.
///
/// The closure's return value is passed through [`black_box`] so the work
/// cannot be optimized away. Calibration doubles the batch size until one
/// batch reaches the target duration, then `MEASURED_BATCHES` batches are
/// measured.
pub fn bench<R, F: FnMut() -> R>(name: impl Into<String>, mut f: F) -> Sample {
    // Warm-up and calibration in one: grow the batch until it is slow
    // enough to time reliably.
    let target = batch_target();
    let mut iters: u32 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let took = start.elapsed();
        if took >= target || iters >= 1 << 20 {
            break;
        }
        // Jump close to the target when we already have a signal.
        iters = if took.as_nanos() == 0 {
            iters * 8
        } else {
            let scale = target.as_nanos() as f64 / took.as_nanos() as f64;
            ((iters as f64 * scale * 1.2) as u32).clamp(iters + 1, iters.saturating_mul(8))
        };
    }

    let mut per_iter: Vec<f64> = (0..MEASURED_BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    Sample {
        name: name.into(),
        batch_iters: iters,
        batches: MEASURED_BATCHES,
        median_ns: median,
        mean_ns: mean,
        min_ns: per_iter[0],
    }
}

/// Prints samples as an aligned table on **stderr**.
pub fn print_samples(title: &str, samples: &[Sample]) {
    let width = samples
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    eprintln!("\n== {title} ==");
    eprintln!(
        "{:w$}  {:>12}  {:>12}  {:>12}  {:>10}",
        "name",
        "median",
        "mean",
        "min",
        "iters/batch",
        w = width
    );
    for s in samples {
        eprintln!(
            "{:w$}  {:>12}  {:>12}  {:>12}  {:>10}",
            s.name,
            human_ns(s.median_ns),
            human_ns(s.mean_ns),
            human_ns(s.min_ns),
            s.batch_iters,
            w = width
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        // Keep the batch target tiny so the test is fast.
        std::env::set_var("BA_BENCH_BATCH_MS", "1");
        let s = bench("noop-ish", || std::hint::black_box(3u64).wrapping_mul(7));
        assert!(s.batch_iters >= 1);
        assert!(s.median_ns >= 0.0);
        assert!(s.min_ns <= s.median_ns);
        std::env::remove_var("BA_BENCH_BATCH_MS");
    }

    #[test]
    fn human_formatting_scales() {
        assert!(human_ns(12.0).ends_with("ns"));
        assert!(human_ns(12_000.0).ends_with("µs"));
        assert!(human_ns(12_000_000.0).ends_with("ms"));
        assert!(human_ns(12_000_000_000.0).ends_with('s'));
    }
}
