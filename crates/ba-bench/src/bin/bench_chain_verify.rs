//! Microbenchmark for signature-chain verification strategies.
//!
//! Compares, for chains of length 8 / 32 / 128:
//!
//! * `reference` — the retained naive verifier (`Chain::verify_reference`),
//!   which re-derives every prefix digest from scratch: O(L²) hashing;
//! * `incremental` — the rolling-digest verifier with the prefix cache
//!   bypassed (`Chain::verify_uncached`): O(L) hashing, L signature checks;
//! * `cached` — the full path (`Chain::verify`) against a warm
//!   `VerifierCache`, as a relaying processor sees it: O(L) hashing and
//!   O(1) signature checks per re-verification.
//!
//! Emits a JSON report (timings plus exact per-verify hash / signature-check
//! counts) to the path given as the first argument, default
//! `BENCH_chain_verify.json`, and prints the human-readable table on
//! stderr.
//!
//! ```text
//! cargo run -p ba-bench --release --bin bench_chain_verify
//! ```

use ba_bench::microbench::{bench, print_samples, Sample};
use ba_crypto::keys::{KeyRegistry, SchemeKind};
use ba_crypto::{Chain, CryptoStats, ProcessId, Value};
use std::fmt::Write as _;

const LENGTHS: [usize; 3] = [8, 32, 128];

struct Row {
    length: usize,
    strategy: &'static str,
    sample: Sample,
    hashes_per_verify: u64,
    sig_checks_per_verify: u64,
}

fn build_chain(registry: &KeyRegistry, len: usize) -> Chain {
    let mut chain = Chain::new(7, Value::ONE);
    for i in 0..len {
        chain.sign_and_append(&registry.signer(ProcessId(i as u32)));
    }
    chain
}

/// Exact crypto work of one invocation of `f`, via the thread-local
/// counters (measured outside the timing loop so instrumentation and
/// timing never mix).
fn work_of(f: impl Fn()) -> (u64, u64) {
    let before = CryptoStats::snapshot();
    f();
    let d = CryptoStats::snapshot().since(&before);
    (d.hash_invocations, d.sig_verifications)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chain_verify.json".to_string());

    let mut rows: Vec<Row> = Vec::new();
    for len in LENGTHS {
        // Fast scheme so counter deltas are pure chain-structure cost.
        let registry = KeyRegistry::new(len + 1, 42, SchemeKind::Fast);
        let chain = build_chain(&registry, len);
        let verifier = registry.verifier();
        assert!(chain.verify_reference(&verifier).is_ok());

        let (h, s) = work_of(|| {
            chain.verify_reference(&verifier).unwrap();
        });
        rows.push(Row {
            length: len,
            strategy: "reference",
            sample: bench(format!("L={len:>3} reference"), || {
                chain.verify_reference(&verifier).unwrap()
            }),
            hashes_per_verify: h,
            sig_checks_per_verify: s,
        });

        let (h, s) = work_of(|| {
            chain.verify_uncached(&verifier).unwrap();
        });
        rows.push(Row {
            length: len,
            strategy: "incremental",
            sample: bench(format!("L={len:>3} incremental"), || {
                chain.verify_uncached(&verifier).unwrap()
            }),
            hashes_per_verify: h,
            sig_checks_per_verify: s,
        });

        // Warm the cache once, then measure the relaying-processor path.
        chain.verify(&verifier).unwrap();
        let (h, s) = work_of(|| {
            chain.verify(&verifier).unwrap();
        });
        rows.push(Row {
            length: len,
            strategy: "cached",
            sample: bench(format!("L={len:>3} cached"), || {
                chain.verify(&verifier).unwrap()
            }),
            hashes_per_verify: h,
            sig_checks_per_verify: s,
        });
    }

    let samples: Vec<Sample> = rows.iter().map(|r| r.sample.clone()).collect();
    print_samples("chain verification", &samples);

    let mut json =
        String::from("{\n  \"bench\": \"chain_verify\",\n  \"scheme\": \"Fast\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"length\": {}, \"strategy\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"hashes_per_verify\": {}, \"sig_checks_per_verify\": {}}}{}",
            r.length,
            r.strategy,
            r.sample.median_ns,
            r.sample.mean_ns,
            r.sample.min_ns,
            r.hashes_per_verify,
            r.sig_checks_per_verify,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
