//! Benchmark for the simulation engine's data plane.
//!
//! Three questions, one section each:
//!
//! * `chain_fanout` — is `Chain::clone` O(1)? Broadcasting a length-L
//!   chain to 63 peers must cost the same for L = 8, 32 and 128 now that
//!   chains share their signature storage (`Arc` copy-on-write);
//! * `flood` — what do mailbox pooling and parallel intra-phase stepping
//!   buy on a broadcast-heavy chain-relay workload (every actor endorses
//!   once and rebroadcasts every phase, n² messages per phase)? Strategies:
//!   sequential without pooling (the seed engine), sequential pooled, and
//!   pooled with 4 worker threads;
//! * `dolev_strong` / `algorithm3` — the same comparison on the two real
//!   protocol workloads the experiments scale up.
//!
//! Every strategy of every workload must produce identical `Metrics` — the
//! run aborts otherwise. Emits a JSON report to the path given as the first
//! argument (default `BENCH_engine.json`) including the host's
//! `available_parallelism`, so a single-core container's numbers are
//! interpretable: there, parallel stepping can only show its (small)
//! coordination overhead, never a speedup.
//!
//! ```text
//! cargo run -p ba-bench --release --bin bench_engine
//! ```
//!
//! `--dump-trace <threads>` instead prints a traced deterministic run
//! (decisions, metrics, every envelope) to stdout; CI compares the output
//! of `--dump-trace 1` and `--dump-trace 4` byte-for-byte.

use ba_algos::{algorithm3, dolev_strong};
use ba_bench::microbench::{bench, print_samples, Sample};
use ba_crypto::keys::{KeyRegistry, SchemeKind, Signer, Verifier};
use ba_crypto::{Chain, ProcessId, Value};
use ba_sim::{Actor, Envelope, Metrics, Outbox, RunOutcome, Simulation};
use std::fmt::Write as _;

const FANOUT_PEERS: usize = 64;
const FANOUT_LENGTHS: [usize; 3] = [8, 32, 128];
const FLOOD_SIZES: [usize; 2] = [16, 64];
const FLOOD_PHASES: usize = 4;

/// Broadcast-heavy chain relay: actor 0 starts a signed chain; every actor
/// verifies what it hears, endorses the longest chain once, and
/// rebroadcasts its best chain every phase — n² messages per phase, all of
/// them `Chain` payloads, all verified against the shared registry.
#[derive(Debug)]
struct FloodRelay {
    signer: Signer,
    verifier: Verifier,
    n: usize,
    endorsed: bool,
    best: Option<Chain>,
}

impl Actor<Chain> for FloodRelay {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        if phase == 1 && out.sender() == ProcessId(0) {
            let mut chain = Chain::new(3, Value::ONE);
            chain.sign_and_append(&self.signer);
            self.endorsed = true;
            self.best = Some(chain);
        }
        for env in inbox {
            if env.payload.verify(&self.verifier).is_err() {
                continue;
            }
            let longer = self
                .best
                .as_ref()
                .is_none_or(|b| env.payload.len() > b.len());
            if longer {
                self.best = Some(env.payload.clone());
            }
        }
        if let Some(best) = &mut self.best {
            if !self.endorsed {
                self.endorsed = true;
                best.sign_and_append(&self.signer);
            }
            let chain = best.clone();
            out.broadcast((0..self.n as u32).map(ProcessId), chain);
        }
    }
    fn decision(&self) -> Option<Value> {
        self.best.as_ref().map(|c| c.value())
    }
}

fn run_flood(n: usize, threads: usize, pooling: bool, traced: bool) -> RunOutcome<Chain> {
    let registry = KeyRegistry::new(n, 7, SchemeKind::Fast);
    let actors: Vec<Box<dyn Actor<Chain>>> = (0..n)
        .map(|i| {
            Box::new(FloodRelay {
                signer: registry.signer(ProcessId(i as u32)),
                verifier: registry.verifier(),
                n,
                endorsed: false,
                best: None,
            }) as Box<dyn Actor<Chain>>
        })
        .collect();
    let mut sim = Simulation::new(actors)
        .with_threads(threads)
        .with_registry(&registry)
        .with_mailbox_pooling(pooling);
    if traced {
        sim = sim.with_trace();
    }
    sim.run(FLOOD_PHASES)
}

fn dump_trace(threads: usize) {
    let outcome = run_flood(16, threads, true, true);
    println!("decisions: {:?}", outcome.decisions);
    println!("metrics: {:#?}", outcome.metrics);
    for (k, phase) in outcome.trace.phases.iter().enumerate() {
        for env in &phase.envelopes {
            println!(
                "phase {} | {:>3} -> {:>3} | {:?}",
                k + 1,
                env.from.index(),
                env.to.index(),
                env.payload
            );
        }
    }
}

struct Row {
    section: &'static str,
    label: String,
    n: usize,
    threads: usize,
    pooled: bool,
    sample: Sample,
}

fn json_rows(rows: &[Row]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"section\": \"{}\", \"label\": \"{}\", \"n\": {}, \"threads\": {}, \"pooled\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}}}{}",
            r.section,
            r.label,
            r.n,
            r.threads,
            r.pooled,
            r.sample.median_ns,
            r.sample.mean_ns,
            r.sample.min_ns,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--dump-trace") {
        let threads: usize = args
            .get(2)
            .and_then(|v| v.parse().ok())
            .expect("--dump-trace needs a thread count");
        dump_trace(threads);
        return;
    }
    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows: Vec<Row> = Vec::new();

    // -- chain_fanout: broadcast cost must be flat in chain length --------
    for len in FANOUT_LENGTHS {
        let registry = KeyRegistry::new(len.max(FANOUT_PEERS), 42, SchemeKind::Fast);
        let mut chain = Chain::new(3, Value::ONE);
        for i in 0..len {
            chain.sign_and_append(&registry.signer(ProcessId(i as u32)));
        }
        let from = ProcessId(FANOUT_PEERS as u32 - 1);
        rows.push(Row {
            section: "chain_fanout",
            label: format!("L={len}"),
            n: FANOUT_PEERS,
            threads: 1,
            pooled: false,
            sample: bench(
                format!("fanout L={len:>3} to {} peers", FANOUT_PEERS - 1),
                || {
                    let mut out: Outbox<Chain> = Outbox::new(from);
                    out.broadcast((0..FANOUT_PEERS as u32).map(ProcessId), chain.clone());
                    out.staged_len()
                },
            ),
        });
    }
    let fanout_flat = {
        let shortest = rows[0].sample.median_ns;
        let longest = rows[FANOUT_LENGTHS.len() - 1].sample.median_ns;
        // O(L) copying would scale ~16× from L=8 to L=128; shared storage
        // should keep the ratio near 1. Allow generous noise.
        longest < shortest * 4.0
    };

    // -- flood: engine strategies on the synthetic broadcast workload -----
    let strategies: [(&str, usize, bool); 3] = [
        ("seq-unpooled", 1, false),
        ("seq-pooled", 1, true),
        ("par4-pooled", 4, true),
    ];
    let mut flood_identical = true;
    for n in FLOOD_SIZES {
        let baseline: Metrics = run_flood(n, 1, false, false).metrics;
        for (label, threads, pooled) in strategies {
            let outcome = run_flood(n, threads, pooled, false);
            flood_identical &= outcome.metrics == baseline;
            rows.push(Row {
                section: "flood",
                label: label.to_string(),
                n,
                threads,
                pooled,
                sample: bench(format!("flood n={n:>3} {label}"), || {
                    run_flood(n, threads, pooled, false)
                        .metrics
                        .messages_total()
                }),
            });
        }
    }

    // -- real protocol workloads ------------------------------------------
    let mut ds_identical = true;
    for n in [32usize, 64] {
        let t = 4;
        let run_ds = |threads: usize| {
            dolev_strong::run(
                n,
                t,
                Value::ONE,
                dolev_strong::DsOptions {
                    variant: dolev_strong::Variant::Broadcast,
                    scheme: SchemeKind::Fast,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let baseline = run_ds(1).outcome.metrics;
        for threads in [1usize, 4] {
            ds_identical &= run_ds(threads).outcome.metrics == baseline;
            rows.push(Row {
                section: "dolev_strong",
                label: format!("t={t} threads={threads}"),
                n,
                threads,
                pooled: true,
                sample: bench(format!("dolev-strong n={n:>3} threads={threads}"), || {
                    run_ds(threads).outcome.metrics.messages_by_correct
                }),
            });
        }
    }

    let mut alg3_identical = true;
    {
        let (n, t, s) = (64usize, 3usize, 12usize);
        let run_a3 = |threads: usize| {
            algorithm3::run(
                n,
                t,
                s,
                Value::ONE,
                algorithm3::Alg3Options {
                    scheme: SchemeKind::Fast,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let baseline = run_a3(1).outcome.metrics;
        for threads in [1usize, 4] {
            alg3_identical &= run_a3(threads).outcome.metrics == baseline;
            rows.push(Row {
                section: "algorithm3",
                label: format!("t={t} s={s} threads={threads}"),
                n,
                threads,
                pooled: true,
                sample: bench(format!("algorithm3 n={n:>3} threads={threads}"), || {
                    run_a3(threads).outcome.metrics.messages_by_correct
                }),
            });
        }
    }

    assert!(
        flood_identical && ds_identical && alg3_identical,
        "metrics diverged across engine strategies — determinism contract broken"
    );

    let samples: Vec<Sample> = rows.iter().map(|r| r.sample.clone()).collect();
    print_samples("engine data plane", &samples);

    let mut json = String::from("{\n  \"bench\": \"engine\",\n");
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");
    let _ = writeln!(
        json,
        "  \"checks\": {{\"chain_fanout_flat\": {fanout_flat}, \"flood_metrics_identical\": {flood_identical}, \"dolev_strong_metrics_identical\": {ds_identical}, \"algorithm3_metrics_identical\": {alg3_identical}}},"
    );
    json.push_str("  \"rows\": [\n");
    json.push_str(&json_rows(&rows));
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
