//! Benchmark for the simulation engine's data plane.
//!
//! Sections (select with `--section`, default all):
//!
//! * `chain_fanout` — is `Chain::clone` O(1)? Broadcasting a length-L
//!   chain to 63 peers must cost the same for L = 8, 32 and 128 now that
//!   chains share their signature storage (`Arc` copy-on-write);
//! * `flood` — what do mailbox pooling and parallel intra-phase stepping
//!   buy on a broadcast-heavy chain-relay workload (every actor endorses
//!   once and rebroadcasts every phase, n² messages per phase)? Strategies:
//!   sequential without pooling (the seed engine), sequential pooled, and
//!   pooled with 4 worker threads. The seed data plane showed a 2–3 %
//!   *regression* for `seq-pooled` over `seq-unpooled`: the old pooled path
//!   retained per-actor `Vec` mailboxes and paid clear/refill bookkeeping
//!   without saving allocations that mattered. The flat
//!   [`Inboxes`](ba_sim::arena) arena removes that bookkeeping — pooling
//!   now reuses two contiguous buffers and one offset table, so
//!   `seq-pooled` is expected at parity or better; the check below
//!   (`flood_pooling_not_regressed`) records whether it held on this host;
//! * `dolev_strong` / `algorithm3` — the same comparison on the two real
//!   protocol workloads the experiments scale up;
//! * `pool_scaling` — the persistent-pool grid: Dolev–Strong and
//!   Algorithm 3 at n ∈ {1024, 10240, 51200} × threads ∈ {1, 2, 4, 8}
//!   with batched phase-barrier verification on. Dolev–Strong uses the
//!   relay variant (O(nt) traffic) at every n and additionally the
//!   broadcast variant at n = 1024 only — O(n²) traffic per phase is
//!   ~6 GB/phase at n ≥ 10k and is deliberately omitted. Algorithm 3 runs
//!   with fixed s = 32 so the phase count (t + 2s + 3) stays constant
//!   across n and the rows measure data-plane scaling, not phase-count
//!   growth. Override the grid with `--n 1024,4096` / `--threads 1,4`.
//!
//! Every strategy of every workload must produce identical `Metrics` — the
//! run aborts otherwise. Emits a JSON report to the path given as the first
//! positional argument (default `BENCH_engine.json`). Each row is tagged
//! with the host's `available_parallelism`: on a single-core container the
//! parallel rows can only show the pool's (small) coordination overhead,
//! never a speedup, and the binary says so on stderr.
//!
//! ```text
//! cargo run -p ba-bench --release --bin bench_engine
//! cargo run -p ba-bench --release --bin bench_engine -- \
//!     --section pool_scaling --n 1024 --threads 1,4 --assert-scaling 1.25
//! ```
//!
//! `--assert-scaling <ratio>` makes the binary exit non-zero if, on a
//! multi-core host, the widest thread count's median exceeds `ratio` × the
//! single-thread median for any `pool_scaling` cell (on a single-core host
//! the gate is skipped — there is nothing to win). CI uses this as the
//! `pool-scaling-smoke` job.
//!
//! `--dump-trace <threads>` instead prints a traced deterministic run
//! (decisions, metrics, every envelope) to stdout; CI compares the output
//! of `--dump-trace 1` and `--dump-trace 4` byte-for-byte.

use ba_algos::{algorithm3, dolev_strong};
use ba_bench::microbench::{bench, print_samples, Sample};
use ba_crypto::keys::{KeyRegistry, SchemeKind, Signer, Verifier};
use ba_crypto::{Chain, ProcessId, Value};
use ba_sim::{Actor, Envelope, Metrics, Outbox, Payload, RunOutcome, Simulation};
use std::fmt::Write as _;

const FANOUT_PEERS: usize = 64;
const FANOUT_LENGTHS: [usize; 3] = [8, 32, 128];
const FLOOD_SIZES: [usize; 2] = [16, 64];
const FLOOD_PHASES: usize = 4;

/// Default `pool_scaling` grid. Dolev–Strong broadcast only runs at n up
/// to [`BROADCAST_MAX_N`].
const POOL_NS: [usize; 3] = [1024, 10_240, 51_200];
const POOL_THREADS: [usize; 4] = [1, 2, 4, 8];
const POOL_T: usize = 4;
const POOL_S: usize = 32;
const BROADCAST_MAX_N: usize = 2048;

/// Broadcast-heavy chain relay: actor 0 starts a signed chain; every actor
/// verifies what it hears, endorses the longest chain once, and
/// rebroadcasts its best chain every phase — n² messages per phase, all of
/// them `Chain` payloads, all verified against the shared registry.
#[derive(Debug)]
struct FloodRelay {
    signer: Signer,
    verifier: Verifier,
    n: usize,
    endorsed: bool,
    best: Option<Chain>,
}

impl Actor<Chain> for FloodRelay {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        if phase == 1 && out.sender() == ProcessId(0) {
            let mut chain = Chain::new(3, Value::ONE);
            chain.sign_and_append(&self.signer);
            self.endorsed = true;
            self.best = Some(chain);
        }
        for env in inbox {
            if env.payload.verify(&self.verifier).is_err() {
                continue;
            }
            let longer = self
                .best
                .as_ref()
                .is_none_or(|b| env.payload.len() > b.len());
            if longer {
                self.best = Some(env.payload.clone());
            }
        }
        if let Some(best) = &mut self.best {
            if !self.endorsed {
                self.endorsed = true;
                best.sign_and_append(&self.signer);
            }
            let chain = best.clone();
            out.broadcast((0..self.n as u32).map(ProcessId), chain);
        }
    }
    fn decision(&self) -> Option<Value> {
        self.best.as_ref().map(|c| c.value())
    }
}

fn run_flood(n: usize, threads: usize, pooling: bool, traced: bool) -> RunOutcome<Chain> {
    let registry = KeyRegistry::new(n, 7, SchemeKind::Fast);
    let actors: Vec<Box<dyn Actor<Chain>>> = (0..n)
        .map(|i| {
            Box::new(FloodRelay {
                signer: registry.signer(ProcessId(i as u32)),
                verifier: registry.verifier(),
                n,
                endorsed: false,
                best: None,
            }) as Box<dyn Actor<Chain>>
        })
        .collect();
    let mut sim = Simulation::new(actors)
        .with_threads(threads)
        .with_registry(&registry)
        .with_mailbox_pooling(pooling);
    if traced {
        sim = sim.with_trace();
    }
    sim.run(FLOOD_PHASES)
}

fn dump_trace(threads: usize) {
    let outcome = run_flood(16, threads, true, true);
    println!("decisions: {:?}", outcome.decisions);
    println!("metrics: {:#?}", outcome.metrics);
    for (k, phase) in outcome.trace.phases.iter().enumerate() {
        for env in &phase.envelopes {
            println!(
                "phase {} | {:>3} -> {:>3} | {:?}",
                k + 1,
                env.from.index(),
                env.to.index(),
                env.payload
            );
        }
    }
}

/// One `pool_scaling` workload cell (everything but the thread count).
#[derive(Clone, Copy)]
enum PoolWorkload {
    DsRelay { n: usize, t: usize },
    DsBroadcast { n: usize, t: usize },
    Alg3 { n: usize, t: usize, s: usize },
}

impl PoolWorkload {
    fn label(&self) -> String {
        match *self {
            PoolWorkload::DsRelay { t, .. } => format!("ds-relay t={t}"),
            PoolWorkload::DsBroadcast { t, .. } => format!("ds-broadcast t={t}"),
            PoolWorkload::Alg3 { t, s, .. } => format!("alg3 t={t} s={s}"),
        }
    }

    /// Runs the workload once with batched phase-barrier verification on.
    fn run(&self, threads: usize) -> Metrics {
        match *self {
            PoolWorkload::DsRelay { n, t } | PoolWorkload::DsBroadcast { n, t } => {
                let variant = if matches!(self, PoolWorkload::DsRelay { .. }) {
                    dolev_strong::Variant::Relay
                } else {
                    dolev_strong::Variant::Broadcast
                };
                dolev_strong::run(
                    n,
                    t,
                    Value::ONE,
                    dolev_strong::DsOptions {
                        variant,
                        scheme: SchemeKind::Fast,
                        threads,
                        batch_verify: true,
                        ..Default::default()
                    },
                )
                .unwrap()
                .outcome
                .metrics
            }
            PoolWorkload::Alg3 { n, t, s } => {
                algorithm3::run(
                    n,
                    t,
                    s,
                    Value::ONE,
                    algorithm3::Alg3Options {
                        scheme: SchemeKind::Fast,
                        threads,
                        batch_verify: true,
                        ..Default::default()
                    },
                )
                .unwrap()
                .outcome
                .metrics
            }
        }
    }
}

struct Row {
    section: &'static str,
    label: String,
    n: usize,
    threads: usize,
    pooled: bool,
    batched: bool,
    /// Wire bytes sent by correct processors in one run of this cell
    /// (`Metrics::bytes_by_correct`; for the `chain_fanout` microbench,
    /// the staged broadcast volume).
    bytes_sent: u64,
    sample: Sample,
}

fn json_rows(rows: &[Row], parallelism: usize) -> String {
    let single_core = parallelism == 1;
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"section\": \"{}\", \"label\": \"{}\", \"n\": {}, \"threads\": {}, \"pooled\": {}, \"batched\": {}, \"parallelism\": {}, \"single_core\": {single_core}, \"bytes_sent\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}}}{}",
            r.section,
            r.label,
            r.n,
            r.threads,
            r.pooled,
            r.batched,
            parallelism,
            r.bytes_sent,
            r.sample.median_ns,
            r.sample.mean_ns,
            r.sample.min_ns,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out
}

struct Config {
    out_path: String,
    /// Sections to run; empty = all.
    sections: Vec<String>,
    pool_ns: Vec<usize>,
    pool_threads: Vec<usize>,
    assert_scaling: Option<f64>,
}

impl Config {
    fn section(&self, name: &str) -> bool {
        self.sections.is_empty() || self.sections.iter().any(|s| s == name)
    }
}

fn parse_list(flag: &str, value: &str) -> Vec<usize> {
    let list: Vec<usize> = value
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .unwrap_or_else(|_| die(&format!("{flag}: bad entry {v:?} in {value:?}")))
        })
        .collect();
    if list.is_empty() {
        die(&format!("{flag} needs a non-empty comma-separated list"));
    }
    list
}

fn die(msg: &str) -> ! {
    eprintln!("bench_engine: {msg}");
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Config {
    let mut cfg = Config {
        out_path: "BENCH_engine.json".to_string(),
        sections: Vec::new(),
        pool_ns: POOL_NS.to_vec(),
        pool_threads: POOL_THREADS.to_vec(),
        assert_scaling: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--section" => cfg.sections.push(value("--section")),
            "--n" => cfg.pool_ns = parse_list("--n", &value("--n")),
            "--threads" => cfg.pool_threads = parse_list("--threads", &value("--threads")),
            "--assert-scaling" => {
                let v = value("--assert-scaling");
                cfg.assert_scaling = Some(
                    v.parse()
                        .unwrap_or_else(|_| die(&format!("--assert-scaling: bad ratio {v:?}"))),
                );
            }
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag}")),
            path => cfg.out_path = path.to_string(),
        }
    }
    let known = [
        "chain_fanout",
        "flood",
        "dolev_strong",
        "algorithm3",
        "pool_scaling",
    ];
    for s in &cfg.sections {
        if !known.contains(&s.as_str()) {
            die(&format!(
                "unknown section {s:?} (known: {})",
                known.join(", ")
            ));
        }
    }
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--dump-trace") {
        let threads: usize = args
            .get(1)
            .and_then(|v| v.parse().ok())
            .expect("--dump-trace needs a thread count");
        dump_trace(threads);
        return;
    }
    let cfg = parse_args(&args);

    let parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    if parallelism == 1 {
        eprintln!(
            "bench_engine: warning: single-core host (available_parallelism = 1); \
             parallel rows measure pool coordination overhead only, never speedup"
        );
    }
    let mut rows: Vec<Row> = Vec::new();

    // -- chain_fanout: broadcast cost must be flat in chain length --------
    let mut fanout_flat = true;
    if cfg.section("chain_fanout") {
        for len in FANOUT_LENGTHS {
            let registry = KeyRegistry::new(len.max(FANOUT_PEERS), 42, SchemeKind::Fast);
            let mut chain = Chain::new(3, Value::ONE);
            for i in 0..len {
                chain.sign_and_append(&registry.signer(ProcessId(i as u32)));
            }
            let from = ProcessId(FANOUT_PEERS as u32 - 1);
            rows.push(Row {
                section: "chain_fanout",
                label: format!("L={len}"),
                n: FANOUT_PEERS,
                threads: 1,
                pooled: false,
                batched: false,
                bytes_sent: (chain.weight_bytes() * (FANOUT_PEERS - 1)) as u64,
                sample: bench(
                    format!("fanout L={len:>3} to {} peers", FANOUT_PEERS - 1),
                    || {
                        let mut out: Outbox<Chain> = Outbox::new(from);
                        out.broadcast((0..FANOUT_PEERS as u32).map(ProcessId), chain.clone());
                        out.staged_len()
                    },
                ),
            });
        }
        let shortest = rows[0].sample.median_ns;
        let longest = rows[FANOUT_LENGTHS.len() - 1].sample.median_ns;
        // O(L) copying would scale ~16× from L=8 to L=128; shared storage
        // should keep the ratio near 1. Allow generous noise.
        fanout_flat = longest < shortest * 4.0;
    }

    // -- flood: engine strategies on the synthetic broadcast workload -----
    let strategies: [(&str, usize, bool); 3] = [
        ("seq-unpooled", 1, false),
        ("seq-pooled", 1, true),
        ("par4-pooled", 4, true),
    ];
    let mut flood_identical = true;
    let mut flood_pooling_ok = true;
    if cfg.section("flood") {
        for n in FLOOD_SIZES {
            let baseline: Metrics = run_flood(n, 1, false, false).metrics;
            let mut medians = [0.0f64; 3];
            for (si, (label, threads, pooled)) in strategies.into_iter().enumerate() {
                let outcome = run_flood(n, threads, pooled, false);
                flood_identical &= outcome.metrics == baseline;
                let sample = bench(format!("flood n={n:>3} {label}"), || {
                    run_flood(n, threads, pooled, false)
                        .metrics
                        .messages_total()
                });
                medians[si] = sample.median_ns;
                rows.push(Row {
                    section: "flood",
                    label: label.to_string(),
                    n,
                    threads,
                    pooled,
                    batched: false,
                    bytes_sent: outcome.metrics.bytes_by_correct,
                    sample,
                });
            }
            // seq-pooled regressed vs seq-unpooled on the seed engine; the
            // flat arena is expected to hold parity (10 % noise allowance).
            flood_pooling_ok &= medians[1] <= medians[0] * 1.10;
        }
    }

    // -- real protocol workloads ------------------------------------------
    let mut ds_identical = true;
    if cfg.section("dolev_strong") {
        for n in [32usize, 64] {
            let t = 4;
            let run_ds = |threads: usize| {
                dolev_strong::run(
                    n,
                    t,
                    Value::ONE,
                    dolev_strong::DsOptions {
                        variant: dolev_strong::Variant::Broadcast,
                        scheme: SchemeKind::Fast,
                        threads,
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            let baseline = run_ds(1).outcome.metrics;
            for threads in [1usize, 4] {
                let probe = run_ds(threads).outcome.metrics;
                ds_identical &= probe == baseline;
                rows.push(Row {
                    section: "dolev_strong",
                    label: format!("t={t} threads={threads}"),
                    n,
                    threads,
                    pooled: true,
                    batched: false,
                    bytes_sent: probe.bytes_by_correct,
                    sample: bench(format!("dolev-strong n={n:>3} threads={threads}"), || {
                        run_ds(threads).outcome.metrics.messages_by_correct
                    }),
                });
            }
        }
    }

    let mut alg3_identical = true;
    if cfg.section("algorithm3") {
        let (n, t, s) = (64usize, 3usize, 12usize);
        let run_a3 = |threads: usize| {
            algorithm3::run(
                n,
                t,
                s,
                Value::ONE,
                algorithm3::Alg3Options {
                    scheme: SchemeKind::Fast,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let baseline = run_a3(1).outcome.metrics;
        for threads in [1usize, 4] {
            let probe = run_a3(threads).outcome.metrics;
            alg3_identical &= probe == baseline;
            rows.push(Row {
                section: "algorithm3",
                label: format!("t={t} s={s} threads={threads}"),
                n,
                threads,
                pooled: true,
                batched: false,
                bytes_sent: probe.bytes_by_correct,
                sample: bench(format!("algorithm3 n={n:>3} threads={threads}"), || {
                    run_a3(threads).outcome.metrics.messages_by_correct
                }),
            });
        }
    }

    // -- pool_scaling: the persistent-pool grid ---------------------------
    let mut pool_identical = true;
    // (label, n, threads, median_ns) for the --assert-scaling gate.
    let mut pool_cells: Vec<(String, usize, usize, f64)> = Vec::new();
    if cfg.section("pool_scaling") {
        for &n in &cfg.pool_ns {
            let mut workloads = vec![PoolWorkload::DsRelay { n, t: POOL_T }];
            if n <= BROADCAST_MAX_N {
                workloads.push(PoolWorkload::DsBroadcast { n, t: POOL_T });
            } else {
                eprintln!(
                    "bench_engine: skipping ds-broadcast at n={n} \
                     (O(n^2) traffic per phase; relay covers large n)"
                );
            }
            workloads.push(PoolWorkload::Alg3 {
                n,
                t: POOL_T,
                s: POOL_S,
            });
            for w in workloads {
                let label = w.label();
                // The determinism check rides on the measured runs: every
                // bench iteration compares its metrics to the first run's.
                let mut baseline: Option<Metrics> = None;
                for &threads in &cfg.pool_threads {
                    let sample = bench(format!("pool {label} n={n} threads={threads}"), || {
                        let m = w.run(threads);
                        match &baseline {
                            Some(b) => pool_identical &= m == *b,
                            None => baseline = Some(m.clone()),
                        }
                        m.messages_by_correct
                    });
                    pool_cells.push((label.clone(), n, threads, sample.median_ns));
                    rows.push(Row {
                        section: "pool_scaling",
                        label: format!("{label} threads={threads}"),
                        n,
                        threads,
                        pooled: true,
                        batched: true,
                        bytes_sent: baseline.as_ref().map_or(0, |m| m.bytes_by_correct),
                        sample,
                    });
                }
            }
        }
    }

    assert!(
        flood_identical && ds_identical && alg3_identical && pool_identical,
        "metrics diverged across engine strategies — determinism contract broken"
    );

    let samples: Vec<Sample> = rows.iter().map(|r| r.sample.clone()).collect();
    print_samples("engine data plane", &samples);

    let mut json = String::from("{\n  \"bench\": \"engine\",\n");
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");
    let _ = writeln!(
        json,
        "  \"checks\": {{\"chain_fanout_flat\": {fanout_flat}, \"flood_metrics_identical\": {flood_identical}, \"flood_pooling_not_regressed\": {flood_pooling_ok}, \"dolev_strong_metrics_identical\": {ds_identical}, \"algorithm3_metrics_identical\": {alg3_identical}, \"pool_scaling_metrics_identical\": {pool_identical}}},"
    );
    json.push_str("  \"rows\": [\n");
    json.push_str(&json_rows(&rows, parallelism));
    json.push_str("  ]\n}\n");
    std::fs::write(&cfg.out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cfg.out_path);
        std::process::exit(1);
    });
    eprintln!("wrote {}", cfg.out_path);

    // -- scaling gate (after the JSON, so failures still leave a report) --
    if let Some(ratio) = cfg.assert_scaling {
        if parallelism == 1 {
            eprintln!("bench_engine: --assert-scaling skipped: single-core host");
            return;
        }
        let lo = *cfg.pool_threads.iter().min().expect("non-empty");
        let hi = *cfg.pool_threads.iter().max().expect("non-empty");
        let mut failed = false;
        for (label, n, threads, med) in &pool_cells {
            if *threads != hi {
                continue;
            }
            let base = pool_cells
                .iter()
                .find(|(l, bn, bt, _)| l == label && bn == n && *bt == lo)
                .map(|(_, _, _, m)| *m)
                .expect("lo-thread cell exists for every workload");
            if *med > base * ratio {
                eprintln!(
                    "bench_engine: scaling gate FAILED: {label} n={n}: \
                     threads={hi} median {med:.0} ns > {ratio} x threads={lo} median {base:.0} ns"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "bench_engine: scaling gate passed (threads={hi} <= {ratio} x threads={lo} everywhere)"
        );
    }
}
