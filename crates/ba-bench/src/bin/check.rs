//! Command-line front end for the `ba-check` model checker.
//!
//! ```text
//! cargo run -p ba-bench --bin check --release
//!     # smoke mode: explore every sound target with a small exhaustive
//!     # budget, then replay the committed regression corpus
//!
//! cargo run -p ba-bench --bin check --release -- \
//!     --target ds-weak-relay-threshold --n 4 --t 1 --budget 200
//!     # explore one target; violations print as corpus-format JSON
//!
//! cargo run -p ba-bench --bin check --release -- \
//!     --target ds-broadcast --n 7 --t 3 --random --budget 500 --seed 7
//!     # seeded random sampling for dimensions too large to enumerate
//!
//! cargo run -p ba-bench --bin check --release -- --replay-corpus
//!     # replay the committed corpus only
//!
//! cargo run -p ba-bench --bin check --release -- --json
//!     # same smoke run, but one machine-readable JSON document on stdout
//! ```
//!
//! Exit status: nonzero when a *sound* target violates, when corpus replay
//! fails, or on usage errors. Violations of targets registered as unsound
//! (e.g. `ds-weak-relay-threshold`) are the expected outcome and print
//! without failing the run. Reports are byte-identical at any `--threads`.
//!
//! With `--json` all human-readable report text moves off stdout and the
//! run emits a single JSON document instead:
//!
//! ```json
//! { "mode": "smoke",
//!   "reports": [ { "target": "...", "n": 4, "t": 1, "sound": true,
//!                  "explored": 150, "violations": [ ... ] } ],
//!   "corpus": { "path": "...", "replayed": 3 },
//!   "unexpected_violations": 0 }
//! ```
//!
//! Each violation carries the found and minimized schedules in the same
//! object format the corpus uses, so a pipeline can feed them straight
//! back into `ba-check` (`FaultSchedule::from_json`).

use ba_check::corpus::{self, default_corpus_path, CorpusEntry};
use ba_check::json::Json;
use ba_check::{
    explore, explore_ext, find_target, targets, ExploreOptions, ExtExploreOptions, ExtViolation,
    Strategy, Violation,
};
use ba_sim::sweep::default_threads;
use std::path::Path;
use std::process::ExitCode;

struct Cli {
    target: Option<String>,
    n: usize,
    t: usize,
    value: u64,
    seed: u64,
    budget: usize,
    threads: usize,
    strategy: Strategy,
    inner: String,
    replay_only: bool,
    corpus_path: Option<String>,
    json: bool,
}

/// Accumulates the machine-readable document when `--json` is active.
#[derive(Default)]
struct JsonOut {
    reports: Vec<Json>,
    corpus: Option<Json>,
}

fn usage() -> ! {
    eprintln!(
        "usage: check [--target NAME|ext] [--n N] [--t T] [--value 0|1] [--seed S] \
         [--budget B] [--random] [--threads K] [--inner NAME] [--replay-corpus] \
         [--corpus PATH] [--json]\n\
         registered targets (plus \"ext\": the extension-layer family, whose \
         digest agreement runs --inner):"
    );
    for target in targets() {
        eprintln!("  {:<26} {}", target.name, target.summary);
    }
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        target: None,
        n: 4,
        t: 1,
        value: 1,
        seed: 0,
        budget: 150,
        threads: default_threads().max(1),
        strategy: Strategy::Exhaustive,
        inner: "ds-broadcast".to_string(),
        replay_only: false,
        corpus_path: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--target" => cli.target = Some(value_of("--target")),
            "--n" => cli.n = parse_num(&value_of("--n"), "--n"),
            "--t" => cli.t = parse_num(&value_of("--t"), "--t"),
            "--value" => cli.value = parse_num(&value_of("--value"), "--value") as u64,
            "--seed" => cli.seed = parse_num(&value_of("--seed"), "--seed") as u64,
            "--budget" => cli.budget = parse_num(&value_of("--budget"), "--budget"),
            "--threads" => cli.threads = parse_num(&value_of("--threads"), "--threads").max(1),
            "--random" => cli.strategy = Strategy::Random,
            "--inner" => cli.inner = value_of("--inner"),
            "--replay-corpus" => cli.replay_only = true,
            "--corpus" => cli.corpus_path = Some(value_of("--corpus")),
            "--json" => cli.json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    cli
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a non-negative integer, got {text:?}");
        std::process::exit(2);
    })
}

fn print_violation(violation: &Violation) {
    println!("  found:     {}", violation.schedule.to_json().render());
    println!("  failure:   {}", violation.failure);
    println!("  minimized: {}", violation.minimized.to_json().render());
    println!("  failure:   {}", violation.minimized_failure);
}

fn violation_json(violation: &Violation) -> Json {
    Json::Obj(vec![
        ("found".to_string(), violation.schedule.to_json()),
        ("failure".to_string(), Json::Str(violation.failure.clone())),
        ("minimized".to_string(), violation.minimized.to_json()),
        (
            "minimized_failure".to_string(),
            Json::Str(violation.minimized_failure.clone()),
        ),
    ])
}

/// Explores one target; returns the number of violations found.
fn run_target(
    cli: &Cli,
    out: &mut JsonOut,
    name: &str,
    n: usize,
    t: usize,
) -> Result<usize, String> {
    let target = find_target(name).ok_or_else(|| format!("unknown check target {name:?}"))?;
    if !target.supports(n, t) {
        return Err(format!("{name} does not support n = {n}, t = {t}"));
    }
    let report = explore(&ExploreOptions {
        target,
        n,
        t,
        value: cli.value,
        seed: cli.seed,
        budget: cli.budget,
        threads: cli.threads,
        strategy: cli.strategy,
    });
    if cli.json {
        out.reports.push(Json::Obj(vec![
            ("target".to_string(), Json::Str(target.name.to_string())),
            ("n".to_string(), Json::Int(n as u64)),
            ("t".to_string(), Json::Int(t as u64)),
            ("sound".to_string(), Json::Bool(target.sound)),
            ("explored".to_string(), Json::Int(report.explored as u64)),
            (
                "violations".to_string(),
                Json::Arr(report.violations.iter().map(violation_json).collect()),
            ),
        ]));
    } else {
        let kind = if target.sound { "sound" } else { "unsound" };
        println!(
            "{}: explored {} schedule(s) at n = {n}, t = {t} ({kind}) — {} violation(s)",
            target.name,
            report.explored,
            report.violations.len()
        );
        for violation in &report.violations {
            print_violation(violation);
        }
    }
    Ok(if target.sound {
        report.violations.len()
    } else {
        0
    })
}

fn print_ext_violation(violation: &ExtViolation) {
    println!("  found:     {}", violation.schedule.to_json().render());
    println!("  failure:   {}", violation.failure);
    println!("  minimized: {}", violation.minimized.to_json().render());
    println!("  failure:   {}", violation.minimized_failure);
}

fn ext_violation_json(violation: &ExtViolation) -> Json {
    Json::Obj(vec![
        ("found".to_string(), violation.schedule.to_json()),
        ("failure".to_string(), Json::Str(violation.failure.clone())),
        ("minimized".to_string(), violation.minimized.to_json()),
        (
            "minimized_failure".to_string(),
            Json::Str(violation.minimized_failure.clone()),
        ),
    ])
}

/// Explores the extension-layer family: the standard scenario set plus
/// `--budget` seeded random schedules, every violation shrunk. Violations
/// are unexpected exactly when the `--inner` digest target is sound (the
/// vote target is the sound committee relay).
fn run_ext(
    cli: &Cli,
    out: &mut JsonOut,
    n: usize,
    t: usize,
    extra_random: usize,
) -> Result<usize, String> {
    let inner =
        find_target(&cli.inner).ok_or_else(|| format!("unknown inner target {:?}", cli.inner))?;
    let report = explore_ext(&ExtExploreOptions {
        n,
        t,
        seed: cli.seed,
        inner: inner.name.to_string(),
        extra_random,
        threads: cli.threads,
        ..ExtExploreOptions::default()
    });
    if cli.json {
        out.reports.push(Json::Obj(vec![
            ("target".to_string(), Json::Str("ext".to_string())),
            ("inner".to_string(), Json::Str(inner.name.to_string())),
            ("n".to_string(), Json::Int(n as u64)),
            ("t".to_string(), Json::Int(t as u64)),
            ("sound".to_string(), Json::Bool(inner.sound)),
            ("explored".to_string(), Json::Int(report.explored as u64)),
            (
                "violations".to_string(),
                Json::Arr(report.violations.iter().map(ext_violation_json).collect()),
            ),
        ]));
    } else {
        let kind = if inner.sound { "sound" } else { "unsound" };
        println!(
            "ext[{}]: explored {} schedule(s) at n = {n}, t = {t} ({kind} inner) — {} violation(s)",
            inner.name,
            report.explored,
            report.violations.len()
        );
        for violation in &report.violations {
            print_ext_violation(violation);
        }
    }
    Ok(if inner.sound {
        report.violations.len()
    } else {
        0
    })
}

fn replay_corpus(cli: &Cli, out: &mut JsonOut) -> Result<(), String> {
    let path: &str = cli
        .corpus_path
        .as_deref()
        .unwrap_or_else(|| default_corpus_path());
    let entries: Vec<CorpusEntry> = corpus::load(Path::new(path))?;
    for (i, entry) in entries.iter().enumerate() {
        corpus::replay_minimal(entry, cli.threads)
            .map_err(|e| format!("corpus entry {i} ({}): {e}", entry.describe()))?;
    }
    if cli.json {
        out.corpus = Some(Json::Obj(vec![
            ("path".to_string(), Json::Str(path.to_string())),
            ("replayed".to_string(), Json::Int(entries.len() as u64)),
        ]));
    } else {
        println!(
            "corpus: replayed {} minimized counterexample(s) from {path}",
            entries.len()
        );
    }
    Ok(())
}

/// Smoke mode: every sound target at its smallest supported dimensions,
/// a short extension-family sweep, then the committed corpus.
fn run_smoke(cli: &Cli, out: &mut JsonOut) -> Result<usize, String> {
    let mut unexpected = 0;
    for target in targets().iter().filter(|target| target.sound) {
        // Smallest dimensions each algorithm family supports.
        let (n, t) = if target.supports(4, 1) {
            (4, 1)
        } else {
            (3, 1)
        };
        unexpected += run_target(cli, out, target.name, n, t)?;
    }
    unexpected += run_ext(cli, out, 4, 1, 8)?;
    replay_corpus(cli, out)?;
    Ok(unexpected)
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let started = std::time::Instant::now();
    let mut out = JsonOut::default();
    let (mode, outcome) = if cli.replay_only {
        ("replay", replay_corpus(&cli, &mut out).map(|()| 0))
    } else if cli.target.as_deref() == Some("ext") {
        ("explore", run_ext(&cli, &mut out, cli.n, cli.t, cli.budget))
    } else if cli.target.is_some() {
        let name = cli.target.clone().expect("checked above");
        ("explore", run_target(&cli, &mut out, &name, cli.n, cli.t))
    } else {
        ("smoke", run_smoke(&cli, &mut out))
    };
    if cli.json {
        let mut doc = vec![
            ("mode".to_string(), Json::Str(mode.to_string())),
            ("reports".to_string(), Json::Arr(out.reports)),
        ];
        if let Some(corpus) = out.corpus {
            doc.push(("corpus".to_string(), corpus));
        }
        match &outcome {
            Ok(unexpected) => doc.push((
                "unexpected_violations".to_string(),
                Json::Int(*unexpected as u64),
            )),
            Err(e) => doc.push(("error".to_string(), Json::Str(e.clone()))),
        }
        println!("{}", Json::Obj(doc).pretty());
    }
    eprintln!(
        "check finished on {} thread(s) in {:.2?}",
        cli.threads,
        started.elapsed()
    );
    match outcome {
        Ok(0) => ExitCode::SUCCESS,
        Ok(violations) => {
            eprintln!("{violations} unexpected violation(s) on sound target(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
