//! Benchmark for the `ba-svc` multi-instance multiplexer: sustained
//! agreements/sec, decision latency, and graceful degradation under loss.
//!
//! Sections (select with `--section`, default all):
//!
//! * `throughput` — K instances of `ds-broadcast` (n = 16, t = 1) on a
//!   reliable wire, three execution strategies:
//!   - `serial-runtime`: K back-to-back [`NetRuntime`] runs — the
//!     pre-service baseline, each run paying its own worker lease, channel
//!     setup and cold verifier cache;
//!   - `svc-serial`: the multiplexer with `max_inflight = 1` — same
//!     admission order, one instance at a time (isolates the service's
//!     fixed overhead from its wins);
//!   - `svc-pipelined`: staggered admission (`admit_per_tick = 1`) with a
//!     deep in-flight window — phases overlap across instances, per-link
//!     flushes coalesce frames from every in-flight instance, and the
//!     fleet-shared verifier cache converts repeated chain prefixes into
//!     hits.
//!
//!   Each row reports agreements/sec (`k × 10⁹ / median_ns`). The headline
//!   ratio — pipelined vs serial-runtime at the widest thread count — is
//!   recorded in the JSON `checks` object and gated by `--assert-speedup`.
//! * `latency` — p50/p99 admission-to-decision latency of the pipelined
//!   fleet, pooled over several runs;
//! * `degradation` — agreements/sec and decided/degraded split for the
//!   pipelined fleet as per-link loss sweeps 0 → 350 ‰: the curve must
//!   degrade gracefully (fewer decisions, never an agreement violation);
//! * `open_loop` — the session API under sustained offered load: seeded
//!   [`PoissonArrivals`] submit instances over `session()`/`submit()`
//!   while the tick loop drains completions, with a bounded admission
//!   queue and shed-oldest backpressure. Rows sweep λ across 0.5×, 1× and
//!   2× saturation and report steady-state agreements/sec, p50/p99
//!   submission-to-decision latency, shed rate and queue depth. The
//!   section also gates exact admission accounting
//!   (`submitted = decided + degraded + shed`), no-deadlock under
//!   block-with-deadline admission, and byte-identity of the deprecated
//!   closed-loop `run()` wrapper with a hand-driven session at every
//!   thread count.
//!
//! The determinism check always runs first and the binary exits non-zero
//! if it fails: the pipelined fleet must be byte-identical across worker
//! counts, and every multiplexed instance must match its standalone
//! [`NetRuntime`] run under `chaos.reseeded(instance_seed(seed, i))` —
//! with and without chaos.
//!
//! Emits a JSON report (default `BENCH_service.json`) in the same row
//! format as `bench_engine`, each row tagged with the host's
//! `available_parallelism` and a `single_core` flag. On a single-core host
//! one consolidated warning is printed and thread-scaling rows measure
//! coordination overhead only.
//!
//! ```text
//! cargo run -p ba-bench --release --bin bench_service
//! cargo run -p ba-bench --release --bin bench_service -- \
//!     --k 8 --threads 1,4 --assert-speedup 2.0
//! ```
//!
//! `--assert-speedup <ratio>` exits non-zero unless pipelined
//! agreements/sec ≥ ratio × serial-runtime agreements/sec at the widest
//! thread count. This gate does **not** skip on single-core hosts: the
//! speedup comes from eliminating per-run setup and sharing verification
//! work, not from parallelism. `--assert-scaling <ratio>` exits non-zero
//! if the widest thread count's pipelined median exceeds ratio × the
//! narrowest's — that gate *is* skipped on single-core hosts, where extra
//! workers can only add coordination overhead. CI uses both as the
//! `service-smoke` job.
//!
//! [`NetRuntime`]: ba_net::NetRuntime

use ba_algos::checkable::{find_target, CheckConfig, CheckTarget};
use ba_bench::microbench::{bench, print_samples, Sample};
use ba_crypto::{Chain, Value, VerifierCache};
use ba_net::{
    instance_seed, run_target, run_target_multiplexed, AdmissionPolicy, BaService, ChaosProfile,
    InstanceSpec, MultiplexRun, NetConfig, NetRunError, PoissonArrivals, SvcConfig, SvcReport,
};
use ba_sim::schedule::ScheduleSpec;
use std::fmt::Write as _;
use std::sync::Arc;

const TARGET: &str = "ds-broadcast";
const N: usize = 16;
const T: usize = 1;
const CHAOS_SEED: u64 = 77;
/// Per-link loss sweep for the degradation curve, in 1/1000.
const LOSS_SWEEP: [u16; 5] = [0, 75, 150, 250, 350];
/// Runs pooled for the latency percentiles.
const LATENCY_RUNS: usize = 5;
/// Offered-load sweep for the open-loop section, in instances per tick.
/// `ds-broadcast` (n = 16, t = 1) settles in 4 service ticks, so with
/// `max_inflight = 8` the service completes ~2 instances/tick: the sweep
/// spans 0.5×, 1× and 2× saturation.
const OPEN_LOOP_RATES: [f64; 3] = [1.0, 2.0, 4.0];
/// Ticks over which the Poisson process offers load (the session then
/// drains to quiescence).
const OPEN_LOOP_ARRIVAL_TICKS: u64 = 64;
const OPEN_LOOP_INFLIGHT: usize = 8;
const OPEN_LOOP_QUEUE: usize = 8;

struct Config {
    out_path: String,
    /// Sections to run; empty = all.
    sections: Vec<String>,
    k: usize,
    threads: Vec<usize>,
    assert_speedup: Option<f64>,
    assert_scaling: Option<f64>,
}

impl Config {
    fn section(&self, name: &str) -> bool {
        self.sections.is_empty() || self.sections.iter().any(|s| s == name)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_service: {msg}");
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Config {
    let mut cfg = Config {
        out_path: "BENCH_service.json".to_string(),
        sections: Vec::new(),
        k: 8,
        threads: vec![1, 4],
        assert_speedup: None,
        assert_scaling: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        let parse_ratio = |flag: &str, v: &str| -> f64 {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{flag}: bad ratio {v:?}")))
        };
        match arg.as_str() {
            "--section" => cfg.sections.push(value("--section")),
            "--k" => {
                let v = value("--k");
                cfg.k = v.parse().ok().filter(|k| *k >= 2).unwrap_or_else(|| {
                    die(&format!("--k: need an instance count >= 2, got {v:?}"))
                });
            }
            "--threads" => {
                let v = value("--threads");
                cfg.threads = v
                    .split(',')
                    .map(|e| {
                        e.trim().parse().unwrap_or_else(|_| {
                            die(&format!("--threads: bad entry {e:?} in {v:?}"))
                        })
                    })
                    .collect();
                if cfg.threads.is_empty() {
                    die("--threads needs a non-empty comma-separated list");
                }
            }
            "--assert-speedup" => {
                let v = value("--assert-speedup");
                cfg.assert_speedup = Some(parse_ratio("--assert-speedup", &v));
            }
            "--assert-scaling" => {
                let v = value("--assert-scaling");
                cfg.assert_scaling = Some(parse_ratio("--assert-scaling", &v));
            }
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag}")),
            path => cfg.out_path = path.to_string(),
        }
    }
    let known = ["throughput", "latency", "degradation", "open_loop"];
    for s in &cfg.sections {
        if !known.contains(&s.as_str()) {
            die(&format!(
                "unknown section {s:?} (known: {})",
                known.join(", ")
            ));
        }
    }
    cfg
}

/// The fleet under test: K `ds-broadcast` instances sharing one cluster
/// identity (n, seed), transmitter values alternating so neighbouring
/// instances are not trivially identical.
fn fleet_cfgs(k: usize) -> Vec<CheckConfig> {
    (0..k)
        .map(|i| {
            let value = if i % 2 == 0 { Value::ONE } else { Value::ZERO };
            CheckConfig::new(N, T, value, 11, 1, ScheduleSpec::default())
        })
        .collect()
}

/// K back-to-back standalone runtime runs — the pre-service baseline.
/// Instance `i` uses the same derived chaos seed as the multiplexer would,
/// so both strategies do identical protocol work. Returns the number of
/// instances whose correct processors reached agreement.
fn run_serial(
    target: &CheckTarget,
    cfgs: &[CheckConfig],
    chaos: &ChaosProfile,
    threads: usize,
) -> usize {
    let net = NetConfig::new().with_threads(threads);
    cfgs.iter()
        .enumerate()
        .filter(|(i, cfg)| {
            let solo = chaos.clone().reseeded(instance_seed(chaos.seed, *i as u64));
            match run_target(target, cfg, &net, &solo) {
                Ok(run) => !run.violated(),
                Err(NetRunError::Degraded(_)) => false,
                Err(e) => die(&format!("serial baseline: {e}")),
            }
        })
        .count()
}

fn run_svc(
    target: &CheckTarget,
    cfgs: &[CheckConfig],
    chaos: &ChaosProfile,
    threads: usize,
    pipelined: bool,
) -> MultiplexRun {
    let svc = if pipelined {
        SvcConfig::new()
            .with_threads(threads)
            .with_admit_per_tick(1)
    } else {
        SvcConfig::new()
            .with_threads(threads)
            .with_max_inflight(1)
            .with_admit_per_tick(1)
    };
    run_target_multiplexed(target, cfgs, &svc, chaos)
        .unwrap_or_else(|e| die(&format!("multiplexed run: {e}")))
}

/// Instances whose correct processors reached agreement.
fn agreements(mux: &MultiplexRun) -> usize {
    mux.runs
        .iter()
        .filter(|r| matches!(r, Ok(run) if !run.violated()))
        .count()
}

/// Fleet-wide wire bytes sent by correct processors (degraded instances
/// contribute nothing — their runs carry no metrics).
fn fleet_bytes(mux: &MultiplexRun) -> u64 {
    mux.runs
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|run| run.metrics.bytes_by_correct)
        .sum()
}

fn degraded(mux: &MultiplexRun) -> usize {
    mux.runs.iter().filter(|r| r.is_err()).count()
}

/// Everything deterministic about a multiplexed run — per-instance
/// decisions, metrics and verdicts, fleet wire stats, tick count and
/// shared-cache counters. Wall-clock fields are excluded.
fn fingerprint(mux: &MultiplexRun) -> String {
    format!(
        "{:?} | {:?} | ticks={} cache={:?}",
        mux.runs, mux.stats, mux.ticks, mux.cache
    )
}

/// The service determinism contract, gated before any timing runs:
/// worker-count independence of the whole fleet, and per-instance
/// byte-identity with the standalone runtime — with and without chaos.
fn determinism_check(target: &CheckTarget, cfgs: &[CheckConfig], threads: &[usize]) -> bool {
    let mut ok = true;
    for chaos in [
        ChaosProfile::reliable(),
        ChaosProfile::lossy(CHAOS_SEED, 150),
    ] {
        let reference = run_svc(target, cfgs, &chaos, threads[0], true);
        let want = fingerprint(&reference);
        for &th in &threads[1..] {
            let got = fingerprint(&run_svc(target, cfgs, &chaos, th, true));
            if got != want {
                eprintln!(
                    "bench_service: DETERMINISM BROKEN: threads={th} diverges from threads={}",
                    threads[0]
                );
                ok = false;
            }
        }
        for (i, cfg) in cfgs.iter().enumerate() {
            let solo_chaos = chaos.clone().reseeded(instance_seed(chaos.seed, i as u64));
            let solo = run_target(target, cfg, &NetConfig::default(), &solo_chaos);
            let matched = match (&reference.runs[i], &solo) {
                (Ok(m), Ok(s)) => {
                    m.decisions == s.decisions
                        && m.correct == s.correct
                        && m.suspected == s.suspected
                }
                (Err(m), Err(NetRunError::Degraded(s))) => {
                    m.phase == s.phase && m.reason == s.reason && m.suspected == s.suspected
                }
                _ => false,
            };
            if !matched {
                eprintln!(
                    "bench_service: DETERMINISM BROKEN: instance {i} diverges from its \
                     standalone run"
                );
                ok = false;
            }
        }
    }
    ok
}

/// Builds the spec for open-loop arrival number `i` (alternating values,
/// one cluster identity) against the session's shared cache.
fn build_spec(target: &CheckTarget, i: u64, cache: &Arc<VerifierCache>) -> InstanceSpec<Chain> {
    let value = if i.is_multiple_of(2) {
        Value::ONE
    } else {
        Value::ZERO
    };
    let cfg = CheckConfig::new(N, T, value, 11, 1, ScheduleSpec::default());
    let setup = target
        .build_shared(&cfg, cache)
        .unwrap_or_else(|e| die(&format!("open-loop spec {i}: {e}")));
    InstanceSpec {
        actors: setup.actors,
        phases: setup.phases,
        fault_budget: cfg.t,
        link_drops: vec![],
        registry: Some(setup.registry),
    }
}

/// Drives one open-loop run: Poisson arrivals at `rate` instances/tick
/// over [`OPEN_LOOP_ARRIVAL_TICKS`] ticks against a bounded queue with
/// shed-oldest backpressure, then drains to quiescence.
fn run_open_loop(target: &CheckTarget, threads: usize, rate: f64) -> SvcReport {
    let cache = Arc::new(VerifierCache::new());
    let svc = SvcConfig::new()
        .with_threads(threads)
        .with_max_inflight(OPEN_LOOP_INFLIGHT)
        .with_queue_capacity(OPEN_LOOP_QUEUE)
        .with_admission(AdmissionPolicy::ShedOldest);
    let service = BaService::new(svc).with_shared_cache(Arc::clone(&cache));
    let mut session = service.session();
    let mut arrivals = PoissonArrivals::new(CHAOS_SEED, rate);
    let mut submitted = 0u64;
    for _ in 0..OPEN_LOOP_ARRIVAL_TICKS {
        for _ in 0..arrivals.next_arrivals() {
            session
                .submit(build_spec(target, submitted, &cache))
                .expect("shed-oldest admission never refuses");
            submitted += 1;
        }
        session.tick();
    }
    session.drain()
}

/// Everything deterministic about a session report — timestamps in ticks,
/// outcomes, admission log, shed set, queue and wire statistics.
/// Wall-clock fields are excluded.
fn svc_fingerprint(report: &SvcReport) -> String {
    let outcomes: Vec<_> = report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.id,
                o.submitted_tick,
                o.admitted_tick,
                o.settled_tick,
                &o.result,
            )
        })
        .collect();
    format!(
        "{outcomes:?} | shed={:?} | log={:?} | queue={:?} | {:?} | ticks={} peak={}",
        report.shed,
        report.admission_log,
        report.queue,
        report.stats,
        report.ticks,
        report.peak_inflight
    )
}

/// Proves the deprecated closed-loop `run()` wrapper byte-identical to a
/// hand-driven session over the same fixed fleet.
fn wrapper_matches(target: &CheckTarget, k: usize, threads: usize) -> bool {
    let svc = SvcConfig::new()
        .with_threads(threads)
        .with_queue_capacity(k);
    let session_report = {
        let cache = Arc::new(VerifierCache::new());
        let service = BaService::new(svc.clone()).with_shared_cache(Arc::clone(&cache));
        let mut session = service.session();
        for i in 0..k as u64 {
            session
                .submit(build_spec(target, i, &cache))
                .expect("queue sized to the fleet");
        }
        session.drain()
    };
    let wrapper_report = {
        let cache = Arc::new(VerifierCache::new());
        let service = BaService::new(svc).with_shared_cache(Arc::clone(&cache));
        let specs = (0..k as u64)
            .map(|i| build_spec(target, i, &cache))
            .collect();
        #[allow(deprecated)]
        service.run(specs)
    };
    svc_fingerprint(&session_report) == svc_fingerprint(&wrapper_report)
}

/// Saturates a tiny session under block-with-deadline admission and
/// proves every submit returns (accepted or refused — never wedged) and
/// the drained report still accounts exactly.
fn no_admission_deadlock(target: &CheckTarget, threads: usize) -> bool {
    let cache = Arc::new(VerifierCache::new());
    let svc = SvcConfig::new()
        .with_threads(threads)
        .with_max_inflight(2)
        .with_admit_per_tick(1)
        .with_queue_capacity(2)
        .with_admission(AdmissionPolicy::BlockWithDeadline { deadline_ticks: 64 });
    let service = BaService::new(svc).with_shared_cache(Arc::clone(&cache));
    let mut session = service.session();
    let mut accepted = 0usize;
    for i in 0..16u64 {
        if session.submit(build_spec(target, i, &cache)).is_ok() {
            accepted += 1;
        }
    }
    let report = session.drain();
    accepted == report.outcomes.len() && report.accounting_balanced()
}

struct Row {
    section: &'static str,
    label: String,
    threads: usize,
    batched: bool,
    sample: Sample,
    /// Extra JSON key/value pairs, already rendered (`, "key": value`).
    extra: String,
}

fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = parse_args(&args);
    let th_lo = *cfg.threads.iter().min().expect("non-empty");
    let th_hi = *cfg.threads.iter().max().expect("non-empty");

    let parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let single_core = parallelism == 1;
    if single_core {
        eprintln!(
            "bench_service: warning: single-core host (available_parallelism = 1); \
             every row is tagged \"single_core\": true, thread-scaling rows measure \
             coordination overhead only, and --assert-scaling is skipped. The \
             pipelined-vs-serial speedup gate still applies: that win comes from \
             shared setup and fleet-wide cache hits, not parallelism."
        );
    }

    let target = find_target(TARGET).unwrap_or_else(|| die(&format!("no target {TARGET:?}")));
    let cfgs = fleet_cfgs(cfg.k);
    let k = cfg.k;

    // -- determinism gate (always on; timings are meaningless without it) --
    let deterministic = determinism_check(target, &cfgs, &cfg.threads);
    if deterministic {
        eprintln!(
            "bench_service: determinism check passed ({k} instances, threads {:?}, \
             reliable + lossy)",
            cfg.threads
        );
    }

    let mut rows: Vec<Row> = Vec::new();
    let reliable = ChaosProfile::reliable();

    // -- throughput: serial runtime vs the multiplexer ---------------------
    // (label, serial-runtime median, pipelined median) per thread count.
    let mut speedup_hi: Option<f64> = None;
    let mut pipelined_medians: Vec<(usize, f64)> = Vec::new();
    if cfg.section("throughput") {
        for &threads in &cfg.threads {
            let serial_decided = run_serial(target, &cfgs, &reliable, threads);
            // The svc-serial probe doubles as the wire-volume source for
            // the serial-runtime row: per-instance byte-identity with the
            // standalone runtime is the gated determinism contract.
            let serial_probe = run_svc(target, &cfgs, &reliable, threads, false);
            let pipe_probe = run_svc(target, &cfgs, &reliable, threads, true);
            let pipe_decided = agreements(&pipe_probe);
            assert_eq!(
                serial_decided, k,
                "reliable wire: every serial instance must decide"
            );
            assert_eq!(
                pipe_decided, k,
                "reliable wire: every pipelined instance must decide"
            );

            let strategies: [(&str, bool); 3] = [
                ("serial-runtime", false),
                ("svc-serial", true),
                ("svc-pipelined", true),
            ];
            let mut medians = [0.0f64; 3];
            for (si, (label, batched)) in strategies.into_iter().enumerate() {
                let sample = bench(
                    format!("{label} k={k} n={N} threads={threads}"),
                    || match label {
                        "serial-runtime" => run_serial(target, &cfgs, &reliable, threads),
                        "svc-serial" => {
                            agreements(&run_svc(target, &cfgs, &reliable, threads, false))
                        }
                        _ => agreements(&run_svc(target, &cfgs, &reliable, threads, true)),
                    },
                );
                medians[si] = sample.median_ns;
                let agreements_per_sec = k as f64 * 1e9 / sample.median_ns;
                let bytes_sent = if label == "svc-pipelined" {
                    fleet_bytes(&pipe_probe)
                } else {
                    fleet_bytes(&serial_probe)
                };
                rows.push(Row {
                    section: "throughput",
                    label: format!("{label} k={k}"),
                    threads,
                    batched,
                    sample,
                    extra: format!(
                        ", \"agreements_per_sec\": {agreements_per_sec:.1}, \
                         \"bytes_sent\": {bytes_sent}"
                    ),
                });
            }
            let speedup = medians[0] / medians[2];
            eprintln!(
                "bench_service: threads={threads}: pipelined multiplexer is {speedup:.2}x \
                 serial-runtime agreements/sec ({:.0} vs {:.0} agr/s)",
                k as f64 * 1e9 / medians[2],
                k as f64 * 1e9 / medians[0],
            );
            pipelined_medians.push((threads, medians[2]));
            if threads == th_hi {
                speedup_hi = Some(speedup);
            }
        }
    }

    // -- latency: p50/p99 admission-to-decision, pipelined fleet -----------
    if cfg.section("latency") {
        let mut pooled_ns: Vec<f64> = Vec::new();
        let mut fleet_wire: u64 = 0;
        for i in 0..LATENCY_RUNS {
            let mux = run_svc(target, &cfgs, &reliable, th_hi, true);
            if i == 0 {
                fleet_wire = fleet_bytes(&mux);
            }
            pooled_ns.extend(mux.latencies.iter().map(|d| d.as_nanos() as f64));
        }
        pooled_ns.sort_by(|a, b| a.total_cmp(b));
        for (label, p) in [("p50", 0.50), ("p99", 0.99)] {
            let ns = percentile(&pooled_ns, p);
            rows.push(Row {
                section: "latency",
                label: format!("decision {label} k={k}"),
                threads: th_hi,
                batched: true,
                sample: Sample {
                    name: format!("decision latency {label} (pipelined, k={k})"),
                    batch_iters: 1,
                    batches: (pooled_ns.len()) as u32,
                    median_ns: ns,
                    mean_ns: pooled_ns.iter().sum::<f64>() / pooled_ns.len() as f64,
                    min_ns: pooled_ns[0],
                },
                extra: format!(", \"bytes_sent\": {fleet_wire}"),
            });
        }
    }

    // -- degradation: agreements/sec vs per-link loss ----------------------
    let mut no_violations = true;
    if cfg.section("degradation") {
        for drop in LOSS_SWEEP {
            let chaos = if drop == 0 {
                ChaosProfile::reliable()
            } else {
                ChaosProfile::lossy(CHAOS_SEED, drop)
            };
            let probe = run_svc(target, &cfgs, &chaos, th_hi, true);
            let decided = agreements(&probe);
            let failed = degraded(&probe);
            no_violations &= probe
                .runs
                .iter()
                .all(|r| !matches!(r, Ok(run) if run.violated()));
            let sample = bench(
                format!("degradation d={drop:>3} k={k} threads={th_hi}"),
                || agreements(&run_svc(target, &cfgs, &chaos, th_hi, true)),
            );
            let agreements_per_sec = decided as f64 * 1e9 / sample.median_ns;
            rows.push(Row {
                section: "degradation",
                label: format!("lossy d={drop} k={k}"),
                threads: th_hi,
                batched: true,
                sample,
                extra: format!(
                    ", \"drop_per_mille\": {drop}, \"decided\": {decided}, \
                     \"degraded\": {failed}, \"agreements_per_sec\": {agreements_per_sec:.1}, \
                     \"bytes_sent\": {}",
                    fleet_bytes(&probe)
                ),
            });
        }
    }

    // -- open_loop: Poisson arrivals against the session API ---------------
    let mut open_loop_accounting: Option<bool> = None;
    let mut open_loop_deterministic: Option<bool> = None;
    let mut deadlock_free: Option<bool> = None;
    let mut wrapper_identical: Option<bool> = None;
    if cfg.section("open_loop") {
        let mut accounting = true;
        for rate in OPEN_LOOP_RATES {
            let probe = run_open_loop(target, th_hi, rate);
            accounting &= probe.accounting_balanced();
            let submitted = probe.submitted();
            let decided = probe.decided();
            let failed = probe.degraded();
            let shed = probe.shed_count();
            let shed_rate = shed as f64 / submitted.max(1) as f64;
            let mut lat_ns: Vec<f64> = probe
                .submission_to_decision_latencies()
                .iter()
                .map(|d| d.as_nanos() as f64)
                .collect();
            lat_ns.sort_by(|a, b| a.total_cmp(b));
            let (p50, p99) = (percentile(&lat_ns, 0.50), percentile(&lat_ns, 0.99));
            let sample = bench(
                format!("open-loop λ={rate} k={submitted} threads={th_hi}"),
                || run_open_loop(target, th_hi, rate).decided(),
            );
            let agreements_per_sec = decided as f64 * 1e9 / sample.median_ns;
            eprintln!(
                "bench_service: open-loop λ={rate}: {submitted} submitted → {decided} decided, \
                 {failed} degraded, {shed} shed ({:.0}% shed) at {agreements_per_sec:.0} agr/s",
                shed_rate * 100.0
            );
            rows.push(Row {
                section: "open_loop",
                label: format!("poisson λ={rate}"),
                threads: th_hi,
                batched: true,
                sample,
                extra: format!(
                    ", \"offered_per_tick\": {rate}, \"submitted\": {submitted}, \
                     \"decided\": {decided}, \"degraded\": {failed}, \"shed\": {shed}, \
                     \"shed_rate\": {shed_rate:.3}, \
                     \"agreements_per_sec\": {agreements_per_sec:.1}, \
                     \"latency_p50_ns\": {p50:.1}, \"latency_p99_ns\": {p99:.1}, \
                     \"mean_queue_depth\": {:.2}, \"peak_queue_depth\": {}, \
                     \"peak_inflight\": {}, \"ticks\": {}",
                    probe.queue.mean_depth(),
                    probe.queue.peak_depth,
                    probe.peak_inflight,
                    probe.ticks
                ),
            });
        }
        open_loop_accounting = Some(accounting);
        // The open-loop analogue of the fleet determinism gate: the same
        // arrival schedule must replay byte-identically at every thread
        // count (wall clock aside).
        let want = svc_fingerprint(&run_open_loop(target, cfg.threads[0], OPEN_LOOP_RATES[1]));
        open_loop_deterministic =
            Some(cfg.threads[1..].iter().all(|&th| {
                svc_fingerprint(&run_open_loop(target, th, OPEN_LOOP_RATES[1])) == want
            }));
        deadlock_free = Some(no_admission_deadlock(target, th_hi));
        wrapper_identical = Some(cfg.threads.iter().all(|&th| wrapper_matches(target, k, th)));
    }

    let samples: Vec<Sample> = rows.iter().map(|r| r.sample.clone()).collect();
    print_samples("ba-svc multiplexer", &samples);

    // -- JSON report -------------------------------------------------------
    let mut json = String::from("{\n  \"bench\": \"service\",\n");
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"single_core\": {single_core},");
    let speedup_str = speedup_hi.map_or("null".to_string(), |s| format!("{s:.3}"));
    let opt = |v: Option<bool>| v.map_or("null".to_string(), |b| b.to_string());
    let _ = writeln!(
        json,
        "  \"checks\": {{\"determinism\": {deterministic}, \"no_agreement_violations\": \
         {no_violations}, \"pipelined_speedup_vs_serial\": {speedup_str}, \
         \"pipelined_speedup_at_least_2x\": {}, \"open_loop_accounting\": {}, \
         \"open_loop_determinism\": {}, \"no_admission_deadlock\": {}, \
         \"run_wrapper_byte_identical\": {}}},",
        speedup_hi.is_some_and(|s| s >= 2.0),
        opt(open_loop_accounting),
        opt(open_loop_deterministic),
        opt(deadlock_free),
        opt(wrapper_identical),
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"section\": \"{}\", \"label\": \"{}\", \"n\": {N}, \"threads\": {}, \
             \"pooled\": true, \"batched\": {}, \"parallelism\": {parallelism}, \
             \"single_core\": {single_core}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}{}}}{}",
            r.section,
            r.label,
            r.threads,
            r.batched,
            r.sample.median_ns,
            r.sample.mean_ns,
            r.sample.min_ns,
            r.extra,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&cfg.out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cfg.out_path);
        std::process::exit(1);
    });
    eprintln!("wrote {}", cfg.out_path);

    // -- gates (after the JSON, so failures still leave a report) ----------
    if !deterministic {
        eprintln!("bench_service: FAILED: determinism check");
        std::process::exit(1);
    }
    if !no_violations {
        eprintln!("bench_service: FAILED: an instance violated Byzantine Agreement under loss");
        std::process::exit(1);
    }
    for (check, ok) in [
        (
            "open-loop accounting (submitted = decided + degraded + shed)",
            open_loop_accounting,
        ),
        (
            "open-loop determinism across worker counts",
            open_loop_deterministic,
        ),
        (
            "no admission deadlock under block-with-deadline",
            deadlock_free,
        ),
        (
            "run() wrapper byte-identity with session()",
            wrapper_identical,
        ),
    ] {
        if ok == Some(false) {
            eprintln!("bench_service: FAILED: {check}");
            std::process::exit(1);
        }
    }
    if let Some(ratio) = cfg.assert_speedup {
        match speedup_hi {
            Some(s) if s >= ratio => eprintln!(
                "bench_service: speedup gate passed ({s:.2}x >= {ratio}x at threads={th_hi})"
            ),
            Some(s) => {
                eprintln!(
                    "bench_service: speedup gate FAILED: pipelined is only {s:.2}x \
                     serial-runtime at threads={th_hi} (need {ratio}x)"
                );
                std::process::exit(1);
            }
            None => die("--assert-speedup needs the throughput section"),
        }
    }
    if let Some(ratio) = cfg.assert_scaling {
        if single_core {
            eprintln!("bench_service: --assert-scaling skipped: single-core host");
            return;
        }
        let med = |th: usize| {
            pipelined_medians
                .iter()
                .find(|(t, _)| *t == th)
                .map(|(_, m)| *m)
                .unwrap_or_else(|| die("--assert-scaling needs the throughput section"))
        };
        let (lo, hi) = (med(th_lo), med(th_hi));
        if hi > lo * ratio {
            eprintln!(
                "bench_service: scaling gate FAILED: threads={th_hi} median {hi:.0} ns > \
                 {ratio} x threads={th_lo} median {lo:.0} ns"
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_service: scaling gate passed (threads={th_hi} <= {ratio} x threads={th_lo})"
        );
    }
}
