//! Benchmark and budget gate for the `ba-ext` extension protocol.
//!
//! For each `(payload ℓ, grid n)` cell the binary runs the full protocol —
//! digest agreement through the inner Dolev–Strong target plus
//! erasure-coded grid dissemination — and records the schedule-independent
//! bits-exchanged breakdown next to the timing:
//!
//! * `total_bytes` — wire bytes sent by correct processors across both
//!   layers (`Metrics::bytes_by_correct`);
//! * `payload_bytes` / `control_bytes` — the user-data vs framing split;
//! * `overhead_ratio` — `total_bytes / (ℓ·n)`, the figure the
//!   extension-protocol literature's `Ω(ℓn)` lower bound normalizes;
//! * `repair_requests` / `repair_response_bytes` — how much of the grid's
//!   column repair machinery each cell exercised.
//!
//! Each `(ℓ, n)` cell appears three times: fault-free (`"none"`), with the
//! last `t` grid nodes silent (`"withhold-t"` — their chunks must be
//! recovered through repair), and with the last `t` nodes garbling every
//! chunk and bundle they relay (`"garble-t"` — digest checks reject the
//! forgeries and repair routes around them). Faulty rows must still reach
//! unanimous decision among correct nodes; only fault-free rows feed the
//! overhead gate.
//!
//! Sections (select with `--section`, default `small`):
//!
//! * `small` — ℓ ∈ {1 KiB, 16 KiB, 256 KiB} on the 4×4 grid (CI);
//! * `full` — adds ℓ ∈ {1 MiB, 4 MiB} and the 7×7 grid.
//!
//! `--check-overhead` exits non-zero unless every fault-free cell with
//! ℓ ≥ 256 KiB satisfies `total_bytes ≤ 4·ℓ·n` (at small ℓ the inner-BA
//! signature chains dominate and the ratio is meaningless — the bound is
//! asymptotic in ℓ). A worker-count determinism check (threads 1 vs 4,
//! scoped vs shared pool) is always on: decisions and metrics must be
//! byte-identical or the run aborts. Emits a JSON report to the path given
//! as the first positional argument (default `BENCH_ext.json`).
//!
//! ```text
//! cargo run -p ba-bench --release --bin bench_ext -- --section small --check-overhead
//! ```

use ba_bench::microbench::{bench, print_samples, Sample};
use ba_crypto::rng::SimRng;
use ba_crypto::{Bytes, ProcessId};
use ba_ext::check::{run_scenario, ExtScenario};
use ba_ext::{ExtDecision, ExtOptions, ExtReport};
use ba_sim::schedule::{FaultBehavior, ScheduleSpec};
use std::fmt::Write as _;

const KIB: usize = 1024;
const SMALL_PAYLOADS: [usize; 3] = [KIB, 16 * KIB, 256 * KIB];
const FULL_PAYLOADS: [usize; 2] = [1024 * KIB, 4096 * KIB];
/// Grids: (n, t). `t` is the full grid bound √n − 1 on the small grid and
/// a mid-range budget on the large one.
const SMALL_GRIDS: [(usize, usize); 1] = [(16, 3)];
const FULL_GRIDS: [(usize, usize); 1] = [(49, 4)];
/// The gated fault-free overhead constant: `total_bytes ≤ GATE · ℓ · n`.
const GATE: f64 = 4.0;
/// Payloads below this are exempt from the gate (control traffic
/// amortizes only asymptotically in ℓ).
const GATE_MIN_PAYLOAD: usize = 256 * KIB;

struct Row {
    payload_len: usize,
    n: usize,
    t: usize,
    fault: &'static str,
    total_bytes: u64,
    payload_bytes: u64,
    inner_bytes: u64,
    dissemination_bytes: u64,
    overhead_ratio: f64,
    repair_requests: u64,
    repair_response_bytes: u64,
    decided: usize,
    sample: Sample,
}

/// The benchmarked fault families: each cell runs fault-free, with the
/// last `t` grid nodes silent, and with the last `t` nodes garbling.
const FAULT_FAMILIES: [&str; 3] = ["none", "withhold-t", "garble-t"];

fn family_scenario(family: &str, n: usize, t: usize) -> ExtScenario {
    let tail: Vec<ProcessId> = (n - t..n).map(|p| ProcessId(p as u32)).collect();
    let (faults, garble) = match family {
        "none" => (Vec::new(), Vec::new()),
        "withhold-t" => (
            tail.iter().map(|p| (*p, FaultBehavior::Silent)).collect(),
            Vec::new(),
        ),
        "garble-t" => (Vec::new(), tail),
        other => die(&format!("unknown fault family {other:?}")),
    };
    ExtScenario {
        spec: ScheduleSpec {
            faults,
            link_drops: Vec::new(),
        },
        garble,
        label: family.to_string(),
    }
}

struct Config {
    out_path: String,
    sections: Vec<String>,
    check_overhead: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("bench_ext: {msg}");
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Config {
    let mut cfg = Config {
        out_path: "BENCH_ext.json".to_string(),
        sections: Vec::new(),
        check_overhead: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--section" => {
                let v = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--section needs a value"));
                if v != "small" && v != "full" {
                    die(&format!("unknown section {v:?} (known: small, full)"));
                }
                cfg.sections.push(v);
            }
            "--check-overhead" => cfg.check_overhead = true,
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag}")),
            path => cfg.out_path = path.to_string(),
        }
    }
    if cfg.sections.is_empty() {
        cfg.sections.push("small".to_string());
    }
    cfg
}

fn payload(len: usize, seed: u64) -> Bytes {
    let mut rng = SimRng::new(seed);
    Bytes::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
}

fn decided_count(report: &ExtReport) -> usize {
    report
        .correct_decisions()
        .filter(|(_, d)| matches!(d, Some(ExtDecision::Decide(_))))
        .count()
}

/// Runs one cell and asserts the determinism and totality contracts: the
/// judge finds no violation, every correct node decides (the faulty
/// families stay within the `t` budget, so repair must recover the
/// payload), and a threads=4/pooled rerun is byte-identical.
fn probe(p: &Bytes, opts: &ExtOptions, scenario: &ExtScenario) -> ExtReport {
    let base = run_scenario(p, opts, scenario);
    if let Some(failure) = &base.failure {
        die(&format!(
            "cell n={} ℓ={} [{}] violated the judge: {failure}",
            opts.n,
            p.len(),
            scenario.label
        ));
    }
    let report = base
        .report
        .unwrap_or_else(|| die(&format!("cell [{}] produced no report", scenario.label)));
    let correct_total = report.correct.iter().filter(|c| **c).count();
    if decided_count(&report) != correct_total {
        die(&format!(
            "cell n={} ℓ={} [{}] did not decide on every correct node",
            opts.n, report.payload_len, scenario.label
        ));
    }
    let threaded = run_scenario(
        p,
        &ExtOptions {
            threads: 4,
            pooled: true,
            ..opts.clone()
        },
        scenario,
    );
    if threaded.report.as_ref() != Some(&report) {
        die(&format!(
            "DETERMINISM BROKEN at n={} ℓ={} [{}]: threads=4/pooled diverges from threads=1",
            opts.n, report.payload_len, scenario.label
        ));
    }
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = parse_args(&args);

    let mut payloads: Vec<usize> = SMALL_PAYLOADS.to_vec();
    let mut grids: Vec<(usize, usize)> = SMALL_GRIDS.to_vec();
    if cfg.sections.iter().any(|s| s == "full") {
        payloads.extend(FULL_PAYLOADS);
        grids.extend(FULL_GRIDS);
    }

    let mut rows: Vec<Row> = Vec::new();
    for &(n, t) in &grids {
        for &len in &payloads {
            let opts = ExtOptions {
                n,
                t,
                seed: 0xE87,
                ..ExtOptions::default()
            };
            let p = payload(len, len as u64 ^ 0xBA5E);
            for family in FAULT_FAMILIES {
                let scenario = family_scenario(family, n, t);
                let report = probe(&p, &opts, &scenario);
                let sample = bench(
                    format!("ext ℓ={len:>8} n={n:>2} t={t} {family:<10}"),
                    || {
                        decided_count(
                            run_scenario(&p, &opts, &scenario)
                                .report
                                .as_ref()
                                .expect("bench run"),
                        )
                    },
                );
                rows.push(Row {
                    payload_len: len,
                    n,
                    t,
                    fault: family,
                    total_bytes: report.total_wire_bytes(),
                    payload_bytes: report.payload_wire_bytes(),
                    inner_bytes: report.inner_metrics.wire_bytes(),
                    dissemination_bytes: report.dissemination.wire_bytes(),
                    overhead_ratio: report.overhead_ratio(),
                    repair_requests: report.repair_requests,
                    repair_response_bytes: report.repair_response_bytes,
                    decided: decided_count(&report),
                    sample,
                });
            }
        }
    }

    let samples: Vec<Sample> = rows.iter().map(|r| r.sample.clone()).collect();
    print_samples("extension protocol", &samples);

    // -- JSON report -------------------------------------------------------
    let gate_applies = |r: &Row| r.fault == "none" && r.payload_len >= GATE_MIN_PAYLOAD;
    let overhead_ok = rows
        .iter()
        .filter(|r| gate_applies(r))
        .all(|r| r.overhead_ratio <= GATE);
    let mut json = String::from("{\n  \"bench\": \"ext\",\n");
    let _ = writeln!(
        json,
        "  \"checks\": {{\"overhead_gate\": {overhead_ok}, \"gate_constant\": {GATE}, \
         \"gate_min_payload\": {GATE_MIN_PAYLOAD}, \"determinism\": true}},"
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"payload_len\": {}, \"n\": {}, \"t\": {}, \"fault\": \"{}\", \
             \"bytes_sent\": {}, \
             \"payload_bytes\": {}, \"control_bytes\": {}, \"inner_bytes\": {}, \
             \"dissemination_bytes\": {}, \"overhead_ratio\": {:.4}, \
             \"repair_requests\": {}, \"repair_response_bytes\": {}, \"gated\": {}, \
             \"decided\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}}}{}",
            r.payload_len,
            r.n,
            r.t,
            r.fault,
            r.total_bytes,
            r.payload_bytes,
            r.total_bytes - r.payload_bytes,
            r.inner_bytes,
            r.dissemination_bytes,
            r.overhead_ratio,
            r.repair_requests,
            r.repair_response_bytes,
            gate_applies(r),
            r.decided,
            r.sample.median_ns,
            r.sample.mean_ns,
            r.sample.min_ns,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&cfg.out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cfg.out_path);
        std::process::exit(1);
    });
    eprintln!("wrote {}", cfg.out_path);

    // -- overhead gate (after the JSON, so failures still leave a report) --
    if cfg.check_overhead {
        let mut failed = false;
        for r in rows.iter().filter(|r| gate_applies(r)) {
            if r.overhead_ratio > GATE {
                eprintln!(
                    "bench_ext: overhead gate FAILED: ℓ={} n={}: {} bytes = {:.2} x ℓn \
                     (gate {GATE})",
                    r.payload_len, r.n, r.total_bytes, r.overhead_ratio
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "bench_ext: overhead gate passed (total ≤ {GATE} x ℓn for every ℓ ≥ {GATE_MIN_PAYLOAD})"
        );
    }
}
