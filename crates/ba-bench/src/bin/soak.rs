//! Seeded chaos-soak campaigns for the `ba-net` runtime.
//!
//! Each campaign draws a fault schedule from `ba-check`'s sampler and a
//! chaos profile from `ba-net`, runs the target through the real
//! message-passing runtime, and classifies the outcome:
//!
//! * **clean** — the run completed and Byzantine Agreement held;
//! * **degraded** — the runtime aborted with a structured
//!   [`DegradationVerdict`](ba_net::DegradationVerdict) (fault budget
//!   exceeded, deadline blown, worker stalled) instead of deciding;
//! * **violation** — the run completed but agreement broke. Expected on
//!   targets registered unsound; a soundness breach (and a nonzero exit)
//!   on sound ones, because the runtime must abort rather than decide
//!   wrongly when the wire misbehaves past the budget.
//!
//! Every violation is fed back to the model checker: chaos-induced
//! permanently-failed links become `Passive`-sender [`LinkDrop`]s on the
//! lock-step schedule, the augmented schedule is replayed on the
//! deterministic engine, and — when it reproduces — shrunk to a 1-minimal
//! counterexample and appended to the regression corpus (`--corpus-out`).
//!
//! ```text
//! cargo run -p ba-bench --bin soak --release -- \
//!     --profile stress --campaigns 40 --seed 7
//!     # every registered target, 40 campaigns each
//!
//! cargo run -p ba-bench --bin soak --release -- \
//!     --target ds-weak-relay-threshold --profile lossy --expect-violation
//!     # CI guard: the weakened target must still be caught under chaos
//!
//! cargo run -p ba-bench --bin soak --release -- \
//!     --campaigns 100 --corpus-out /tmp/soak-corpus.json
//!     # persist newly minimized counterexamples for triage
//!
//! cargo run -p ba-bench --bin soak --release -- \
//!     --target ext --n 9 --t 2 --profile lossy --campaigns 20
//!     # chaos-soak the extension layer: completed runs must judge clean
//!     # (strict outcome agreement), degradation verdicts are acceptable
//! ```
//!
//! Determinism: campaign `i` of a target uses the schedule sampler seeded
//! from `--seed` and a chaos profile seeded with `derive_seed(seed, i)`,
//! and all chaos randomness runs on the coordinator thread — reruns with
//! the same flags reproduce byte-identical campaign outcomes at any
//! `--threads`.

use ba_check::corpus::{self, CorpusEntry};
use ba_check::{explore, shrink, shrink_ext, ExploreOptions, ExtSchedule, FaultSchedule, Strategy};
use ba_crypto::rng::derive_seed;
use ba_ext::check::{run_scenario_net, standard_scenarios};
use ba_ext::net::ExtNetError;
use ba_net::{run_target, ChaosProfile, NetConfig, NetRunError};
use ba_sim::schedule::{FaultBehavior, LinkDrop, ScheduleSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::process::ExitCode;

struct Cli {
    target: Option<String>,
    profile: String,
    campaigns: usize,
    n: usize,
    t: usize,
    value: u64,
    seed: u64,
    threads: usize,
    inner: String,
    corpus_out: Option<String>,
    expect_violation: bool,
}

#[derive(Default)]
struct Tally {
    clean: usize,
    degraded: usize,
    skipped: usize,
    expected_violations: usize,
    unexpected_violations: usize,
    reproduced: usize,
    corpus_new: Vec<CorpusEntry>,
}

fn usage() -> ! {
    eprintln!(
        "usage: soak [--target NAME|ext] [--profile {}] [--campaigns N] \
         [--n N] [--t T] [--value 0|1] [--seed S] [--threads K] \
         [--inner NAME] [--corpus-out PATH] [--expect-violation]",
        ChaosProfile::NAMES.join("|")
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        target: None,
        profile: "stress".to_string(),
        campaigns: 40,
        n: 4,
        t: 1,
        value: 1,
        seed: 0,
        threads: 2,
        inner: "ds-broadcast".to_string(),
        corpus_out: None,
        expect_violation: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--target" => cli.target = Some(value_of("--target")),
            "--profile" => cli.profile = value_of("--profile"),
            "--campaigns" => cli.campaigns = parse_num(&value_of("--campaigns"), "--campaigns"),
            "--n" => cli.n = parse_num(&value_of("--n"), "--n"),
            "--t" => cli.t = parse_num(&value_of("--t"), "--t"),
            "--value" => cli.value = parse_num(&value_of("--value"), "--value") as u64,
            "--seed" => cli.seed = parse_num(&value_of("--seed"), "--seed") as u64,
            "--threads" => cli.threads = parse_num(&value_of("--threads"), "--threads").max(1),
            "--inner" => cli.inner = value_of("--inner"),
            "--corpus-out" => cli.corpus_out = Some(value_of("--corpus-out")),
            "--expect-violation" => cli.expect_violation = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if ChaosProfile::from_name(&cli.profile, 0).is_none() {
        eprintln!("unknown chaos profile {:?}", cli.profile);
        usage();
    }
    cli
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a non-negative integer, got {text:?}");
        std::process::exit(2);
    })
}

/// Maps a chaos run's permanently failed links onto the lock-step
/// vocabulary: the sender becomes a `Passive` fault (honest behaviour,
/// counted against the budget — exactly how the runtime suspected it) and
/// each failed frame becomes a scheduled [`LinkDrop`].
fn absorb_failed_links(spec: &ScheduleSpec, failed: &[ba_net::FailedLink]) -> ScheduleSpec {
    let mut out = spec.clone();
    for link in failed {
        if !out.is_faulty(link.from) {
            out.faults.push((link.from, FaultBehavior::Passive));
        }
        out.link_drops.push(LinkDrop {
            phase: link.phase,
            from: link.from,
            to: link.to,
        });
    }
    out.faults.sort_by_key(|(p, _)| *p);
    out.link_drops.sort();
    out.link_drops.dedup();
    out
}

/// Replays a chaos-found violation on the deterministic engine; returns
/// the shrunk corpus entry when the failure reproduces.
fn reproduce_and_shrink(
    target: &'static ba_check::CheckTarget,
    schedule: &FaultSchedule,
) -> Option<CorpusEntry> {
    let replay = catch_unwind(AssertUnwindSafe(|| {
        target.run(&schedule.config(1)).failure()
    }));
    match replay {
        Ok(Some(_failure)) => {
            let (minimized, minimized_failure) = shrink::shrink(target, schedule);
            Some(CorpusEntry::target(minimized, minimized_failure))
        }
        Ok(None) => None,
        Err(_) => {
            eprintln!(
                "  lock-step replay panicked for {} — schedule kept un-shrunk: {}",
                schedule.target,
                schedule.to_json().render()
            );
            None
        }
    }
}

/// Replays a chaos-found extension violation on the lock-step engine;
/// returns the shrunk ext corpus entry when the failure reproduces.
fn reproduce_and_shrink_ext(schedule: &ExtSchedule) -> Option<CorpusEntry> {
    if schedule.validate().is_err() {
        // Absorbing failed links can push the schedule past the fault
        // budget; an over-budget schedule has no lock-step reproduction.
        return None;
    }
    let replay = catch_unwind(AssertUnwindSafe(|| schedule.failure(1)));
    match replay {
        Ok(Some(_failure)) => {
            let (minimized, minimized_failure) = shrink_ext(schedule);
            Some(CorpusEntry::ext(minimized, minimized_failure))
        }
        Ok(None) => None,
        Err(_) => {
            eprintln!(
                "  lock-step replay panicked for ext — schedule kept un-shrunk: {}",
                schedule.to_json().render()
            );
            None
        }
    }
}

/// Chaos-soaks the extension layer: the standard scenario family plus
/// seeded random schedules runs through `run_extension_net` under the
/// chosen profile. With a sound inner target (the default) every
/// completed run must judge clean (strict outcome agreement, no wrong
/// payload) and a degradation verdict is the only other acceptable
/// outcome; `--inner` swaps in a weakened digest-agreement target, whose
/// violations are expected and feed the shrink-to-corpus pipeline.
fn soak_ext(cli: &Cli, tally: &mut Tally) {
    let Some(inner) = ba_check::find_target(&cli.inner) else {
        eprintln!("unknown inner target {:?}", cli.inner);
        std::process::exit(2);
    };
    let (n, t) = (cli.n, cli.t);
    let scenarios = standard_scenarios(n, t, cli.seed, cli.campaigns);
    let net = NetConfig {
        threads: cli.threads,
        ..NetConfig::default()
    };
    let mut local = Tally::default();
    for (i, scenario) in scenarios.iter().enumerate() {
        let chaos = ChaosProfile::from_name(&cli.profile, derive_seed(cli.seed, i as u64))
            .expect("profile validated at parse time");
        let schedule = ExtSchedule {
            n,
            t,
            payload_len: 2_048,
            payload_seed: derive_seed(cli.seed, 2_000_000 + i as u64),
            seed: derive_seed(cli.seed, 1_000_000 + i as u64),
            inner: inner.name.to_string(),
            vote_inner: "ds-relay".to_string(),
            spec: scenario.spec.clone(),
            garble: scenario.garble.clone(),
        };
        let opts = match schedule.options(1) {
            Ok(opts) if schedule.validate().is_ok() => opts,
            _ => {
                local.skipped += 1;
                continue;
            }
        };
        match run_scenario_net(
            &schedule.payload(),
            &opts,
            &schedule.scenario(),
            &net,
            &chaos,
        ) {
            Err(ExtNetError::BadOptions(_)) | Err(ExtNetError::Schedule(_)) => local.skipped += 1,
            Err(ExtNetError::Degraded { .. }) => local.degraded += 1,
            Ok((_, None)) => local.clean += 1,
            Ok((run, Some(failure))) => {
                if inner.sound {
                    local.unexpected_violations += 1;
                    eprintln!(
                        "  EXT SOUNDNESS BREACH under {} chaos (campaign {i}, {}): {failure}",
                        cli.profile, scenario.label
                    );
                } else {
                    local.expected_violations += 1;
                }
                let failed: Vec<ba_net::FailedLink> = run
                    .wire
                    .iter()
                    .flat_map(|stage| stage.stats.failed_links.iter().cloned())
                    .collect();
                let augmented = ExtSchedule {
                    spec: absorb_failed_links(&schedule.spec, &failed),
                    ..schedule.clone()
                };
                if let Some(entry) = reproduce_and_shrink_ext(&augmented) {
                    local.reproduced += 1;
                    if !local.corpus_new.iter().any(|e| e.case == entry.case)
                        && !tally.corpus_new.iter().any(|e| e.case == entry.case)
                    {
                        println!(
                            "  minimized: {} — {}",
                            entry.schedule_json().render(),
                            entry.failure
                        );
                        local.corpus_new.push(entry);
                    }
                } else {
                    println!(
                        "  campaign {i}: ext violation did not reproduce on the lock-step \
                         engine (chaos-order dependent): {}",
                        augmented.to_json().render()
                    );
                }
            }
        }
    }
    println!(
        "ext: {} campaign(s) under {:?} at n = {n}, t = {t} — {} clean, {} degraded, \
         {} violation(s) ({} unexpected), {} reproduced, {} skipped",
        scenarios.len(),
        cli.profile,
        local.clean,
        local.degraded,
        local.expected_violations + local.unexpected_violations,
        local.unexpected_violations,
        local.reproduced,
        local.skipped
    );
    tally.clean += local.clean;
    tally.degraded += local.degraded;
    tally.skipped += local.skipped;
    tally.expected_violations += local.expected_violations;
    tally.unexpected_violations += local.unexpected_violations;
    tally.reproduced += local.reproduced;
    tally.corpus_new.extend(local.corpus_new);
}

fn soak_target(cli: &Cli, target: &'static ba_check::CheckTarget, tally: &mut Tally) {
    let (n, t) = if cli.target.is_some() {
        (cli.n, cli.t)
    } else if target.supports(4, 1) {
        (4, 1)
    } else {
        (3, 1)
    };
    if !target.supports(n, t) {
        eprintln!("{}: skipping, n = {n}, t = {t} unsupported", target.name);
        return;
    }
    // The sampler is the model checker's own schedule vocabulary; chaos
    // rides on top as wire-level noise.
    let specs = explore::sample_schedules(&ExploreOptions {
        target,
        n,
        t,
        value: cli.value,
        seed: cli.seed,
        budget: cli.campaigns,
        threads: 1,
        strategy: Strategy::Random,
    });
    let net = NetConfig {
        threads: cli.threads,
        ..NetConfig::default()
    };
    let mut local = Tally::default();
    for (i, spec) in specs.iter().enumerate() {
        let chaos = ChaosProfile::from_name(&cli.profile, derive_seed(cli.seed, i as u64))
            .expect("profile validated at parse time");
        let schedule = FaultSchedule {
            target: target.name.to_string(),
            n,
            t,
            value: cli.value,
            seed: derive_seed(cli.seed, 1_000_000 + i as u64),
            spec: spec.clone(),
        };
        let cfg = schedule.config(1);
        match run_target(target, &cfg, &net, &chaos) {
            Err(NetRunError::Schedule(_)) => local.skipped += 1,
            Err(NetRunError::Degraded(_)) => local.degraded += 1,
            Ok(run) if !run.violated() => local.clean += 1,
            Ok(run) => {
                if target.sound {
                    local.unexpected_violations += 1;
                    eprintln!(
                        "  SOUNDNESS BREACH: {} decided wrongly under {} chaos (campaign {i}): {:?}",
                        target.name, cli.profile, run.agreement
                    );
                } else {
                    local.expected_violations += 1;
                }
                let augmented = FaultSchedule {
                    spec: absorb_failed_links(&schedule.spec, &run.stats.failed_links),
                    ..schedule.clone()
                };
                if let Some(entry) = reproduce_and_shrink(target, &augmented) {
                    local.reproduced += 1;
                    if !local.corpus_new.iter().any(|e| e.case == entry.case)
                        && !tally.corpus_new.iter().any(|e| e.case == entry.case)
                    {
                        println!(
                            "  minimized: {} — {}",
                            entry.schedule_json().render(),
                            entry.failure
                        );
                        local.corpus_new.push(entry);
                    }
                } else {
                    println!(
                        "  campaign {i}: violation did not reproduce on the lock-step engine \
                         (chaos-order dependent): {}",
                        augmented.to_json().render()
                    );
                }
            }
        }
    }
    println!(
        "{}: {} campaign(s) under {:?} at n = {n}, t = {t} — {} clean, {} degraded, \
         {} violation(s) ({} unexpected), {} reproduced, {} skipped",
        target.name,
        specs.len(),
        cli.profile,
        local.clean,
        local.degraded,
        local.expected_violations + local.unexpected_violations,
        local.unexpected_violations,
        local.reproduced,
        local.skipped
    );
    tally.clean += local.clean;
    tally.degraded += local.degraded;
    tally.skipped += local.skipped;
    tally.expected_violations += local.expected_violations;
    tally.unexpected_violations += local.unexpected_violations;
    tally.reproduced += local.reproduced;
    tally.corpus_new.extend(local.corpus_new);
}

fn save_corpus(path: &str, new_entries: &[CorpusEntry]) -> Result<usize, String> {
    let path = Path::new(path);
    let mut entries = if path.exists() {
        corpus::load(path)?
    } else {
        Vec::new()
    };
    let mut added = 0;
    for entry in new_entries {
        if !entries.iter().any(|e| e.case == entry.case) {
            entries.push(entry.clone());
            added += 1;
        }
    }
    corpus::save(path, &entries)?;
    Ok(added)
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let started = std::time::Instant::now();
    let mut tally = Tally::default();
    match &cli.target {
        Some(name) if name == "ext" => soak_ext(&cli, &mut tally),
        Some(name) => match ba_check::find_target(name) {
            Some(target) => soak_target(&cli, target, &mut tally),
            None => {
                eprintln!("unknown check target {name:?}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            for target in ba_check::targets() {
                soak_target(&cli, target, &mut tally);
            }
        }
    }
    if let Some(path) = &cli.corpus_out {
        match save_corpus(path, &tally.corpus_new) {
            Ok(added) => println!("corpus: {added} new minimized counterexample(s) → {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let total_violations = tally.expected_violations + tally.unexpected_violations;
    println!(
        "soak: {} clean, {} degraded, {} violation(s) ({} unexpected), {} reproduced, \
         {} skipped in {:.2?}",
        tally.clean,
        tally.degraded,
        total_violations,
        tally.unexpected_violations,
        tally.reproduced,
        tally.skipped,
        started.elapsed()
    );
    if tally.unexpected_violations > 0 {
        eprintln!("sound target(s) decided wrongly under chaos — the runtime must abort instead");
        return ExitCode::FAILURE;
    }
    if cli.expect_violation && total_violations == 0 {
        eprintln!("--expect-violation: no violation surfaced");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
