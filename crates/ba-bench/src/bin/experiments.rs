//! Regenerates the paper's quantitative claims as markdown tables.
//!
//! ```text
//! cargo run -p ba-bench --bin experiments --release -- all
//! cargo run -p ba-bench --bin experiments --release -- e4 e8
//! cargo run -p ba-bench --bin experiments --release -- --csv e8   # CSV for plotting
//! cargo run -p ba-bench --bin experiments --release -- --seq all  # single-threaded
//! cargo run -p ba-bench --bin experiments --release -- --threads 4 all
//! ```
//!
//! Experiments run across worker threads by default (one cell per id; see
//! `ba_sim::sweep`). The tables on stdout are byte-identical for any
//! thread count — `--seq` / `--threads N` only change wall-clock, which is
//! reported on stderr so redirected output stays stable.

use ba_bench::experiments::{run_experiments, ALL_IDS};
use ba_sim::sweep::default_threads;

fn main() {
    let mut csv = false;
    let mut threads = default_threads();
    let mut expect_threads = false;
    let mut args: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        if expect_threads {
            threads = a.parse().unwrap_or_else(|_| {
                eprintln!("--threads expects a positive integer, got {a:?}");
                std::process::exit(2);
            });
            expect_threads = false;
        } else if a == "--csv" {
            csv = true;
        } else if a == "--seq" {
            threads = 1;
        } else if a == "--threads" {
            expect_threads = true;
        } else {
            args.push(a);
        }
    }
    if expect_threads {
        eprintln!("--threads expects a value");
        std::process::exit(2);
    }
    let threads = threads.max(1);
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();

    let started = std::time::Instant::now();
    let batch = run_experiments(&id_refs, threads);
    let elapsed = started.elapsed();

    // Write through a fallible handle so a closed pipe (e.g. `| head`)
    // terminates quietly instead of panicking.
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (id, tables) in &batch {
        let result = if csv {
            tables
                .iter()
                .try_for_each(|table| writeln!(out, "{}", table.to_csv()))
        } else {
            writeln!(out, "## Experiment {}\n", id.to_uppercase()).and_then(|()| {
                tables
                    .iter()
                    .try_for_each(|table| writeln!(out, "{}", table.render()))
            })
        };
        if result.is_err() {
            return; // downstream closed the pipe
        }
    }
    eprintln!(
        "ran {} experiment(s) on {} thread(s) in {:.2?}",
        batch.len(),
        threads,
        elapsed
    );
}
