//! Regenerates the paper's quantitative claims as markdown tables.
//!
//! ```text
//! cargo run -p ba-bench --bin experiments --release -- all
//! cargo run -p ba-bench --bin experiments --release -- e4 e8
//! cargo run -p ba-bench --bin experiments --release -- --csv e8   # CSV for plotting
//! ```

use ba_bench::experiments::{run_experiment, ALL_IDS};

fn main() {
    let mut csv = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--csv" {
                csv = true;
                false
            } else {
                true
            }
        })
        .collect();
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    // Write through a fallible handle so a closed pipe (e.g. `| head`)
    // terminates quietly instead of panicking.
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &ids {
        let result = if csv {
            run_experiment(id)
                .iter()
                .try_for_each(|table| writeln!(out, "{}", table.to_csv()))
        } else {
            writeln!(out, "## Experiment {}\n", id.to_uppercase()).and_then(|()| {
                run_experiment(id)
                    .iter()
                    .try_for_each(|table| writeln!(out, "{}", table.render()))
            })
        };
        if result.is_err() {
            return; // downstream closed the pipe
        }
    }
}
