//! The per-claim experiment generators (see the crate docs for the index).

use crate::cells;
use crate::table::Table;
use ba_algos::{
    algorithm1, algorithm2, algorithm3, algorithm4, algorithm5, bounds, dolev_strong, om,
};
use ba_crypto::{ProcessId, SchemeKind, Value};
use ba_model::{theorem1, theorem2};

/// Runs one experiment by id (`"e1"`..`"e16"`).
///
/// # Panics
/// Panics on an unknown id.
pub fn run_experiment(id: &str) -> Vec<Table> {
    match id {
        "e1" => e1(),
        "e2" => e2(),
        "e3" => e3(),
        "e4" => e4(),
        "e5" => e5(),
        "e6" => e6(),
        "e7" => e7(),
        "e8" => e8(),
        "e9" => e9(),
        "e10" => e10(),
        "e11" => e11(),
        "e12" => e12(),
        "e13" => e13(),
        "e14" => e14(),
        "e15" => e15(),
        "e16" => e16(),
        other => panic!("unknown experiment {other} (use e1..e16)"),
    }
}

/// All experiment ids in order.
pub const ALL_IDS: [&str; 16] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16",
];

/// Runs a batch of experiments, fanning the independent ids across up to
/// `threads` worker threads (see [`ba_sim::sweep`]).
///
/// Each experiment builds its own key registries and simulations and
/// shares no mutable state with the others, so the output is byte-for-byte
/// identical for any thread count — results come back in input order.
///
/// # Panics
/// Panics on an unknown id (like [`run_experiment`]).
pub fn run_experiments(ids: &[&str], threads: usize) -> Vec<(String, Vec<Table>)> {
    ba_sim::sweep::run_sweep(ids, threads, |_, id| (id.to_string(), run_experiment(id)))
}

fn check(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}

/// E1 — Theorem 1: `Ω(nt)` signatures in the authenticated case.
pub fn e1() -> Vec<Table> {
    let mut attack = Table::new(
        "E1a — Theorem 1 splicing attack on the k-relay frugal broadcast (k+1 <= t makes it attackable; the last row is the k+1 > t counterexample where the attack must fail)",
        &["n", "t", "relays k", "|A(p)|", "feasible (|A(p)|<=t)", "p's view = pH", "agreement broken", "outcome as expected"],
    );
    for (n, t, k) in [(9, 3, 2), (11, 4, 3), (16, 14, 2), (9, 2, 3)] {
        let a = theorem1::attack_frugal(n, t, k, 42);
        let expect_attackable = k < t;
        let as_expected = a.feasible == expect_attackable
            && a.violation.is_some() == expect_attackable
            && a.victim_view_preserved == expect_attackable;
        attack.row(cells![
            n,
            t,
            k,
            a.a_set.len(),
            if a.feasible { "yes" } else { "no" },
            if a.victim_view_preserved { "yes" } else { "no" },
            if a.violation.is_some() { "yes" } else { "no" },
            check(as_expected)
        ]);
    }

    let mut counts = Table::new(
        "E1b — signatures sent by correct processors (fault-free, value 1) vs the n(t+1)/4 bound",
        &[
            "t",
            "n",
            "bound n(t+1)/4",
            "Algorithm 1",
            "Algorithm 2",
            "Dolev-Strong",
            "min |A(p)| in Alg 1 (must be > t)",
        ],
    );
    for t in 1..=6usize {
        let n = 2 * t + 1;
        let bound = bounds::thm1_signature_lower_bound(n as u64, t as u64);
        let a1 = algorithm1::run(
            t,
            Value::ONE,
            algorithm1::Algo1Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let a2 = algorithm2::run(
            t,
            Value::ONE,
            algorithm2::Algo2Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let ds = dolev_strong::run(
            n,
            t,
            Value::ONE,
            dolev_strong::DsOptions {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let min_a = theorem1::audit_algorithm1(t, 1);
        counts.row(cells![
            t,
            n,
            bound,
            a1.outcome.metrics.signatures_by_correct,
            a2.report.outcome.metrics.signatures_by_correct,
            ds.outcome.metrics.signatures_by_correct,
            min_a
        ]);
    }
    vec![attack, counts]
}

/// E2 — Corollary 1: `Ω(nt)` messages without authentication (OM(t)).
pub fn e2() -> Vec<Table> {
    let mut t_out = Table::new(
        "E2 — unauthenticated OM(t) message counts vs the n(t+1)/4 bound",
        &[
            "n",
            "t",
            "bound n(t+1)/4",
            "measured",
            "closed form",
            "measured >= bound",
        ],
    );
    for (n, t) in [(4, 1), (7, 1), (7, 2), (10, 2), (10, 3), (13, 3)] {
        let r = om::run(n, t, Value::ONE, om::OmOptions::default()).unwrap();
        let measured = r.outcome.metrics.messages_by_correct;
        let formula = bounds::om_messages(n as u64, t as u64);
        let bound = bounds::cor1_message_lower_bound(n as u64, t as u64);
        t_out.row(cells![
            n,
            t,
            bound,
            measured,
            formula,
            check(measured >= bound)
        ]);
    }
    vec![t_out]
}

/// E3 — Theorem 2: `Ω(n + t²)` messages.
pub fn e3() -> Vec<Table> {
    let mut attack = Table::new(
        "E3a — Theorem 2 starvation attack on the one-shot quiet broadcast",
        &[
            "n",
            "t",
            "victim's senders",
            "feasible",
            "victim starved",
            "agreement broken",
        ],
    );
    for (n, t) in [(6, 1), (8, 2), (12, 4)] {
        let a = theorem2::attack_quiet(n, t, 7);
        attack.row(cells![
            n,
            t,
            a.senders.len(),
            check(a.feasible),
            check(a.victim_starved),
            check(a.violation.is_some())
        ]);
    }

    let mut extraction = Table::new(
        "E3b — B-set extraction against Algorithm 1: each of the ⌊1+t/2⌋ ignorers is owed ⌈1+t/2⌉ messages",
        &["t", "|B|", "demand ⌈1+t/2⌉", "min received from correct", "agreement held"],
    );
    for t in 1..=8usize {
        let r = theorem2::extract_algorithm1(t, 3);
        let min_recv = r
            .b_set
            .iter()
            .map(|b| r.received_from_correct.get(b).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        extraction.row(cells![
            t,
            r.b_set.len(),
            r.demand,
            min_recv,
            check(r.agreement_held)
        ]);
    }

    let mut conformance = Table::new(
        "E3c — every algorithm's worst-case traffic clears the Theorem 2 bound",
        &[
            "algorithm",
            "n",
            "t",
            "bound max{⌈(n-1)/2⌉,(1+t/2)²}",
            "measured",
            "measured >= bound",
        ],
    );
    for t in [2usize, 4] {
        let n = 2 * t + 1;
        let bound = bounds::thm2_message_lower_bound(n as u64, t as u64);
        let a1 = algorithm1::run(
            t,
            Value::ONE,
            algorithm1::Algo1Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let m = a1.outcome.metrics.messages_by_correct;
        conformance.row(cells!["Algorithm 1", n, t, bound, m, check(m >= bound)]);
        let a2 = algorithm2::run(
            t,
            Value::ONE,
            algorithm2::Algo2Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let m = a2.report.outcome.metrics.messages_by_correct;
        conformance.row(cells!["Algorithm 2", n, t, bound, m, check(m >= bound)]);
    }
    for (n, t, s) in [(40usize, 2usize, 8usize), (60, 3, 12)] {
        let bound = bounds::thm2_message_lower_bound(n as u64, t as u64);
        let a3 = algorithm3::run(
            n,
            t,
            s,
            Value::ONE,
            algorithm3::Alg3Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let m = a3.outcome.metrics.messages_by_correct;
        conformance.row(cells!["Algorithm 3", n, t, bound, m, check(m >= bound)]);
    }
    for (n, t, s) in [(60usize, 1usize, 3usize), (80, 3, 7)] {
        let bound = bounds::thm2_message_lower_bound(n as u64, t as u64);
        let a5 = algorithm5::run(
            n,
            t,
            s,
            Value::ONE,
            algorithm5::Alg5Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let m = a5.outcome.metrics.messages_by_correct;
        conformance.row(cells!["Algorithm 5", n, t, bound, m, check(m >= bound)]);
    }
    vec![attack, extraction, conformance]
}

/// E4 — Theorem 3: Algorithm 1 phase and message bounds.
pub fn e4() -> Vec<Table> {
    let mut t_out = Table::new(
        "E4 — Algorithm 1 (n = 2t+1): phases <= t+2, messages <= 2t²+2t",
        &[
            "t",
            "n",
            "phase bound",
            "phases",
            "msg bound 2t²+2t",
            "fault-free v=1",
            "equivocating q",
            "withholding coalition",
            "within bound",
        ],
    );
    for t in 1..=12usize {
        let n = 2 * t + 1;
        let clean = algorithm1::run(
            t,
            Value::ONE,
            algorithm1::Algo1Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let ones: Vec<ProcessId> = (1..=t.max(1) as u32).map(ProcessId).collect();
        let equiv = algorithm1::run(
            t,
            Value::ONE,
            algorithm1::Algo1Options {
                fault: algorithm1::Algo1Fault::Equivocate { ones },
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let withhold = if t >= 2 {
            algorithm1::run(
                t,
                Value::ONE,
                algorithm1::Algo1Options {
                    fault: algorithm1::Algo1Fault::Withhold {
                        extra_members: t - 1,
                        release_phase: t,
                    },
                    scheme: SchemeKind::Fast,
                    ..Default::default()
                },
            )
            .unwrap()
            .outcome
            .metrics
            .messages_by_correct
        } else {
            0
        };
        let bound = bounds::alg1_max_messages(t as u64);
        let clean_m = clean.outcome.metrics.messages_by_correct;
        let equiv_m = equiv.outcome.metrics.messages_by_correct;
        t_out.row(cells![
            t,
            n,
            bounds::alg1_phases(t as u64),
            clean.outcome.metrics.phases,
            bound,
            clean_m,
            equiv_m,
            withhold,
            check(clean_m <= bound && equiv_m <= bound && withhold <= bound)
        ]);
    }
    vec![t_out]
}

/// E5 — Theorem 4: Algorithm 2 bounds and transferable proofs.
pub fn e5() -> Vec<Table> {
    let mut t_out = Table::new(
        "E5 — Algorithm 2: phases = 3t+3, messages <= 5t²+5t, every correct processor holds a >=t-signature proof",
        &["t", "n", "phases", "phase bound", "messages", "msg bound", "correct with proof", "all proofs valid"],
    );
    for t in 1..=10usize {
        let n = 2 * t + 1;
        let r = algorithm2::run(
            t,
            Value::ONE,
            algorithm2::Algo2Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let common = r.report.verdict.agreed.unwrap();
        let mut holders = 0usize;
        let mut all_valid = true;
        for (i, correct) in r.report.outcome.correct.iter().enumerate() {
            if !correct {
                continue;
            }
            match &r.proofs[i] {
                Some(p) => {
                    holders += 1;
                    all_valid &= algorithm2::is_transferable_proof(
                        p,
                        common,
                        ProcessId(i as u32),
                        t,
                        &r.verifier,
                    );
                }
                None => all_valid = false,
            }
        }
        t_out.row(cells![
            t,
            n,
            r.report.outcome.metrics.phases,
            bounds::alg2_phases(t as u64),
            r.report.outcome.metrics.messages_by_correct,
            bounds::alg2_max_messages(t as u64),
            holders,
            check(all_valid && holders == n)
        ]);
    }
    vec![t_out]
}

/// E6 — Lemma 1 / Theorem 5: Algorithm 3 sweep.
pub fn e6() -> Vec<Table> {
    let mut t_out = Table::new(
        "E6 — Algorithm 3: phases = t+2s+3, messages <= 2n + 4tn/s + 3t²s (s = 4t rows give Theorem 5's O(n+t³))",
        &["n", "t", "s", "phases", "phase bound", "messages", "lemma 1 bound", "faulty-root messages", "within bound"],
    );
    let cases = [
        (20usize, 1usize, 2usize),
        (20, 1, 4),
        (50, 2, 4),
        (50, 2, 8),
        (120, 3, 6),
        (120, 3, 12),
        (300, 4, 16),
        (600, 4, 16),
        (1000, 5, 20),
    ];
    for (n, t, s) in cases {
        let clean = algorithm3::run(
            n,
            t,
            s,
            Value::ONE,
            algorithm3::Alg3Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let groups: Vec<usize> = (0..t.min(3)).collect();
        let faulty = algorithm3::run(
            n,
            t,
            s,
            Value::ONE,
            algorithm3::Alg3Options {
                fault: algorithm3::Alg3Fault::LyingRoots {
                    groups,
                    wrong: Value::ZERO,
                },
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let bound = bounds::alg3_max_messages(n as u64, t as u64, s as u64);
        let clean_m = clean.outcome.metrics.messages_by_correct;
        let faulty_m = faulty.outcome.metrics.messages_by_correct;
        t_out.row(cells![
            n,
            t,
            s,
            clean.outcome.metrics.phases,
            bounds::alg3_phases(t as u64, s as u64),
            clean_m,
            bound,
            faulty_m,
            check(clean_m <= bound && faulty_m <= bound)
        ]);
    }
    vec![t_out]
}

/// E7 — Theorem 6: Algorithm 4 grid exchange.
pub fn e7() -> Vec<Table> {
    let mut t_out = Table::new(
        "E7 — Algorithm 4 (N = m² grid): 3 phases, <= 3(m-1)m² messages, >= N-2t processors exchange",
        &["m", "N", "t (faults)", "messages", "bound 3(m-1)m²", "|P| (exchanged)", "guarantee N-2t", "lemma 2 holds"],
    );
    for m in 2..=8usize {
        let n_grid = m * m;
        let t = m - 1;
        // Scatter t silent faults across distinct rows.
        let faulty: Vec<ProcessId> = (0..t).map(|i| ProcessId((i * m + i) as u32)).collect();
        let r = algorithm4::run(m, faulty, 5, SchemeKind::Fast);
        let p_len = r.lemma2_set().len();
        t_out.row(cells![
            m,
            n_grid,
            t,
            r.outcome.metrics.messages_by_correct,
            bounds::alg4_max_messages(m as u64),
            p_len,
            bounds::alg4_min_successful(n_grid as u64, t as u64),
            check(
                r.mutual_exchange_holds()
                    && p_len as u64 >= bounds::alg4_min_successful(n_grid as u64, t as u64)
            )
        ]);
    }

    // The Section-6 intro baseline: two-phase (t+1)-relay full exchange
    // at ~2N(t+1) messages. Algorithm 4 wins once t+1 > 1.5(m−1) — at the
    // price of guaranteeing only N − 2t exchangers.
    let mut baseline = Table::new(
        "E7b — Algorithm 4 vs the (t+1)-relay full-exchange baseline: the O(N^1.5) grid undercuts O(Nt) once t is large",
        &["m", "N", "t", "grid messages", "relay messages", "grid guarantee", "relay guarantee", "winner"],
    );
    for (m, t) in [(4usize, 2usize), (4, 5), (5, 3), (5, 7), (8, 4), (8, 12)] {
        let n_grid = m * m;
        let grid = algorithm4::run(m, vec![], 6, SchemeKind::Fast);
        let relay = algorithm4::relay_exchange(n_grid, t, vec![], 6, SchemeKind::Fast);
        assert!(grid.mutual_exchange_holds() && relay.full_exchange_holds());
        let g = grid.outcome.metrics.messages_by_correct;
        let r = relay.outcome.metrics.messages_by_correct;
        baseline.row(cells![
            m,
            n_grid,
            t,
            g,
            r,
            format!(
                "N-2t = {}",
                bounds::alg4_min_successful(n_grid as u64, t as u64)
            ),
            "all correct",
            if g < r { "grid" } else { "relay" }
        ]);
    }
    vec![t_out, baseline]
}

/// E8 — Lemma 5 / Theorem 7: Algorithm 5 sweep.
pub fn e8() -> Vec<Table> {
    let mut t_out = Table::new(
        "E8 — Algorithm 5: messages = O(t² + nt/s); rows with s = t realize Theorem 7's O(n + t²); kind columns break down where the messages go",
        &["n", "t", "s", "alpha", "phases", "paper 3t+4s+2 (+O(log s))", "messages", "chains", "activates", "grids", "envelope", "msgs/(n+t²)", "within envelope"],
    );
    let cases = [
        (30usize, 1usize, 1usize),
        (60, 1, 1),
        (120, 1, 1),
        (60, 3, 3),
        (120, 3, 3),
        (240, 3, 3),
        (120, 7, 7),
        (240, 7, 7),
        (480, 7, 7),
        (240, 3, 7),
        (480, 7, 15),
    ];
    for (n, t, s) in cases {
        let r = algorithm5::run(
            n,
            t,
            s,
            Value::ONE,
            algorithm5::Alg5Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let msgs = r.outcome.metrics.messages_by_correct;
        let kind = |k: &str| {
            r.outcome
                .metrics
                .by_kind_correct
                .get(k)
                .copied()
                .unwrap_or(0)
        };
        let envelope = bounds::alg5_message_envelope(n as u64, t as u64, s as u64);
        let norm = msgs as f64 / (n as f64 + (t * t) as f64);
        t_out.row(cells![
            n,
            t,
            s,
            bounds::alpha(t as u64),
            r.outcome.metrics.phases,
            bounds::alg5_phases_paper(t as u64, s as u64),
            msgs,
            kind("chain"),
            kind("activate"),
            kind("grid"),
            envelope,
            format!("{norm:.1}"),
            check(msgs <= envelope)
        ]);
    }
    vec![t_out]
}

/// E9 — the intro's phases/messages trade-off via Algorithm 3.
pub fn e9() -> Vec<Table> {
    let mut t_out = Table::new(
        "E9 — trade-off: Algorithm 3 with s = ⌈t/a⌉ gives ~t+3+2t/a phases and O(a·n) messages (t = 8, n = 600 >= t³)",
        &["a", "s = ⌈t/a⌉", "phases", "intro phases t+3+t/a (collection doubled)", "messages", "messages / n"],
    );
    let (n, t) = (600usize, 8usize);
    for a in [1usize, 2, 4, 8] {
        let s = bounds::tradeoff_group_size(t as u64, a as u64) as usize;
        let r = algorithm3::run(
            n,
            t,
            s,
            Value::ONE,
            algorithm3::Alg3Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let msgs = r.outcome.metrics.messages_by_correct;
        t_out.row(cells![
            a,
            s,
            r.outcome.metrics.phases,
            t + 3 + 2 * s,
            msgs,
            format!("{:.1}", msgs as f64 / n as f64)
        ]);
    }
    vec![t_out]
}

/// E10 — who wins: message comparison across algorithms.
pub fn e10() -> Vec<Table> {
    let mut t_out = Table::new(
        "E10 — messages by correct processors across algorithms ('-' = precondition not met; OM explodes, Algorithm 5 flattens to O(n+t²))",
        &["n", "t", "OM(t)", "DS broadcast", "DS relay", "Alg 3 (s=4t)", "Alg 5 (s~t)", "winner"],
    );
    let pow2m1 = |t: usize| -> usize {
        let mut s = 1;
        while 2 * s < t.max(1) {
            s = 2 * s + 1;
        }
        s
    };
    for (n, t) in [
        (10usize, 1usize),
        (25, 1),
        (100, 1),
        (25, 3),
        (100, 3),
        (400, 3),
        (100, 7),
        (400, 7),
        (1000, 7),
    ] {
        let om_msgs = if n > 3 * t && bounds::om_messages(n as u64, t as u64) < 2_000_000 && t <= 2
        {
            let r = om::run(n, t, Value::ONE, om::OmOptions::default()).unwrap();
            Some(r.outcome.metrics.messages_by_correct)
        } else {
            None
        };
        let ds_b = dolev_strong::run(
            n,
            t,
            Value::ONE,
            dolev_strong::DsOptions {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap()
        .outcome
        .metrics
        .messages_by_correct;
        let ds_r = dolev_strong::run(
            n,
            t,
            Value::ONE,
            dolev_strong::DsOptions {
                variant: dolev_strong::Variant::Relay,
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap()
        .outcome
        .metrics
        .messages_by_correct;
        let a3 = if n >= 2 * t + 2 {
            Some(
                algorithm3::run(
                    n,
                    t,
                    4 * t,
                    Value::ONE,
                    algorithm3::Alg3Options {
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .unwrap()
                .outcome
                .metrics
                .messages_by_correct,
            )
        } else {
            None
        };
        let a5 = if n >= bounds::alpha(t as u64) as usize {
            Some(
                algorithm5::run(
                    n,
                    t,
                    pow2m1(t),
                    Value::ONE,
                    algorithm5::Alg5Options {
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .unwrap()
                .outcome
                .metrics
                .messages_by_correct,
            )
        } else {
            None
        };
        let fmt = |o: Option<u64>| o.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
        let named = [
            ("OM", om_msgs),
            ("DS-bcast", Some(ds_b)),
            ("DS-relay", Some(ds_r)),
            ("Alg3", a3),
            ("Alg5", a5),
        ];
        let winner = named
            .iter()
            .filter_map(|(name, v)| v.map(|v| (v, *name)))
            .min()
            .map(|(_, name)| name)
            .unwrap_or("-");
        t_out.row(cells![
            n,
            t,
            fmt(om_msgs),
            ds_b,
            ds_r,
            fmt(a3),
            fmt(a5),
            winner
        ]);
    }

    // Worst-case comparison: the paper's claims are worst-case counts, and
    // Algorithm 3's Achilles heel is faulty group roots (the 3t²s term)
    // while Algorithm 5's proof-of-work activation caps the damage
    // (Lemma 4). The crossover — Algorithm 5 winning for n below ~t³ —
    // appears once t is large enough for the root-coverage traffic to
    // dominate.
    let mut worst = Table::new(
        "E10b — worst-case messages under corrupt roots: Algorithm 3 (t lying group roots, s=4t) vs Algorithm 5 (silent tree roots, s~t); the paper's crossover (Alg 5 wins for n below ~t³) appears at large t",
        &["n", "t", "t³", "Alg 3 worst", "Alg 5 worst", "winner"],
    );
    for (n, t) in [
        (400usize, 4usize),
        (400, 8),
        (1000, 8),
        (1000, 16),
        (2000, 16),
    ] {
        let s3 = 4 * t;
        let r_groups = (n - (2 * t + 1)).div_ceil(s3);
        let bad_groups: Vec<usize> = (0..t.min(r_groups)).collect();
        let a3 = algorithm3::run(
            n,
            t,
            s3,
            Value::ONE,
            algorithm3::Alg3Options {
                fault: algorithm3::Alg3Fault::LyingRoots {
                    groups: bad_groups,
                    wrong: Value::ZERO,
                },
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap()
        .outcome
        .metrics
        .messages_by_correct;
        let s5 = pow2m1(t);
        let r_trees = (n - bounds::alpha(t as u64) as usize).div_ceil(s5);
        let bad_trees: Vec<usize> = (0..t.min(r_trees)).collect();
        let a5 = algorithm5::run(
            n,
            t,
            s5,
            Value::ONE,
            algorithm5::Alg5Options {
                fault: algorithm5::Alg5Fault::SilentTreeRoots { trees: bad_trees },
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap()
        .outcome
        .metrics
        .messages_by_correct;
        worst.row(cells![
            n,
            t,
            t * t * t,
            a3,
            a5,
            if a5 < a3 { "Alg5" } else { "Alg3" }
        ]);
    }
    vec![t_out, worst]
}

/// E11 — Lemma 4: per tree `C` with `b(C)` faults, at most `2b(C) + 1`
/// processors get activated or are faulty (the amortization that keeps
/// Algorithm 5's activation traffic bounded).
pub fn e11() -> Vec<Table> {
    use ba_algos::algorithm5::{run_audited, Alg5Fault, Alg5Options};
    let mut t_out = Table::new(
        "E11 — Lemma 4 activation audit for Algorithm 5: max per-tree (activated or faulty) vs 2b(C)+1",
        &["n", "t", "s", "fault", "total activated", "max per-tree activated+faulty", "max 2b(C)+1", "within bound"],
    );
    type Scenario = (usize, usize, usize, &'static str, Alg5Fault, Vec<ProcessId>);
    let scenarios: Vec<Scenario> = vec![
        (30, 1, 7, "none", Alg5Fault::None, vec![]),
        (
            30,
            1,
            7,
            "silent tree root",
            Alg5Fault::SilentTreeRoots { trees: vec![0] },
            vec![ProcessId(9)],
        ),
        (
            46,
            2,
            7,
            "2 silent passives",
            Alg5Fault::SilentPassives {
                set: vec![ProcessId(17), ProcessId(30)],
            },
            vec![ProcessId(17), ProcessId(30)],
        ),
        (
            120,
            3,
            7,
            "3 silent tree roots",
            Alg5Fault::SilentTreeRoots {
                trees: vec![0, 1, 2],
            },
            vec![ProcessId(25), ProcessId(32), ProcessId(39)],
        ),
    ];
    for (n, t, s, label, fault, faulty_ids) in scenarios {
        let (report, activated) = run_audited(
            n,
            t,
            s,
            Value::ONE,
            Alg5Options {
                fault,
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.verdict.agreed, Some(Value::ONE));
        let registry = ba_crypto::KeyRegistry::new(n, 0, SchemeKind::Fast);
        let cfg = ba_algos::algorithm5::Alg5Config::new(n, t, s, registry.verifier());
        let total: usize = activated.iter().filter(|&&a| a).count();
        let mut worst_seen = 0usize;
        let mut worst_bound = 1usize;
        let mut ok = true;
        for tree in 0..cfg.forest.tree_count() {
            let members = cfg.forest.subtree_members(tree, 1);
            let b = members.iter().filter(|m| faulty_ids.contains(m)).count();
            let seen = members
                .iter()
                .filter(|m| activated[m.index()] || faulty_ids.contains(m))
                .count();
            if seen > worst_seen {
                worst_seen = seen;
                worst_bound = 2 * b + 1;
            }
            ok &= seen <= 2 * b + 1;
        }
        t_out.row(cells![
            n,
            t,
            s,
            label,
            total,
            worst_seen,
            worst_bound,
            check(ok)
        ]);
    }
    vec![t_out]
}

/// E12 — ablation: Algorithm 5 with proof-of-work activation disabled
/// (every subtree activated in every block). Agreement still holds, but
/// the activation traffic the certificates suppress comes back.
pub fn e12() -> Vec<Table> {
    use ba_algos::algorithm5::{run, Alg5Fault, Alg5Options};
    let mut t_out = Table::new(
        "E12 — ablation: proof-of-work activation gating vs naive always-activate (silent tree-root fault)",
        &["n", "t", "s", "gated messages", "naive messages", "overhead", "both agree"],
    );
    for (n, t, s) in [
        (60usize, 1usize, 3usize),
        (120, 3, 7),
        (240, 3, 7),
        (240, 7, 7),
    ] {
        let fault = || Alg5Fault::SilentTreeRoots { trees: vec![0] };
        let gated = run(
            n,
            t,
            s,
            Value::ONE,
            Alg5Options {
                fault: fault(),
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        let naive = run(
            n,
            t,
            s,
            Value::ONE,
            Alg5Options {
                fault: fault(),
                scheme: SchemeKind::Fast,
                naive_activation: true,
                ..Default::default()
            },
        )
        .unwrap();
        let g = gated.outcome.metrics.messages_by_correct;
        let na = naive.outcome.metrics.messages_by_correct;
        let both =
            gated.verdict.agreed == Some(Value::ONE) && naive.verdict.agreed == Some(Value::ONE);
        t_out.row(cells![
            n,
            t,
            s,
            g,
            na,
            format!("{:.2}x", na as f64 / g as f64),
            check(both)
        ]);
    }
    vec![t_out]
}

/// E13 — decision latency: the phase by which the *last* correct
/// processor first holds a deciding message in Algorithm 1, fault-free vs
/// under the chain-withholding coalition. The `t + 2` phase bound is the
/// worst case; typical runs decide immediately.
pub fn e13() -> Vec<Table> {
    use ba_algos::algorithm1::{run, Algo1Fault, Algo1Options};

    let mut t_out = Table::new(
        "E13 — Algorithm 1 decision latency (phase of last first-receipt of a correct 1-message) vs the t+2 bound",
        &["t", "n", "fault-free latency", "withholding latency", "phase bound t+2", "within bound"],
    );
    let latency = |t: usize, fault: Algo1Fault| -> usize {
        let r = run(
            t,
            Value::ONE,
            Algo1Options {
                fault,
                trace: true,
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        // For each correct non-transmitter processor, find the phase of
        // the first structurally-correct 1-message addressed to it.
        let mut worst = 0usize;
        for p in 1..(2 * t + 1) as u32 {
            if !r.outcome.correct[p as usize] {
                continue;
            }
            let mut first: Option<usize> = None;
            'phases: for (k, phase) in r.outcome.trace.phases.iter().enumerate() {
                for env in &phase.envelopes {
                    if env.to == ProcessId(p)
                        && env.payload.value() == Value::ONE
                        && env.payload.len() == k + 1
                    {
                        first = Some(k + 1);
                        break 'phases;
                    }
                }
            }
            worst = worst.max(first.unwrap_or(usize::MAX));
        }
        worst
    };

    for t in [2usize, 4, 6, 8] {
        let clean = latency(t, Algo1Fault::None);
        let withheld = latency(
            t,
            Algo1Fault::Withhold {
                extra_members: t - 1,
                release_phase: t,
            },
        );
        t_out.row(cells![
            t,
            2 * t + 1,
            clean,
            withheld,
            t + 2,
            check(clean <= t + 2 && withheld <= t + 2)
        ]);
    }
    vec![t_out]
}

/// E14 — crypto cost: hash invocations, signature checks and verifier
/// cache effectiveness per algorithm run.
///
/// The chain verifier memoizes verified prefixes (see
/// `ba_crypto::keys::VerifierCache`), so relaying patterns — where a chain
/// arrives, is verified, extended by one signature and verified again
/// downstream — pay O(1) signature checks per extension instead of
/// re-checking the whole chain. This table makes that visible: without the
/// cache every run's `sig checks` column would grow with the square of the
/// chain length.
pub fn e14() -> Vec<Table> {
    let mut t_out = Table::new(
        "E14 — crypto work per run (Fast scheme): hashes and signature checks actually performed, and the verifier-cache hit rate that keeps chain re-verification O(1) per extension",
        &[
            "algorithm",
            "n",
            "t",
            "messages",
            "hashes",
            "sig checks",
            "cache hits",
            "cache misses",
            "hit rate",
            "cache exercised",
        ],
    );
    let mut push = |name: &str, n: usize, t: usize, m: &ba_sim::Metrics| {
        let c = &m.crypto;
        t_out.row(cells![
            name,
            n,
            t,
            m.messages_by_correct,
            c.hash_invocations,
            c.sig_verifications,
            c.cache_hits,
            c.cache_misses,
            format!("{:.2}", c.cache_hit_rate()),
            check(c.hash_invocations > 0 && c.cache_hits + c.cache_misses > 0)
        ]);
    };
    for t in [2usize, 4, 6] {
        let r = algorithm1::run(
            t,
            Value::ONE,
            algorithm1::Algo1Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        push("Algorithm 1", 2 * t + 1, t, &r.outcome.metrics);
    }
    for t in [2usize, 4] {
        let r = algorithm2::run(
            t,
            Value::ONE,
            algorithm2::Algo2Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        push("Algorithm 2", 2 * t + 1, t, &r.report.outcome.metrics);
    }
    for (n, t) in [(15usize, 3usize), (25, 3)] {
        let r = dolev_strong::run(
            n,
            t,
            Value::ONE,
            dolev_strong::DsOptions {
                variant: dolev_strong::Variant::Relay,
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        push("Dolev-Strong relay", n, t, &r.outcome.metrics);
    }
    for (n, t, s) in [(50usize, 2usize, 8usize), (120, 3, 12)] {
        let r = algorithm3::run(
            n,
            t,
            s,
            Value::ONE,
            algorithm3::Alg3Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        push("Algorithm 3", n, t, &r.outcome.metrics);
    }
    for (n, t, s) in [(60usize, 1usize, 3usize), (120, 3, 7)] {
        let r = algorithm5::run(
            n,
            t,
            s,
            Value::ONE,
            algorithm5::Alg5Options {
                scheme: SchemeKind::Fast,
                ..Default::default()
            },
        )
        .unwrap();
        push("Algorithm 5", n, t, &r.outcome.metrics);
    }
    vec![t_out]
}

/// E15 — engine scaling: parallel intra-phase stepping is observationally
/// equivalent to the sequential engine.
///
/// Each workload runs twice, sequentially and across 4 worker threads, and
/// every accounting column must match exactly: the engine routes staged
/// messages in actor-id order on the calling thread and puts the shared
/// verifier cache into deferred phase-snapshot mode
/// (`Simulation::with_registry`), so `Metrics`, decisions and traces are
/// byte-identical for any thread count. Wall-clock numbers live in the
/// engine benchmark (`bench_engine` → `BENCH_engine.json`); this table pins
/// the determinism contract the parallelism rests on.
pub fn e15() -> Vec<Table> {
    let mut t_out = Table::new(
        "E15 — engine scaling across worker threads (Fast scheme): all accounting byte-identical between sequential and parallel intra-phase stepping",
        &[
            "workload",
            "n",
            "t",
            "threads",
            "messages",
            "signatures",
            "hashes",
            "sig checks",
            "identical across threads",
        ],
    );
    for (n, t) in [(16usize, 3usize), (64, 3)] {
        let run_with = |threads: usize| {
            dolev_strong::run(
                n,
                t,
                Value::ONE,
                dolev_strong::DsOptions {
                    variant: dolev_strong::Variant::Broadcast,
                    scheme: SchemeKind::Fast,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let seq = run_with(1);
        let par = run_with(4);
        let same = seq.outcome.metrics == par.outcome.metrics
            && seq.outcome.decisions == par.outcome.decisions;
        for (threads, r) in [(1usize, &seq), (4, &par)] {
            let m = &r.outcome.metrics;
            t_out.row(cells![
                "Dolev-Strong broadcast",
                n,
                t,
                threads,
                m.messages_by_correct,
                m.signatures_by_correct,
                m.crypto.hash_invocations,
                m.crypto.sig_verifications,
                check(same)
            ]);
        }
    }
    for (n, t, s) in [(64usize, 3usize, 12usize)] {
        let run_with = |threads: usize| {
            algorithm3::run(
                n,
                t,
                s,
                Value::ONE,
                algorithm3::Alg3Options {
                    scheme: SchemeKind::Fast,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let seq = run_with(1);
        let par = run_with(4);
        let same = seq.outcome.metrics == par.outcome.metrics
            && seq.outcome.decisions == par.outcome.decisions;
        for (threads, r) in [(1usize, &seq), (4, &par)] {
            let m = &r.outcome.metrics;
            t_out.row(cells![
                "Algorithm 3",
                n,
                t,
                threads,
                m.messages_by_correct,
                m.signatures_by_correct,
                m.crypto.hash_invocations,
                m.crypto.sig_verifications,
                check(same)
            ]);
        }
    }
    vec![t_out]
}

/// E16 — decisions under chaos vs the lock-step baseline.
///
/// The `ba-net` runtime replaces the engine's perfect synchronous wire
/// with seeded per-link unreliability (loss, ack loss, duplication, delay,
/// reordering) masked by retransmission with exponential backoff. The
/// contract this table pins: under a reliable profile the runtime is
/// byte-identical to the lock-step engine (decisions *and* `Metrics`);
/// under recoverable chaos a sound target still reaches the same
/// decisions, paying only physical retransmissions; and when the wire
/// misbehaves past the fault budget the runtime aborts with a structured
/// degradation verdict instead of deciding wrongly.
pub fn e16() -> Vec<Table> {
    use ba_algos::checkable::{find_target, CheckConfig};
    use ba_net::{run_target, ChaosProfile, LinkChaos, NetConfig, NetRunError};
    use ba_sim::schedule::ScheduleSpec;

    let mut t_out = Table::new(
        "E16 — ba-net runtime vs lock-step engine (ds-broadcast n = 4, t = 1, fault-free): decisions must match the baseline whenever the run completes",
        &[
            "profile",
            "completed",
            "decisions = baseline",
            "metrics = baseline",
            "retransmissions",
            "frames failed",
            "suspected",
            "as expected",
        ],
    );
    let target = find_target("ds-broadcast").expect("registered");
    let cfg = CheckConfig::new(4, 1, Value::ONE, 3, 1, ScheduleSpec::default());
    let baseline = target.run(&cfg);
    let base_verdict = baseline.verdict.as_ref().expect("sound fault-free run");
    let net = NetConfig {
        threads: 2,
        ..NetConfig::default()
    };
    for name in ChaosProfile::NAMES {
        let chaos = ChaosProfile::from_name(name, 41).expect("registry name");
        // Lossless profiles must reproduce the baseline exactly; lossy ones
        // may degrade, but a completed run must never decide differently.
        let lossless = matches!(*name, "reliable" | "jitter");
        match run_target(target, &cfg, &net, &chaos) {
            Ok(run) => {
                let decisions_match =
                    run.agreement.as_ref().ok().map(|v| v.agreed) == Some(base_verdict.agreed);
                let metrics_match = run.metrics.messages_by_correct == baseline.messages_by_correct;
                let as_expected = decisions_match
                    && (!lossless
                        || (metrics_match
                            && run.stats.frames_failed == 0
                            && run.suspected.is_empty()))
                    && (*name != "reliable" || run.stats.retransmissions == 0);
                t_out.row(cells![
                    *name,
                    "yes",
                    if decisions_match { "yes" } else { "no" },
                    if metrics_match { "yes" } else { "no" },
                    run.stats.retransmissions,
                    run.stats.frames_failed,
                    run.suspected.len(),
                    check(as_expected)
                ]);
            }
            Err(NetRunError::Degraded(verdict)) => {
                t_out.row(cells![
                    *name,
                    "no (degraded)",
                    "-",
                    "-",
                    verdict.stats.retransmissions,
                    verdict.stats.frames_failed,
                    verdict.suspected.len(),
                    check(!lossless)
                ]);
            }
            Err(e) => panic!("e16 {name}: {e}"),
        }
    }

    let mut t_degrade = Table::new(
        "E16b — graceful degradation: a permanently dead link is tolerated while the observable fault set fits the budget t, and the run aborts with a structured verdict the moment it does not",
        &[
            "scenario",
            "scheduled faults",
            "dead links",
            "outcome",
            "suspected",
            "agreement",
            "as expected",
        ],
    );
    let dead_link = |from: u32, to: u32| {
        ChaosProfile::reliable().with_link(ProcessId(from), ProcessId(to), LinkChaos::dead())
    };
    // Within budget: no scheduled faults, one dead sender, t = 1.
    let run = run_target(target, &cfg, &net, &dead_link(1, 3)).expect("within budget");
    t_degrade.row(cells![
        "one dead link, budget free",
        0,
        1,
        "completed",
        run.suspected.len(),
        if run.violated() { "VIOLATED" } else { "holds" },
        check(!run.violated() && run.suspected.len() == 1)
    ]);
    // Over budget: the schedule already spends t on the transmitter.
    let split_cfg = CheckConfig {
        spec: ScheduleSpec {
            faults: vec![(
                ProcessId(0),
                ba_sim::schedule::FaultBehavior::OmitTo {
                    targets: vec![ProcessId(2)],
                },
            )],
            link_drops: vec![],
        },
        ..cfg.clone()
    };
    let err =
        run_target(target, &split_cfg, &net, &dead_link(1, 3)).expect_err("over budget must abort");
    let aborted = matches!(err, NetRunError::Degraded(_));
    t_degrade.row(cells![
        "dead link + scheduled omission",
        1,
        1,
        "aborted with verdict",
        "-",
        "no decision",
        check(aborted)
    ]);
    vec![t_out, t_degrade]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_tables() {
        for id in ALL_IDS {
            let tables = run_experiment(id);
            assert!(!tables.is_empty(), "{id}");
            for t in &tables {
                assert!(!t.is_empty(), "{id} produced an empty table");
                let rendered = t.render();
                assert!(
                    !rendered.contains("| NO"),
                    "{id} has a failing row:\n{rendered}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("e99");
    }

    #[test]
    fn parallel_batch_matches_sequential_render() {
        // Cheap subset: the rendered tables must be byte-identical for any
        // thread count.
        let ids = ["e2", "e4", "e14"];
        let render = |batch: &[(String, Vec<Table>)]| -> String {
            batch
                .iter()
                .flat_map(|(id, tables)| {
                    std::iter::once(id.clone()).chain(tables.iter().map(|t| t.render()))
                })
                .collect()
        };
        let seq = run_experiments(&ids, 1);
        let par = run_experiments(&ids, 3);
        assert_eq!(render(&seq), render(&par));
        assert_eq!(seq.len(), ids.len());
        assert_eq!(seq[2].0, "e14");
    }
}
