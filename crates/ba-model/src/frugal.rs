//! Deliberately under-communicating protocols.
//!
//! The lower-bound theorems say every correct algorithm must exchange a
//! minimum amount of information; to *demonstrate* the bounds we need
//! algorithms that exchange less and are therefore attackable. Two are
//! provided:
//!
//! * [`FrugalBroadcast`] — a `k`-relay signed broadcast (`k < t + 1`
//!   relays makes it violate the Theorem 1 prerequisite: some processor
//!   exchanges signatures with at most `k + 1 ≤ t` others);
//! * [`QuietBroadcast`] — the transmitter sends its value once to each
//!   processor and nothing else (`n − 1` messages, below the Theorem 2
//!   bound for `t ≥ 2`, and each victim has a sender set of size 1).
//!
//! Both decide on the first authenticated value received (default `0`),
//! which is sound when nothing goes wrong — the attacks in
//! [`theorem1`](crate::theorem1) and [`theorem2`](crate::theorem2) show
//! how it breaks.

use ba_algos::domains;
use ba_crypto::{Chain, ProcessId, Signer, Value, Verifier};
use ba_sim::actor::{Actor, Envelope, Outbox};

/// Chain domain for the frugal protocols.
pub const FRUGAL_DOMAIN: u32 = 7_777;

const _: () = assert!(FRUGAL_DOMAIN != domains::ALG1 && FRUGAL_DOMAIN != domains::ALG2);

/// A `k`-relay signed broadcast.
///
/// Phase 1: the transmitter signs its value and sends it to relays
/// `1..=k`. Phase 2: each relay countersigns and forwards to everyone
/// else. Decision: the value of the first verifying chain rooted at the
/// transmitter (default `0`).
#[derive(Debug)]
pub struct FrugalBroadcast {
    n: usize,
    k: usize,
    me: ProcessId,
    signer: Signer,
    verifier: Verifier,
    own_value: Option<Value>,
    heard: Option<Value>,
    phase: usize,
}

impl FrugalBroadcast {
    /// Creates the actor; `own_value` is `Some` for the transmitter.
    pub fn new(
        n: usize,
        k: usize,
        me: ProcessId,
        signer: Signer,
        verifier: Verifier,
        own_value: Option<Value>,
    ) -> Self {
        assert!(
            k >= 1 && k < n - 1,
            "need at least one relay and one listener"
        );
        FrugalBroadcast {
            n,
            k,
            me,
            signer,
            verifier,
            own_value,
            heard: None,
            phase: 0,
        }
    }

    /// Number of phases the protocol runs.
    pub fn phases() -> usize {
        2
    }

    fn accepts(&self, chain: &Chain) -> bool {
        chain.domain() == FRUGAL_DOMAIN
            && chain.first_signer() == Some(ProcessId(0))
            && chain.verify_simple_path(&self.verifier).is_ok()
    }

    fn absorb(&mut self, inbox: &[Envelope<Chain>]) {
        for env in inbox {
            if self.heard.is_none() && self.accepts(&env.payload) {
                self.heard = Some(env.payload.value());
            }
        }
    }

    fn is_relay(&self) -> bool {
        (1..=self.k).contains(&self.me.index())
    }
}

impl Actor<Chain> for FrugalBroadcast {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        self.phase = phase;
        match phase {
            1 => {
                if let Some(v) = self.own_value {
                    let mut chain = Chain::new(FRUGAL_DOMAIN, v);
                    chain.sign_and_append(&self.signer);
                    for relay in 1..=self.k as u32 {
                        out.send(ProcessId(relay), chain.clone());
                    }
                }
            }
            2 => {
                self.absorb(inbox);
                if self.is_relay() {
                    if let Some(env) = inbox.iter().find(|e| self.accepts(&e.payload)) {
                        let mut relay = env.payload.clone();
                        relay.sign_and_append(&self.signer);
                        out.broadcast((1..self.n as u32).map(ProcessId), relay);
                    }
                }
            }
            _ => {}
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
        self.absorb(inbox);
    }

    fn decision(&self) -> Option<Value> {
        if let Some(v) = self.own_value {
            return Some(v);
        }
        Some(self.heard.unwrap_or(Value::ZERO))
    }
}

/// The one-shot broadcast: the transmitter signs and sends its value to
/// everyone in phase 1; receivers decide on it (default `0`).
#[derive(Debug)]
pub struct QuietBroadcast {
    n: usize,
    signer: Signer,
    verifier: Verifier,
    own_value: Option<Value>,
    heard: Option<Value>,
}

impl QuietBroadcast {
    /// Creates the actor; `own_value` is `Some` for the transmitter.
    pub fn new(n: usize, signer: Signer, verifier: Verifier, own_value: Option<Value>) -> Self {
        QuietBroadcast {
            n,
            signer,
            verifier,
            own_value,
            heard: None,
        }
    }

    /// Number of phases the protocol runs.
    pub fn phases() -> usize {
        1
    }
}

impl Actor<Chain> for QuietBroadcast {
    fn step(&mut self, phase: usize, _inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        if phase == 1 {
            if let Some(v) = self.own_value {
                let mut chain = Chain::new(FRUGAL_DOMAIN, v);
                chain.sign_and_append(&self.signer);
                out.broadcast((0..self.n as u32).map(ProcessId), chain);
            }
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
        for env in inbox {
            if env.payload.domain() == FRUGAL_DOMAIN
                && env.payload.first_signer() == Some(ProcessId(0))
                && env.payload.verify(&self.verifier).is_ok()
            {
                self.heard.get_or_insert(env.payload.value());
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        if let Some(v) = self.own_value {
            return Some(v);
        }
        Some(self.heard.unwrap_or(Value::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::{KeyRegistry, SchemeKind};
    use ba_sim::engine::Simulation;

    fn frugal_actors(n: usize, k: usize, value: Value, seed: u64) -> Vec<Box<dyn Actor<Chain>>> {
        let registry = KeyRegistry::new(n, seed, SchemeKind::Fast);
        (0..n as u32)
            .map(|p| {
                Box::new(FrugalBroadcast::new(
                    n,
                    k,
                    ProcessId(p),
                    registry.signer(ProcessId(p)),
                    registry.verifier(),
                    (p == 0).then_some(value),
                )) as Box<dyn Actor<Chain>>
            })
            .collect()
    }

    #[test]
    fn frugal_works_when_nothing_goes_wrong() {
        for v in [Value::ZERO, Value::ONE] {
            let mut sim = Simulation::new(frugal_actors(7, 2, v, 1));
            let outcome = sim.run(FrugalBroadcast::phases());
            let verdict = ba_sim::check_byzantine_agreement(&outcome, ProcessId(0), v).unwrap();
            assert_eq!(verdict.agreed, Some(v));
        }
    }

    #[test]
    fn frugal_message_count_is_low() {
        let mut sim = Simulation::new(frugal_actors(10, 2, Value::ONE, 1));
        let outcome = sim.run(2);
        // k + k(n-2) messages: far below n(t+1)/4 for t near n/2.
        assert_eq!(outcome.metrics.messages_by_correct, 2 + 2 * 8);
    }

    #[test]
    fn quiet_works_when_nothing_goes_wrong() {
        let n = 6;
        let registry = KeyRegistry::new(n, 2, SchemeKind::Fast);
        let actors: Vec<Box<dyn Actor<Chain>>> = (0..n as u32)
            .map(|p| {
                Box::new(QuietBroadcast::new(
                    n,
                    registry.signer(ProcessId(p)),
                    registry.verifier(),
                    (p == 0).then_some(Value::ONE),
                )) as Box<dyn Actor<Chain>>
            })
            .collect();
        let mut sim = Simulation::new(actors);
        let outcome = sim.run(QuietBroadcast::phases());
        let verdict =
            ba_sim::check_byzantine_agreement(&outcome, ProcessId(0), Value::ONE).unwrap();
        assert_eq!(verdict.agreed, Some(Value::ONE));
        assert_eq!(outcome.metrics.messages_by_correct, (n - 1) as u64);
    }

    #[test]
    fn forged_chains_are_ignored() {
        let n = 5;
        let registry = KeyRegistry::new(n, 3, SchemeKind::Hmac);
        let mut actor = FrugalBroadcast::new(
            n,
            2,
            ProcessId(4),
            registry.signer(ProcessId(4)),
            registry.verifier(),
            None,
        );
        // A chain "signed" by the transmitter with a forged tag.
        let mut forged = Chain::new(FRUGAL_DOMAIN, Value::ONE);
        forged.sign_and_append(&registry.signer(ProcessId(3))); // wrong signer
        let env = Envelope {
            from: ProcessId(3),
            to: ProcessId(4),
            payload: forged,
        };
        actor.finalize(&[env]);
        assert_eq!(actor.decision(), Some(Value::ZERO));
    }
}
