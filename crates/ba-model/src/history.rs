//! The paper's Section-2 vocabulary, materialized from simulator traces.
//!
//! A *phase* is a directed labeled graph over the processors; a *history*
//! is a finite sequence of phases plus the phase-0 transmitter value; the
//! *individual subhistory* `pH` is the subsequence of edges with target
//! `p` — "at the beginning of phase k \[it\] is all that processor p has to
//! work with".

use ba_crypto::{ProcessId, Value};
use ba_sim::actor::Envelope;
use ba_sim::trace::Trace;
use std::collections::BTreeMap;

/// One labeled edge of a phase graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Edge<P> {
    /// Source processor.
    pub from: ProcessId,
    /// Target processor.
    pub to: ProcessId,
    /// The label (message payload).
    pub label: P,
}

/// A history: the phase-0 value plus one edge-set per phase.
#[derive(Clone, Debug)]
pub struct History<P> {
    /// The transmitter's phase-0 input.
    pub phase0: Value,
    /// Phase graphs, phase 1 first.
    pub phases: Vec<Vec<Edge<P>>>,
}

impl<P: Clone + PartialEq> History<P> {
    /// Builds a history from a simulator trace.
    pub fn from_trace(phase0: Value, trace: &Trace<P>) -> Self {
        History {
            phase0,
            phases: trace
                .phases
                .iter()
                .map(|ph| {
                    ph.envelopes
                        .iter()
                        .map(|e| Edge {
                            from: e.from,
                            to: e.to,
                            label: e.payload.clone(),
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the history has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The individual subhistory `pH`: per phase, the edges with target
    /// `p` (source and label), which is everything `p` ever observes.
    pub fn individual(&self, p: ProcessId) -> Vec<Vec<(ProcessId, P)>> {
        self.phases
            .iter()
            .map(|edges| {
                edges
                    .iter()
                    .filter(|e| e.to == p)
                    .map(|e| (e.from, e.label.clone()))
                    .collect()
            })
            .collect()
    }

    /// Whether `p` observes exactly the same subhistory in both histories
    /// — the indistinguishability at the heart of the splicing proofs.
    pub fn individually_equal(&self, other: &History<P>, p: ProcessId) -> bool {
        let a = self.individual(p);
        let b = other.individual(p);
        // Trailing empty phases are irrelevant to what p observed.
        let strip = |mut v: Vec<Vec<(ProcessId, P)>>| {
            while v.last().is_some_and(Vec::is_empty) {
                v.pop();
            }
            v
        };
        strip(a) == strip(b)
    }

    /// Messages received by each processor from the given senders,
    /// across all phases.
    pub fn received_counts(&self) -> BTreeMap<ProcessId, usize> {
        let mut counts = BTreeMap::new();
        for edges in &self.phases {
            for e in edges {
                *counts.entry(e.to).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The set of processors that sent at least one message to `p`.
    pub fn senders_to(&self, p: ProcessId) -> Vec<ProcessId> {
        let mut senders: Vec<ProcessId> = self
            .phases
            .iter()
            .flatten()
            .filter(|e| e.to == p)
            .map(|e| e.from)
            .collect();
        senders.sort_unstable();
        senders.dedup();
        senders
    }
}

/// Convenience: lift simulator envelopes into history edges.
impl<P: Clone> From<&Envelope<P>> for Edge<P> {
    fn from(e: &Envelope<P>) -> Self {
        Edge {
            from: e.from,
            to: e.to,
            label: e.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::trace::PhaseTrace;

    fn env(from: u32, to: u32, v: u64) -> Envelope<Value> {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(to),
            payload: Value(v),
        }
    }

    fn trace() -> Trace<Value> {
        Trace {
            phases: vec![
                PhaseTrace {
                    envelopes: vec![env(0, 1, 5), env(0, 2, 6)],
                },
                PhaseTrace {
                    envelopes: vec![env(1, 2, 7)],
                },
                PhaseTrace { envelopes: vec![] },
            ],
        }
    }

    #[test]
    fn history_from_trace() {
        let h = History::from_trace(Value::ONE, &trace());
        assert_eq!(h.phase0, Value::ONE);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.phases[0].len(), 2);
        assert_eq!(
            h.phases[0][0],
            Edge {
                from: ProcessId(0),
                to: ProcessId(1),
                label: Value(5)
            }
        );
    }

    #[test]
    fn individual_subhistory() {
        let h = History::from_trace(Value::ONE, &trace());
        let p2 = h.individual(ProcessId(2));
        assert_eq!(p2[0], vec![(ProcessId(0), Value(6))]);
        assert_eq!(p2[1], vec![(ProcessId(1), Value(7))]);
        assert!(p2[2].is_empty());
    }

    #[test]
    fn individual_equality_ignores_trailing_silence() {
        let a = History::from_trace(Value::ONE, &trace());
        let mut shorter = trace();
        shorter.phases.pop();
        let b = History::from_trace(Value::ONE, &shorter);
        assert!(a.individually_equal(&b, ProcessId(2)));
        assert!(a.individually_equal(&b, ProcessId(1)));
        // Different traffic breaks equality.
        let mut c = trace();
        c.phases[1].envelopes[0].payload = Value(9);
        let c = History::from_trace(Value::ONE, &c);
        assert!(!a.individually_equal(&c, ProcessId(2)));
        // ...but only for the affected processor.
        assert!(a.individually_equal(&c, ProcessId(1)));
    }

    #[test]
    fn counting_helpers() {
        let h = History::from_trace(Value::ZERO, &trace());
        let counts = h.received_counts();
        assert_eq!(counts[&ProcessId(1)], 1);
        assert_eq!(counts[&ProcessId(2)], 2);
        assert_eq!(h.senders_to(ProcessId(2)), vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(h.senders_to(ProcessId(0)), vec![]);
    }
}
