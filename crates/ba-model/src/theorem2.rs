//! Theorem 2 as runnable experiments: any algorithm has a history with at
//! least `max{⌈(n−1)/2⌉, (1 + t/2)²}` messages from correct processors.
//!
//! Two constructions from the proof are reproduced:
//!
//! 1. **Starvation** ([`attack_quiet`]) — if some processor `p` would not
//!    decide the transmitted value on silence, and the set of processors
//!    that ever send to `p` has at most `t` members, corrupting exactly
//!    that set (silently omitting their messages to `p`) starves `p` into
//!    the default while everyone else proceeds — disagreement. This is
//!    the `H″` step of the proof, demonstrated against the one-shot
//!    `QuietBroadcast` one-shot protocol in [`frugal`](crate::frugal).
//! 2. **Extraction** ([`extract_algorithm1`]) — the `B`-set argument: put
//!    `⌊1 + t/2⌋` faulty processors in `B`, each ignoring the first
//!    `⌈t/2⌉` messages it receives and never talking to other `B`
//!    members; any correct algorithm is then *forced* to send each of
//!    them at least `⌈1 + t/2⌉` messages — measured here on Algorithm 1.

use crate::frugal::QuietBroadcast;
use crate::history::History;
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Value};
use ba_sim::actor::Actor;
use ba_sim::adversary::OmitTo;
use ba_sim::engine::Simulation;
use ba_sim::AgreementViolation;
use std::collections::BTreeMap;

/// Result of a starvation attack attempt.
#[derive(Debug)]
pub struct Theorem2Attack {
    /// The starved processor.
    pub victim: ProcessId,
    /// The processors that sent to the victim in the fault-free history.
    pub senders: Vec<ProcessId>,
    /// Whether `|senders| ≤ t` (the prerequisite correct algorithms deny).
    pub feasible: bool,
    /// The violation produced by the starved history, if any.
    pub violation: Option<AgreementViolation>,
    /// Whether the victim indeed received nothing in the starved history.
    pub victim_starved: bool,
    /// Messages sent by correct processors in the fault-free history.
    pub messages_in_h: u64,
}

fn quiet_actors(registry: &KeyRegistry, n: usize, value: Value) -> Vec<Box<dyn Actor<Chain>>> {
    (0..n as u32)
        .map(|p| {
            Box::new(QuietBroadcast::new(
                n,
                registry.signer(ProcessId(p)),
                registry.verifier(),
                (p == 0).then_some(value),
            )) as Box<dyn Actor<Chain>>
        })
        .collect()
}

/// Runs the starvation attack against the one-shot quiet broadcast.
///
/// ```
/// let attack = ba_model::theorem2::attack_quiet(6, 1, 7);
/// assert!(attack.feasible && attack.victim_starved);
/// ```
///
/// # Panics
/// Panics if `t == 0` or `t ≥ n − 1`.
pub fn attack_quiet(n: usize, t: usize, seed: u64) -> Theorem2Attack {
    assert!(t >= 1 && t < n - 1);
    let registry = KeyRegistry::new(n, seed, SchemeKind::Hmac);
    let victim = ProcessId(n as u32 - 1);

    // Fault-free history with value 1 (the value the victim would not
    // reach on silence — its default is 0).
    let mut sim = Simulation::new(quiet_actors(&registry, n, Value::ONE)).with_trace();
    let outcome = sim.run(QuietBroadcast::phases());
    let h = History::from_trace(Value::ONE, &outcome.trace);
    let senders = h.senders_to(victim);
    let feasible = senders.len() <= t;
    let messages_in_h = outcome.metrics.messages_by_correct;

    if !feasible {
        return Theorem2Attack {
            victim,
            senders,
            feasible,
            violation: None,
            victim_starved: false,
            messages_in_h,
        };
    }

    // H″: the victim's senders behave correctly except toward the victim.
    let mut actors = quiet_actors(&registry, n, Value::ONE);
    for &member in &senders {
        let honest = QuietBroadcast::new(
            n,
            registry.signer(member),
            registry.verifier(),
            (member == ProcessId(0)).then_some(Value::ONE),
        );
        actors[member.index()] = Box::new(OmitTo::new(honest, [victim]));
    }
    let mut sim = Simulation::new(actors).with_trace();
    let outcome = sim.run(QuietBroadcast::phases());
    let violation = ba_sim::check_byzantine_agreement(&outcome, ProcessId(0), Value::ONE).err();
    let h2 = History::from_trace(Value::ONE, &outcome.trace);
    let victim_starved = h2.received_counts().get(&victim).copied().unwrap_or(0) == 0;

    Theorem2Attack {
        victim,
        senders,
        feasible,
        violation,
        victim_starved,
        messages_in_h,
    }
}

/// Result of the `B`-set extraction experiment.
#[derive(Debug)]
pub struct ExtractionReport {
    /// The faulty "ignorer" set `B` (size `⌊1 + t/2⌋`).
    pub b_set: Vec<ProcessId>,
    /// Messages each `B` member received from correct processors.
    pub received_from_correct: BTreeMap<ProcessId, usize>,
    /// The proof's per-member demand `⌈1 + t/2⌉`.
    pub demand: usize,
    /// Whether the remaining correct processors still agreed.
    pub agreement_held: bool,
}

impl ExtractionReport {
    /// Whether every `B` member extracted at least the demanded number of
    /// messages — the inequality whose product over `|B|` members yields
    /// the `(1 + t/2)²` bound.
    pub fn demand_met(&self) -> bool {
        self.b_set
            .iter()
            .all(|b| self.received_from_correct.get(b).copied().unwrap_or(0) >= self.demand)
    }
}

/// Runs the extraction experiment against Algorithm 1 (`n = 2t + 1`):
/// `B = ⌊1 + t/2⌋` faulty processors on side `A` ignore their first
/// `⌈t/2⌉` messages and never talk to each other; count what correct
/// processors are forced to send them.
///
/// # Panics
/// Panics if `t == 0`.
pub fn extract_algorithm1(t: usize, seed: u64) -> ExtractionReport {
    use ba_algos::algorithm1::{Algo1Actor, Algo1Params};
    use ba_sim::adversary::IgnoreFirst;
    use std::sync::Arc;

    assert!(t >= 1);
    let n = 2 * t + 1;
    let registry = KeyRegistry::new(n, seed, SchemeKind::Hmac);
    let params = Arc::new(Algo1Params {
        t,
        verifier: registry.verifier(),
    });

    let b_size = 1 + t / 2; // ⌊1 + t/2⌋
    let demand = 1 + t.div_ceil(2); // ⌈1 + t/2⌉
    let b_set: Vec<ProcessId> = (1..=b_size as u32).map(ProcessId).collect();

    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(n);
    for p in 0..n as u32 {
        let id = ProcessId(p);
        let honest = Algo1Actor::new(
            params.clone(),
            id,
            registry.signer(id),
            (p == 0).then_some(Value::ONE),
        );
        if b_set.contains(&id) {
            // Ignore the first ⌈t/2⌉ messages; never message other B
            // members.
            let ignorer = IgnoreFirst::new(honest, t.div_ceil(2), []);
            let others: Vec<ProcessId> = b_set.iter().copied().filter(|&q| q != id).collect();
            actors.push(Box::new(OmitTo::new(ignorer, others)));
        } else {
            actors.push(Box::new(honest));
        }
    }

    let mut sim = Simulation::new(actors).with_trace();
    let outcome = sim.run(t + 2);
    let agreement_held =
        ba_sim::check_byzantine_agreement(&outcome, ProcessId(0), Value::ONE).is_ok();

    let mut received: BTreeMap<ProcessId, usize> = BTreeMap::new();
    for phase in &outcome.trace.phases {
        for env in &phase.envelopes {
            if b_set.contains(&env.to) && outcome.correct[env.from.index()] {
                *received.entry(env.to).or_insert(0) += 1;
            }
        }
    }

    ExtractionReport {
        b_set,
        received_from_correct: received,
        demand,
        agreement_held,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::checker::AgreementViolation;

    #[test]
    fn starvation_breaks_the_quiet_broadcast() {
        let attack = attack_quiet(8, 2, 11);
        assert!(attack.feasible);
        assert_eq!(attack.senders, vec![ProcessId(0)]);
        assert!(attack.victim_starved);
        match attack.violation {
            Some(AgreementViolation::Disagreement { .. }) => {}
            other => panic!("expected disagreement, got {other:?}"),
        }
    }

    #[test]
    fn quiet_broadcast_sits_below_the_message_bound() {
        // n - 1 messages < (1 + t/2)² for large enough t.
        let attack = attack_quiet(10, 8, 3);
        let bound = ba_algos::bounds::thm2_message_lower_bound(10, 8);
        assert!(attack.messages_in_h < bound);
    }

    #[test]
    fn extraction_meets_the_demand_on_algorithm1() {
        for t in 1..=6 {
            let report = extract_algorithm1(t, 9);
            assert!(report.agreement_held, "t={t}");
            assert!(
                report.demand_met(),
                "t={t}: demand {} not met: {:?}",
                report.demand,
                report.received_from_correct
            );
        }
    }

    #[test]
    fn extraction_product_witnesses_the_squared_bound() {
        // |B| * demand ≈ (1 + t/2)²; the witnessed traffic must reach it.
        let t = 6;
        let report = extract_algorithm1(t, 4);
        let witnessed: usize = report
            .b_set
            .iter()
            .map(|b| report.received_from_correct.get(b).copied().unwrap_or(0))
            .sum();
        let bound = (1 + t / 2) * (1 + t.div_ceil(2));
        assert!(witnessed >= bound, "{witnessed} < {bound}");
    }

    #[test]
    fn starvation_is_infeasible_against_algorithm1() {
        // In Algorithm 1's value-1 history every processor hears from
        // t + 1 senders (the transmitter plus the opposite side), so the
        // sender set exceeds the fault budget.
        use ba_algos::algorithm1::{run, Algo1Options};
        let t = 3;
        let report = run(
            t,
            Value::ONE,
            Algo1Options {
                trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        let h = History::from_trace(Value::ONE, &report.outcome.trace);
        for p in 1..(2 * t + 1) as u32 {
            let senders = h.senders_to(ProcessId(p));
            assert!(senders.len() > t, "p{p} has only {} senders", senders.len());
        }
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_starvation_always_works_below_budget() {
            run_cases(12, 0x71, |gen| {
                let n = gen.usize_in(4, 12);
                let seed = gen.u64();
                let t = 1; // one fault suffices: the only sender is the transmitter
                let attack = attack_quiet(n, t, seed);
                assert!(attack.feasible);
                assert!(attack.violation.is_some());
                assert!(attack.victim_starved);
            });
        }

        #[test]
        fn prop_extraction_always_meets_demand() {
            run_cases(12, 0x72, |gen| {
                let t = gen.usize_in(1, 6);
                let seed = gen.u64();
                let report = extract_algorithm1(t, seed);
                assert!(report.agreement_held);
                assert!(report.demand_met());
            });
        }
    }
}
