//! Theorem 1 as a runnable attack: any authenticated algorithm in which
//! some processor `p` exchanges signatures with at most `t` others (the
//! set `A(p)`) can be driven into disagreement — hence every correct
//! algorithm forces `|A(p)| ≥ t + 1` for all `p`, i.e. at least
//! `n(t + 1)/4` signatures in a fault-free history.
//!
//! The attack follows the proof verbatim: record the fault-free histories
//! `H` (value 0) and `G` (value 1), corrupt exactly `A(p)`, and have the
//! coalition replay its `H`-traffic toward `p` and its `G`-traffic toward
//! everyone else. Processor `p` then observes precisely `pH` — checked
//! bit-for-bit via
//! [`History::individually_equal`](crate::history::History::individually_equal)
//! — so it decides 0 while every other correct processor decides 1.

use crate::frugal::FrugalBroadcast;
use crate::history::History;
use crate::replay::{split_script, ReplayActor};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Value};
use ba_sim::actor::Actor;
use ba_sim::engine::Simulation;
use ba_sim::trace::Trace;
use ba_sim::AgreementViolation;
use std::collections::{BTreeMap, BTreeSet};

/// Computes `A(p)` for every processor over the given chain histories:
/// `q ∈ A(p)` iff `q`'s signature reached `p` or `p`'s signature reached
/// `q` in at least one history.
pub fn a_sets(histories: &[&History<Chain>]) -> BTreeMap<ProcessId, BTreeSet<ProcessId>> {
    let mut a: BTreeMap<ProcessId, BTreeSet<ProcessId>> = BTreeMap::new();
    for h in histories {
        for phase in &h.phases {
            for edge in phase {
                for signer in edge.label.signers() {
                    if signer != edge.to {
                        a.entry(edge.to).or_default().insert(signer);
                        a.entry(signer).or_default().insert(edge.to);
                    }
                }
            }
        }
    }
    a
}

/// Result of a Theorem 1 attack attempt.
#[derive(Debug)]
pub struct Theorem1Attack {
    /// The victim `p`.
    pub victim: ProcessId,
    /// The corrupted coalition `A(p)`.
    pub a_set: BTreeSet<ProcessId>,
    /// Whether the coalition fits the fault budget (`|A(p)| ≤ t`) — the
    /// prerequisite the theorem shows correct algorithms deny.
    pub feasible: bool,
    /// The agreement violation the spliced history produced, if any.
    pub violation: Option<AgreementViolation>,
    /// Whether the victim's individual subhistory in the spliced run is
    /// identical to its subhistory in `H` (the indistinguishability the
    /// proof relies on).
    pub victim_view_preserved: bool,
    /// Signatures sent by correct processors in the fault-free history
    /// `H` (compared against `n(t+1)/4` by the experiments).
    pub signatures_in_h: u64,
}

fn frugal_actors(
    registry: &KeyRegistry,
    n: usize,
    k: usize,
    value: Value,
) -> Vec<Box<dyn Actor<Chain>>> {
    (0..n as u32)
        .map(|p| {
            Box::new(FrugalBroadcast::new(
                n,
                k,
                ProcessId(p),
                registry.signer(ProcessId(p)),
                registry.verifier(),
                (p == 0).then_some(value),
            )) as Box<dyn Actor<Chain>>
        })
        .collect()
}

/// Runs the Theorem 1 splicing attack against the `k`-relay frugal
/// broadcast over `n` processors with fault budget `t`.
///
/// ```
/// let attack = ba_model::theorem1::attack_frugal(9, 3, 2, 42);
/// assert!(attack.feasible && attack.violation.is_some());
/// ```
///
/// With `k ≤ t − 1` the victim's `A(p)` has at most `t` members and the
/// attack succeeds; with `k ≥ t + 1` it is reported infeasible.
///
/// # Panics
/// Panics if the parameters violate the frugal protocol's own
/// requirements (`1 ≤ k < n − 1`) or `t ≥ n − 1`.
pub fn attack_frugal(n: usize, t: usize, k: usize, seed: u64) -> Theorem1Attack {
    assert!(t < n - 1, "the theorem requires t < n - 1");
    let registry = KeyRegistry::new(n, seed, SchemeKind::Hmac);
    let victim = ProcessId(n as u32 - 1);

    // Record the two fault-free histories with the same keys.
    let run_traced = |value: Value| -> Trace<Chain> {
        let mut sim = Simulation::new(frugal_actors(&registry, n, k, value)).with_trace();
        let outcome = sim.run(FrugalBroadcast::phases());
        outcome.trace
    };
    let h_trace = run_traced(Value::ZERO);
    let g_trace = run_traced(Value::ONE);
    let h = History::from_trace(Value::ZERO, &h_trace);
    let g = History::from_trace(Value::ONE, &g_trace);

    let all_a = a_sets(&[&h, &g]);
    let a_set = all_a.get(&victim).cloned().unwrap_or_default();
    let feasible = a_set.len() <= t && !a_set.contains(&victim);

    let signatures_in_h = h
        .phases
        .iter()
        .flatten()
        .map(|e| e.label.len() as u64)
        .sum();

    if !feasible {
        return Theorem1Attack {
            victim,
            a_set,
            feasible,
            violation: None,
            victim_view_preserved: false,
            signatures_in_h,
        };
    }

    // Build H′: the coalition replays H toward the victim, G elsewhere.
    let mut actors = frugal_actors(&registry, n, k, Value::ZERO);
    for &member in &a_set {
        actors[member.index()] = Box::new(ReplayActor::new(split_script(
            &h_trace, &g_trace, member, victim,
        )));
    }
    let mut sim = Simulation::new(actors).with_trace();
    let outcome = sim.run(FrugalBroadcast::phases());
    let violation = ba_sim::check_byzantine_agreement(&outcome, ProcessId(0), Value::ZERO).err();
    let h_prime = History::from_trace(Value::ZERO, &outcome.trace);
    let victim_view_preserved = h.individually_equal(&h_prime, victim);

    Theorem1Attack {
        victim,
        a_set,
        feasible,
        violation,
        victim_view_preserved,
        signatures_in_h,
    }
}

/// Audits Algorithm 1's fault-free histories: the minimum `|A(p)|` over
/// all processors. Theorem 1 predicts at least `t + 1` — which is why the
/// splicing attack cannot be mounted against it within the fault budget.
pub fn audit_algorithm1(t: usize, seed: u64) -> usize {
    use ba_algos::algorithm1::{run, Algo1Options};
    let traced = |value: Value| {
        let report = run(
            t,
            value,
            Algo1Options {
                seed,
                trace: true,
                ..Default::default()
            },
        )
        .expect("fault-free algorithm 1 cannot fail");
        History::from_trace(value, &report.outcome.trace)
    };
    let h = traced(Value::ZERO);
    let g = traced(Value::ONE);
    let sets = a_sets(&[&h, &g]);
    (0..(2 * t + 1) as u32)
        .map(|p| sets.get(&ProcessId(p)).map(BTreeSet::len).unwrap_or(0))
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::checker::AgreementViolation;

    #[test]
    fn splicing_breaks_the_frugal_broadcast() {
        // n = 9, t = 3, k = 2 relays: |A(victim)| = 3 <= t.
        let attack = attack_frugal(9, 3, 2, 42);
        assert!(attack.feasible, "A(p) = {:?}", attack.a_set);
        assert_eq!(attack.a_set.len(), 3); // transmitter + 2 relays
        assert!(attack.victim_view_preserved, "p must observe exactly pH");
        match attack.violation {
            Some(AgreementViolation::Disagreement { .. }) => {}
            other => panic!("expected disagreement, got {other:?}"),
        }
    }

    #[test]
    fn attack_is_infeasible_when_enough_signatures_flow() {
        // k = t + 1 relays: |A(p)| = t + 2 > t.
        let attack = attack_frugal(9, 2, 3, 42);
        assert!(!attack.feasible);
        assert!(attack.violation.is_none());
    }

    #[test]
    fn victim_sees_h_exactly() {
        let attack = attack_frugal(11, 4, 3, 7);
        assert!(attack.feasible);
        assert!(attack.victim_view_preserved);
        assert!(attack.violation.is_some());
    }

    #[test]
    fn algorithm1_denies_the_prerequisite() {
        for t in 1..=4 {
            let min_a = audit_algorithm1(t, 5);
            assert!(min_a > t, "t={t}: min |A(p)| = {min_a}");
        }
    }

    #[test]
    fn a_set_symmetry() {
        let attack = attack_frugal(9, 3, 2, 1);
        // Recompute and check symmetry: q in A(p) iff p in A(q).
        let registry = KeyRegistry::new(9, 1, SchemeKind::Hmac);
        let run_traced = |value: Value| {
            let mut sim = Simulation::new(frugal_actors(&registry, 9, 2, value)).with_trace();
            History::from_trace(value, &sim.run(2).trace)
        };
        let h = run_traced(Value::ZERO);
        let g = run_traced(Value::ONE);
        let sets = a_sets(&[&h, &g]);
        for (p, a) in &sets {
            for q in a {
                assert!(sets[q].contains(p), "{q} in A({p}) but not vice versa");
            }
        }
        let _ = attack;
    }

    #[test]
    fn frugal_h_sits_below_the_signature_bound() {
        // The frugal broadcast's total signatures in H stay below
        // n(t+1)/4 for suitable parameters — the bound it violates.
        // k relays send k(2n-3) signatures; with t = 14 the bound is 60.
        let attack = attack_frugal(16, 14, 2, 3);
        let bound = ba_algos::bounds::thm1_signature_lower_bound(16, 14);
        assert!(
            attack.signatures_in_h < bound,
            "{} >= {bound}",
            attack.signatures_in_h
        );
        assert!(attack.feasible);
        assert!(attack.violation.is_some());
    }
}
