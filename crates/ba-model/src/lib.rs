//! Executable version of the paper's formal model (Section 2) and its
//! lower-bound proofs (Theorems 1 and 2).
//!
//! The Dolev–Reischuk lower bounds are proved by *history splicing*: take
//! the fault-free histories `H` (transmitter sends 0) and `G` (transmitter
//! sends 1), then build a hybrid in which a faulty coalition behaves toward
//! a victim `p` exactly as in one history and toward everyone else as in
//! the other. If the coalition is small enough — which is exactly what an
//! algorithm exchanging too few signatures (Theorem 1) or too few messages
//! (Theorem 2) permits — the victim cannot distinguish the hybrid from the
//! fault-free history and disagrees with the rest.
//!
//! This crate makes those proofs *runnable*:
//!
//! * [`history`] — the paper's vocabulary (histories as sequences of
//!   labeled phase graphs, individual subhistories) materialized from
//!   simulator traces;
//! * [`replay`] — [`ReplayActor`](replay::ReplayActor), a faulty processor
//!   that replays scripted traffic, plus the split-world script
//!   construction used by both theorems;
//! * [`frugal`] — deliberately under-communicating protocols (a
//!   `k`-relay signed broadcast and a one-shot "quiet" broadcast) that sit
//!   below the bounds and are therefore attackable;
//! * [`theorem1`] — the signature-bound attack: audit `A(p)` (the set of
//!   processors `p` exchanged signatures with), corrupt it, splice `H`
//!   into `G`, and watch agreement break — and watch the same attack fail
//!   against Algorithm 1, whose every `A(p)` exceeds `t`;
//! * [`theorem2`] — the message-bound attack: starve a victim of all its
//!   incoming messages when its sender set is at most `t`, plus the
//!   `B`-set extraction experiment showing every faulty "ignorer" is owed
//!   `⌈1 + t/2⌉` messages by any correct algorithm.

pub mod frugal;
pub mod history;
pub mod replay;
pub mod rules;
pub mod theorem1;
pub mod theorem2;
