//! Scripted faulty processors that replay traffic recorded in other
//! histories — the constructive device behind both lower-bound proofs.

use ba_crypto::{ProcessId, Value};
use ba_sim::actor::{Actor, Envelope, Outbox, Payload};
use ba_sim::trace::Trace;
use std::collections::BTreeMap;

/// A faulty processor that sends a fixed script of messages, ignoring
/// everything it receives.
///
/// The coalition of Theorem 1 is a set of `ReplayActor`s built by
/// [`split_script`]: each replays its history-`H` traffic toward the
/// victim and its history-`G` traffic toward everyone else. The replayed
/// signatures are genuine (they were recorded from real runs under the
/// same key registry), which is exactly what the paper's adversary is
/// allowed: reusing signatures it has seen, never forging new ones.
#[derive(Debug)]
pub struct ReplayActor<P> {
    /// phase → list of (target, payload).
    script: BTreeMap<usize, Vec<(ProcessId, P)>>,
}

impl<P: Payload> ReplayActor<P> {
    /// Creates the actor from an explicit script.
    pub fn new(script: BTreeMap<usize, Vec<(ProcessId, P)>>) -> Self {
        ReplayActor { script }
    }

    /// Total scripted sends (diagnostics).
    pub fn scripted_sends(&self) -> usize {
        self.script.values().map(Vec::len).sum()
    }
}

impl<P: Payload> Actor<P> for ReplayActor<P> {
    fn step(&mut self, phase: usize, _inbox: &[Envelope<P>], out: &mut Outbox<P>) {
        if let Some(sends) = self.script.get(&phase) {
            for (to, payload) in sends {
                out.send(*to, payload.clone());
            }
        }
    }
    fn decision(&self) -> Option<Value> {
        None
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Extracts `sender`'s outgoing traffic from a trace as a replay script.
pub fn script_from_trace<P: Clone>(
    trace: &Trace<P>,
    sender: ProcessId,
) -> BTreeMap<usize, Vec<(ProcessId, P)>> {
    let mut script: BTreeMap<usize, Vec<(ProcessId, P)>> = BTreeMap::new();
    for (i, phase) in trace.phases.iter().enumerate() {
        for env in &phase.envelopes {
            if env.from == sender {
                script
                    .entry(i + 1)
                    .or_default()
                    .push((env.to, env.payload.clone()));
            }
        }
    }
    script
}

/// The Theorem 1 split-world script for coalition member `member`:
/// toward `victim` replay the `toward_victim` history, toward everyone
/// else replay the `toward_rest` history.
pub fn split_script<P: Clone>(
    toward_victim: &Trace<P>,
    toward_rest: &Trace<P>,
    member: ProcessId,
    victim: ProcessId,
) -> BTreeMap<usize, Vec<(ProcessId, P)>> {
    let mut script: BTreeMap<usize, Vec<(ProcessId, P)>> = BTreeMap::new();
    for (i, phase) in toward_victim.phases.iter().enumerate() {
        for env in &phase.envelopes {
            if env.from == member && env.to == victim {
                script
                    .entry(i + 1)
                    .or_default()
                    .push((env.to, env.payload.clone()));
            }
        }
    }
    for (i, phase) in toward_rest.phases.iter().enumerate() {
        for env in &phase.envelopes {
            if env.from == member && env.to != victim {
                script
                    .entry(i + 1)
                    .or_default()
                    .push((env.to, env.payload.clone()));
            }
        }
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::trace::PhaseTrace;

    fn env(from: u32, to: u32, v: u64) -> Envelope<Value> {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(to),
            payload: Value(v),
        }
    }

    fn trace(h: bool) -> Trace<Value> {
        let v = if h { 0 } else { 100 };
        Trace {
            phases: vec![
                PhaseTrace {
                    envelopes: vec![env(1, 2, v), env(1, 3, v + 1), env(0, 2, v + 2)],
                },
                PhaseTrace {
                    envelopes: vec![env(1, 2, v + 3)],
                },
            ],
        }
    }

    #[test]
    fn script_extraction() {
        let script = script_from_trace(&trace(true), ProcessId(1));
        assert_eq!(
            script[&1],
            vec![(ProcessId(2), Value(0)), (ProcessId(3), Value(1))]
        );
        assert_eq!(script[&2], vec![(ProcessId(2), Value(3))]);
        assert!(script_from_trace(&trace(true), ProcessId(9)).is_empty());
    }

    #[test]
    fn split_mixes_worlds() {
        // Victim p2 sees world H; p3 sees world G.
        let script = split_script(&trace(true), &trace(false), ProcessId(1), ProcessId(2));
        assert_eq!(
            script[&1],
            vec![(ProcessId(2), Value(0)), (ProcessId(3), Value(101))]
        );
        assert_eq!(script[&2], vec![(ProcessId(2), Value(3))]);
    }

    #[test]
    fn replay_actor_sends_script() {
        let mut actor = ReplayActor::new(script_from_trace(&trace(true), ProcessId(1)));
        assert_eq!(actor.scripted_sends(), 3);
        let mut out = Outbox::new(ProcessId(1));
        actor.step(1, &[], &mut out);
        assert_eq!(out.staged_len(), 2);
        let mut out = Outbox::new(ProcessId(1));
        actor.step(2, &[], &mut out);
        assert_eq!(out.staged_len(), 1);
        let mut out = Outbox::new(ProcessId(1));
        actor.step(3, &[], &mut out);
        assert_eq!(out.staged_len(), 0);
        assert_eq!(Actor::<Value>::decision(&actor), None);
        assert!(!Actor::<Value>::is_correct(&actor));
    }
}
