//! The paper's Section-2 machinery, executable: correctness rules `R_p`,
//! decision functions `F_p`, and a history generator.
//!
//! Section 2 defines an *agreement algorithm* as a pair of families
//!
//! * `R_p : ISH × PR → MSG` — given `p`'s individual subhistory of the
//!   first `k − 1` phases and a target `q`, the label (if any) of the
//!   edge `p → q` in phase `k`;
//! * `F_p : ISH → 2^V` — the decision function.
//!
//! and a processor is *correct at phase `k`* when its outgoing edges match
//! `R_p` applied to its own subhistory. [`generate`] runs this definition
//! literally: it grows a [`History`] phase by phase, applying `R_p` for
//! correct processors and arbitrary [`Behavior`] overrides for faulty
//! ones. The result is *the same object the lower-bound proofs
//! manipulate*, so splicing arguments can be checked against the formal
//! semantics rather than the simulator's.
//!
//! The [`FormalQuiet`] example algorithm doubles as a cross-validation
//! target: generating its fault-free history and replaying the simulator's
//! produces identical histories (see the tests).

use crate::history::{Edge, History};
use ba_crypto::{ProcessId, Value};
use std::collections::BTreeSet;

/// What a processor has observed: the paper's individual subhistory. For
/// the transmitter, `phase0` carries the private input edge.
#[derive(Clone, Debug, Default)]
pub struct Ish<P> {
    /// The phase-0 in-edge (transmitter only).
    pub phase0: Option<Value>,
    /// Per executed phase, the `(source, label)` pairs received.
    pub received: Vec<Vec<(ProcessId, P)>>,
}

/// An agreement algorithm in the paper's formal shape.
pub trait FormalAlgorithm<P> {
    /// The correctness rule `R_p`: the label of edge `p → q` in phase
    /// `phase`, given `p`'s subhistory of the earlier phases.
    fn rule(&self, p: ProcessId, ish: &Ish<P>, phase: usize, q: ProcessId) -> Option<P>;

    /// The decision function `F_p` (a subset of `V`; a singleton means
    /// `p` decided).
    fn decide(&self, p: ProcessId, ish: &Ish<P>) -> BTreeSet<Value>;
}

/// An arbitrary faulty behavior: same signature as the rule, but may
/// consult nothing or anything (it gets the faulty processor's own true
/// subhistory, which is the most an adversary can know locally).
pub type Behavior<P> = Box<dyn FnMut(&Ish<P>, usize, ProcessId) -> Option<P>>;

/// Output of [`generate`]: the full history plus each processor's final
/// decision set.
#[derive(Debug)]
pub struct Generated<P> {
    /// The generated history.
    pub history: History<P>,
    /// `F_p` applied to each processor's final subhistory.
    pub decisions: Vec<BTreeSet<Value>>,
}

/// Generates an `n`-processor, `phases`-phase history of `algo` with the
/// transmitter (processor 0) holding `value`, where the processors listed
/// in `faulty` follow their [`Behavior`] instead of `R_p`.
///
/// The resulting history is `t`-faulty for `t = faulty.len()` by
/// construction.
pub fn generate<P: Clone>(
    n: usize,
    phases: usize,
    algo: &impl FormalAlgorithm<P>,
    value: Value,
    mut faulty: Vec<(ProcessId, Behavior<P>)>,
) -> Generated<P> {
    let mut ish: Vec<Ish<P>> = (0..n)
        .map(|i| Ish {
            phase0: (i == 0).then_some(value),
            received: Vec::new(),
        })
        .collect();
    let mut history = History {
        phase0: value,
        phases: Vec::new(),
    };

    for phase in 1..=phases {
        let mut edges: Vec<Edge<P>> = Vec::new();
        for p in 0..n as u32 {
            let p = ProcessId(p);
            let fault_idx = faulty.iter().position(|(id, _)| *id == p);
            for q in 0..n as u32 {
                let q = ProcessId(q);
                if q == p {
                    continue;
                }
                let label = match fault_idx {
                    Some(idx) => (faulty[idx].1)(&ish[p.index()], phase, q),
                    None => algo.rule(p, &ish[p.index()], phase, q),
                };
                if let Some(label) = label {
                    edges.push(Edge {
                        from: p,
                        to: q,
                        label,
                    });
                }
            }
        }
        // Deliver: each processor's subhistory gains this phase's in-edges.
        for (i, slot) in ish.iter_mut().enumerate() {
            let p = ProcessId(i as u32);
            slot.received.push(
                edges
                    .iter()
                    .filter(|e| e.to == p)
                    .map(|e| (e.from, e.label.clone()))
                    .collect(),
            );
        }
        history.phases.push(edges);
    }

    let decisions = (0..n)
        .map(|i| algo.decide(ProcessId(i as u32), &ish[i]))
        .collect();
    Generated { history, decisions }
}

/// The quiet broadcast as a formal algorithm: phase 1, the transmitter
/// labels every out-edge with its value; everyone decides on the unique
/// value received (default `{0}`), the transmitter on its own input.
///
/// Deliberately *below* the Theorem 2 bound — the formal-model twin of
/// [`frugal::QuietBroadcast`](crate::frugal::QuietBroadcast).
#[derive(Debug, Default)]
pub struct FormalQuiet;

impl FormalAlgorithm<Value> for FormalQuiet {
    fn rule(&self, _p: ProcessId, ish: &Ish<Value>, phase: usize, _q: ProcessId) -> Option<Value> {
        if phase == 1 {
            ish.phase0
        } else {
            None
        }
    }

    fn decide(&self, _p: ProcessId, ish: &Ish<Value>) -> BTreeSet<Value> {
        if let Some(v) = ish.phase0 {
            return BTreeSet::from([v]);
        }
        let seen: BTreeSet<Value> = ish
            .received
            .iter()
            .flatten()
            .filter(|(from, _)| *from == ProcessId(0))
            .map(|(_, v)| *v)
            .collect();
        match seen.len() {
            1 => seen,
            _ => BTreeSet::from([Value::ZERO]),
        }
    }
}

/// Checks the two Byzantine Agreement conditions on a [`Generated`] run,
/// exactly as Section 2 states them over decision sets.
pub fn formal_agreement_holds(
    run: &Generated<Value>,
    faulty: &[ProcessId],
    transmitter_value: Value,
) -> bool {
    let correct: Vec<usize> = (0..run.decisions.len())
        .filter(|i| !faulty.contains(&ProcessId(*i as u32)))
        .collect();
    // (i) all correct decision sets are equal singletons.
    let Some(first) = correct.first() else {
        return true;
    };
    let d0 = &run.decisions[*first];
    if d0.len() != 1 || !correct.iter().all(|i| &run.decisions[*i] == d0) {
        return false;
    }
    // (ii) if the transmitter is correct they all decided its value.
    if !faulty.contains(&ProcessId(0)) {
        return d0.contains(&transmitter_value);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_quiet_generates_and_decides() {
        let run = generate(5, 1, &FormalQuiet, Value::ONE, Vec::new());
        assert_eq!(run.history.phases[0].len(), 4, "n-1 labeled edges");
        assert!(formal_agreement_holds(&run, &[], Value::ONE));
        for d in &run.decisions {
            assert_eq!(d, &BTreeSet::from([Value::ONE]));
        }
    }

    #[test]
    fn formal_theorem2_starvation() {
        // The transmitter is faulty: it follows R_p except toward the
        // victim (the exact H'' of the proof, now inside the formal
        // semantics).
        let victim = ProcessId(4);
        let behavior: Behavior<Value> = Box::new(move |ish, phase, q| {
            if q == victim {
                None
            } else if phase == 1 {
                ish.phase0
            } else {
                None
            }
        });
        let run = generate(
            5,
            1,
            &FormalQuiet,
            Value::ONE,
            vec![(ProcessId(0), behavior)],
        );
        assert!(!formal_agreement_holds(&run, &[ProcessId(0)], Value::ONE));
        assert_eq!(run.decisions[victim.index()], BTreeSet::from([Value::ZERO]));
        assert_eq!(run.decisions[1], BTreeSet::from([Value::ONE]));
    }

    #[test]
    fn formal_equivocation_is_expressible() {
        let behavior: Behavior<Value> = Box::new(|_ish, phase, q| {
            (phase == 1).then_some(if q.0 % 2 == 0 {
                Value::ZERO
            } else {
                Value::ONE
            })
        });
        let run = generate(
            6,
            1,
            &FormalQuiet,
            Value::ONE,
            vec![(ProcessId(0), behavior)],
        );
        // The quiet broadcast cannot heal equivocation: disagreement.
        assert!(!formal_agreement_holds(&run, &[ProcessId(0)], Value::ONE));
    }

    #[test]
    fn generated_history_matches_simulator_history() {
        // The formal generator and the ba-sim actor implementation of the
        // same protocol must produce identical histories.
        use crate::frugal::QuietBroadcast;
        use ba_crypto::{KeyRegistry, SchemeKind};
        use ba_sim::engine::Simulation;

        let n = 5;
        let formal = generate(n, 1, &FormalQuiet, Value::ONE, Vec::new());

        let registry = KeyRegistry::new(n, 1, SchemeKind::Fast);
        let actors: Vec<Box<dyn ba_sim::Actor<ba_crypto::Chain>>> = (0..n as u32)
            .map(|p| {
                Box::new(QuietBroadcast::new(
                    n,
                    registry.signer(ProcessId(p)),
                    registry.verifier(),
                    (p == 0).then_some(Value::ONE),
                )) as Box<dyn ba_sim::Actor<ba_crypto::Chain>>
            })
            .collect();
        let mut sim = Simulation::new(actors).with_trace();
        let outcome = sim.run(1);
        let simulated = History::from_trace(Value::ONE, &outcome.trace);

        // Same graph shape: identical (from, to) edge sets per phase
        // (labels differ in representation: Value vs signed Chain).
        assert_eq!(formal.history.phases.len(), simulated.phases.len());
        for (f_phase, s_phase) in formal.history.phases.iter().zip(&simulated.phases) {
            let f_edges: BTreeSet<(u32, u32)> =
                f_phase.iter().map(|e| (e.from.0, e.to.0)).collect();
            let s_edges: BTreeSet<(u32, u32)> =
                s_phase.iter().map(|e| (e.from.0, e.to.0)).collect();
            assert_eq!(f_edges, s_edges);
        }
    }

    #[test]
    fn decision_sets_can_be_non_singleton() {
        // An undecided processor (empty inbox, no default rule) would
        // surface as a non-singleton set; FormalQuiet defaults instead,
        // but the checker must notice a constructed non-singleton.
        let mut run = generate(4, 1, &FormalQuiet, Value::ONE, Vec::new());
        run.decisions[2] = BTreeSet::from([Value::ZERO, Value::ONE]);
        assert!(!formal_agreement_holds(&run, &[], Value::ONE));
    }
}
