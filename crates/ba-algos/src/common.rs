//! Shared vocabulary for the algorithm implementations.

use ba_crypto::{ProcessId, Value};
use ba_sim::engine::RunOutcome;
use ba_sim::{AgreementViolation, Payload, RunVerdict};

/// Chain/signature domain tags, one per protocol message space, so a
/// signature produced inside one algorithm can never be replayed into
/// another (see [`ba_crypto::Chain`]).
pub mod domains {
    /// Algorithm 1 "correct 1-message" chains.
    pub const ALG1: u32 = 1;
    /// Algorithm 2 increasing messages; also Algorithm 5's *valid
    /// messages*, which are exactly Algorithm 2 outputs extended by passive
    /// signatures.
    pub const ALG2: u32 = 2;
    /// Dolev–Strong relay chains.
    pub const DOLEV_STRONG: u32 = 3;
    /// Algorithm 4 grid items (per-item signatures).
    pub const GRID: u32 = 4;
    /// Algorithm 5 strings (`[F(p, x), x]` lists signed by one active).
    pub const ALG5_STRING: u32 = 5;
    /// Base for Algorithm 3 per-group collection chains; group `g` uses
    /// `ALG3_GROUP_BASE + g`.
    pub const ALG3_GROUP_BASE: u32 = 1_000;
}

/// A shared, post-run-readable slot per processor.
///
/// Actors deposit artifacts that are not decisions — Algorithm 2's
/// transferable proofs, Algorithm 5's valid messages — and runners read
/// them after the simulation finishes.
#[derive(Debug)]
pub struct Board<T> {
    slots: std::sync::Mutex<Vec<Option<T>>>,
}

impl<T: Clone> Board<T> {
    /// Creates a board with `n` empty slots.
    pub fn new(n: usize) -> std::sync::Arc<Self> {
        std::sync::Arc::new(Board {
            slots: std::sync::Mutex::new(vec![None; n]),
        })
    }

    /// Deposits `value` into `id`'s slot (replacing any previous deposit).
    pub fn post(&self, id: ProcessId, value: T) {
        self.slots.lock().expect("board lock")[id.index()] = Some(value);
    }

    /// Reads `id`'s slot.
    pub fn get(&self, id: ProcessId) -> Option<T> {
        self.slots.lock().expect("board lock")[id.index()].clone()
    }

    /// Snapshot of all slots.
    pub fn snapshot(&self) -> Vec<Option<T>> {
        self.slots.lock().expect("board lock").clone()
    }
}

/// Outcome of running one algorithm scenario: the raw simulation outcome
/// plus the checked Byzantine Agreement verdict.
#[derive(Debug)]
pub struct AlgoReport<P> {
    /// Raw engine outcome (decisions, metrics, optional trace).
    pub outcome: RunOutcome<P>,
    /// The checked agreement verdict.
    pub verdict: RunVerdict,
}

/// Convenience: checks the outcome and wraps it into an [`AlgoReport`].
///
/// # Errors
/// Propagates the [`AgreementViolation`] when the run broke agreement —
/// which legitimate scenarios never do; the lower-bound attack experiments
/// in `ba-model` intentionally trigger violations and handle the error.
pub fn into_report<P: Payload>(
    outcome: RunOutcome<P>,
    transmitter: ProcessId,
    sent: Value,
) -> Result<AlgoReport<P>, AgreementViolation> {
    let verdict = ba_sim::check_byzantine_agreement(&outcome, transmitter, sent)?;
    Ok(AlgoReport { outcome, verdict })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_are_pairwise_distinct() {
        let all = [
            domains::ALG1,
            domains::ALG2,
            domains::DOLEV_STRONG,
            domains::GRID,
            domains::ALG5_STRING,
            domains::ALG3_GROUP_BASE,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
