//! Algorithm 3 — the active/passive architecture for large `n`
//! (Lemma 1, Theorem 5 and the intro's phases/messages trade-off).
//!
//! The first `2t + 1` processors (including the transmitter, processor 0)
//! are *active*; the remaining `m = n − (2t+1)` are *passive*, divided into
//! `r = ⌈m/s⌉` groups of size `s` (the last group may be smaller). The
//! first member of each group is its *root* `c(1)`.
//!
//! * **Phases `1..=t+2`** — the actives run Algorithm 1.
//! * **Phase `t+3`** — each active signs and sends the agreed value to
//!   every root; a root sets `m(1)` to the unique value received from at
//!   least `t + 1` actives.
//! * **Phases `t+2j`, `t+2j+1`** (`2 ≤ j ≤ s`) — the root sends `m(j−1)`
//!   to `c(j)`; if `c(j)` received exactly one value from its root it signs
//!   and returns it, and the root upgrades to `m(j)`.
//! * **Phase `t+2s+2`** — each root sends `m(s)` to every active.
//! * **Phase `t+2s+3`** — each active sends the signed value directly to
//!   every group member whose signature was missing from the root's report.
//! * **Decision** — actives per Algorithm 1; roots on `m(1)`; members on a
//!   value received from `≥ t+1` actives in the last phase, else on the
//!   value their root sent them.
//!
//! Lemma 1: `t + 2s + 3` phases and at most `2n + 4tn/s + 3t²s` messages.
//! Theorem 5: `s = 4t` gives `O(n + t³)`. Choosing `s = ⌈t/α⌉` gives the
//! intro's trade-off of `t + 3 + 2⌈t/α⌉` phases and `O(αn)` messages.

use crate::algorithm1::{Algo1Actor, Algo1Params};
use crate::common::{domains, into_report, AlgoReport};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signer, Value, Verifier};
use ba_sim::actor::{Actor, Envelope, Outbox};
use ba_sim::engine::Simulation;
use ba_sim::AgreementViolation;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Domain for one-signature direct value messages (active → root and
/// active → member).
const DIRECT: u32 = domains::ALG3_GROUP_BASE - 1;

/// A passive group: its index, root and members in position order
/// (`members[0]` is the root `c(1)`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Group {
    /// Group index (0-based).
    pub index: usize,
    /// All members; `members[0]` is the root.
    pub members: Vec<ProcessId>,
}

impl Group {
    /// The root `c(1)`.
    pub fn root(&self) -> ProcessId {
        self.members[0]
    }

    /// The chain domain for this group's collection messages.
    pub fn domain(&self) -> u32 {
        domains::ALG3_GROUP_BASE + self.index as u32
    }

    /// The member at 1-based position `j` (`c(j)`).
    pub fn member(&self, j: usize) -> Option<ProcessId> {
        self.members.get(j - 1).copied()
    }

    /// 1-based position of `p` in this group.
    pub fn position(&self, p: ProcessId) -> Option<usize> {
        self.members.iter().position(|&q| q == p).map(|i| i + 1)
    }
}

/// Static parameters of an Algorithm 3 run.
#[derive(Debug)]
pub struct Alg3Params {
    /// Total processors.
    pub n: usize,
    /// Fault tolerance.
    pub t: usize,
    /// Nominal group size.
    pub s: usize,
    /// Verifier over the run registry.
    pub verifier: Verifier,
    /// Algorithm 1 parameters for the active prefix.
    pub alg1: Arc<Algo1Params>,
}

impl Alg3Params {
    /// Creates the parameter block.
    pub fn new(n: usize, t: usize, s: usize, verifier: Verifier) -> Self {
        assert!(t >= 1, "algorithm 3 needs t >= 1");
        assert!(s >= 1, "group size must be positive");
        assert!(
            n >= 2 * t + 2,
            "algorithm 3 needs passive processors (n >= 2t + 2)"
        );
        let alg1 = Arc::new(Algo1Params {
            t,
            verifier: verifier.clone(),
        });
        Alg3Params {
            n,
            t,
            s,
            verifier,
            alg1,
        }
    }

    /// Number of active processors (`2t + 1`).
    pub fn active_count(&self) -> usize {
        2 * self.t + 1
    }

    /// Whether `p` is active.
    pub fn is_active(&self, p: ProcessId) -> bool {
        p.index() < self.active_count()
    }

    /// Number of passive processors.
    pub fn passive_count(&self) -> usize {
        self.n - self.active_count()
    }

    /// The passive groups in index order.
    pub fn groups(&self) -> Vec<Group> {
        let first = self.active_count();
        let mut groups = Vec::new();
        let mut start = first;
        let mut index = 0;
        while start < self.n {
            let end = (start + self.s).min(self.n);
            groups.push(Group {
                index,
                members: (start..end).map(|i| ProcessId(i as u32)).collect(),
            });
            start = end;
            index += 1;
        }
        groups
    }

    /// The group containing passive `p`, with `p`'s 1-based position.
    pub fn group_of(&self, p: ProcessId) -> Option<(Group, usize)> {
        if self.is_active(p) || p.index() >= self.n {
            return None;
        }
        let offset = p.index() - self.active_count();
        let gi = offset / self.s;
        let groups = self.groups();
        let group = groups.get(gi)?.clone();
        let pos = group.position(p)?;
        Some((group, pos))
    }

    /// Total phases of the schedule.
    pub fn phases(&self) -> usize {
        self.t + 2 * self.s + 3
    }

    /// Whether `chain` is a valid one-signature direct value message from
    /// an active processor.
    pub fn is_direct(&self, chain: &Chain) -> bool {
        chain.domain() == DIRECT
            && chain.len() == 1
            && chain.first_signer().is_some_and(|s| self.is_active(s))
            && chain.verify(&self.verifier).is_ok()
    }

    /// Whether `chain` is a well-formed collection chain for `group`:
    /// signatures (possibly none) of members at positions `2..` in
    /// increasing position order.
    pub fn is_collection_chain(&self, chain: &Chain, group: &Group) -> bool {
        if chain.domain() != group.domain() {
            return false;
        }
        if !chain.is_empty() && chain.verify(&self.verifier).is_err() {
            return false;
        }
        let mut prev = 1usize;
        for signer in chain.signers() {
            match group.position(signer) {
                Some(pos) if pos > prev => prev = pos,
                _ => return false,
            }
        }
        true
    }
}

/// An active processor: Algorithm 1 participant, then group supervisor.
#[derive(Debug)]
pub struct Alg3Active {
    params: Arc<Alg3Params>,
    signer: Signer,
    algo1: Algo1Actor,
    committed: Option<Value>,
    /// Reports received from roots at the penultimate phase, by group.
    reports: BTreeMap<usize, Vec<Chain>>,
}

impl Alg3Active {
    /// Creates the active actor (`own_value` only for the transmitter).
    pub fn new(
        params: Arc<Alg3Params>,
        me: ProcessId,
        signer: Signer,
        own_value: Option<Value>,
    ) -> Self {
        let algo1 = Algo1Actor::new(params.alg1.clone(), me, signer.clone(), own_value);
        Alg3Active {
            params,
            signer,
            algo1,
            committed: None,
            reports: BTreeMap::new(),
        }
    }
}

impl Actor<Chain> for Alg3Active {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        let t = self.params.t;

        if phase <= t + 2 {
            self.algo1.step(phase, inbox, out);
            return;
        }

        if phase == t + 3 {
            // Commit (the inbox still carries phase-(t+2) Algorithm 1
            // traffic), then inform every root.
            self.algo1.finalize(inbox);
            self.committed = self.algo1.decision();
            let v = self.committed.expect("algorithm 1 always decides");
            let mut chain = Chain::new(DIRECT, v);
            chain.sign_and_append(&self.signer);
            for group in self.params.groups() {
                out.send(group.root(), chain.clone());
            }
            return;
        }

        if phase == self.params.phases() {
            // The inbox holds the roots' reports (sent at t+2s+2); cover
            // every member whose signature is missing.
            let v = self.committed.expect("committed at t+3");
            let groups = self.params.groups();
            for env in inbox {
                if let Some((group, 1)) = groups
                    .iter()
                    .find_map(|g| g.position(env.from).map(|pos| (g, pos)))
                {
                    if self.params.is_collection_chain(&env.payload, group) {
                        self.reports
                            .entry(group.index)
                            .or_default()
                            .push(env.payload.clone());
                    }
                }
            }
            let mut direct = Chain::new(DIRECT, v);
            direct.sign_and_append(&self.signer);
            for group in &groups {
                let covered: BTreeSet<ProcessId> = self
                    .reports
                    .get(&group.index)
                    .map(|reports| {
                        reports
                            .iter()
                            .filter(|c| c.value() == v)
                            .flat_map(|c| c.signers())
                            .collect()
                    })
                    .unwrap_or_default();
                for &member in &group.members[1..] {
                    if !covered.contains(&member) {
                        out.send(member, direct.clone());
                    }
                }
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.committed.or_else(|| self.algo1.decision())
    }
}

/// A group root: collects member signatures sequentially, then reports.
#[derive(Debug)]
pub struct Alg3Root {
    params: Arc<Alg3Params>,
    group: Group,
    /// The current collection chain `m(j)`.
    m: Option<Chain>,
    /// Injected wrong value (adversarial roots only).
    lie: Option<Value>,
}

impl Alg3Root {
    /// Creates an honest root for `group`.
    pub fn new(params: Arc<Alg3Params>, group: Group) -> Self {
        Alg3Root {
            params,
            group,
            m: None,
            lie: None,
        }
    }

    /// Creates a root that ignores the active quorum and pushes `wrong`
    /// to its members (a faulty root).
    pub fn new_lying(params: Arc<Alg3Params>, group: Group, wrong: Value) -> Self {
        Alg3Root {
            params,
            group,
            m: None,
            lie: Some(wrong),
        }
    }
}

impl Actor<Chain> for Alg3Root {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        let t = self.params.t;
        let s_g = self.group.members.len();

        if phase == t + 4 {
            // Active value messages (sent at t+3): take the unique value
            // with >= t+1 distinct active signers.
            let mut by_value: BTreeMap<Value, BTreeSet<ProcessId>> = BTreeMap::new();
            for env in inbox {
                if self.params.is_direct(&env.payload)
                    && env.payload.first_signer() == Some(env.from)
                {
                    by_value
                        .entry(env.payload.value())
                        .or_default()
                        .insert(env.from);
                }
            }
            let quorum: Vec<Value> = by_value
                .iter()
                .filter(|(_, signers)| signers.len() > t)
                .map(|(&v, _)| v)
                .collect();
            if let [v] = quorum[..] {
                self.m = Some(Chain::new(self.group.domain(), v));
            }
            if let Some(wrong) = self.lie {
                self.m = Some(Chain::new(self.group.domain(), wrong));
            }
        } else if phase >= t + 6 && phase <= t + 2 * s_g + 2 && (phase - t).is_multiple_of(2) {
            // Phase t+2j: c(j-1)'s signed return (sent at t+2(j-1)+1) is in
            // the inbox; upgrade m(j-2) to m(j-1) if it checks out.
            let j = (phase - t) / 2;
            if let (Some(m), Some(prev_member)) = (&self.m, self.group.member(j - 1)) {
                for env in inbox {
                    let ret = &env.payload;
                    if env.from == prev_member
                        && ret.len() == m.len() + 1
                        && ret.last_signer() == Some(prev_member)
                        && ret.signatures()[..m.len()] == *m.signatures()
                        && ret.value() == m.value()
                        && ret.domain() == m.domain()
                        && ret.verify(&self.params.verifier).is_ok()
                    {
                        self.m = Some(ret.clone());
                        break;
                    }
                }
            }
        }

        // Sends: m(j-1) to c(j) at phase t+2j (j = 2..=s_g).
        if phase >= t + 4 && phase <= t + 2 * s_g && (phase - t).is_multiple_of(2) {
            let j = (phase - t) / 2;
            if let (Some(m), Some(target)) = (&self.m, self.group.member(j)) {
                out.send(target, m.clone());
            }
        }

        // Report m(s) to every active at phase t+2s+2 (global s; smaller
        // groups finished collecting earlier and just report).
        if phase == t + 2 * self.params.s + 2 {
            if let Some(m) = &self.m {
                out.broadcast(
                    (0..self.params.active_count() as u32).map(ProcessId),
                    m.clone(),
                );
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.m.as_ref().map(|m| m.value())
    }

    fn is_correct(&self) -> bool {
        self.lie.is_none()
    }
}

/// A passive group member `c(j)` with `j ≥ 2`.
#[derive(Debug)]
pub struct Alg3Member {
    params: Arc<Alg3Params>,
    group: Group,
    /// My 1-based position `j`.
    pos: usize,
    signer: Signer,
    /// Value received from the root (the fallback decision).
    from_root: Option<Value>,
    /// Value received from `>= t+1` actives at the last phase.
    from_actives: Option<Value>,
    phase: usize,
}

impl Alg3Member {
    /// Creates the member at position `pos` (≥ 2) of `group`.
    pub fn new(params: Arc<Alg3Params>, group: Group, pos: usize, signer: Signer) -> Self {
        assert!(pos >= 2, "position 1 is the root");
        Alg3Member {
            params,
            group,
            pos,
            signer,
            from_root: None,
            from_actives: None,
            phase: 0,
        }
    }

    fn absorb_direct(&mut self, inbox: &[Envelope<Chain>]) {
        let mut by_value: BTreeMap<Value, BTreeSet<ProcessId>> = BTreeMap::new();
        for env in inbox {
            if self.params.is_direct(&env.payload) && env.payload.first_signer() == Some(env.from) {
                by_value
                    .entry(env.payload.value())
                    .or_default()
                    .insert(env.from);
            }
        }
        for (v, signers) in by_value {
            if signers.len() > self.params.t {
                self.from_actives = Some(v);
            }
        }
    }
}

impl Actor<Chain> for Alg3Member {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        self.phase = phase;
        let t = self.params.t;
        // The root's m(j-1) (sent at t+2j) arrives at phase t+2j+1.
        if phase == t + 2 * self.pos + 1 {
            let root = self.group.root();
            let candidates: Vec<&Chain> = inbox
                .iter()
                .filter(|env| env.from == root)
                .map(|env| &env.payload)
                .filter(|c| {
                    self.params.is_collection_chain(c, &self.group)
                        && c.signers()
                            .all(|s| self.group.position(s).is_some_and(|p| p < self.pos))
                })
                .collect();
            // "Exactly one value from its root": sign and return.
            if let [only] = candidates[..] {
                self.from_root = Some(only.value());
                let mut signed = only.clone();
                signed.sign_and_append(&self.signer);
                out.send(root, signed);
            }
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
        if self.phase == self.params.phases() {
            self.absorb_direct(inbox);
        }
    }

    fn decision(&self) -> Option<Value> {
        self.from_actives.or(self.from_root)
    }
}

/// Fault scenarios for [`run`].
#[derive(Debug, Default)]
pub enum Alg3Fault {
    /// All correct.
    #[default]
    None,
    /// The roots of the given groups are silent.
    SilentRoots {
        /// Group indices.
        groups: Vec<usize>,
    },
    /// The roots of the given groups push a wrong value to their members.
    LyingRoots {
        /// Group indices.
        groups: Vec<usize>,
        /// The pushed value.
        wrong: Value,
    },
    /// The roots of the given groups skip every even-position member.
    SelectiveRoots {
        /// Group indices.
        groups: Vec<usize>,
    },
    /// The given passive members never sign (silent).
    SilentMembers {
        /// Member ids.
        set: Vec<ProcessId>,
    },
    /// The given non-transmitter actives are silent.
    SilentActives {
        /// Active ids.
        set: Vec<ProcessId>,
    },
}

/// Options for [`run`]. Construct with
/// [`Alg3Options::new`]/[`default`](Alg3Options::default) and the
/// `with_*` builders (the same convention as `SvcConfig`, `NetConfig`,
/// `DsOptions` and `ExtOptions`).
///
/// Defaults: no fault, seed 0, fast scheme, sequential stepping,
/// per-delivery verification.
#[derive(Debug, Default)]
pub struct Alg3Options {
    /// Fault scenario.
    pub fault: Alg3Fault,
    /// Registry seed.
    pub seed: u64,
    /// Signature scheme.
    pub scheme: SchemeKind,
    /// Worker threads for intra-phase stepping (`0`/`1` = sequential).
    /// Results are byte-identical for any value — see
    /// [`Simulation::with_threads`].
    pub threads: usize,
    /// Verify each unique signature chain once at the phase barrier
    /// instead of per delivery — see
    /// [`Simulation::with_batched_verification`]. Decisions and message
    /// counts are unchanged; the crypto work counters honestly shrink.
    pub batch_verify: bool,
}

impl Alg3Options {
    /// The default options; chain `with_*` builders to customize.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the fault scenario.
    pub fn with_fault(mut self, fault: Alg3Fault) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the registry seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the signature scheme.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the worker-thread count for intra-phase stepping.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables barrier-batched signature verification.
    pub fn with_batch_verify(mut self, batch_verify: bool) -> Self {
        self.batch_verify = batch_verify;
        self
    }
}

/// Builds and runs an Algorithm 3 scenario.
///
/// ```
/// use ba_algos::algorithm3::{run, Alg3Options};
/// use ba_crypto::Value;
///
/// let r = run(20, 1, 4, Value::ONE, Alg3Options::default())?;
/// assert_eq!(r.verdict.agreed, Some(Value::ONE));
/// # Ok::<(), ba_sim::AgreementViolation>(())
/// ```
///
/// # Errors
/// Propagates any [`AgreementViolation`].
///
/// # Panics
/// Panics on invalid parameters (`t == 0`, `n < 2t + 2`, oversized fault
/// sets, non-binary value).
pub fn run(
    n: usize,
    t: usize,
    s: usize,
    value: Value,
    options: Alg3Options,
) -> Result<AlgoReport<Chain>, AgreementViolation> {
    assert!(
        value == Value::ZERO || value == Value::ONE,
        "algorithm 3 is binary"
    );
    let registry = KeyRegistry::new(n, options.seed, options.scheme);
    let params = Arc::new(Alg3Params::new(n, t, s, registry.verifier()));

    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(n);
    let mut fault_count = 0usize;

    for i in 0..n as u32 {
        let id = ProcessId(i);
        let actor: Box<dyn Actor<Chain>> = if params.is_active(id) {
            let silent = matches!(
                &options.fault,
                Alg3Fault::SilentActives { set } if set.contains(&id)
            );
            if silent {
                assert!(
                    id != ProcessId(0),
                    "use algorithm1 scenarios for transmitter faults"
                );
                fault_count += 1;
                Box::new(ba_sim::adversary::Silent)
            } else {
                Box::new(Alg3Active::new(
                    params.clone(),
                    id,
                    registry.signer(id),
                    if i == 0 { Some(value) } else { None },
                ))
            }
        } else {
            let (group, pos) = params.group_of(id).expect("passive processor has a group");
            if pos == 1 {
                match &options.fault {
                    Alg3Fault::SilentRoots { groups } if groups.contains(&group.index) => {
                        fault_count += 1;
                        Box::new(ba_sim::adversary::Silent)
                    }
                    Alg3Fault::LyingRoots { groups, wrong } if groups.contains(&group.index) => {
                        fault_count += 1;
                        Box::new(Alg3Root::new_lying(params.clone(), group, *wrong))
                    }
                    Alg3Fault::SelectiveRoots { groups } if groups.contains(&group.index) => {
                        fault_count += 1;
                        let skipped: Vec<ProcessId> = group
                            .members
                            .iter()
                            .enumerate()
                            .filter(|(idx, _)| idx % 2 == 1 && *idx > 0)
                            .map(|(_, &m)| m)
                            .collect();
                        let inner = Alg3Root::new(params.clone(), group);
                        Box::new(ba_sim::adversary::OmitTo::new(inner, skipped))
                    }
                    _ => Box::new(Alg3Root::new(params.clone(), group)),
                }
            } else {
                let silent = matches!(
                    &options.fault,
                    Alg3Fault::SilentMembers { set } if set.contains(&id)
                );
                if silent {
                    fault_count += 1;
                    Box::new(ba_sim::adversary::Silent)
                } else {
                    Box::new(Alg3Member::new(
                        params.clone(),
                        group,
                        pos,
                        registry.signer(id),
                    ))
                }
            }
        };
        actors.push(actor);
    }
    assert!(fault_count <= t, "fault plan exceeds t");

    let mut sim = Simulation::new(actors)
        .with_threads(options.threads)
        .with_registry(&registry)
        .with_batched_verification(options.batch_verify);
    let outcome = sim.run(params.phases());
    into_report(outcome, ProcessId(0), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn group_layout() {
        let registry = KeyRegistry::new(16, 0, SchemeKind::Fast);
        let params = Alg3Params::new(16, 2, 4, registry.verifier());
        // Actives 0..=4; passives 5..=15 in groups of 4: [5-8], [9-12], [13-15].
        let groups = params.groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].root(), ProcessId(5));
        assert_eq!(groups[1].root(), ProcessId(9));
        assert_eq!(groups[2].members.len(), 3);
        let (g, pos) = params.group_of(ProcessId(10)).unwrap();
        assert_eq!(g.index, 1);
        assert_eq!(pos, 2);
        assert!(params.group_of(ProcessId(3)).is_none());
        assert_eq!(groups[0].member(4), Some(ProcessId(8)));
        assert_eq!(groups[0].member(5), None);
    }

    #[test]
    fn fault_free_agrees_within_bounds() {
        for (n, t, s) in [(10, 1, 2), (16, 2, 4), (30, 2, 5), (41, 3, 8)] {
            for v in [Value::ZERO, Value::ONE] {
                let r = run(n, t, s, v, Alg3Options::default()).unwrap();
                assert_eq!(r.verdict.agreed, Some(v), "n={n} t={t} s={s}");
                assert_eq!(r.verdict.correct_count, n);
                let msgs = r.outcome.metrics.messages_by_correct;
                let bound = bounds::alg3_max_messages(n as u64, t as u64, s as u64);
                assert!(msgs <= bound, "n={n} t={t} s={s}: {msgs} > {bound}");
                assert_eq!(
                    r.outcome.metrics.phases as u64,
                    bounds::alg3_phases(t as u64, s as u64)
                );
            }
        }
    }

    #[test]
    fn silent_roots_are_covered_by_actives() {
        let (n, t, s) = (20, 2, 4);
        let r = run(
            n,
            t,
            s,
            Value::ONE,
            Alg3Options {
                fault: Alg3Fault::SilentRoots { groups: vec![0, 2] },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn lying_roots_are_overridden_by_active_quorum() {
        let (n, t, s) = (20, 2, 4);
        let r = run(
            n,
            t,
            s,
            Value::ONE,
            Alg3Options {
                fault: Alg3Fault::LyingRoots {
                    groups: vec![1],
                    wrong: Value::ZERO,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn selective_roots_leave_no_member_behind() {
        let (n, t, s) = (24, 2, 5);
        let r = run(
            n,
            t,
            s,
            Value::ONE,
            Alg3Options {
                fault: Alg3Fault::SelectiveRoots { groups: vec![0, 1] },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn silent_members_only_cost_extra_messages() {
        let (n, t, s) = (16, 2, 4);
        let clean = run(n, t, s, Value::ONE, Alg3Options::default()).unwrap();
        let r = run(
            n,
            t,
            s,
            Value::ONE,
            Alg3Options {
                fault: Alg3Fault::SilentMembers {
                    set: vec![ProcessId(6), ProcessId(10)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
        // Actives cover the silent members directly in the last phase.
        assert!(r.outcome.metrics.messages_by_correct > clean.outcome.metrics.messages_by_correct);
    }

    #[test]
    fn silent_actives_tolerated() {
        let (n, t, s) = (20, 2, 4);
        let r = run(
            n,
            t,
            s,
            Value::ONE,
            Alg3Options {
                fault: Alg3Fault::SilentActives {
                    set: vec![ProcessId(1), ProcessId(3)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn single_member_groups_work() {
        // s = 1: every passive is a root; no collection loop at all.
        let (n, t, s) = (12, 2, 1);
        let r = run(n, t, s, Value::ONE, Alg3Options::default()).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn theorem5_choice_stays_linear_in_n() {
        // s = 4t: message count within 2n + 4tn/s + 3t²s = O(n + t³).
        let t = 2;
        let s = 4 * t;
        for n in [30usize, 60, 120] {
            let r = run(n, t, s, Value::ONE, Alg3Options::default()).unwrap();
            let msgs = r.outcome.metrics.messages_by_correct;
            assert!(msgs <= bounds::thm5_envelope(n as u64, t as u64), "n={n}");
        }
    }

    #[test]
    fn collection_chain_validation() {
        let registry = KeyRegistry::new(12, 1, SchemeKind::Hmac);
        let params = Alg3Params::new(12, 2, 4, registry.verifier());
        let group = params.groups()[0].clone(); // members 5,6,7,8
        let mut chain = Chain::new(group.domain(), Value::ONE);
        assert!(params.is_collection_chain(&chain, &group), "bare value ok");
        chain.sign_and_append(&registry.signer(ProcessId(6)));
        chain.sign_and_append(&registry.signer(ProcessId(8)));
        assert!(
            params.is_collection_chain(&chain, &group),
            "increasing positions ok"
        );
        // Wrong domain.
        let other = params.groups()[1].clone();
        assert!(!params.is_collection_chain(&chain, &other));
        // Out-of-order positions.
        let mut bad = Chain::new(group.domain(), Value::ONE);
        bad.sign_and_append(&registry.signer(ProcessId(8)));
        bad.sign_and_append(&registry.signer(ProcessId(6)));
        assert!(!params.is_collection_chain(&bad, &group));
        // Root signature is not a member signature (position 1 not > 1).
        let mut rooted = Chain::new(group.domain(), Value::ONE);
        rooted.sign_and_append(&registry.signer(ProcessId(5)));
        assert!(!params.is_collection_chain(&rooted, &group));
        // Non-member signature.
        let mut alien = Chain::new(group.domain(), Value::ONE);
        alien.sign_and_append(&registry.signer(ProcessId(2)));
        assert!(!params.is_collection_chain(&alien, &group));
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_agreement_under_random_root_faults() {
            run_cases(12, 0x69, |gen| {
                let t = gen.usize_in(1, 3);
                let s = gen.usize_in(1, 6);
                let extra_groups = gen.usize_in(1, 5);
                let seed = gen.u64();
                let lying = gen.bool();
                let which = gen.u32() as u8;
                let n = 2 * t + 1 + s * extra_groups;
                let bad_group = (which as usize) % extra_groups;
                let fault = if lying {
                    Alg3Fault::LyingRoots {
                        groups: vec![bad_group],
                        wrong: Value::ZERO,
                    }
                } else {
                    Alg3Fault::SilentRoots {
                        groups: vec![bad_group],
                    }
                };
                let r = run(
                    n,
                    t,
                    s,
                    Value::ONE,
                    Alg3Options {
                        fault,
                        seed,
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(r.verdict.agreed, Some(Value::ONE));
                assert!(
                    r.outcome.metrics.messages_by_correct
                        <= bounds::alg3_max_messages(n as u64, t as u64, s as u64)
                );
            });
        }
    }
}
