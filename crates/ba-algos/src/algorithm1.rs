//! Algorithm 1 — the bipartite signature-chain algorithm (Theorem 3).
//!
//! Setting: `n = 2t + 1` processors; the transmitter `q` is processor `0`;
//! the remaining `2t` processors are partitioned into sides `A`
//! (`1..=t`) and `B` (`t+1..=2t`). Let `G` be the complete bipartite graph
//! on `A × B` plus edges from `q` to everyone.
//!
//! * **Phase 1** — the transmitter signs and sends its value to everyone.
//! * **Phases 2..=t+2** — when a processor in `A` (resp. `B`) receives a
//!   *correct 1-message* for the first time, it signs it and sends it to
//!   everybody in `B` (resp. `A`).
//! * **Decision** — value `1` iff a correct 1-message arrived by phase
//!   `t + 2`, else `0`.
//!
//! A message received by `p` at phase `k` is a *correct 1-message* if it is
//! the value `1` with signatures forming a simple path of length `k` from
//! `q` to `p` in `G` (so: signed first by `q`, alternating sides afterward,
//! no repeats, `p` itself not on the path, ending at a neighbour of `p`).
//!
//! Bounds (Theorem 3): `t + 2` phases and at most `2t² + 2t` messages.
//!
//! The module also ships the adversaries that drive the algorithm's
//! interesting executions: an equivocating transmitter and a
//! chain-withholding coalition that releases a correct 1-message as late as
//! possible.

use crate::common::{domains, into_report, AlgoReport};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signer, Value, Verifier};
use ba_sim::actor::{Actor, Envelope, Outbox};
use ba_sim::engine::Simulation;
use ba_sim::AgreementViolation;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which side of the bipartite graph a processor belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The transmitter `q` (processor 0).
    Transmitter,
    /// Side `A`: processors `1..=t`.
    A,
    /// Side `B`: processors `t+1..=2t`.
    B,
}

/// Returns the side of `p` in the `n = 2t + 1` layout.
pub fn side(p: ProcessId, t: usize) -> Side {
    let i = p.index();
    if i == 0 {
        Side::Transmitter
    } else if i <= t {
        Side::A
    } else {
        Side::B
    }
}

/// Static parameters shared by all actors of one Algorithm 1 run.
#[derive(Debug)]
pub struct Algo1Params {
    /// Fault tolerance; `n = 2t + 1`.
    pub t: usize,
    /// Verifier over the run's key registry.
    pub verifier: Verifier,
}

impl Algo1Params {
    /// Number of processors (`2t + 1`).
    pub fn n(&self) -> usize {
        2 * self.t + 1
    }

    /// All processors on the opposite side of `p` (for the transmitter:
    /// everyone else).
    pub fn relay_targets(&self, p: ProcessId) -> Vec<ProcessId> {
        match side(p, self.t) {
            Side::Transmitter => (1..self.n() as u32).map(ProcessId).collect(),
            Side::A => (self.t as u32 + 1..self.n() as u32)
                .map(ProcessId)
                .collect(),
            Side::B => (1..=self.t as u32).map(ProcessId).collect(),
        }
    }

    /// Whether `chain`, received by `me` as a phase-`k` message, is a
    /// correct 1-message per the definition above.
    pub fn is_correct_one_message(&self, chain: &Chain, k: usize, me: ProcessId) -> bool {
        if chain.domain() != domains::ALG1
            || chain.value() != Value::ONE
            || chain.len() != k
            || chain.verify_simple_path(&self.verifier).is_err()
        {
            return false;
        }
        let signers: Vec<ProcessId> = chain.signers().collect();
        if signers[0] != ProcessId(0) {
            return false;
        }
        // No signer may be out of range, be the transmitter again, or be me.
        for &s in &signers[1..] {
            if s.index() >= self.n() || s == ProcessId(0) || s == me {
                return false;
            }
        }
        if signers.contains(&me) {
            return false;
        }
        // Consecutive non-transmitter signers must alternate sides.
        for w in signers[1..].windows(2) {
            if side(w[0], self.t) == side(w[1], self.t) {
                return false;
            }
        }
        // The last signer must be adjacent to me in G.
        let last = *signers.last().expect("chain verified non-empty");
        last == ProcessId(0) || side(last, self.t) != side(me, self.t)
    }
}

/// An honest Algorithm 1 processor (transmitter or relay).
#[derive(Debug)]
pub struct Algo1Actor {
    params: Arc<Algo1Params>,
    me: ProcessId,
    signer: Signer,
    /// `Some` iff this actor is the transmitter.
    own_value: Option<Value>,
    /// First correct 1-message received, if any.
    got_one: Option<Chain>,
    /// Last phase this actor stepped (finalize validates against it).
    phase: usize,
}

impl Algo1Actor {
    /// Creates the actor for `me`; `own_value` is `Some` for the
    /// transmitter only.
    pub fn new(
        params: Arc<Algo1Params>,
        me: ProcessId,
        signer: Signer,
        own_value: Option<Value>,
    ) -> Self {
        debug_assert_eq!(signer.id(), me);
        Algo1Actor {
            params,
            me,
            signer,
            own_value,
            got_one: None,
            phase: 0,
        }
    }

    /// Scans `inbox` (phase `k` receipts) for a first correct 1-message.
    fn absorb(&mut self, inbox: &[Envelope<Chain>], k: usize) {
        if self.got_one.is_some() {
            return;
        }
        for env in inbox {
            // The path must actually have been relayed by the sender: the
            // chain's last signer is the sender itself.
            if env.payload.last_signer() == Some(env.from)
                && self.params.is_correct_one_message(&env.payload, k, self.me)
            {
                self.got_one = Some(env.payload.clone());
                return;
            }
        }
    }

    /// The first correct 1-message this processor accepted, if any.
    pub fn accepted_chain(&self) -> Option<&Chain> {
        self.got_one.as_ref()
    }
}

impl Actor<Chain> for Algo1Actor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        self.phase = phase;
        let t = self.params.t;

        if phase == 1 {
            if let Some(v) = self.own_value {
                // Transmitter: sign and send the value to everyone.
                let mut chain = Chain::new(domains::ALG1, v);
                chain.sign_and_append(&self.signer);
                out.broadcast(self.params.relay_targets(self.me), chain);
            }
            return;
        }

        if self.own_value.is_some() {
            return; // The transmitter only acts in phase 1.
        }

        // Inbox holds phase-(k-1) messages: correct 1-message chains of
        // length k-1.
        let had_one = self.got_one.is_some();
        self.absorb(inbox, phase - 1);

        // Relay on first receipt, during phases 2..=t+2.
        if !had_one && self.got_one.is_some() && phase <= t + 2 {
            let mut relay = self.got_one.clone().expect("just set");
            relay.sign_and_append(&self.signer);
            out.broadcast(self.params.relay_targets(self.me), relay);
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
        if self.own_value.is_none() {
            self.absorb(inbox, self.phase);
        }
    }

    fn decision(&self) -> Option<Value> {
        if let Some(v) = self.own_value {
            return Some(v);
        }
        Some(if self.got_one.is_some() {
            Value::ONE
        } else {
            Value::ZERO
        })
    }
}

/// Adversaries for Algorithm 1.
pub mod adversaries {
    use super::*;

    /// A faulty transmitter that sends a signed `1` to `ones`, a signed `0`
    /// to `zeros`, and nothing to anyone else.
    #[derive(Debug)]
    pub struct EquivocatingTransmitter {
        signer: Signer,
        ones: BTreeSet<ProcessId>,
        zeros: BTreeSet<ProcessId>,
    }

    impl EquivocatingTransmitter {
        /// Creates the adversary; `signer` must be the transmitter's.
        pub fn new(
            signer: Signer,
            ones: impl IntoIterator<Item = ProcessId>,
            zeros: impl IntoIterator<Item = ProcessId>,
        ) -> Self {
            EquivocatingTransmitter {
                signer,
                ones: ones.into_iter().collect(),
                zeros: zeros.into_iter().collect(),
            }
        }
    }

    impl Actor<Chain> for EquivocatingTransmitter {
        fn step(&mut self, phase: usize, _inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
            if phase != 1 {
                return;
            }
            let mut one = Chain::new(domains::ALG1, Value::ONE);
            one.sign_and_append(&self.signer);
            for &p in &self.ones {
                out.send(p, one.clone());
            }
            let mut zero = Chain::new(domains::ALG1, Value::ZERO);
            zero.sign_and_append(&self.signer);
            for &p in &self.zeros {
                out.send(p, zero.clone());
            }
        }
        fn decision(&self) -> Option<Value> {
            None
        }
        fn is_correct(&self) -> bool {
            false
        }
    }

    /// A coalition member in the chain-withholding attack: the faulty
    /// transmitter starts a 1-chain that crawls through the coalition
    /// (one private hop per phase) and is released to all correct
    /// processors of the appropriate side only at `release_phase` — the
    /// latest-possible honest-looking delivery, exercising the algorithm's
    /// tail phases.
    #[derive(Debug)]
    pub struct WithholdingMember {
        params: Arc<Algo1Params>,
        signer: Signer,
        /// Coalition in release order; `coalition[0]` is the transmitter.
        coalition: Vec<ProcessId>,
        /// My position in the coalition.
        position: usize,
        release_phase: usize,
        chain: Option<Chain>,
    }

    impl WithholdingMember {
        /// Creates coalition member `position` (0 = transmitter). The
        /// coalition must alternate sides so the private chain stays a
        /// valid path in `G`.
        pub fn new(
            params: Arc<Algo1Params>,
            signer: Signer,
            coalition: Vec<ProcessId>,
            position: usize,
            release_phase: usize,
        ) -> Self {
            WithholdingMember {
                params,
                signer,
                coalition,
                position,
                release_phase,
                chain: None,
            }
        }
    }

    impl Actor<Chain> for WithholdingMember {
        fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
            // Receive the private chain from the previous coalition member.
            for env in inbox {
                if self.chain.is_none() && env.payload.value() == Value::ONE {
                    self.chain = Some(env.payload.clone());
                }
            }

            if self.position == 0 && phase == 1 {
                // Transmitter: start the chain, sending only to the next
                // coalition member (or release immediately if alone).
                let mut chain = Chain::new(domains::ALG1, Value::ONE);
                chain.sign_and_append(&self.signer);
                if self.coalition.len() > 1 {
                    out.send(self.coalition[1], chain);
                } else {
                    out.broadcast(self.params.relay_targets(self.signer.id()), chain);
                }
                return;
            }

            if self.position > 0 && phase == self.position + 1 {
                // My turn: extend the chain and pass it on (or hold it).
                if let Some(chain) = &self.chain {
                    let mut extended = chain.clone();
                    extended.sign_and_append(&self.signer);
                    if self.position + 1 < self.coalition.len() {
                        out.send(self.coalition[self.position + 1], extended.clone());
                    }
                    self.chain = Some(extended);
                }
            }

            // The last member releases the (now long) chain to all correct
            // processors of the opposite side at the release phase.
            if self.position + 1 == self.coalition.len() && phase == self.release_phase {
                if let Some(chain) = &self.chain {
                    // The stored chain already carries my signature (added
                    // at my turn); release as-is.
                    out.broadcast(self.params.relay_targets(self.signer.id()), chain.clone());
                }
            }
        }
        fn decision(&self) -> Option<Value> {
            None
        }
        fn is_correct(&self) -> bool {
            false
        }
    }
}

/// Fault scenarios for [`run`].
#[derive(Debug, Default)]
pub enum Algo1Fault {
    /// All processors correct.
    #[default]
    None,
    /// Transmitter faulty and completely silent.
    SilentTransmitter,
    /// Transmitter sends `1` to the given processors, `0` to the others.
    Equivocate {
        /// Recipients of the signed `1`.
        ones: Vec<ProcessId>,
    },
    /// A coalition (transmitter plus `extra_members` alternating-side
    /// processors) builds a private 1-chain and releases it at
    /// `release_phase`.
    Withhold {
        /// Number of faulty processors beyond the transmitter.
        extra_members: usize,
        /// Phase at which the chain is released to correct processors.
        release_phase: usize,
    },
    /// The given relays crash before phase 1 (silent faults).
    CrashedRelays {
        /// The crashed processors (must not include the transmitter).
        relays: Vec<ProcessId>,
    },
}

/// Options for [`run`].
#[derive(Debug, Default)]
pub struct Algo1Options {
    /// Fault scenario to inject.
    pub fault: Algo1Fault,
    /// Key-registry seed (determinism knob).
    pub seed: u64,
    /// Signature scheme.
    pub scheme: SchemeKind,
    /// Record a full message trace on the outcome.
    pub trace: bool,
}

/// Builds and runs an Algorithm 1 scenario with `n = 2t + 1` processors.
///
/// # Errors
/// Returns the [`AgreementViolation`] if the run broke agreement (which
/// indicates a bug: Algorithm 1 tolerates every scenario constructible
/// here).
///
/// # Panics
/// Panics if `t == 0`, if a fault plan names out-of-range processors, or
/// if `value` is not binary (Algorithm 1 is specified for `V = {0, 1}`).
pub fn run(
    t: usize,
    value: Value,
    options: Algo1Options,
) -> Result<AlgoReport<Chain>, AgreementViolation> {
    assert!(t >= 1, "algorithm 1 needs t >= 1");
    assert!(
        value == Value::ZERO || value == Value::ONE,
        "algorithm 1 is binary"
    );
    let n = 2 * t + 1;
    let registry = KeyRegistry::new(n, options.seed, options.scheme);
    let params = Arc::new(Algo1Params {
        t,
        verifier: registry.verifier(),
    });

    let honest = |p: u32, own: Option<Value>| -> Box<dyn Actor<Chain>> {
        Box::new(Algo1Actor::new(
            params.clone(),
            ProcessId(p),
            registry.signer(ProcessId(p)),
            own,
        ))
    };

    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(n);
    match &options.fault {
        Algo1Fault::None => {
            actors.push(honest(0, Some(value)));
            for p in 1..n as u32 {
                actors.push(honest(p, None));
            }
        }
        Algo1Fault::SilentTransmitter => {
            actors.push(Box::new(ba_sim::adversary::Silent));
            for p in 1..n as u32 {
                actors.push(honest(p, None));
            }
        }
        Algo1Fault::Equivocate { ones } => {
            let ones: BTreeSet<ProcessId> = ones.iter().copied().collect();
            assert!(ones.iter().all(|p| p.index() > 0 && p.index() < n));
            let zeros: Vec<ProcessId> = (1..n as u32)
                .map(ProcessId)
                .filter(|p| !ones.contains(p))
                .collect();
            actors.push(Box::new(adversaries::EquivocatingTransmitter::new(
                registry.signer(ProcessId(0)),
                ones,
                zeros,
            )));
            for p in 1..n as u32 {
                actors.push(honest(p, None));
            }
        }
        Algo1Fault::Withhold {
            extra_members,
            release_phase,
        } => {
            assert!(*extra_members < t, "coalition must stay within t faults");
            // Coalition alternates sides: transmitter, a1, b1, a2, b2, …
            let mut coalition = vec![ProcessId(0)];
            for i in 0..*extra_members {
                let id = if i % 2 == 0 {
                    ProcessId(1 + (i / 2) as u32) // side A
                } else {
                    ProcessId((t + 1 + i / 2) as u32) // side B
                };
                coalition.push(id);
            }
            let coalition_set: BTreeSet<ProcessId> = coalition.iter().copied().collect();
            assert!(
                *release_phase >= coalition.len(),
                "chain must exist before release"
            );
            for p in 0..n as u32 {
                let id = ProcessId(p);
                if let Some(pos) = coalition.iter().position(|&c| c == id) {
                    actors.push(Box::new(adversaries::WithholdingMember::new(
                        params.clone(),
                        registry.signer(id),
                        coalition.clone(),
                        pos,
                        *release_phase,
                    )));
                } else {
                    debug_assert!(!coalition_set.contains(&id));
                    actors.push(honest(p, None));
                }
            }
        }
        Algo1Fault::CrashedRelays { relays } => {
            let crashed: BTreeSet<ProcessId> = relays.iter().copied().collect();
            assert!(crashed.len() <= t);
            assert!(crashed.iter().all(|p| p.index() > 0 && p.index() < n));
            actors.push(honest(0, Some(value)));
            for p in 1..n as u32 {
                if crashed.contains(&ProcessId(p)) {
                    actors.push(Box::new(ba_sim::adversary::Silent));
                } else {
                    actors.push(honest(p, None));
                }
            }
        }
    }

    let mut sim = Simulation::new(actors);
    if options.trace {
        sim = sim.with_trace();
    }
    let outcome = sim.run(t + 2);
    into_report(outcome, ProcessId(0), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn fault_free_value_one_agrees_within_bounds() {
        for t in 1..=6 {
            let report = run(t, Value::ONE, Algo1Options::default()).unwrap();
            assert_eq!(report.verdict.agreed, Some(Value::ONE), "t={t}");
            let msgs = report.outcome.metrics.messages_by_correct;
            assert_eq!(
                msgs,
                bounds::alg1_max_messages(t as u64),
                "t={t}: worst case is exact"
            );
            assert!(report.outcome.metrics.phases as u64 <= bounds::alg1_phases(t as u64));
        }
    }

    #[test]
    fn fault_free_value_zero_agrees_with_minimal_traffic() {
        for t in 1..=6 {
            let report = run(t, Value::ZERO, Algo1Options::default()).unwrap();
            assert_eq!(report.verdict.agreed, Some(Value::ZERO));
            // Only the transmitter's 2t messages: 0-chains are never relayed.
            assert_eq!(report.outcome.metrics.messages_by_correct, 2 * t as u64);
        }
    }

    #[test]
    fn silent_transmitter_agrees_on_zero() {
        let report = run(
            3,
            Value::ONE,
            Algo1Options {
                fault: Algo1Fault::SilentTransmitter,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.verdict.agreed, Some(Value::ZERO));
        assert!(!report.verdict.transmitter_correct);
        assert_eq!(report.outcome.metrics.messages_by_correct, 0);
    }

    #[test]
    fn equivocating_transmitter_still_agrees() {
        for t in 1..=5 {
            let n = 2 * t + 1;
            for ones_count in 1..n - 1 {
                let ones: Vec<ProcessId> = (1..=ones_count as u32).map(ProcessId).collect();
                let report = run(
                    t,
                    Value::ONE,
                    Algo1Options {
                        fault: Algo1Fault::Equivocate { ones },
                        ..Default::default()
                    },
                )
                .unwrap();
                // Whatever the agreed value, it must be common (checked by
                // into_report); with at least one 1-receipt it will be ONE.
                assert_eq!(
                    report.verdict.agreed,
                    Some(Value::ONE),
                    "t={t} ones={ones_count}"
                );
            }
        }
    }

    #[test]
    fn withholding_coalition_cannot_break_agreement() {
        for t in 2..=5 {
            for extra in 1..t {
                let release = extra + 1; // earliest honest-looking release
                let report = run(
                    t,
                    Value::ONE,
                    Algo1Options {
                        fault: Algo1Fault::Withhold {
                            extra_members: extra,
                            release_phase: release,
                        },
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    report.verdict.agreed,
                    Some(Value::ONE),
                    "t={t} extra={extra}"
                );
            }
        }
    }

    #[test]
    fn late_release_still_converges_by_t_plus_2() {
        // Coalition of t (transmitter + t-1) releases at the last phase the
        // chain can still be extended by correct relays.
        let t = 4;
        let report = run(
            t,
            Value::ONE,
            Algo1Options {
                fault: Algo1Fault::Withhold {
                    extra_members: t - 1,
                    release_phase: t,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.verdict.agreed, Some(Value::ONE));
        assert_eq!(report.outcome.metrics.phases, t + 2);
    }

    #[test]
    fn crashed_relays_tolerated() {
        let t = 3;
        let report = run(
            t,
            Value::ONE,
            Algo1Options {
                fault: Algo1Fault::CrashedRelays {
                    relays: vec![ProcessId(1), ProcessId(4), ProcessId(6)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.verdict.agreed, Some(Value::ONE));
        assert!(report.verdict.transmitter_correct);
    }

    #[test]
    fn one_message_validation_rejects_bad_chains() {
        let t = 2;
        let registry = KeyRegistry::new(5, 0, SchemeKind::Hmac);
        let params = Algo1Params {
            t,
            verifier: registry.verifier(),
        };
        let sign = |ids: &[u32], v: Value| {
            let mut c = Chain::new(domains::ALG1, v);
            for &i in ids {
                c.sign_and_append(&registry.signer(ProcessId(i)));
            }
            c
        };

        // Good: q -> p1(A) received by p3(B) at phase 2.
        assert!(params.is_correct_one_message(&sign(&[0, 1], Value::ONE), 2, ProcessId(3)));
        // Wrong value.
        assert!(!params.is_correct_one_message(&sign(&[0, 1], Value::ZERO), 2, ProcessId(3)));
        // Wrong length for the phase.
        assert!(!params.is_correct_one_message(&sign(&[0, 1], Value::ONE), 3, ProcessId(3)));
        // Does not start at the transmitter.
        assert!(!params.is_correct_one_message(&sign(&[1, 3], Value::ONE), 2, ProcessId(2)));
        // Same-side consecutive signers (p1,p2 both in A).
        assert!(!params.is_correct_one_message(&sign(&[0, 1, 2], Value::ONE), 3, ProcessId(3)));
        // Receiver on the path.
        assert!(!params.is_correct_one_message(&sign(&[0, 3], Value::ONE), 2, ProcessId(3)));
        // Last signer not adjacent to receiver (p1 in A, receiver p2 in A).
        assert!(!params.is_correct_one_message(&sign(&[0, 1], Value::ONE), 2, ProcessId(2)));
        // Wrong domain.
        let mut wrong = Chain::new(domains::ALG2, Value::ONE);
        wrong.sign_and_append(&registry.signer(ProcessId(0)));
        assert!(!params.is_correct_one_message(&wrong, 1, ProcessId(1)));
        // Direct from transmitter is fine for anyone.
        assert!(params.is_correct_one_message(&sign(&[0], Value::ONE), 1, ProcessId(2)));
    }

    #[test]
    fn sides_partition_processors() {
        let t = 3;
        assert_eq!(side(ProcessId(0), t), Side::Transmitter);
        for p in 1..=3u32 {
            assert_eq!(side(ProcessId(p), t), Side::A);
        }
        for p in 4..=6u32 {
            assert_eq!(side(ProcessId(p), t), Side::B);
        }
    }

    #[test]
    fn trace_option_records_envelopes() {
        let report = run(
            2,
            Value::ONE,
            Algo1Options {
                trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            report.outcome.trace.message_count() as u64,
            report.outcome.metrics.messages_total()
        );
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_value_rejected() {
        let _ = run(2, Value(7), Algo1Options::default());
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        /// Agreement and validity hold for random equivocation patterns.
        #[test]
        fn prop_equivocation_never_breaks_agreement() {
            run_cases(24, 0x66, |gen| {
                let t = gen.usize_in(1, 5);
                let mask = gen.u32();
                let seed = gen.u64();
                let n = 2 * t + 1;
                let ones: Vec<ProcessId> = (1..n as u32)
                    .filter(|p| mask & (1 << (p % 31)) != 0)
                    .map(ProcessId)
                    .collect();
                let fault = if ones.is_empty() {
                    Algo1Fault::SilentTransmitter
                } else {
                    Algo1Fault::Equivocate { ones }
                };
                let report = run(
                    t,
                    Value::ONE,
                    Algo1Options {
                        fault,
                        seed,
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert!(report.verdict.agreed.is_some());
            });
        }

        /// The message bound of Theorem 3 holds for every scenario.
        #[test]
        fn prop_message_bound_holds() {
            run_cases(24, 0x67, |gen| {
                let t = gen.usize_in(1, 5);
                let value = gen.u64_in(0, 2);
                let crash_mask = gen.u32() as u16;
                let seed = gen.u64();
                let n = 2 * t + 1;
                let relays: Vec<ProcessId> = (1..n as u32)
                    .filter(|p| crash_mask & (1 << (p % 16)) != 0)
                    .take(t)
                    .map(ProcessId)
                    .collect();
                let report = run(
                    t,
                    Value(value),
                    Algo1Options {
                        fault: Algo1Fault::CrashedRelays { relays },
                        seed,
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert!(
                    report.outcome.metrics.messages_by_correct
                        <= crate::bounds::alg1_max_messages(t as u64)
                );
            });
        }
    }
}
