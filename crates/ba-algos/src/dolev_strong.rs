//! The Dolev–Strong authenticated baseline (reference 9 of the paper).
//!
//! The paper cites Dolev & Strong's *Authenticated algorithms for Byzantine
//! Agreement* as the best previous solution: `t + 1` phases and `O(nt + t²)`
//! messages. Two variants are implemented:
//!
//! * [`Variant::Broadcast`] — the classic `t + 1`-phase protocol where every
//!   processor relays each newly-extracted value (at most two) to everyone:
//!   `O(n²)` messages. The textbook form, used as the "naive authenticated"
//!   comparison point.
//! * [`Variant::Relay`] — the message-thrifty form with a committee of
//!   `t + 1` relays: non-committee processors report newly-extracted values
//!   only to the committee, committee members relay to everyone. `O(nt)`
//!   messages, `t + 3` phases.
//!
//! Extraction rule (both variants): a chain received at phase `k` is
//! accepted if it carries the transmitter's signature first, `k` signatures
//! total from distinct processors not including the receiver, and a value
//! not yet extracted. A processor relays at most its first two extracted
//! values — two distinct values already prove the transmitter faulty.
//! Decision: the unique extracted value, or the default `0` when zero or
//! several values were extracted.

use crate::common::{domains, into_report, AlgoReport};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signer, Value, Verifier};
use ba_sim::actor::{Actor, Envelope, Outbox};
use ba_sim::engine::Simulation;
use ba_sim::AgreementViolation;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which message pattern the run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Variant {
    /// Everyone relays to everyone: `t + 1` phases, `O(n²)` messages.
    #[default]
    Broadcast,
    /// Only a committee of `t + 1` relays broadcasts: `t + 3` phases,
    /// `O(nt)` messages.
    Relay,
}

/// Static parameters of a Dolev–Strong run.
#[derive(Debug)]
pub struct DsParams {
    /// Number of processors.
    pub n: usize,
    /// Fault tolerance (any `t < n - 1`).
    pub t: usize,
    /// Message pattern.
    pub variant: Variant,
    /// Verifier over the run registry.
    pub verifier: Verifier,
    /// The distinguished sender (processor 0 in the standalone runner;
    /// arbitrary when embedded, e.g. by interactive consistency).
    pub transmitter: ProcessId,
    /// Chain domain (instance separation for parallel embeddings).
    pub domain: u32,
    /// **Deliberately broken variant for checker validation.** When set,
    /// the acceptance rule additionally requires `chain.len() <= t` — an
    /// off-by-one behind the correct `t + 1` relay threshold, so a chain
    /// completing at the final phase is wrongly rejected. A faulty
    /// transmitter that omits one processor then splits the correct set:
    /// the omitted processor rejects the length-`t + 1` relays everyone
    /// else extracted from. Exists so `ba-check` can prove its explorer
    /// finds a real agreement violation; never enable it elsewhere.
    pub weaken_relay_threshold: bool,
}

impl DsParams {
    /// Conventional parameters: transmitter 0, the standard domain.
    pub fn standard(n: usize, t: usize, variant: Variant, verifier: Verifier) -> Self {
        DsParams {
            n,
            t,
            variant,
            verifier,
            transmitter: ProcessId(0),
            domain: domains::DOLEV_STRONG,
            weaken_relay_threshold: false,
        }
    }

    /// Phases the variant needs.
    pub fn phases(&self) -> usize {
        match self.variant {
            Variant::Broadcast => self.t + 1,
            Variant::Relay => self.t + 3,
        }
    }

    /// The relay committee: the first `t + 1` processors other than the
    /// transmitter, used by [`Variant::Relay`].
    pub fn committee(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n as u32)
            .map(ProcessId)
            .filter(|&p| p != self.transmitter)
            .take(self.t + 1)
    }

    /// Whether `p` is a committee member.
    pub fn in_committee(&self, p: ProcessId) -> bool {
        self.committee().any(|q| q == p)
    }

    /// Acceptance check for a chain received at phase `k` by `me`.
    pub fn is_acceptable(&self, chain: &Chain, k: usize, me: ProcessId) -> bool {
        chain.domain() == self.domain
            && chain.len() == k
            && (!self.weaken_relay_threshold || chain.len() <= self.t)
            && chain.verify_simple_path(&self.verifier).is_ok()
            && chain.first_signer() == Some(self.transmitter)
            && !chain.contains_signer(me)
            && chain.signers().all(|s| s.index() < self.n)
    }
}

/// An honest Dolev–Strong processor.
#[derive(Debug)]
pub struct DsActor {
    params: Arc<DsParams>,
    me: ProcessId,
    signer: Signer,
    own_value: Option<Value>,
    extracted: BTreeSet<Value>,
    phase: usize,
}

impl DsActor {
    /// Creates the actor; `own_value` is `Some` for the transmitter.
    pub fn new(
        params: Arc<DsParams>,
        me: ProcessId,
        signer: Signer,
        own_value: Option<Value>,
    ) -> Self {
        DsActor {
            params,
            me,
            signer,
            own_value,
            extracted: BTreeSet::new(),
            phase: 0,
        }
    }

    /// The extracted value set (diagnostics).
    pub fn extracted(&self) -> &BTreeSet<Value> {
        &self.extracted
    }

    fn absorb_and_relay(
        &mut self,
        inbox: &[Envelope<Chain>],
        k: usize,
        out: Option<&mut Outbox<Chain>>,
    ) {
        let mut fresh: Vec<Chain> = Vec::new();
        for env in inbox {
            if env.payload.last_signer() == Some(env.from)
                && self.params.is_acceptable(&env.payload, k, self.me)
                && !self.extracted.contains(&env.payload.value())
            {
                // Relay only the first two distinct values ever extracted.
                if self.extracted.len() < 2 {
                    fresh.push(env.payload.clone());
                }
                self.extracted.insert(env.payload.value());
            }
        }
        if let Some(out) = out {
            for chain in fresh {
                let mut relay = chain;
                relay.sign_and_append(&self.signer);
                match self.params.variant {
                    Variant::Broadcast => {
                        out.broadcast((0..self.params.n as u32).map(ProcessId), relay);
                    }
                    Variant::Relay => {
                        if self.params.in_committee(self.me) {
                            out.broadcast((0..self.params.n as u32).map(ProcessId), relay);
                        } else {
                            let committee: Vec<ProcessId> = self.params.committee().collect();
                            out.broadcast(committee, relay);
                        }
                    }
                }
            }
        }
    }
}

impl Actor<Chain> for DsActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        self.phase = phase;
        if phase == 1 {
            if let Some(v) = self.own_value {
                self.extracted.insert(v);
                let mut chain = Chain::new(self.params.domain, v);
                chain.sign_and_append(&self.signer);
                out.broadcast((0..self.params.n as u32).map(ProcessId), chain);
            }
            return;
        }
        if self.own_value.is_some() {
            return; // The transmitter is done after phase 1.
        }
        self.absorb_and_relay(inbox, phase - 1, Some(out));
    }

    fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
        if self.own_value.is_none() {
            let k = self.phase;
            self.absorb_and_relay(inbox, k, None);
        }
    }

    fn decision(&self) -> Option<Value> {
        if let Some(v) = self.own_value {
            return Some(v);
        }
        Some(if self.extracted.len() == 1 {
            *self.extracted.iter().next().expect("len checked")
        } else {
            Value::ZERO
        })
    }
}

/// An equivocating transmitter for Dolev–Strong: signs `a` for one subset
/// and `b` for the rest.
#[derive(Debug)]
pub struct DsEquivocator {
    signer: Signer,
    n: usize,
    a: Value,
    a_set: BTreeSet<ProcessId>,
    b: Value,
}

impl DsEquivocator {
    /// Creates the adversary sending `a` to `a_set` and `b` elsewhere.
    pub fn new(
        signer: Signer,
        n: usize,
        a: Value,
        a_set: impl IntoIterator<Item = ProcessId>,
        b: Value,
    ) -> Self {
        DsEquivocator {
            signer,
            n,
            a,
            a_set: a_set.into_iter().collect(),
            b,
        }
    }
}

impl Actor<Chain> for DsEquivocator {
    fn step(&mut self, phase: usize, _inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        if phase != 1 {
            return;
        }
        let mut ca = Chain::new(domains::DOLEV_STRONG, self.a);
        ca.sign_and_append(&self.signer);
        let mut cb = Chain::new(domains::DOLEV_STRONG, self.b);
        cb.sign_and_append(&self.signer);
        for p in 1..self.n as u32 {
            let id = ProcessId(p);
            out.send(
                id,
                if self.a_set.contains(&id) {
                    ca.clone()
                } else {
                    cb.clone()
                },
            );
        }
    }
    fn decision(&self) -> Option<Value> {
        None
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Fault scenarios for [`run`].
#[derive(Debug, Default)]
pub enum DsFault {
    /// All correct.
    #[default]
    None,
    /// Transmitter silent.
    SilentTransmitter,
    /// Transmitter equivocates between `1` (to the given set) and `0`.
    Equivocate {
        /// Recipients of value `1`.
        ones: Vec<ProcessId>,
    },
    /// Given relays silent.
    SilentRelays {
        /// The silent relays.
        set: Vec<ProcessId>,
    },
}

/// Options for [`run`]. Construct with
/// [`DsOptions::new`]/[`default`](DsOptions::default) and the `with_*`
/// builders (the same convention as `SvcConfig`, `NetConfig`,
/// `Alg3Options` and `ExtOptions`).
///
/// Defaults: full variant, no fault, seed 0, fast scheme, sequential
/// stepping, per-delivery verification.
#[derive(Debug, Default)]
pub struct DsOptions {
    /// Message pattern.
    pub variant: Variant,
    /// Fault scenario.
    pub fault: DsFault,
    /// Registry seed.
    pub seed: u64,
    /// Signature scheme.
    pub scheme: SchemeKind,
    /// Worker threads for intra-phase stepping (`0`/`1` = sequential).
    /// Results are byte-identical for any value — see
    /// [`Simulation::with_threads`].
    pub threads: usize,
    /// Verify each unique signature chain once at the phase barrier
    /// instead of per delivery — see
    /// [`Simulation::with_batched_verification`]. Decisions and message
    /// counts are unchanged; the crypto work counters honestly shrink.
    pub batch_verify: bool,
}

impl DsOptions {
    /// The default options; chain `with_*` builders to customize.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the message pattern.
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the fault scenario.
    pub fn with_fault(mut self, fault: DsFault) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the registry seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the signature scheme.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the worker-thread count for intra-phase stepping.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables barrier-batched signature verification.
    pub fn with_batch_verify(mut self, batch_verify: bool) -> Self {
        self.batch_verify = batch_verify;
        self
    }
}

/// Builds and runs a Dolev–Strong scenario with `n` processors and up to
/// `t` faults.
///
/// ```
/// use ba_algos::dolev_strong::{run, DsOptions};
/// use ba_crypto::Value;
///
/// let r = run(7, 2, Value::ONE, DsOptions::default())?;
/// assert_eq!(r.verdict.agreed, Some(Value::ONE));
/// # Ok::<(), ba_sim::AgreementViolation>(())
/// ```
///
/// # Errors
/// Propagates any [`AgreementViolation`].
///
/// # Panics
/// Panics unless `1 <= t` and `t + 2 <= n`.
pub fn run(
    n: usize,
    t: usize,
    value: Value,
    options: DsOptions,
) -> Result<AlgoReport<Chain>, AgreementViolation> {
    assert!(t >= 1 && n >= t + 2, "dolev-strong needs 1 <= t <= n - 2");
    let registry = KeyRegistry::new(n, options.seed, options.scheme);
    let params = Arc::new(DsParams::standard(
        n,
        t,
        options.variant,
        registry.verifier(),
    ));

    let honest = |p: u32, own: Option<Value>| -> Box<dyn Actor<Chain>> {
        Box::new(DsActor::new(
            params.clone(),
            ProcessId(p),
            registry.signer(ProcessId(p)),
            own,
        ))
    };

    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(n);
    match &options.fault {
        DsFault::None => {
            actors.push(honest(0, Some(value)));
            for p in 1..n as u32 {
                actors.push(honest(p, None));
            }
        }
        DsFault::SilentTransmitter => {
            actors.push(Box::new(ba_sim::adversary::Silent));
            for p in 1..n as u32 {
                actors.push(honest(p, None));
            }
        }
        DsFault::Equivocate { ones } => {
            actors.push(Box::new(DsEquivocator::new(
                registry.signer(ProcessId(0)),
                n,
                Value::ONE,
                ones.iter().copied(),
                Value::ZERO,
            )));
            for p in 1..n as u32 {
                actors.push(honest(p, None));
            }
        }
        DsFault::SilentRelays { set } => {
            assert!(set.len() <= t && !set.contains(&ProcessId(0)));
            actors.push(honest(0, Some(value)));
            for p in 1..n as u32 {
                if set.contains(&ProcessId(p)) {
                    actors.push(Box::new(ba_sim::adversary::Silent));
                } else {
                    actors.push(honest(p, None));
                }
            }
        }
    }

    let mut sim = Simulation::new(actors)
        .with_threads(options.threads)
        .with_registry(&registry)
        .with_batched_verification(options.batch_verify);
    let outcome = sim.run(params.phases());
    into_report(outcome, ProcessId(0), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn fault_free_agrees_both_variants() {
        for variant in [Variant::Broadcast, Variant::Relay] {
            for (n, t) in [(4, 1), (7, 2), (9, 3), (12, 4)] {
                let r = run(
                    n,
                    t,
                    Value::ONE,
                    DsOptions {
                        variant,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    r.verdict.agreed,
                    Some(Value::ONE),
                    "{variant:?} n={n} t={t}"
                );
                assert!(
                    r.outcome.metrics.messages_by_correct
                        <= bounds::dolev_strong_max_messages(n as u64),
                    "{variant:?}"
                );
            }
        }
    }

    #[test]
    fn relay_variant_uses_fewer_messages_for_large_n() {
        let (n, t) = (60, 3);
        let broadcast = run(n, t, Value::ONE, DsOptions::default()).unwrap();
        let relay = run(
            n,
            t,
            Value::ONE,
            DsOptions {
                variant: Variant::Relay,
                ..Default::default()
            },
        )
        .unwrap();
        let mb = broadcast.outcome.metrics.messages_by_correct;
        let mr = relay.outcome.metrics.messages_by_correct;
        assert!(mr < mb, "relay {mr} should beat broadcast {mb}");
    }

    #[test]
    fn equivocation_forces_default_but_agrees() {
        for variant in [Variant::Broadcast, Variant::Relay] {
            let (n, t) = (9, 3);
            let ones: Vec<ProcessId> = (1..=4).map(ProcessId).collect();
            let r = run(
                n,
                t,
                Value::ONE,
                DsOptions {
                    variant,
                    fault: DsFault::Equivocate { ones },
                    ..Default::default()
                },
            )
            .unwrap();
            // Everyone extracts both values and falls to the default.
            assert_eq!(r.verdict.agreed, Some(Value::ZERO), "{variant:?}");
        }
    }

    #[test]
    fn silent_transmitter_defaults() {
        let r = run(
            7,
            2,
            Value::ONE,
            DsOptions {
                fault: DsFault::SilentTransmitter,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ZERO));
    }

    #[test]
    fn silent_relays_tolerated_in_relay_variant() {
        // Silence t committee members: one correct member remains.
        let (n, t) = (12, 3);
        let r = run(
            n,
            t,
            Value::ONE,
            DsOptions {
                variant: Variant::Relay,
                fault: DsFault::SilentRelays {
                    set: vec![ProcessId(1), ProcessId(2), ProcessId(3)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn acceptance_rules() {
        let n = 6;
        let registry = KeyRegistry::new(n, 0, SchemeKind::Hmac);
        let params = DsParams::standard(n, 2, Variant::Broadcast, registry.verifier());
        let chain = |ids: &[u32]| {
            let mut c = Chain::new(domains::DOLEV_STRONG, Value::ONE);
            for &i in ids {
                c.sign_and_append(&registry.signer(ProcessId(i)));
            }
            c
        };
        // Phase-length match required.
        assert!(params.is_acceptable(&chain(&[0]), 1, ProcessId(3)));
        assert!(!params.is_acceptable(&chain(&[0]), 2, ProcessId(3)));
        assert!(params.is_acceptable(&chain(&[0, 1]), 2, ProcessId(3)));
        // Must start at the transmitter.
        assert!(!params.is_acceptable(&chain(&[1, 2]), 2, ProcessId(3)));
        // Receiver must not be on the chain.
        assert!(!params.is_acceptable(&chain(&[0, 3]), 2, ProcessId(3)));
        // Duplicate signers rejected.
        assert!(!params.is_acceptable(&chain(&[0, 1, 1]), 3, ProcessId(3)));
    }

    #[test]
    fn weakened_threshold_rejects_final_phase_chains() {
        let n = 6;
        let registry = KeyRegistry::new(n, 0, SchemeKind::Hmac);
        let mut params = DsParams::standard(n, 2, Variant::Broadcast, registry.verifier());
        params.weaken_relay_threshold = true;
        let chain = |ids: &[u32]| {
            let mut c = Chain::new(domains::DOLEV_STRONG, Value::ONE);
            for &i in ids {
                c.sign_and_append(&registry.signer(ProcessId(i)));
            }
            c
        };
        // Chains up to length t still accepted...
        assert!(params.is_acceptable(&chain(&[0]), 1, ProcessId(3)));
        assert!(params.is_acceptable(&chain(&[0, 1]), 2, ProcessId(3)));
        // ...but a length-(t + 1) chain arriving at phase t + 1 — legal in
        // the correct protocol — is wrongly rejected.
        assert!(!params.is_acceptable(&chain(&[0, 1, 2]), 3, ProcessId(3)));
    }

    #[test]
    fn committee_is_t_plus_one() {
        let registry = KeyRegistry::new(9, 0, SchemeKind::Fast);
        let params = DsParams::standard(9, 3, Variant::Relay, registry.verifier());
        let committee: Vec<ProcessId> = params.committee().collect();
        assert_eq!(committee.len(), 4);
        assert!(params.in_committee(ProcessId(1)));
        assert!(params.in_committee(ProcessId(4)));
        assert!(!params.in_committee(ProcessId(0)));
        assert!(!params.in_committee(ProcessId(5)));
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_equivocation_always_agrees() {
            run_cases(16, 0x6A, |gen| {
                let t = gen.usize_in(1, 4);
                let extra = gen.usize_in(0, 8);
                let mask = gen.u32();
                let seed = gen.u64();
                let variant_pick = gen.bool();
                let n = 2 * t + 2 + extra;
                let ones: Vec<ProcessId> = (1..n as u32)
                    .filter(|p| mask & (1 << (p % 31)) != 0)
                    .map(ProcessId)
                    .collect();
                let variant = if variant_pick {
                    Variant::Relay
                } else {
                    Variant::Broadcast
                };
                let r = run(
                    n,
                    t,
                    Value::ONE,
                    DsOptions {
                        variant,
                        fault: DsFault::Equivocate { ones },
                        seed,
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert!(r.verdict.agreed.is_some());
            });
        }
    }
}
