//! Chain-aware payload fuzzers and fuzz harnesses.
//!
//! The paper's adversary can send *anything* — malformed chains, forged
//! signatures, replayed prefixes, wrong domains. These fuzzers generate
//! exactly that traffic (deterministically, per seed), and the harnesses
//! run each algorithm with up to `t` spamming processors: agreement and
//! validity must survive, and nothing may panic.

use crate::algorithm1::{Algo1Actor, Algo1Params};
use crate::algorithm4::SignedItem;
use crate::algorithm5::{Alg5Active, Alg5Config, Alg5Passive, Msg5};
use crate::common::{domains, into_report, AlgoReport, Board};
use ba_crypto::rng::SimRng;
use ba_crypto::Bytes;
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signature, Signer, Value};
use ba_sim::actor::Actor;
use ba_sim::engine::Simulation;
use ba_sim::random::{PayloadFuzzer, Spammer};
use ba_sim::AgreementViolation;
use std::sync::Arc;

/// Generates adversarial [`Chain`]s: unsigned, self-signed under random
/// domains/values, forged-signature, over-long, and duplicate-signer
/// chains.
#[derive(Debug)]
pub struct ChainFuzzer {
    signer: Signer,
    kind: SchemeKind,
}

impl ChainFuzzer {
    /// Creates a fuzzer signing (when it signs at all) as the spammer's
    /// own identity — the only signing power a Byzantine processor has.
    pub fn new(signer: Signer, kind: SchemeKind) -> Self {
        ChainFuzzer { signer, kind }
    }

    fn random_chain(&mut self, rng: &mut SimRng) -> Chain {
        let domain = match rng.range_u32(0, 4) {
            0 => domains::ALG1,
            1 => domains::ALG2,
            2 => domains::DOLEV_STRONG,
            _ => rng.next_u32(),
        };
        let value = Value(rng.range_u64(0, 4));
        let mut chain = Chain::new(domain, value);
        match rng.range_u32(0, 5) {
            0 => {} // unsigned
            1 => {
                chain.sign_and_append(&self.signer);
            }
            2 => {
                // Forged signature claiming a random identity.
                let fake = ProcessId(rng.range_u32(0, 16));
                let forged = Signature::forged(fake, self.kind);
                // Only constructible through the decode path; emulate by
                // encoding and re-decoding a crafted buffer.
                let mut enc = ba_crypto::wire::Encoder::new();
                chain.encode(&mut enc);
                let mut raw = enc.finish().to_vec();
                let off = 4 + 8;
                let count = u32::from_be_bytes(raw[off..off + 4].try_into().expect("u32"));
                raw[off..off + 4].copy_from_slice(&(count + 1).to_be_bytes());
                let mut enc2 = ba_crypto::wire::Encoder::new();
                forged.encode(&mut enc2);
                raw.extend_from_slice(&enc2.finish());
                chain = Chain::decode(&mut ba_crypto::wire::Decoder::new(&raw))
                    .expect("crafted buffer decodes");
            }
            3 => {
                // Over-long self-signed chain (duplicate signer).
                for _ in 0..rng.range_u32(2, 6) {
                    chain.sign_and_append(&self.signer);
                }
            }
            _ => {
                chain.sign_and_append(&self.signer);
                chain = chain.truncated(0);
            }
        }
        chain
    }
}

impl PayloadFuzzer<Chain> for ChainFuzzer {
    fn next(&mut self, rng: &mut SimRng, _phase: usize, _target: ProcessId) -> Chain {
        self.random_chain(rng)
    }
}

/// Generates adversarial [`Msg5`] payloads (chains, activations with
/// garbage proofs, malformed grid messages).
#[derive(Debug)]
pub struct Msg5Fuzzer {
    chains: ChainFuzzer,
}

impl Msg5Fuzzer {
    /// Creates the fuzzer.
    pub fn new(signer: Signer, kind: SchemeKind) -> Self {
        Msg5Fuzzer {
            chains: ChainFuzzer::new(signer, kind),
        }
    }
}

impl PayloadFuzzer<Msg5> for Msg5Fuzzer {
    fn next(&mut self, rng: &mut SimRng, phase: usize, target: ProcessId) -> Msg5 {
        match rng.range_u32(0, 3) {
            0 => Msg5::Chain(self.chains.next(rng, phase, target)),
            1 => {
                let proof: Vec<SignedItem> = (0..rng.range_u32(0, 3))
                    .map(|_| {
                        let len = rng.range_usize(0, 16);
                        SignedItem::new(
                            rng.next_u64(),
                            Bytes::from(rng.bytes(len)),
                            &self.chains.signer,
                        )
                    })
                    .collect();
                Msg5::Activate {
                    valid: self.chains.next(rng, phase, target),
                    proof,
                }
            }
            _ => Msg5::Grid(crate::algorithm4::GridMsg::Row(
                (0..rng.range_u32(0, 4))
                    .map(|_| {
                        SignedItem::new(
                            rng.next_u64(),
                            Bytes::from_static(b"junk"),
                            &self.chains.signer,
                        )
                    })
                    .collect(),
            )),
        }
    }
}

/// Runs Algorithm 1 with `spammers` of the non-transmitter processors
/// replaced by chain spammers.
///
/// # Errors
/// Propagates any [`AgreementViolation`] (must not happen).
///
/// # Panics
/// Panics if `spammers > t`.
pub fn fuzz_algorithm1(
    t: usize,
    value: Value,
    spammers: usize,
    per_phase: usize,
    seed: u64,
) -> Result<AlgoReport<Chain>, AgreementViolation> {
    assert!(spammers <= t);
    let n = 2 * t + 1;
    let registry = KeyRegistry::new(n, seed, SchemeKind::Fast);
    let params = Arc::new(Algo1Params {
        t,
        verifier: registry.verifier(),
    });

    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(n);
    for p in 0..n as u32 {
        let id = ProcessId(p);
        // Spammers take the highest non-transmitter ids.
        if p as usize >= n - spammers {
            let fuzzer = ChainFuzzer::new(registry.signer(id), SchemeKind::Fast);
            actors.push(Box::new(Spammer::new(
                n,
                per_phase,
                seed ^ p as u64,
                fuzzer,
            )));
        } else {
            actors.push(Box::new(Algo1Actor::new(
                params.clone(),
                id,
                registry.signer(id),
                (p == 0).then_some(value),
            )));
        }
    }
    let mut sim = Simulation::new(actors);
    let outcome = sim.run(t + 2);
    into_report(outcome, ProcessId(0), value)
}

/// Runs Algorithm 5 with the given number of passive processors replaced
/// by [`Msg5`] spammers.
///
/// # Errors
/// Propagates any [`AgreementViolation`] (must not happen).
///
/// # Panics
/// Panics if `spammers > t` or the parameters violate
/// [`Alg5Config::new`].
pub fn fuzz_algorithm5(
    n: usize,
    t: usize,
    s: usize,
    value: Value,
    spammers: usize,
    per_phase: usize,
    seed: u64,
) -> Result<AlgoReport<Msg5>, AgreementViolation> {
    assert!(spammers <= t);
    let registry = KeyRegistry::new(n, seed, SchemeKind::Fast);
    let cfg = Arc::new(Alg5Config::new(n, t, s, registry.verifier()));
    let scratch = Board::new(cfg.core_count());

    let mut actors: Vec<Box<dyn Actor<Msg5>>> = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let id = ProcessId(i);
        if (id.index()) >= n - spammers {
            let fuzzer = Msg5Fuzzer::new(registry.signer(id), SchemeKind::Fast);
            actors.push(Box::new(Spammer::new(
                n,
                per_phase,
                seed ^ i as u64,
                fuzzer,
            )));
        } else if id.index() < cfg.alpha {
            actors.push(Box::new(Alg5Active::new(
                cfg.clone(),
                id,
                registry.signer(id),
                (i == 0).then_some(value),
                scratch.clone(),
            )));
        } else {
            actors.push(Box::new(Alg5Passive::new(
                cfg.clone(),
                id,
                registry.signer(id),
            )));
        }
    }
    let mut sim = Simulation::new(actors);
    let outcome = sim.run(cfg.last_phase);
    into_report(outcome, ProcessId(0), value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm1_survives_chain_spam() {
        for t in [2usize, 4] {
            for spammers in 1..=t.min(2) {
                let r = fuzz_algorithm1(t, Value::ONE, spammers, 8, 31).unwrap();
                assert_eq!(
                    r.verdict.agreed,
                    Some(Value::ONE),
                    "t={t} spammers={spammers}"
                );
                assert!(r.outcome.metrics.messages_by_faulty > 0);
            }
        }
    }

    #[test]
    fn algorithm1_spam_cannot_fake_value_one() {
        // Transmitter honestly sends 0; spammers push garbage 1-chains.
        let r = fuzz_algorithm1(3, Value::ZERO, 2, 10, 7).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ZERO));
    }

    #[test]
    fn algorithm5_survives_msg5_spam() {
        let r = fuzz_algorithm5(30, 1, 3, Value::ONE, 1, 6, 11).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_algorithm1_fuzz() {
            run_cases(10, 0x63, |gen| {
                let t = gen.usize_in(2, 5);
                let seed = gen.u64();
                let v = gen.u64_in(0, 2);
                let r = fuzz_algorithm1(t, Value(v), 2, 6, seed).unwrap();
                assert_eq!(r.verdict.agreed, Some(Value(v)));
            });
        }
    }
}
