//! The unauthenticated oral-messages baseline `OM(t)` of Lamport, Shostak
//! and Pease (reference 14 of the paper).
//!
//! Corollary 1 states that *without* authentication, `n(t+1)/4` is a lower
//! bound on the number of **messages**. `OM(t)` is the classic
//! unauthenticated algorithm (requiring `n > 3t`), implemented here over
//! the exponential-information-gathering (EIG) tree:
//!
//! * **Phase 1** — the transmitter sends its value to everyone (path
//!   `[q]`).
//! * **Phase `k`** (`2 ≤ k ≤ t + 1`) — each processor relays every value it
//!   received at phase `k − 1` with path `π` to every processor not on
//!   `π`, extending the path with itself.
//! * **Decision** — recursive majority over the EIG tree with default `0`.
//!
//! The exact message count `(n−1) + (n−1)(n−2) + … + (n−1)⋯(n−t−1)` (see
//! [`bounds::om_messages`](crate::bounds::om_messages)) is what experiment
//! E2 compares against the Corollary 1 lower bound — and its explosion for
//! growing `t` is why the paper's authenticated algorithms matter.

use crate::common::{into_report, AlgoReport};
use ba_crypto::{ProcessId, Value};
use ba_sim::actor::{Actor, Envelope, Outbox, Payload};
use ba_sim::engine::Simulation;
use ba_sim::AgreementViolation;
use std::collections::BTreeMap;

/// An oral (unauthenticated, source-stamped) message: the relay path and
/// the claimed value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OmMsg {
    /// Relay path, starting at the transmitter; the last entry is the
    /// claimed sender of this hop.
    pub path: Vec<ProcessId>,
    /// The relayed value.
    pub value: Value,
}

impl Payload for OmMsg {
    fn weight_bytes(&self) -> usize {
        8 + 4 * self.path.len()
    }
    fn kind(&self) -> &'static str {
        "oral"
    }
}

/// An honest `OM(t)` processor.
#[derive(Debug)]
pub struct OmActor {
    n: usize,
    t: usize,
    me: ProcessId,
    own_value: Option<Value>,
    /// EIG tree: received value per path.
    tree: BTreeMap<Vec<ProcessId>, Value>,
    phase: usize,
}

impl OmActor {
    /// Creates the actor; `own_value` is `Some` for the transmitter.
    pub fn new(n: usize, t: usize, me: ProcessId, own_value: Option<Value>) -> Self {
        OmActor {
            n,
            t,
            me,
            own_value,
            tree: BTreeMap::new(),
            phase: 0,
        }
    }

    fn is_valid(&self, env: &Envelope<OmMsg>, k: usize) -> bool {
        let path = &env.path_ref().path;
        path.len() == k
            && path[0] == ProcessId(0)
            && *path.last().expect("nonempty") == env.from
            && !path.contains(&self.me)
            && path.iter().all(|p| p.index() < self.n)
            && {
                let mut seen = path.clone();
                seen.sort_unstable();
                seen.windows(2).all(|w| w[0] != w[1])
            }
    }

    fn absorb(&mut self, inbox: &[Envelope<OmMsg>], k: usize, out: Option<&mut Outbox<OmMsg>>) {
        let mut relays: Vec<OmMsg> = Vec::new();
        for env in inbox {
            if !self.is_valid(env, k) {
                continue;
            }
            let msg = &env.payload;
            if self.tree.contains_key(&msg.path) {
                continue; // first writer wins, duplicates dropped
            }
            self.tree.insert(msg.path.clone(), msg.value);
            if msg.path.len() <= self.t {
                let mut path = msg.path.clone();
                path.push(self.me);
                relays.push(OmMsg {
                    path,
                    value: msg.value,
                });
            }
        }
        if let Some(out) = out {
            for relay in relays {
                for p in 0..self.n as u32 {
                    let id = ProcessId(p);
                    if !relay.path.contains(&id) {
                        out.send(id, relay.clone());
                    }
                }
            }
        }
    }

    /// Recursive EIG majority resolution for `path`.
    ///
    /// Per `OM(m)`: an internal node resolves to the majority over its
    /// children's resolutions *plus* the directly-stored value (the
    /// receiver's own `v_i` in Lamport–Shostak–Pease's
    /// `majority(v_1, …, v_{n−1})`), defaulting to `0` on a tie.
    fn resolve(&self, path: &[ProcessId]) -> Value {
        let stored = self.tree.get(path).copied().unwrap_or(Value::ZERO);
        if path.len() > self.t {
            return stored;
        }
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        let mut votes = 1usize; // the stored value is my own vote
        *counts.entry(stored).or_insert(0) += 1;
        for p in 0..self.n as u32 {
            let id = ProcessId(p);
            if id == self.me || path.contains(&id) {
                continue;
            }
            let mut child = path.to_vec();
            child.push(id);
            *counts.entry(self.resolve(&child)).or_insert(0) += 1;
            votes += 1;
        }
        // Strict majority, else the default value.
        counts
            .into_iter()
            .find(|(_, c)| 2 * c > votes)
            .map(|(v, _)| v)
            .unwrap_or(Value::ZERO)
    }
}

impl Actor<OmMsg> for OmActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<OmMsg>], out: &mut Outbox<OmMsg>) {
        self.phase = phase;
        if phase == 1 {
            if let Some(v) = self.own_value {
                let msg = OmMsg {
                    path: vec![self.me],
                    value: v,
                };
                out.broadcast((0..self.n as u32).map(ProcessId), msg);
            }
            return;
        }
        if self.own_value.is_some() {
            return;
        }
        self.absorb(inbox, phase - 1, Some(out));
    }

    fn finalize(&mut self, inbox: &[Envelope<OmMsg>]) {
        if self.own_value.is_none() {
            let k = self.phase;
            self.absorb(inbox, k, None);
        }
    }

    fn decision(&self) -> Option<Value> {
        if let Some(v) = self.own_value {
            return Some(v);
        }
        Some(self.resolve(&[ProcessId(0)]))
    }
}

trait PathRef {
    fn path_ref(&self) -> &OmMsg;
}
impl PathRef for Envelope<OmMsg> {
    fn path_ref(&self) -> &OmMsg {
        &self.payload
    }
}

/// Adversaries for `OM(t)`.
pub mod adversaries {
    use super::*;

    /// An equivocating transmitter: value `1` to the given set, `0` to the
    /// rest.
    #[derive(Debug)]
    pub struct OmEquivocator {
        n: usize,
        ones: Vec<ProcessId>,
    }

    impl OmEquivocator {
        /// Creates the adversary.
        pub fn new(n: usize, ones: Vec<ProcessId>) -> Self {
            OmEquivocator { n, ones }
        }
    }

    impl Actor<OmMsg> for OmEquivocator {
        fn step(&mut self, phase: usize, _inbox: &[Envelope<OmMsg>], out: &mut Outbox<OmMsg>) {
            if phase != 1 {
                return;
            }
            for p in 1..self.n as u32 {
                let id = ProcessId(p);
                let v = if self.ones.contains(&id) {
                    Value::ONE
                } else {
                    Value::ZERO
                };
                out.send(
                    id,
                    OmMsg {
                        path: vec![ProcessId(0)],
                        value: v,
                    },
                );
            }
        }
        fn decision(&self) -> Option<Value> {
            None
        }
        fn is_correct(&self) -> bool {
            false
        }
    }

    /// A relay that flips every value it forwards to odd-numbered targets
    /// — unauthenticated messages cannot be caught by signature checks, so
    /// only the majority logic protects the run.
    #[derive(Debug)]
    pub struct FlippingRelay {
        inner: OmActor,
    }

    impl FlippingRelay {
        /// Creates the adversary from an honest actor's parameters.
        pub fn new(n: usize, t: usize, me: ProcessId) -> Self {
            FlippingRelay {
                inner: OmActor::new(n, t, me, None),
            }
        }
    }

    impl Actor<OmMsg> for FlippingRelay {
        fn step(&mut self, phase: usize, inbox: &[Envelope<OmMsg>], out: &mut Outbox<OmMsg>) {
            // Run the honest logic into a scratch outbox, then corrupt.
            let mut scratch = Outbox::new(out.sender());
            self.inner.step(phase, inbox, &mut scratch);
            for env in scratch.into_staged() {
                let mut msg = env.payload;
                if env.to.0 % 2 == 1 {
                    msg.value = Value(1 - msg.value.0 % 2);
                }
                out.send(env.to, msg);
            }
        }
        fn decision(&self) -> Option<Value> {
            None
        }
        fn is_correct(&self) -> bool {
            false
        }
    }
}

/// Fault scenarios for [`run`].
#[derive(Debug, Default)]
pub enum OmFault {
    /// All correct.
    #[default]
    None,
    /// Transmitter equivocates (value `1` to the set, `0` elsewhere).
    Equivocate {
        /// Recipients of value `1`.
        ones: Vec<ProcessId>,
    },
    /// The given relays flip values toward odd targets.
    FlippingRelays {
        /// The corrupt relays.
        set: Vec<ProcessId>,
    },
    /// The given relays are silent.
    SilentRelays {
        /// The silent relays.
        set: Vec<ProcessId>,
    },
}

/// Options for [`run`].
#[derive(Debug, Default)]
pub struct OmOptions {
    /// Fault scenario.
    pub fault: OmFault,
}

/// Builds and runs an `OM(t)` scenario.
///
/// ```
/// use ba_algos::om::{run, OmOptions};
/// use ba_crypto::Value;
///
/// let r = run(4, 1, Value::ONE, OmOptions::default())?;
/// assert_eq!(r.verdict.agreed, Some(Value::ONE));
/// # Ok::<(), ba_sim::AgreementViolation>(())
/// ```
///
/// # Errors
/// Propagates any [`AgreementViolation`].
///
/// # Panics
/// Panics unless `n > 3t` and `t ≥ 1` (the oral-messages requirement).
pub fn run(
    n: usize,
    t: usize,
    value: Value,
    options: OmOptions,
) -> Result<AlgoReport<OmMsg>, AgreementViolation> {
    assert!(t >= 1 && n > 3 * t, "OM(t) needs n > 3t");

    let honest = |p: u32, own: Option<Value>| -> Box<dyn Actor<OmMsg>> {
        Box::new(OmActor::new(n, t, ProcessId(p), own))
    };

    let mut actors: Vec<Box<dyn Actor<OmMsg>>> = Vec::with_capacity(n);
    match &options.fault {
        OmFault::None => {
            actors.push(honest(0, Some(value)));
            for p in 1..n as u32 {
                actors.push(honest(p, None));
            }
        }
        OmFault::Equivocate { ones } => {
            actors.push(Box::new(adversaries::OmEquivocator::new(n, ones.clone())));
            for p in 1..n as u32 {
                actors.push(honest(p, None));
            }
        }
        OmFault::FlippingRelays { set } => {
            assert!(set.len() <= t && !set.contains(&ProcessId(0)));
            actors.push(honest(0, Some(value)));
            for p in 1..n as u32 {
                if set.contains(&ProcessId(p)) {
                    actors.push(Box::new(adversaries::FlippingRelay::new(
                        n,
                        t,
                        ProcessId(p),
                    )));
                } else {
                    actors.push(honest(p, None));
                }
            }
        }
        OmFault::SilentRelays { set } => {
            assert!(set.len() <= t && !set.contains(&ProcessId(0)));
            actors.push(honest(0, Some(value)));
            for p in 1..n as u32 {
                if set.contains(&ProcessId(p)) {
                    actors.push(Box::new(ba_sim::adversary::Silent));
                } else {
                    actors.push(honest(p, None));
                }
            }
        }
    }

    let mut sim = Simulation::new(actors);
    let outcome = sim.run(t + 1);
    into_report(outcome, ProcessId(0), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn fault_free_agrees_with_exact_message_count() {
        for (n, t) in [(4, 1), (5, 1), (7, 2), (10, 3)] {
            let r = run(n, t, Value::ONE, OmOptions::default()).unwrap();
            assert_eq!(r.verdict.agreed, Some(Value::ONE), "n={n} t={t}");
            assert_eq!(
                r.outcome.metrics.messages_by_correct,
                bounds::om_messages(n as u64, t as u64),
                "n={n} t={t}"
            );
        }
    }

    #[test]
    fn fault_free_value_zero() {
        let r = run(7, 2, Value::ZERO, OmOptions::default()).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ZERO));
    }

    #[test]
    fn equivocating_transmitter_still_agrees() {
        for split in 1..6 {
            let (n, t) = (7, 2);
            let ones: Vec<ProcessId> = (1..=split).map(ProcessId).collect();
            let r = run(
                n,
                t,
                Value::ONE,
                OmOptions {
                    fault: OmFault::Equivocate { ones },
                },
            )
            .unwrap();
            assert!(r.verdict.agreed.is_some(), "split={split}");
        }
    }

    #[test]
    fn flipping_relays_defeated_by_majority() {
        let (n, t) = (7, 2);
        let r = run(
            n,
            t,
            Value::ONE,
            OmOptions {
                fault: OmFault::FlippingRelays {
                    set: vec![ProcessId(2), ProcessId(5)],
                },
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn silent_relays_tolerated() {
        let (n, t) = (10, 3);
        let r = run(
            n,
            t,
            Value::ONE,
            OmOptions {
                fault: OmFault::SilentRelays {
                    set: vec![ProcessId(3), ProcessId(6), ProcessId(9)],
                },
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn message_validation_rejects_malformed_paths() {
        let actor = OmActor::new(5, 1, ProcessId(3), None);
        let env = |from: u32, path: Vec<u32>| Envelope {
            from: ProcessId(from),
            to: ProcessId(3),
            payload: OmMsg {
                path: path.into_iter().map(ProcessId).collect(),
                value: Value::ONE,
            },
        };
        // Valid: phase-2 message from p1 with path [q, p1].
        assert!(actor.is_valid(&env(1, vec![0, 1]), 2));
        // Path must end at the actual sender.
        assert!(!actor.is_valid(&env(2, vec![0, 1]), 2));
        // Path must start at the transmitter.
        assert!(!actor.is_valid(&env(1, vec![1, 1]), 2));
        // Receiver must not appear on the path.
        assert!(!actor.is_valid(&env(3, vec![0, 3]), 2));
        // Length must match the phase.
        assert!(!actor.is_valid(&env(1, vec![0, 1]), 3));
        // Duplicates rejected.
        assert!(!actor.is_valid(&env(1, vec![0, 2, 2, 1]), 4));
    }

    #[test]
    fn om_needs_n_greater_than_3t() {
        // n = 3t fails at the boundary by construction; the classic
        // counterexample (n=3, t=1) is excluded by the assertion.
        let result = std::panic::catch_unwind(|| run(6, 2, Value::ONE, OmOptions::default()));
        assert!(result.is_err());
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_om_agrees_under_random_faults() {
            run_cases(12, 0x68, |gen| {
                let t = gen.usize_in(1, 3);
                let extra = gen.usize_in(1, 4);
                let mask = gen.u32() as u16;
                let flip = gen.bool();
                let n = 3 * t + extra;
                let set: Vec<ProcessId> = (1..n as u32)
                    .filter(|p| mask & (1 << (p % 16)) != 0)
                    .take(t)
                    .map(ProcessId)
                    .collect();
                let fault = if flip {
                    OmFault::FlippingRelays { set }
                } else {
                    OmFault::SilentRelays { set }
                };
                let r = run(n, t, Value::ONE, OmOptions { fault }).unwrap();
                assert_eq!(r.verdict.agreed, Some(Value::ONE));
            });
        }
    }
}
