//! Interactive consistency — every processor ends with the *vector* of all
//! private values — built from `n` parallel Byzantine Agreement instances.
//!
//! The paper frames Byzantine Agreement as the single-source primitive
//! behind coordination problems such as interactive consistency (its
//! reference 15, Pease–Shostak–Lamport). This module demonstrates the
//! reduction this library's users would actually perform: run one
//! [`dolev_strong`](crate::dolev_strong) instance per source, with
//! per-instance chain domains so signatures cannot leak between instances,
//! and read off the agreed vector.
//!
//! Guarantees (with `n > t + 1` and at most `t` faults):
//!
//! * all correct processors obtain the same vector;
//! * entry `i` equals processor `i`'s private value whenever `i` is
//!   correct.

use crate::common::Board;
use crate::dolev_strong::{DsActor, DsParams, Variant};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signer, Value, Verifier};
use ba_sim::actor::{Actor, Envelope, Outbox, Payload};
use ba_sim::engine::{RunOutcome, Simulation};
use std::sync::Arc;

/// Base chain domain for instance separation: instance `i` signs under
/// `IC_DOMAIN_BASE + i`.
pub const IC_DOMAIN_BASE: u32 = 20_000;

/// A message of one inner agreement instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IcMsg {
    /// Which instance (the source processor's index).
    pub instance: u32,
    /// The instance's Dolev–Strong chain.
    pub chain: Chain,
}

impl Payload for IcMsg {
    fn signature_count(&self) -> usize {
        self.chain.len()
    }
    fn weight_bytes(&self) -> usize {
        20 + 40 * self.chain.len()
    }
    fn kind(&self) -> &'static str {
        "ic-chain"
    }
}

/// Builds the per-instance parameter block.
fn instance_params(n: usize, t: usize, instance: u32, verifier: Verifier) -> Arc<DsParams> {
    Arc::new(DsParams {
        n,
        t,
        variant: Variant::Broadcast,
        verifier,
        transmitter: ProcessId(instance),
        domain: IC_DOMAIN_BASE + instance,
        weaken_relay_threshold: false,
    })
}

/// An honest interactive-consistency processor: one [`DsActor`] per
/// instance, demultiplexed by the `instance` tag.
#[derive(Debug)]
pub struct IcActor {
    me: ProcessId,
    subs: Vec<DsActor>,
    vectors: Arc<Board<Vec<Value>>>,
}

impl IcActor {
    /// Creates the actor holding private value `own_value`.
    pub fn new(
        n: usize,
        t: usize,
        me: ProcessId,
        own_value: Value,
        signer: Signer,
        verifier: Verifier,
        vectors: Arc<Board<Vec<Value>>>,
    ) -> Self {
        let subs = (0..n as u32)
            .map(|i| {
                DsActor::new(
                    instance_params(n, t, i, verifier.clone()),
                    me,
                    signer.clone(),
                    (ProcessId(i) == me).then_some(own_value),
                )
            })
            .collect();
        IcActor { me, subs, vectors }
    }

    fn demux(inbox: &[Envelope<IcMsg>], instance: u32) -> Vec<Envelope<Chain>> {
        inbox
            .iter()
            .filter(|e| e.payload.instance == instance)
            .map(|e| Envelope {
                from: e.from,
                to: e.to,
                payload: e.payload.chain.clone(),
            })
            .collect()
    }

    /// The agreed vector (after the run).
    pub fn vector(&self) -> Vec<Value> {
        self.subs
            .iter()
            .map(|s| s.decision().expect("dolev-strong always decides"))
            .collect()
    }
}

impl Actor<IcMsg> for IcActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<IcMsg>], out: &mut Outbox<IcMsg>) {
        for (i, sub) in self.subs.iter_mut().enumerate() {
            let sub_inbox = Self::demux(inbox, i as u32);
            let mut scratch = Outbox::new(self.me);
            sub.step(phase, &sub_inbox, &mut scratch);
            for env in scratch.into_staged() {
                out.send(
                    env.to,
                    IcMsg {
                        instance: i as u32,
                        chain: env.payload,
                    },
                );
            }
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<IcMsg>]) {
        for (i, sub) in self.subs.iter_mut().enumerate() {
            let sub_inbox = Self::demux(inbox, i as u32);
            sub.finalize(&sub_inbox);
        }
        self.vectors.post(self.me, self.vector());
    }

    fn decision(&self) -> Option<Value> {
        // Scalar projection for the generic checker: fold the vector so
        // scalar agreement implies vector agreement (exact vectors are
        // compared via the board by the runner's callers).
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for v in self.vector() {
            acc ^= v.0.wrapping_add(0x9e37_79b9);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Some(Value(acc))
    }
}

/// Fault scenarios for [`run`].
#[derive(Debug, Default)]
pub enum IcFault {
    /// All correct.
    #[default]
    None,
    /// The given processors are silent in every instance.
    Silent {
        /// The silent processors.
        set: Vec<ProcessId>,
    },
    /// The given processors participate honestly except that each
    /// equivocates as the transmitter of its own instance (value `1` to
    /// odd receivers, `0` to even).
    EquivocateOwnInstance {
        /// The equivocators.
        set: Vec<ProcessId>,
    },
}

/// An equivocating IC participant: honest in every instance except its
/// own, where it splits values between receivers.
#[derive(Debug)]
struct IcEquivocator {
    inner: IcActor,
    me: ProcessId,
    signer: Signer,
    n: usize,
}

impl Actor<IcMsg> for IcEquivocator {
    fn step(&mut self, phase: usize, inbox: &[Envelope<IcMsg>], out: &mut Outbox<IcMsg>) {
        // Drive the honest actor but strip its own-instance phase-1
        // broadcast, replacing it with a split-value send.
        let mut scratch = Outbox::new(self.me);
        self.inner.step(phase, inbox, &mut scratch);
        for env in scratch.into_staged() {
            if phase == 1 && env.payload.instance == self.me.0 {
                continue;
            }
            out.send(env.to, env.payload);
        }
        if phase == 1 {
            for p in 0..self.n as u32 {
                let to = ProcessId(p);
                if to == self.me {
                    continue;
                }
                let v = if p % 2 == 1 { Value::ONE } else { Value::ZERO };
                let mut chain = Chain::new(IC_DOMAIN_BASE + self.me.0, v);
                chain.sign_and_append(&self.signer);
                out.send(
                    to,
                    IcMsg {
                        instance: self.me.0,
                        chain,
                    },
                );
            }
        }
    }
    fn finalize(&mut self, inbox: &[Envelope<IcMsg>]) {
        self.inner.finalize(inbox);
    }
    fn decision(&self) -> Option<Value> {
        None
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Outcome of an interactive-consistency run.
#[derive(Debug)]
pub struct IcReport {
    /// Raw engine outcome.
    pub outcome: RunOutcome<IcMsg>,
    /// Per-processor agreed vectors (by processor index).
    pub vectors: Vec<Option<Vec<Value>>>,
}

impl IcReport {
    /// The common vector of the correct processors.
    ///
    /// # Panics
    /// Panics if correct processors hold different vectors (a bug —
    /// covered by the tests).
    pub fn common_vector(&self) -> Option<Vec<Value>> {
        let mut common: Option<Vec<Value>> = None;
        for (i, correct) in self.outcome.correct.iter().enumerate() {
            if !correct {
                continue;
            }
            let v = self.vectors[i]
                .as_ref()
                .expect("correct processor posted a vector");
            match &common {
                None => common = Some(v.clone()),
                Some(c) => assert_eq!(c, v, "correct processors disagree on the vector"),
            }
        }
        common
    }
}

/// Runs interactive consistency among `n` processors with private
/// `values` and up to `t` faults.
///
/// ```
/// use ba_algos::ic::{run, IcFault};
/// use ba_crypto::Value;
///
/// let values = vec![Value(5), Value(6), Value(7), Value(8)];
/// let report = run(4, 1, &values, IcFault::None, 1);
/// assert_eq!(report.common_vector(), Some(values));
/// ```
///
/// # Panics
/// Panics unless `values.len() == n`, `1 ≤ t ≤ n − 2` and the fault set
/// fits `t`.
pub fn run(n: usize, t: usize, values: &[Value], fault: IcFault, seed: u64) -> IcReport {
    assert_eq!(values.len(), n, "one private value per processor");
    assert!(t >= 1 && n >= t + 2);
    let registry = KeyRegistry::new(n, seed, SchemeKind::Fast);
    let vectors = Board::new(n);

    let mut actors: Vec<Box<dyn Actor<IcMsg>>> = Vec::with_capacity(n);
    let mut faults = 0usize;
    for i in 0..n as u32 {
        let id = ProcessId(i);
        let actor: Box<dyn Actor<IcMsg>> = match &fault {
            IcFault::Silent { set } if set.contains(&id) => {
                faults += 1;
                Box::new(ba_sim::adversary::Silent)
            }
            IcFault::EquivocateOwnInstance { set } if set.contains(&id) => {
                faults += 1;
                Box::new(IcEquivocator {
                    inner: IcActor::new(
                        n,
                        t,
                        id,
                        values[id.index()],
                        registry.signer(id),
                        registry.verifier(),
                        vectors.clone(),
                    ),
                    me: id,
                    signer: registry.signer(id),
                    n,
                })
            }
            _ => Box::new(IcActor::new(
                n,
                t,
                id,
                values[id.index()],
                registry.signer(id),
                registry.verifier(),
                vectors.clone(),
            )),
        };
        actors.push(actor);
    }
    assert!(faults <= t, "fault plan exceeds t");

    let mut sim = Simulation::new(actors);
    let outcome = sim.run(t + 1);
    IcReport {
        outcome,
        vectors: vectors.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(n: usize) -> Vec<Value> {
        (0..n as u64).map(|i| Value(i * 10 + 1)).collect()
    }

    #[test]
    fn fault_free_everyone_gets_the_exact_vector() {
        for (n, t) in [(4usize, 1usize), (6, 2), (8, 3)] {
            let vals = values(n);
            let r = run(n, t, &vals, IcFault::None, 1);
            let common = r.common_vector().unwrap();
            assert_eq!(common, vals, "n={n} t={t}");
        }
    }

    #[test]
    fn silent_processors_default_to_zero_in_their_slot() {
        let n = 6;
        let t = 2;
        let vals = values(n);
        let r = run(
            n,
            t,
            &vals,
            IcFault::Silent {
                set: vec![ProcessId(2), ProcessId(4)],
            },
            3,
        );
        let common = r.common_vector().unwrap();
        assert_eq!(common.len(), n);
        for i in 0..n {
            if i == 2 || i == 4 {
                assert_eq!(common[i], Value::ZERO, "silent slot defaults");
            } else {
                assert_eq!(common[i], vals[i], "correct slot preserved");
            }
        }
    }

    #[test]
    fn equivocators_cannot_split_the_vector() {
        let n = 7;
        let t = 2;
        let vals = values(n);
        let r = run(
            n,
            t,
            &vals,
            IcFault::EquivocateOwnInstance {
                set: vec![ProcessId(1), ProcessId(5)],
            },
            7,
        );
        // common_vector asserts all correct processors agree.
        let common = r.common_vector().unwrap();
        for i in [0usize, 2, 3, 4, 6] {
            assert_eq!(common[i], vals[i], "correct slot {i} preserved");
        }
    }

    #[test]
    fn instance_domains_are_separated() {
        // A chain signed in instance 3 must not be acceptable in instance 4.
        let registry = KeyRegistry::new(5, 1, SchemeKind::Fast);
        let p3 = instance_params(5, 1, 3, registry.verifier());
        let p4 = instance_params(5, 1, 4, registry.verifier());
        let mut chain = Chain::new(IC_DOMAIN_BASE + 3, Value(9));
        chain.sign_and_append(&registry.signer(ProcessId(3)));
        assert!(p3.is_acceptable(&chain, 1, ProcessId(0)));
        assert!(!p4.is_acceptable(&chain, 1, ProcessId(0)));
    }

    #[test]
    fn vector_agreement_implies_scalar_projection_agreement() {
        let n = 5;
        let r = run(n, 1, &values(n), IcFault::None, 9);
        let decisions: Vec<_> = r
            .outcome
            .decisions
            .iter()
            .zip(&r.outcome.correct)
            .filter(|(_, c)| **c)
            .map(|(d, _)| d.unwrap())
            .collect();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_ic_holds_for_random_values_and_faults() {
            run_cases(10, 0x6C, |gen| {
                let n = gen.usize_in(4, 8);
                let seed = gen.u64();
                let raw: Vec<u64> = (0..8).map(|_| gen.u64()).collect();
                let victim = gen.u32();
                let equivocate = gen.bool();
                let t = 1;
                let vals: Vec<Value> = (0..n).map(|i| Value(raw[i])).collect();
                let bad = ProcessId(victim % n as u32);
                let fault = if equivocate {
                    IcFault::EquivocateOwnInstance { set: vec![bad] }
                } else {
                    IcFault::Silent { set: vec![bad] }
                };
                let r = run(n, t, &vals, fault, seed);
                let common = r.common_vector().unwrap();
                for i in 0..n {
                    if ProcessId(i as u32) != bad {
                        assert_eq!(common[i], vals[i]);
                    }
                }
            });
        }
    }
}
