//! Algorithm 5 — binary-tree dissemination with activation certificates
//! (Lemmas 3–5, Theorem 7): Byzantine Agreement with `O(t² + nt/s)`
//! messages; `s = t` matches the `Ω(n + t²)` lower bound of Theorem 2.
//!
//! Roles: the first `α` processors are *active*, where `α` is the smallest
//! perfect square exceeding `6t` ([`crate::bounds::alpha`]); the remaining
//! `n − α` *passive* processors form complete binary trees of size
//! `s = 2^λ − 1` ([`crate::trees::Forest`]).
//!
//! Outline (this reproduction uses a non-overlapping schedule; phase
//! arithmetic is in [`Alg5Config`]):
//!
//! 1. **Phases `1..=3t+3`** — the first `2t + 1` actives run Algorithm 2;
//!    each ends holding a *valid message*: the common value with at least
//!    `t + 1` active signatures.
//! 2. **Phase `3t+4`** — the first `t + 1` actives hand valid messages to
//!    the remaining `α − 2t − 1` actives.
//! 3. **Blocks `x = λ, λ−1, …, 1`** — each block activates the depth-`x`
//!    subtrees that still need work: every active sends (valid message,
//!    *proof of work*) to the roots it believes need activation; an
//!    activated root walks its subtree collecting member signatures onto
//!    the valid message, then reports to all actives; the actives then run
//!    one Algorithm 4 grid round exchanging *strings* `[F(p, x−1), x−1]` —
//!    their lists of still-unserved processors — which yields the support
//!    counts `π` used to build the next block's proofs of work.
//! 4. **Final phase (block 0)** — every active sends the valid message
//!    directly to each processor in its `B(p, 0)` set.
//!
//! A *proof of work* for a depth-`x` subtree (`x < λ`) is a set of strings
//! in which either the subtree's root is reported unserved by at least
//! `α − 2t` distinct actives, or both child subtrees contain such a
//! processor — the condition that keeps activations (and hence messages)
//! amortized per Lemma 4.

use crate::algorithm1::Algo1Params;
use crate::algorithm2::Algo2Actor;
use crate::algorithm4::{Alg4State, GridLayout, GridMsg, SignedItem};
use crate::bounds;
use crate::common::{domains, into_report, AlgoReport, Board};
use crate::trees::Forest;
use ba_crypto::wire::{Decoder, Encoder};
use ba_crypto::Bytes;
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signer, Value, Verifier};
use ba_sim::actor::{Actor, Envelope, Outbox, Payload};
use ba_sim::engine::Simulation;
use ba_sim::AgreementViolation;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Signature tag base for per-index grid rounds: strings with index `i`
/// are signed under tag `GRID_TAG_BASE + i`.
const GRID_TAG_BASE: u64 = 0x5000;

/// Messages of Algorithm 5.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Msg5 {
    /// A signature chain: Algorithm 2 prefix traffic, valid messages,
    /// collection messages and returns, reports, and block-0 deliveries.
    Chain(Chain),
    /// Root activation: a valid message plus a proof of work.
    Activate {
        /// The valid message (common value, `≥ t+1` active signatures).
        valid: Chain,
        /// Supporting strings (index `x`, signed by distinct actives).
        proof: Vec<SignedItem>,
    },
    /// One Algorithm 4 grid message.
    Grid(GridMsg),
}

impl Payload for Msg5 {
    fn signature_count(&self) -> usize {
        match self {
            Msg5::Chain(c) => c.len(),
            Msg5::Activate { valid, proof } => valid.len() + proof.len(),
            Msg5::Grid(g) => g.signature_count(),
        }
    }
    fn weight_bytes(&self) -> usize {
        match self {
            Msg5::Chain(c) => 16 + 40 * c.len(),
            Msg5::Activate { valid, proof } => {
                16 + 40 * valid.len() + proof.iter().map(|i| i.body.len() + 40).sum::<usize>()
            }
            Msg5::Grid(g) => g.weight_bytes(),
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            Msg5::Chain(_) => "chain",
            Msg5::Activate { .. } => "activate",
            Msg5::Grid(_) => "grid",
        }
    }
}

/// Whether `chain` is a *valid message*: a binary value under the
/// Algorithm 2 domain carrying at least `t + 1` distinct signatures of the
/// first `2t + 1` processors (the Algorithm 2 participants; passive
/// signatures may follow).
pub fn is_valid_message(chain: &Chain, t: usize, verifier: &Verifier) -> bool {
    if chain.domain() != domains::ALG2
        || (chain.value() != Value::ZERO && chain.value() != Value::ONE)
        || chain.verify(verifier).is_err()
    {
        return false;
    }
    let actives: BTreeSet<ProcessId> = chain.signers().filter(|p| p.index() < 2 * t + 1).collect();
    actives.len() > t
}

/// Encodes a string `[index, members]` body.
pub fn encode_string(index: u32, members: &BTreeSet<ProcessId>) -> Bytes {
    let mut enc = Encoder::with_capacity(8 + 4 * members.len());
    enc.u32(index).u32(members.len() as u32);
    for &m in members {
        enc.process_id(m);
    }
    enc.finish()
}

/// Decodes a string body into `(index, members)`.
pub fn decode_string(body: &[u8]) -> Option<(u32, Vec<ProcessId>)> {
    let mut dec = Decoder::new(body);
    let index = dec.u32().ok()?;
    let count = dec.u32().ok()? as usize;
    let mut members = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        members.push(dec.process_id().ok()?);
    }
    dec.is_exhausted().then_some((index, members))
}

/// Support counts: for each passive processor, the set of distinct active
/// signers whose index-`i` string lists it.
pub fn support_counts(
    items: &[SignedItem],
    index: u32,
    alpha: usize,
    verifier: &Verifier,
) -> BTreeMap<ProcessId, BTreeSet<ProcessId>> {
    let mut pi: BTreeMap<ProcessId, BTreeSet<ProcessId>> = BTreeMap::new();
    for item in items {
        let signer = item.signer();
        if signer.index() >= alpha || !item.verifies(GRID_TAG_BASE + index as u64, verifier) {
            continue;
        }
        if let Some((i, members)) = decode_string(&item.body) {
            if i == index {
                for q in members {
                    pi.entry(q).or_default().insert(signer);
                }
            }
        }
    }
    pi
}

/// One scheduled block.
#[derive(Clone, Copy, Debug)]
pub struct BlockSchedule {
    /// Subtree depth handled by this block.
    pub x: u32,
    /// First global phase of the block.
    pub start: usize,
    /// Full subtree size `l(x) = 2^x − 1`.
    pub l: usize,
}

impl BlockSchedule {
    /// Number of phases in this block (`2 l(x) + 3`).
    pub fn len(&self) -> usize {
        2 * self.l + 3
    }

    /// Blocks are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Where a global phase falls in the Algorithm 5 schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseSlot {
    /// Algorithm 2 among the first `2t + 1` actives.
    Prefix,
    /// Phase `3t + 4`: valid-message hand-off to the remaining actives.
    Handoff,
    /// Local phase `local` (1-based) of the block handling depth `x`.
    Block {
        /// Subtree depth.
        x: u32,
        /// 1-based local phase.
        local: usize,
    },
    /// The final direct-delivery phase (block 0).
    Final,
}

/// Static parameters and schedule of an Algorithm 5 run.
#[derive(Debug)]
pub struct Alg5Config {
    /// Total processors.
    pub n: usize,
    /// Fault tolerance.
    pub t: usize,
    /// Tree size (`2^λ − 1`).
    pub s: usize,
    /// Active count (smallest perfect square `> 6t`).
    pub alpha: usize,
    /// Tree depth.
    pub lambda: u32,
    /// Verifier over the run registry.
    pub verifier: Verifier,
    /// The passive forest.
    pub forest: Forest,
    /// Grid layout over the actives.
    pub grid: Arc<GridLayout>,
    /// Blocks in execution order (`x = λ` first).
    pub blocks: Vec<BlockSchedule>,
    /// The final (block 0) phase; also the run length.
    pub last_phase: usize,
    /// Algorithm 1 parameters for the embedded Algorithm 2.
    pub alg1: Arc<Algo1Params>,
    /// Ablation knob: skip proof-of-work gating and activate every
    /// subtree in every block (see `Alg5Options::naive_activation`).
    pub naive_activation: bool,
}

impl Alg5Config {
    /// Builds the configuration.
    ///
    /// # Panics
    /// Panics if `t == 0`, `s` is not `2^λ − 1`, or `n < α`.
    pub fn new(n: usize, t: usize, s: usize, verifier: Verifier) -> Self {
        assert!(t >= 1, "algorithm 5 needs t >= 1");
        let alpha = bounds::alpha(t as u64) as usize;
        assert!(
            n >= alpha,
            "algorithm 5 needs n >= alpha = {alpha} (the paper extends Algorithm 1 otherwise)"
        );
        let forest = Forest::new(alpha, n, s);
        let lambda = forest.lambda();
        let grid = Arc::new(GridLayout::new((0..alpha as u32).map(ProcessId).collect()));
        let mut blocks = Vec::new();
        let mut start = 3 * t + 5;
        for x in (1..=lambda).rev() {
            let l = (1usize << x) - 1;
            blocks.push(BlockSchedule { x, start, l });
            start += 2 * l + 3;
        }
        let alg1 = Arc::new(Algo1Params {
            t,
            verifier: verifier.clone(),
        });
        Alg5Config {
            n,
            t,
            s,
            alpha,
            lambda,
            verifier,
            forest,
            grid,
            blocks,
            last_phase: start,
            alg1,
            naive_activation: false,
        }
    }

    /// Disables proof-of-work activation gating (every subtree of every
    /// block is activated unconditionally) — the ablation quantifying
    /// what Lemma 4's certificate mechanism saves.
    pub fn with_naive_activation(mut self) -> Self {
        self.naive_activation = true;
        self
    }

    /// Number of Algorithm 2 participants (`2t + 1`).
    pub fn core_count(&self) -> usize {
        2 * self.t + 1
    }

    /// Maps a global phase to its slot in the schedule.
    ///
    /// # Panics
    /// Panics for phases beyond the schedule.
    pub fn slot(&self, phase: usize) -> PhaseSlot {
        if phase <= 3 * self.t + 3 {
            return PhaseSlot::Prefix;
        }
        if phase == 3 * self.t + 4 {
            return PhaseSlot::Handoff;
        }
        if phase == self.last_phase {
            return PhaseSlot::Final;
        }
        for block in &self.blocks {
            if phase >= block.start && phase < block.start + block.len() {
                return PhaseSlot::Block {
                    x: block.x,
                    local: phase - block.start + 1,
                };
            }
        }
        panic!("phase {phase} beyond schedule (last {})", self.last_phase);
    }

    /// The block handling depth `x`.
    pub fn block(&self, x: u32) -> &BlockSchedule {
        self.blocks
            .iter()
            .find(|b| b.x == x)
            .expect("block exists for every 1 <= x <= lambda")
    }

    /// The support threshold `α − 2t`.
    pub fn threshold(&self) -> usize {
        self.alpha - 2 * self.t
    }

    /// Whether the strings in `pi` prove work for the depth-`x` subtree at
    /// `(tree, root_pos)`: the root itself is reported unserved by
    /// `≥ α − 2t` actives, or both child subtrees contain such a processor
    /// (`x = λ` needs no proof).
    pub fn proof_of_work_holds(
        &self,
        pi: &BTreeMap<ProcessId, BTreeSet<ProcessId>>,
        tree: usize,
        root_pos: usize,
        x: u32,
    ) -> bool {
        if x == self.lambda || self.naive_activation {
            return true;
        }
        let threshold = self.threshold();
        let supported = |q: ProcessId| pi.get(&q).map(|s| s.len()).unwrap_or(0) >= threshold;
        let Some(root_id) = self.forest.processor(tree, root_pos) else {
            return false;
        };
        if supported(root_id) {
            return true;
        }
        let mut child_ok = [false, false];
        for (i, child) in [2 * root_pos, 2 * root_pos + 1].into_iter().enumerate() {
            if child <= self.s {
                child_ok[i] = self
                    .forest
                    .subtree_members(tree, child)
                    .into_iter()
                    .any(supported);
            }
        }
        child_ok[0] && child_ok[1]
    }
}

/// An active processor.
#[derive(Debug)]
pub struct Alg5Active {
    cfg: Arc<Alg5Config>,
    me: ProcessId,
    signer: Signer,
    /// Embedded Algorithm 2 state (first `2t + 1` actives only).
    algo2: Option<Algo2Actor>,
    /// My valid message.
    valid: Option<Chain>,
    /// `B(p, x)` for the block about to run / running.
    b_set: BTreeSet<ProcessId>,
    /// Roots contacted in the current block (`C(p, x)` roots).
    contacted: BTreeSet<ProcessId>,
    /// Signers harvested from this block's reports.
    harvested: BTreeSet<ProcessId>,
    /// `F(p, x−1)` computed at this block's grid start.
    f_set: BTreeSet<ProcessId>,
    /// The in-flight grid exchange.
    grid_state: Option<Alg4State>,
    /// Strings harvested from the last *finished* grid round.
    strings: Vec<SignedItem>,
}

impl Alg5Active {
    /// Creates the active actor (`own_value` only for the transmitter).
    pub fn new(
        cfg: Arc<Alg5Config>,
        me: ProcessId,
        signer: Signer,
        own_value: Option<Value>,
        scratch_board: Arc<Board<Chain>>,
    ) -> Self {
        let algo2 = (me.index() < cfg.core_count()).then(|| {
            Algo2Actor::new(
                cfg.alg1.clone(),
                me,
                signer.clone(),
                own_value,
                scratch_board,
            )
        });
        Alg5Active {
            cfg,
            me,
            signer,
            algo2,
            valid: None,
            b_set: BTreeSet::new(),
            contacted: BTreeSet::new(),
            harvested: BTreeSet::new(),
            f_set: BTreeSet::new(),
            grid_state: None,
            strings: Vec::new(),
        }
    }

    fn chains_of(inbox: &[Envelope<Msg5>]) -> Vec<Envelope<Chain>> {
        inbox
            .iter()
            .filter_map(|e| match &e.payload {
                Msg5::Chain(c) => Some(Envelope {
                    from: e.from,
                    to: e.to,
                    payload: c.clone(),
                }),
                _ => None,
            })
            .collect()
    }

    fn grids_of(inbox: &[Envelope<Msg5>]) -> Vec<Envelope<GridMsg>> {
        inbox
            .iter()
            .filter_map(|e| match &e.payload {
                Msg5::Grid(g) => Some(Envelope {
                    from: e.from,
                    to: e.to,
                    payload: g.clone(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Computes `π` from the harvested strings for `index`.
    fn pi(&self, index: u32) -> BTreeMap<ProcessId, BTreeSet<ProcessId>> {
        support_counts(&self.strings, index, self.cfg.alpha, &self.cfg.verifier)
    }

    /// Sends activations for every depth-`x` subtree supported by `pi`,
    /// updating `contacted`.
    fn send_activations(
        &mut self,
        x: u32,
        pi: &BTreeMap<ProcessId, BTreeSet<ProcessId>>,
        out: &mut Outbox<Msg5>,
    ) {
        let Some(valid) = &self.valid else { return };
        self.contacted.clear();
        self.harvested.clear();
        let proof: Vec<SignedItem> = if x == self.cfg.lambda {
            Vec::new()
        } else {
            self.strings
                .iter()
                .filter(|item| decode_string(&item.body).is_some_and(|(i, _)| i == x))
                .cloned()
                .collect()
        };
        for (tree, root_pos) in self.cfg.forest.subtree_roots_at_height(x) {
            if !self.cfg.proof_of_work_holds(pi, tree, root_pos, x) {
                continue;
            }
            let root_id = self
                .cfg
                .forest
                .processor(tree, root_pos)
                .expect("roots at height are real");
            self.contacted.insert(root_id);
            out.send(
                root_id,
                Msg5::Activate {
                    valid: valid.clone(),
                    proof: proof.clone(),
                },
            );
        }
    }

    /// The valid message this active holds (diagnostics).
    pub fn valid_message(&self) -> Option<&Chain> {
        self.valid.as_ref()
    }
}

impl Actor<Msg5> for Alg5Active {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Msg5>], out: &mut Outbox<Msg5>) {
        let cfg = self.cfg.clone();
        let t = cfg.t;
        match cfg.slot(phase) {
            PhaseSlot::Prefix => {
                if let Some(algo2) = &mut self.algo2 {
                    let chains = Self::chains_of(inbox);
                    let mut scratch = Outbox::new(self.me);
                    algo2.step(phase, &chains, &mut scratch);
                    for env in scratch.into_staged() {
                        out.send(env.to, Msg5::Chain(env.payload));
                    }
                }
            }
            PhaseSlot::Handoff => {
                if let Some(algo2) = &mut self.algo2 {
                    let chains = Self::chains_of(inbox);
                    algo2.finalize(&chains);
                    let proof = algo2
                        .proof()
                        .expect("Theorem 4: every correct core processor holds a proof")
                        .clone();
                    let mut valid = proof;
                    if !valid.contains_signer(self.me) {
                        valid.sign_and_append(&self.signer);
                    }
                    if self.me.index() < t + 1 {
                        for p in cfg.core_count()..cfg.alpha {
                            out.send(ProcessId(p as u32), Msg5::Chain(valid.clone()));
                        }
                    }
                    self.valid = Some(valid);
                }
            }
            PhaseSlot::Block { x, local } => {
                let l = cfg.block(x).l;
                if local == 1 {
                    if x == cfg.lambda {
                        // Non-core actives pick up the hand-off valid
                        // message from the inbox.
                        if self.algo2.is_none() && self.valid.is_none() {
                            for env in Self::chains_of(inbox) {
                                if is_valid_message(&env.payload, t, &cfg.verifier) {
                                    self.valid = Some(env.payload);
                                    break;
                                }
                            }
                        }
                        // B(p, λ) = all passive processors; every tree is
                        // activated with an empty proof.
                        self.b_set = (cfg.alpha..cfg.n).map(|i| ProcessId(i as u32)).collect();
                        let pi = BTreeMap::new();
                        self.send_activations(x, &pi, out);
                    } else {
                        // Finish the previous block's grid round, then
                        // compute B(p, x) and C(p, x) from the strings.
                        if let Some(grid) = &mut self.grid_state {
                            grid.finish(&Self::grids_of(inbox));
                            self.strings = grid.result().to_vec();
                        }
                        let pi = self.pi(x);
                        let threshold = cfg.threshold();
                        self.b_set = self
                            .f_set
                            .iter()
                            .copied()
                            .filter(|q| pi.get(q).map(|s| s.len()).unwrap_or(0) >= threshold)
                            .collect();
                        self.send_activations(x, &pi, out);
                    }
                } else if local == 2 * l + 1 {
                    // Reports from activated roots are in the inbox.
                    for env in Self::chains_of(inbox) {
                        if self.contacted.contains(&env.from)
                            && is_valid_message(&env.payload, t, &cfg.verifier)
                        {
                            self.harvested.extend(env.payload.signers());
                        }
                    }
                    // F(p, x−1): still-unserved processors, roots excluded.
                    self.f_set = self
                        .b_set
                        .iter()
                        .copied()
                        .filter(|q| !self.harvested.contains(q) && !self.contacted.contains(q))
                        .collect();
                    // Start the grid round over [F(p, x−1), x−1].
                    let index = x - 1;
                    let body = encode_string(index, &self.f_set);
                    let grid = Alg4State::new(
                        cfg.grid.clone(),
                        self.me,
                        body,
                        &self.signer,
                        cfg.verifier.clone(),
                        GRID_TAG_BASE + index as u64,
                    );
                    grid.phase1_sends(|to, msg| out.send(to, Msg5::Grid(msg)));
                    self.grid_state = Some(grid);
                } else if local == 2 * l + 2 {
                    if let Some(grid) = &mut self.grid_state {
                        grid.phase2_sends(&Self::grids_of(inbox), |to, msg| {
                            out.send(to, Msg5::Grid(msg))
                        });
                    }
                } else if local == 2 * l + 3 {
                    if let Some(grid) = &mut self.grid_state {
                        grid.phase3_sends(&Self::grids_of(inbox), |to, msg| {
                            out.send(to, Msg5::Grid(msg))
                        });
                    }
                }
                // Collection phases (other locals) are passive-only.
            }
            PhaseSlot::Final => {
                // Block 0: finish the block-1 grid, compute B(p, 0) and
                // deliver the valid message directly.
                if let Some(grid) = &mut self.grid_state {
                    grid.finish(&Self::grids_of(inbox));
                    self.strings = grid.result().to_vec();
                }
                let pi = self.pi(0);
                let threshold = cfg.threshold();
                let b0: Vec<ProcessId> = self
                    .f_set
                    .iter()
                    .copied()
                    .filter(|q| pi.get(q).map(|s| s.len()).unwrap_or(0) >= threshold)
                    .collect();
                if let Some(valid) = &self.valid {
                    for q in b0 {
                        out.send(q, Msg5::Chain(valid.clone()));
                    }
                }
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.valid
            .as_ref()
            .map(Chain::value)
            .or_else(|| self.algo2.as_ref().and_then(|a| a.decision()))
    }
}

/// A passive processor: subtree member in blocks above its height, subtree
/// root in the block at its height.
#[derive(Debug)]
pub struct Alg5Passive {
    cfg: Arc<Alg5Config>,
    me: ProcessId,
    signer: Signer,
    tree: usize,
    pos: usize,
    height: u32,
    /// First valid message received (decision source).
    decided: Option<Chain>,
    /// Collection state while activated as a root.
    coll: Option<Collection>,
    /// Optional audit board: posts `true` when activated as a root
    /// (used by the Lemma 4 experiments).
    audit: Option<Arc<Board<bool>>>,
}

#[derive(Debug)]
struct Collection {
    m: Chain,
    /// Real members in BFS order; `nodes[0]` is me.
    nodes: Vec<ProcessId>,
}

impl Alg5Passive {
    /// Creates the passive actor.
    ///
    /// # Panics
    /// Panics if `me` is not a passive processor of this configuration.
    pub fn new(cfg: Arc<Alg5Config>, me: ProcessId, signer: Signer) -> Self {
        let (tree, pos) = cfg.forest.locate(me).expect("passive processor");
        let height = cfg.forest.height(pos);
        Alg5Passive {
            cfg,
            me,
            signer,
            tree,
            pos,
            height,
            decided: None,
            coll: None,
            audit: None,
        }
    }

    /// Enables activation auditing: the actor posts `true` to its slot on
    /// `board` the first time it activates as a subtree root.
    pub fn with_audit(mut self, board: Arc<Board<bool>>) -> Self {
        self.audit = Some(board);
        self
    }

    fn consider(&mut self, chain: &Chain) {
        if self.decided.is_none() && is_valid_message(chain, self.cfg.t, &self.cfg.verifier) {
            self.decided = Some(chain.clone());
        }
    }

    /// Root behaviour for block `x == height`, local phase `local = 2k`.
    fn root_step(
        &mut self,
        x: u32,
        local: usize,
        inbox: &[Envelope<Msg5>],
        out: &mut Outbox<Msg5>,
    ) {
        let cfg = self.cfg.clone();
        let l = cfg.block(x).l;
        if !local.is_multiple_of(2) || local > 2 * l {
            return;
        }
        let k = local / 2;

        if k == 1 {
            // Activation: first well-supported activation wins.
            self.coll = None;
            for env in inbox {
                if let Msg5::Activate { valid, proof } = &env.payload {
                    if !is_valid_message(valid, cfg.t, &cfg.verifier) {
                        continue;
                    }
                    self.consider(valid);
                    if env.from.index() >= cfg.alpha {
                        continue;
                    }
                    let pi = support_counts(proof, x, cfg.alpha, &cfg.verifier);
                    if cfg.proof_of_work_holds(&pi, self.tree, self.pos, x) {
                        let mut m = valid.clone();
                        m.sign_and_append(&self.signer);
                        let nodes = cfg.forest.subtree_members(self.tree, self.pos);
                        self.coll = Some(Collection { m, nodes });
                        if let Some(board) = &self.audit {
                            board.post(self.me, true);
                        }
                        break;
                    }
                }
            }
        } else if let Some(coll) = &mut self.coll {
            // Absorb the return from nodes[k-1], if any.
            if let Some(&expected) = coll.nodes.get(k - 1) {
                for env in inbox {
                    if env.from != expected {
                        continue;
                    }
                    if let Msg5::Chain(ret) = &env.payload {
                        if ret.len() == coll.m.len() + 1
                            && ret.last_signer() == Some(expected)
                            && ret.signatures()[..coll.m.len()] == *coll.m.signatures()
                            && ret.value() == coll.m.value()
                            && ret.domain() == coll.m.domain()
                            && ret.verify(&cfg.verifier).is_ok()
                        {
                            coll.m = ret.clone();
                            break;
                        }
                    }
                }
            }
        }

        if let Some(coll) = &self.coll {
            // Send m to the next member, and report at the block's end.
            if let Some(&next) = coll.nodes.get(k) {
                out.send(next, Msg5::Chain(coll.m.clone()));
            }
            if k == l {
                for a in 0..cfg.alpha {
                    out.send(ProcessId(a as u32), Msg5::Chain(coll.m.clone()));
                }
            }
        }
    }

    /// Member behaviour for block `x > height`.
    fn member_step(
        &mut self,
        x: u32,
        local: usize,
        inbox: &[Envelope<Msg5>],
        out: &mut Outbox<Msg5>,
    ) {
        let cfg = self.cfg.clone();
        let anc = cfg.forest.ancestor_at_height(self.pos, x);
        let Some(root_id) = cfg.forest.processor(self.tree, anc) else {
            return;
        };
        let nodes = cfg.forest.subtree_members(self.tree, anc);
        let Some(idx) = nodes.iter().position(|&q| q == self.me) else {
            return;
        };
        if idx == 0 || local != 2 * idx + 1 {
            return;
        }
        // "Exactly one valid message from the root of my subtree."
        let candidates: Vec<&Chain> = inbox
            .iter()
            .filter(|env| env.from == root_id)
            .filter_map(|env| match &env.payload {
                Msg5::Chain(c) => Some(c),
                _ => None,
            })
            .filter(|c| is_valid_message(c, cfg.t, &cfg.verifier))
            .collect();
        if let [only] = candidates[..] {
            self.consider(only);
            let mut signed = (*only).clone();
            signed.sign_and_append(&self.signer);
            out.send(root_id, Msg5::Chain(signed));
        }
    }

    /// The chain this processor decided on (diagnostics).
    pub fn decided_chain(&self) -> Option<&Chain> {
        self.decided.as_ref()
    }
}

impl Actor<Msg5> for Alg5Passive {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Msg5>], out: &mut Outbox<Msg5>) {
        // Opportunistically decide on any valid chain that reaches us.
        for env in inbox {
            match &env.payload {
                Msg5::Chain(c) => self.consider(&c.clone()),
                Msg5::Activate { valid, .. } => self.consider(&valid.clone()),
                Msg5::Grid(_) => {}
            }
        }
        if let PhaseSlot::Block { x, local } = self.cfg.slot(phase) {
            match x.cmp(&self.height) {
                std::cmp::Ordering::Equal => self.root_step(x, local, inbox, out),
                std::cmp::Ordering::Greater => self.member_step(x, local, inbox, out),
                std::cmp::Ordering::Less => {}
            }
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<Msg5>]) {
        for env in inbox {
            if let Msg5::Chain(c) = &env.payload {
                self.consider(&c.clone());
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decided.as_ref().map(Chain::value)
    }
}

/// Fault scenarios for [`run`].
#[derive(Debug, Default)]
pub enum Alg5Fault {
    /// All correct.
    #[default]
    None,
    /// The given passive processors are silent for the whole run.
    SilentPassives {
        /// The silent processors.
        set: Vec<ProcessId>,
    },
    /// The roots of the given trees (heap position 1) are silent.
    SilentTreeRoots {
        /// Tree indices.
        trees: Vec<usize>,
    },
    /// The roots of the given trees participate in collections but never
    /// report back to the actives (report withholding).
    WithholdingTreeRoots {
        /// Tree indices.
        trees: Vec<usize>,
    },
    /// The given non-transmitter core actives are silent.
    SilentActives {
        /// Active ids (must be `1..2t+1`).
        set: Vec<ProcessId>,
    },
}

/// Options for [`run`].
#[derive(Debug, Default)]
pub struct Alg5Options {
    /// Fault scenario.
    pub fault: Alg5Fault,
    /// Registry seed.
    pub seed: u64,
    /// Signature scheme.
    pub scheme: SchemeKind,
    /// Ablation: activate every subtree unconditionally (no proofs of
    /// work). Correctness is unaffected; message counts blow up — the
    /// experiments use this to quantify Lemma 4's savings.
    pub naive_activation: bool,
}

/// Builds and runs an Algorithm 5 scenario.
///
/// ```
/// use ba_algos::algorithm5::{run, Alg5Options};
/// use ba_crypto::Value;
///
/// let r = run(20, 1, 3, Value::ONE, Alg5Options::default())?;
/// assert_eq!(r.verdict.agreed, Some(Value::ONE));
/// # Ok::<(), ba_sim::AgreementViolation>(())
/// ```
///
/// # Errors
/// Propagates any [`AgreementViolation`].
///
/// # Panics
/// Panics on invalid parameters (see [`Alg5Config::new`]) or oversized
/// fault plans.
pub fn run(
    n: usize,
    t: usize,
    s: usize,
    value: Value,
    options: Alg5Options,
) -> Result<AlgoReport<Msg5>, AgreementViolation> {
    run_audited(n, t, s, value, options).map(|(report, _)| report)
}

/// Like [`run`] but also returns, per passive processor, whether it ever
/// activated as a subtree root — the quantity Lemma 4 bounds by
/// `2·b(C) + 1` activated-or-faulty processors per tree `C` with `b(C)`
/// faults.
///
/// # Errors
/// Propagates any [`AgreementViolation`].
///
/// # Panics
/// As [`run`].
pub fn run_audited(
    n: usize,
    t: usize,
    s: usize,
    value: Value,
    options: Alg5Options,
) -> Result<(AlgoReport<Msg5>, Vec<bool>), AgreementViolation> {
    assert!(
        value == Value::ZERO || value == Value::ONE,
        "algorithm 5 is binary"
    );
    let registry = KeyRegistry::new(n, options.seed, options.scheme);
    let mut cfg = Alg5Config::new(n, t, s, registry.verifier());
    if options.naive_activation {
        cfg = cfg.with_naive_activation();
    }
    let cfg = Arc::new(cfg);
    let scratch = Board::new(cfg.core_count());
    let audit_board: Arc<Board<bool>> = Board::new(n);

    let mut actors: Vec<Box<dyn Actor<Msg5>>> = Vec::with_capacity(n);
    let mut faults = 0usize;
    for i in 0..n as u32 {
        let id = ProcessId(i);
        let silent = match &options.fault {
            Alg5Fault::None => false,
            Alg5Fault::SilentPassives { set } => set.contains(&id),
            Alg5Fault::SilentTreeRoots { trees } => cfg
                .forest
                .locate(id)
                .is_some_and(|(tree, pos)| pos == 1 && trees.contains(&tree)),
            Alg5Fault::WithholdingTreeRoots { .. } => false, // handled below
            Alg5Fault::SilentActives { set } => {
                let is = set.contains(&id);
                assert!(!is || (1..cfg.core_count()).contains(&id.index()));
                is
            }
        };
        let withholding = matches!(
            &options.fault,
            Alg5Fault::WithholdingTreeRoots { trees }
                if cfg.forest.locate(id).is_some_and(|(tree, pos)| pos == 1 && trees.contains(&tree))
        );

        let actor: Box<dyn Actor<Msg5>> = if silent {
            faults += 1;
            Box::new(ba_sim::adversary::Silent)
        } else if withholding {
            faults += 1;
            // An honest passive whose sends to the actives are suppressed.
            let inner = Alg5Passive::new(cfg.clone(), id, registry.signer(id))
                .with_audit(audit_board.clone());
            let active_ids: Vec<ProcessId> = (0..cfg.alpha as u32).map(ProcessId).collect();
            Box::new(ba_sim::adversary::OmitTo::new(inner, active_ids))
        } else if (id.index()) < cfg.alpha {
            Box::new(Alg5Active::new(
                cfg.clone(),
                id,
                registry.signer(id),
                (i == 0).then_some(value),
                scratch.clone(),
            ))
        } else {
            Box::new(
                Alg5Passive::new(cfg.clone(), id, registry.signer(id))
                    .with_audit(audit_board.clone()),
            )
        };
        actors.push(actor);
    }
    assert!(faults <= t, "fault plan exceeds t");

    let mut sim = Simulation::new(actors);
    let outcome = sim.run(cfg.last_phase);
    let report = into_report(outcome, ProcessId(0), value)?;
    let activated: Vec<bool> = audit_board
        .snapshot()
        .into_iter()
        .map(|slot| slot.unwrap_or(false))
        .collect();
    Ok((report, activated))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_shape() {
        let registry = KeyRegistry::new(40, 0, SchemeKind::Fast);
        let cfg = Alg5Config::new(40, 1, 7, registry.verifier());
        assert_eq!(cfg.alpha, 9);
        assert_eq!(cfg.lambda, 3);
        assert_eq!(cfg.blocks.len(), 3);
        // Prefix 1..=6, handoff 7, block 3 starts at 8 (len 17), block 2 at
        // 25 (len 9), block 1 at 34 (len 5), final at 39.
        assert_eq!(cfg.slot(1), PhaseSlot::Prefix);
        assert_eq!(cfg.slot(6), PhaseSlot::Prefix);
        assert_eq!(cfg.slot(7), PhaseSlot::Handoff);
        assert_eq!(cfg.slot(8), PhaseSlot::Block { x: 3, local: 1 });
        assert_eq!(cfg.slot(24), PhaseSlot::Block { x: 3, local: 17 });
        assert_eq!(cfg.slot(25), PhaseSlot::Block { x: 2, local: 1 });
        assert_eq!(cfg.slot(34), PhaseSlot::Block { x: 1, local: 1 });
        assert_eq!(cfg.slot(38), PhaseSlot::Block { x: 1, local: 5 });
        assert_eq!(cfg.slot(39), PhaseSlot::Final);
        assert_eq!(cfg.last_phase, 39);
        assert_eq!(
            cfg.last_phase as u64,
            bounds::alg5_phases_schedule(1, 7),
            "closed form matches the schedule"
        );
    }

    #[test]
    fn string_roundtrip() {
        let members: BTreeSet<ProcessId> = [ProcessId(9), ProcessId(12)].into_iter().collect();
        let body = encode_string(2, &members);
        let (index, decoded) = decode_string(&body).unwrap();
        assert_eq!(index, 2);
        assert_eq!(decoded, vec![ProcessId(9), ProcessId(12)]);
        assert!(decode_string(&body[..3]).is_none());
        assert!(decode_string(b"garbage!").is_none());
    }

    #[test]
    fn valid_message_checks() {
        let t = 1;
        let registry = KeyRegistry::new(10, 5, SchemeKind::Hmac);
        let v = registry.verifier();
        let mut chain = Chain::new(domains::ALG2, Value::ONE);
        chain.sign_and_append(&registry.signer(ProcessId(0)));
        assert!(
            !is_valid_message(&chain, t, &v),
            "needs t+1 = 2 active sigs"
        );
        chain.sign_and_append(&registry.signer(ProcessId(2)));
        assert!(is_valid_message(&chain, t, &v));
        // Passive signatures extend but do not count toward the quorum.
        chain.sign_and_append(&registry.signer(ProcessId(9)));
        assert!(is_valid_message(&chain, t, &v));
        // Wrong domain.
        let mut wrong = Chain::new(domains::ALG1, Value::ONE);
        wrong.sign_and_append(&registry.signer(ProcessId(0)));
        wrong.sign_and_append(&registry.signer(ProcessId(1)));
        assert!(!is_valid_message(&wrong, t, &v));
        // Non-binary value.
        let mut nb = Chain::new(domains::ALG2, Value(7));
        nb.sign_and_append(&registry.signer(ProcessId(0)));
        nb.sign_and_append(&registry.signer(ProcessId(1)));
        assert!(!is_valid_message(&nb, t, &v));
    }

    #[test]
    fn fault_free_agrees_small() {
        // t=1: alpha=9, s=3 (λ=2), n=9+6=15.
        for v in [Value::ZERO, Value::ONE] {
            let r = run(15, 1, 3, v, Alg5Options::default()).unwrap();
            assert_eq!(r.verdict.agreed, Some(v));
            assert_eq!(r.verdict.correct_count, 15);
        }
    }

    #[test]
    fn fault_free_agrees_with_padding() {
        // 13 passives over trees of size 7: one full, one padded.
        let r = run(22, 1, 7, Value::ONE, Alg5Options::default()).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn fault_free_larger_t() {
        // t=2: alpha=16, n=16+30=46, s=3.
        let r = run(46, 2, 3, Value::ONE, Alg5Options::default()).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
        // Theorem 7 envelope.
        assert!(r.outcome.metrics.messages_by_correct <= bounds::alg5_message_envelope(46, 2, 3));
    }

    #[test]
    fn silent_tree_roots_recovered_via_subtree_activation() {
        // t=1, s=7: silencing one tree root forces the proof-of-work path.
        let r = run(
            30,
            1,
            7,
            Value::ONE,
            Alg5Options {
                fault: Alg5Fault::SilentTreeRoots { trees: vec![0] },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn withholding_roots_only_cost_messages() {
        let r = run(
            30,
            1,
            7,
            Value::ONE,
            Alg5Options {
                fault: Alg5Fault::WithholdingTreeRoots { trees: vec![1] },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn silent_passives_tolerated() {
        let r = run(
            24,
            1,
            3,
            Value::ONE,
            Alg5Options {
                fault: Alg5Fault::SilentPassives {
                    set: vec![ProcessId(11)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn silent_core_active_tolerated() {
        let r = run(
            24,
            1,
            3,
            Value::ONE,
            Alg5Options {
                fault: Alg5Fault::SilentActives {
                    set: vec![ProcessId(2)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn no_passives_degenerates_to_core() {
        // n == alpha: every processor is active.
        let r = run(9, 1, 3, Value::ONE, Alg5Options::default()).unwrap();
        assert_eq!(r.verdict.agreed, Some(Value::ONE));
    }

    #[test]
    fn theorem7_envelope_holds_across_sizes() {
        let t = 2; // alpha = 16
        for (n, s) in [(50usize, 3usize), (100, 7), (200, 7)] {
            let r = run(n, t, s, Value::ONE, Alg5Options::default()).unwrap();
            let msgs = r.outcome.metrics.messages_by_correct;
            let envelope = bounds::alg5_message_envelope(n as u64, t as u64, s as u64);
            assert!(msgs <= envelope, "n={n} s={s}: {msgs} > {envelope}");
        }
    }

    /// Lemma 4 audit: per tree `C` with `b(C)` faults, the number of
    /// activated-or-faulty processors is at most `2*b(C) + 1`.
    fn assert_lemma4(n: usize, t: usize, s: usize, fault: Alg5Fault, faulty_ids: &[ProcessId]) {
        let (report, activated) = run_audited(
            n,
            t,
            s,
            Value::ONE,
            Alg5Options {
                fault,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.verdict.agreed, Some(Value::ONE));
        let registry = KeyRegistry::new(n, 0, SchemeKind::Fast);
        let cfg = Alg5Config::new(n, t, s, registry.verifier());
        for tree in 0..cfg.forest.tree_count() {
            let members = cfg.forest.subtree_members(tree, 1);
            let b = members.iter().filter(|m| faulty_ids.contains(m)).count();
            let activated_or_faulty = members
                .iter()
                .filter(|m| activated[m.index()] || faulty_ids.contains(m))
                .count();
            assert!(
                activated_or_faulty <= 2 * b + 1,
                "tree {tree}: {activated_or_faulty} > 2*{b}+1"
            );
        }
    }

    #[test]
    fn lemma4_fault_free_only_tree_roots_activate() {
        assert_lemma4(30, 1, 7, Alg5Fault::None, &[]);
    }

    #[test]
    fn lemma4_silent_root_bounds_activations() {
        // The silent root of tree 0 (p9 with alpha = 9) forces child
        // activations; Lemma 4 caps the total at 2*1 + 1 = 3.
        assert_lemma4(
            30,
            1,
            7,
            Alg5Fault::SilentTreeRoots { trees: vec![0] },
            &[ProcessId(9)],
        );
    }

    #[test]
    fn lemma4_with_larger_t_and_silent_passives() {
        // alpha = 16 at t = 2; passives start at id 16.
        assert_lemma4(
            46,
            2,
            7,
            Alg5Fault::SilentPassives {
                set: vec![ProcessId(17), ProcessId(30)],
            },
            &[ProcessId(17), ProcessId(30)],
        );
    }

    #[test]
    fn naive_activation_still_agrees_but_costs_more() {
        let (n, t, s) = (120usize, 3usize, 7usize);
        let fault = || Alg5Fault::SilentTreeRoots { trees: vec![0] };
        let gated = run(
            n,
            t,
            s,
            Value::ONE,
            Alg5Options {
                fault: fault(),
                ..Default::default()
            },
        )
        .unwrap();
        let naive = run(
            n,
            t,
            s,
            Value::ONE,
            Alg5Options {
                fault: fault(),
                naive_activation: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(gated.verdict.agreed, Some(Value::ONE));
        assert_eq!(naive.verdict.agreed, Some(Value::ONE));
        let g = gated.outcome.metrics.messages_by_correct;
        let na = naive.outcome.metrics.messages_by_correct;
        assert!(
            na > g + g / 4,
            "ablation should cost visibly more: naive {na} vs gated {g}"
        );
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_agreement_under_random_passive_faults() {
            run_cases(8, 0x64, |gen| {
                let lambda = gen.u32_in(1, 3);
                let trees = gen.usize_in(1, 4);
                let seed = gen.u64();
                let victim = gen.u32();
                let t = 1;
                let alpha = 9;
                let s = (1usize << lambda) - 1;
                let n = alpha + trees * s;
                let passive = alpha as u32 + victim % (trees * s) as u32;
                let r = run(
                    n,
                    t,
                    s,
                    Value::ONE,
                    Alg5Options {
                        fault: Alg5Fault::SilentPassives {
                            set: vec![ProcessId(passive)],
                        },
                        seed,
                        scheme: SchemeKind::Fast,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(r.verdict.agreed, Some(Value::ONE));
            });
        }
    }
}
