//! Checkable configuration surfaces for the `ba-check` model checker.
//!
//! The checker explores [`ScheduleSpec`]s — who is faulty, how, and which
//! links drop — but it cannot know how to build each algorithm's actors.
//! This module is that binding: every [`CheckTarget`] names one algorithm
//! configuration, validates a schedule against its parameter constraints,
//! compiles the schedule onto the algorithm's honest actors (mapping
//! [`FaultBehavior::Equivocate`] to the algorithm's own signed-message
//! adversary, everything else through [`FaultBehavior::apply`]) and runs it
//! through the deterministic engine.
//!
//! The registry deliberately includes one **unsound** target,
//! [`weakened Dolev–Strong`](DsParams::weaken_relay_threshold): its relay
//! threshold is off by one, so the right omission schedule splits the
//! correct processors. It exists so the checker's corpus can prove the
//! explorer finds real violations and the shrinker minimizes them.

use crate::algorithm1::{adversaries::EquivocatingTransmitter, Algo1Actor, Algo1Params};
use crate::bounds;
use crate::dolev_strong::{DsActor, DsEquivocator, DsParams, Variant};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Value, VerifierCache};
use ba_sim::schedule::{FaultBehavior, ScheduleError, ScheduleSpec};
use ba_sim::{check_byzantine_agreement, Actor, AgreementViolation, RunVerdict, Simulation};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One schedule-driven run request against a [`CheckTarget`].
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Number of processors.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// The transmitter's input value (binary).
    pub value: Value,
    /// Which processor introduces the value. Multi-valued targets accept
    /// any processor here (the extension layer's availability vote runs
    /// one instance per node, each node transmitting its own vote);
    /// binary-only targets are pinned to processor 0.
    pub transmitter: ProcessId,
    /// Key-registry seed.
    pub seed: u64,
    /// Worker threads for intra-phase stepping (results are byte-identical
    /// for any value).
    pub threads: usize,
    /// The fault schedule under test.
    pub spec: ScheduleSpec,
}

impl CheckConfig {
    /// A config with the conventional transmitter (processor 0).
    pub fn new(
        n: usize,
        t: usize,
        value: Value,
        seed: u64,
        threads: usize,
        spec: ScheduleSpec,
    ) -> Self {
        CheckConfig {
            n,
            t,
            value,
            transmitter: ProcessId(0),
            seed,
            threads,
            spec,
        }
    }
}

/// What one checked run produced: the agreement verdict plus the message
/// counts the paper's bound predicates judge.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The Byzantine Agreement verdict.
    pub verdict: Result<RunVerdict, AgreementViolation>,
    /// Messages sent by correct processors (the paper's count).
    pub messages_by_correct: u64,
    /// The closed-form worst-case bound for this target's parameters.
    pub message_bound: u64,
    /// Messages the schedule suppressed (adversary wrappers + link drops).
    pub omitted_messages: u64,
    /// Phases executed.
    pub phases: usize,
    /// Set when the schedule could not even be compiled onto the target's
    /// actors ([`ScheduleError`]); the run never happened and every count
    /// above is zero.
    pub schedule_error: Option<String>,
}

impl CheckOutcome {
    /// An outcome for a schedule that failed to compile: no run happened,
    /// the error is carried for [`CheckOutcome::failure`] to report.
    fn from_schedule_error(err: ScheduleError) -> Self {
        CheckOutcome {
            verdict: Ok(RunVerdict {
                agreed: None,
                correct_count: 0,
                transmitter_correct: false,
            }),
            messages_by_correct: 0,
            message_bound: 0,
            omitted_messages: 0,
            phases: 0,
            schedule_error: Some(err.to_string()),
        }
    }

    /// The agreement violation, if the run broke Byzantine Agreement.
    pub fn violation(&self) -> Option<&AgreementViolation> {
        self.verdict.as_ref().err()
    }

    /// Whether correct-sender traffic exceeded the target's bound.
    pub fn bound_exceeded(&self) -> bool {
        self.messages_by_correct > self.message_bound
    }

    /// A stable one-line description of what failed, if anything —
    /// schedule-compilation errors first (nothing ran), then agreement
    /// violations, then bound violations.
    pub fn failure(&self) -> Option<String> {
        if let Some(err) = &self.schedule_error {
            return Some(format!("schedule error: {err}"));
        }
        if let Err(violation) = &self.verdict {
            return Some(violation.to_string());
        }
        if self.bound_exceeded() {
            return Some(format!(
                "correct processors sent {} messages, exceeding the bound {}",
                self.messages_by_correct, self.message_bound
            ));
        }
        None
    }
}

/// A compiled-but-not-yet-run target: the actors with the schedule's fault
/// behaviours applied, the key registry they sign against, and the phase /
/// bound parameters.
///
/// [`CheckTarget::run`] drives a setup through the lock-step
/// [`Simulation`]; the `ba-net` runtime drives the *same* setup through
/// its message-passing scheduler, which is what makes the two executions
/// comparable actor-for-actor.
#[derive(Debug)]
pub struct CheckSetup {
    /// The key registry the actors were built against.
    pub registry: KeyRegistry,
    /// One actor per processor, fault behaviours already applied.
    pub actors: Vec<Box<dyn Actor<Chain>>>,
    /// Phases the algorithm needs to terminate.
    pub phases: usize,
    /// The closed-form worst-case message bound for these parameters.
    pub message_bound: u64,
}

/// One named, checkable algorithm configuration.
#[derive(Clone, Copy)]
pub struct CheckTarget {
    /// Stable name used by the CLI, the corpus format and reports.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Whether the target is expected to satisfy Byzantine Agreement under
    /// every well-formed schedule. Violations on a sound target are bugs;
    /// on an unsound target they are the corpus's reason to exist.
    pub sound: bool,
    /// Whether the target can agree on arbitrary (non-binary) input
    /// values. The Dolev–Strong variants relay whatever signed value the
    /// transmitter introduces, so they serve as inner-BA for the
    /// extension layer's digest words; Algorithm 1's bipartite structure
    /// is inherently binary.
    pub multi_valued: bool,
    supports: fn(n: usize, t: usize) -> bool,
    build_fn: fn(&CheckConfig, Option<&Arc<VerifierCache>>) -> Result<CheckSetup, ScheduleError>,
}

impl std::fmt::Debug for CheckTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckTarget")
            .field("name", &self.name)
            .field("sound", &self.sound)
            .finish()
    }
}

impl CheckTarget {
    /// Whether the target accepts the dimensions `(n, t)`.
    pub fn supports(&self, n: usize, t: usize) -> bool {
        (self.supports)(n, t)
    }

    /// Full validation of a config: dimensions, schedule well-formedness,
    /// and the target-specific rule that equivocation only makes sense on
    /// the transmitter ([`CheckConfig::transmitter`]).
    ///
    /// # Errors
    /// A human-readable description of the first problem found.
    pub fn validate(&self, cfg: &CheckConfig) -> Result<(), String> {
        if !self.supports(cfg.n, cfg.t) {
            return Err(format!(
                "target {} does not support n = {}, t = {}",
                self.name, cfg.n, cfg.t
            ));
        }
        if !self.multi_valued && cfg.value != Value::ZERO && cfg.value != Value::ONE {
            return Err(format!("value {} is not binary", cfg.value));
        }
        if cfg.transmitter.index() >= cfg.n {
            return Err(format!(
                "transmitter {} is out of range for n = {}",
                cfg.transmitter, cfg.n
            ));
        }
        if !self.multi_valued && cfg.transmitter != ProcessId(0) {
            return Err(format!(
                "target {} is pinned to transmitter p0 (bipartite structure), got {}",
                self.name, cfg.transmitter
            ));
        }
        cfg.spec.validate(cfg.n, cfg.t)?;
        for (p, behavior) in &cfg.spec.faults {
            if matches!(behavior, FaultBehavior::Equivocate { .. }) && *p != cfg.transmitter {
                return Err(format!(
                    "equivocation scheduled on {p}, but only the transmitter can equivocate"
                ));
            }
        }
        Ok(())
    }

    /// Compiles `cfg`'s schedule onto this target's actors without running
    /// anything. Callers must have validated the config; a malformed one
    /// may panic inside the algorithm.
    ///
    /// # Errors
    /// [`ScheduleError`] when a fault behaviour cannot be mapped onto the
    /// target (today only unmapped equivocation, which the registry targets
    /// all intercept — the error path exists for external targets).
    pub fn build(&self, cfg: &CheckConfig) -> Result<CheckSetup, ScheduleError> {
        debug_assert!(self.validate(cfg).is_ok());
        (self.build_fn)(cfg, None)
    }

    /// Like [`build`](Self::build) but installing `cache` as the built
    /// registry's chain-verification cache, so several setups share one
    /// fleet-wide cache. Sound only when every setup handed this cache uses
    /// the same `(n, seed)` — the multi-instance service layer's "one
    /// cluster identity" invariant (see
    /// [`KeyRegistry::with_shared_cache`]).
    ///
    /// # Errors
    /// As for [`build`](Self::build).
    pub fn build_shared(
        &self,
        cfg: &CheckConfig,
        cache: &Arc<VerifierCache>,
    ) -> Result<CheckSetup, ScheduleError> {
        debug_assert!(self.validate(cfg).is_ok());
        (self.build_fn)(cfg, Some(cache))
    }

    /// Runs the target under `cfg`'s schedule through the lock-step
    /// engine. Callers must have validated the config; a malformed one may
    /// panic inside the algorithm. Schedule-compilation errors are folded
    /// into the outcome ([`CheckOutcome::failure`]) rather than returned,
    /// so explorers treat them as one more per-schedule report.
    pub fn run(&self, cfg: &CheckConfig) -> CheckOutcome {
        match self.build(cfg) {
            Ok(setup) => drive(cfg, setup),
            Err(err) => CheckOutcome::from_schedule_error(err),
        }
    }
}

/// The registry of checkable targets.
pub fn targets() -> &'static [CheckTarget] {
    const TARGETS: &[CheckTarget] = &[
        CheckTarget {
            name: "ds-broadcast",
            summary: "Dolev-Strong, broadcast variant (t + 1 phases, O(n^2) messages)",
            sound: true,
            multi_valued: true,
            supports: ds_supports,
            build_fn: build_ds_broadcast,
        },
        CheckTarget {
            name: "ds-relay",
            summary: "Dolev-Strong, committee-relay variant (t + 3 phases, O(nt) messages)",
            sound: true,
            multi_valued: true,
            supports: ds_supports,
            build_fn: build_ds_relay,
        },
        CheckTarget {
            name: "ds-weak-relay-threshold",
            summary:
                "Dolev-Strong broadcast with an off-by-one relay threshold (deliberately broken)",
            sound: false,
            multi_valued: true,
            supports: ds_supports,
            build_fn: build_ds_weak,
        },
        CheckTarget {
            name: "algorithm1",
            summary: "Algorithm 1, the bipartite signature-chain algorithm (n = 2t + 1)",
            sound: true,
            multi_valued: false,
            supports: alg1_supports,
            build_fn: build_algorithm1,
        },
    ];
    TARGETS
}

/// Looks a target up by its stable name.
pub fn find_target(name: &str) -> Option<&'static CheckTarget> {
    targets().iter().find(|target| target.name == name)
}

fn ds_supports(n: usize, t: usize) -> bool {
    t >= 1 && n >= t + 2
}

fn alg1_supports(n: usize, t: usize) -> bool {
    t >= 1 && n == 2 * t + 1
}

/// Builds the registry for a target, installing the fleet-shared cache
/// when one is supplied (see [`CheckTarget::build_shared`]).
fn registry_for(cfg: &CheckConfig, cache: Option<&Arc<VerifierCache>>) -> KeyRegistry {
    match cache {
        Some(cache) => {
            KeyRegistry::with_shared_cache(cfg.n, cfg.seed, SchemeKind::Fast, Arc::clone(cache))
        }
        None => KeyRegistry::new(cfg.n, cfg.seed, SchemeKind::Fast),
    }
}

fn build_ds_broadcast(
    cfg: &CheckConfig,
    cache: Option<&Arc<VerifierCache>>,
) -> Result<CheckSetup, ScheduleError> {
    build_ds(cfg, cache, Variant::Broadcast, false)
}

fn build_ds_relay(
    cfg: &CheckConfig,
    cache: Option<&Arc<VerifierCache>>,
) -> Result<CheckSetup, ScheduleError> {
    build_ds(cfg, cache, Variant::Relay, false)
}

fn build_ds_weak(
    cfg: &CheckConfig,
    cache: Option<&Arc<VerifierCache>>,
) -> Result<CheckSetup, ScheduleError> {
    build_ds(cfg, cache, Variant::Broadcast, true)
}

fn build_ds(
    cfg: &CheckConfig,
    cache: Option<&Arc<VerifierCache>>,
    variant: Variant,
    weaken: bool,
) -> Result<CheckSetup, ScheduleError> {
    let registry = registry_for(cfg, cache);
    let mut params = DsParams::standard(cfg.n, cfg.t, variant, registry.verifier());
    params.weaken_relay_threshold = weaken;
    params.transmitter = cfg.transmitter;
    let params = Arc::new(params);
    let honest = |p: ProcessId| -> Box<dyn Actor<Chain>> {
        let own = (p == params.transmitter).then_some(cfg.value);
        Box::new(DsActor::new(params.clone(), p, registry.signer(p), own))
    };
    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(cfg.n);
    for p in (0..cfg.n as u32).map(ProcessId) {
        actors.push(match cfg.spec.behavior_of(p) {
            None => honest(p),
            Some(FaultBehavior::Equivocate { ones }) => Box::new(DsEquivocator::new(
                registry.signer(p),
                cfg.n,
                Value::ONE,
                ones.iter().copied(),
                Value::ZERO,
            )),
            Some(other) => other.apply(honest(p))?,
        });
    }
    let phases = params.phases();
    Ok(CheckSetup {
        registry,
        actors,
        phases,
        message_bound: bounds::dolev_strong_max_messages(cfg.n as u64),
    })
}

fn build_algorithm1(
    cfg: &CheckConfig,
    cache: Option<&Arc<VerifierCache>>,
) -> Result<CheckSetup, ScheduleError> {
    let registry = registry_for(cfg, cache);
    let params = Arc::new(Algo1Params {
        t: cfg.t,
        verifier: registry.verifier(),
    });
    let honest = |p: ProcessId| -> Box<dyn Actor<Chain>> {
        let own = (p == cfg.transmitter).then_some(cfg.value);
        Box::new(Algo1Actor::new(params.clone(), p, registry.signer(p), own))
    };
    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(cfg.n);
    for p in (0..cfg.n as u32).map(ProcessId) {
        actors.push(match cfg.spec.behavior_of(p) {
            None => honest(p),
            Some(FaultBehavior::Equivocate { ones }) => {
                let ones: BTreeSet<ProcessId> = ones.iter().copied().collect();
                let zeros: Vec<ProcessId> = (1..cfg.n as u32)
                    .map(ProcessId)
                    .filter(|q| !ones.contains(q))
                    .collect();
                Box::new(EquivocatingTransmitter::new(
                    registry.signer(p),
                    ones,
                    zeros,
                ))
            }
            Some(other) => other.apply(honest(p))?,
        });
    }
    Ok(CheckSetup {
        registry,
        actors,
        phases: cfg.t + 2,
        message_bound: bounds::alg1_max_messages(cfg.t as u64),
    })
}

fn drive(cfg: &CheckConfig, setup: CheckSetup) -> CheckOutcome {
    let mut sim = Simulation::new(setup.actors)
        .with_threads(cfg.threads)
        .with_registry(&setup.registry)
        .with_link_drops(cfg.spec.link_drops.iter().copied());
    let outcome = sim.run(setup.phases);
    let verdict = check_byzantine_agreement(&outcome, cfg.transmitter, cfg.value);
    CheckOutcome {
        verdict,
        messages_by_correct: outcome.metrics.messages_by_correct,
        message_bound: setup.message_bound,
        omitted_messages: outcome.metrics.omitted_messages,
        phases: outcome.metrics.phases,
        schedule_error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::schedule::LinkDrop;

    fn cfg(target_n: usize, t: usize, spec: ScheduleSpec) -> CheckConfig {
        CheckConfig::new(target_n, t, Value::ONE, 0, 1, spec)
    }

    /// The schedule that breaks the weakened Dolev-Strong variant: the
    /// faulty transmitter omits its phase-1 send to p2, so p2 can only
    /// learn the value from length-(t + 1) relays — which the off-by-one
    /// threshold rejects.
    fn splitting_spec() -> ScheduleSpec {
        ScheduleSpec {
            faults: vec![(
                ProcessId(0),
                FaultBehavior::OmitTo {
                    targets: vec![ProcessId(2)],
                },
            )],
            link_drops: vec![],
        }
    }

    #[test]
    fn registry_resolves_names() {
        assert_eq!(targets().len(), 4);
        for target in targets() {
            assert_eq!(find_target(target.name).unwrap().name, target.name);
        }
        assert!(find_target("nope").is_none());
        assert!(find_target("ds-broadcast").unwrap().sound);
        assert!(!find_target("ds-weak-relay-threshold").unwrap().sound);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let ds = find_target("ds-broadcast").unwrap();
        assert!(ds.validate(&cfg(4, 1, ScheduleSpec::default())).is_ok());
        assert!(ds.validate(&cfg(2, 1, ScheduleSpec::default())).is_err());
        // Dolev–Strong relays arbitrary signed values, so a non-binary
        // input is valid there (the extension layer's digest words depend
        // on this) — but binary-only targets still reject it.
        let mut non_binary = cfg(4, 1, ScheduleSpec::default());
        non_binary.value = Value(7);
        assert!(ds.validate(&non_binary).is_ok());
        let mut non_binary_alg1 = cfg(5, 2, ScheduleSpec::default());
        non_binary_alg1.value = Value(7);
        assert!(find_target("algorithm1")
            .unwrap()
            .validate(&non_binary_alg1)
            .is_err());
        // Equivocation off the transmitter is target-invalid even though
        // the spec itself is well-formed.
        let eq_spec = ScheduleSpec {
            faults: vec![(ProcessId(1), FaultBehavior::Equivocate { ones: vec![] })],
            link_drops: vec![],
        };
        assert!(ds.validate(&cfg(4, 1, eq_spec)).is_err());

        let alg1 = find_target("algorithm1").unwrap();
        assert!(alg1.validate(&cfg(5, 2, ScheduleSpec::default())).is_ok());
        assert!(alg1.validate(&cfg(6, 2, ScheduleSpec::default())).is_err());
    }

    #[test]
    fn multi_valued_targets_agree_on_arbitrary_values() {
        // The extension layer agrees on digest words through the DS
        // variants; a fault-free run must carry an arbitrary 64-bit value
        // to every correct processor, and a faulty transmitter must still
        // leave agreement intact (validity is then vacuous).
        for name in ["ds-broadcast", "ds-relay"] {
            let target = find_target(name).unwrap();
            assert!(target.multi_valued);
            let mut config = cfg(5, 1, ScheduleSpec::default());
            config.value = Value(0x00AB_CDEF_0123_4567);
            let outcome = target.run(&config);
            assert_eq!(outcome.failure(), None, "{name}");
            let verdict = outcome.verdict.unwrap();
            assert_eq!(verdict.agreed, Some(config.value), "{name}");

            let mut config = cfg(5, 1, splitting_spec());
            config.value = Value(0x00AB_CDEF_0123_4567);
            assert_eq!(target.run(&config).failure(), None, "{name} under faults");
        }
    }

    #[test]
    fn non_zero_transmitters_run_on_multi_valued_targets() {
        // The availability vote runs one DS instance per node, each node
        // transmitting its own vote — so every processor must be usable as
        // the transmitter, with agreement checked against that processor.
        for name in ["ds-broadcast", "ds-relay"] {
            let target = find_target(name).unwrap();
            for transmitter in 0..5u32 {
                let mut config = cfg(5, 1, ScheduleSpec::default());
                config.transmitter = ProcessId(transmitter);
                config.value = Value(transmitter as u64 + 10);
                target.validate(&config).unwrap();
                let outcome = target.run(&config);
                assert_eq!(outcome.failure(), None, "{name} tx {transmitter}");
                let verdict = outcome.verdict.unwrap();
                assert_eq!(
                    verdict.agreed,
                    Some(config.value),
                    "{name} tx {transmitter}"
                );
            }
            // A faulty non-zero transmitter leaves agreement intact.
            let mut config = cfg(
                5,
                1,
                ScheduleSpec {
                    faults: vec![(ProcessId(3), FaultBehavior::Silent)],
                    link_drops: vec![],
                },
            );
            config.transmitter = ProcessId(3);
            assert_eq!(target.run(&config).failure(), None, "{name} faulty tx");
        }
        // Binary-only targets stay pinned to p0, and out-of-range
        // transmitters are rejected everywhere.
        let alg1 = find_target("algorithm1").unwrap();
        let mut config = cfg(5, 2, ScheduleSpec::default());
        config.transmitter = ProcessId(1);
        assert!(alg1.validate(&config).is_err());
        let ds = find_target("ds-broadcast").unwrap();
        let mut config = cfg(4, 1, ScheduleSpec::default());
        config.transmitter = ProcessId(4);
        assert!(ds.validate(&config).is_err());
        // Equivocation is keyed to the configured transmitter.
        let eq_spec = ScheduleSpec {
            faults: vec![(ProcessId(1), FaultBehavior::Equivocate { ones: vec![] })],
            link_drops: vec![],
        };
        let mut config = cfg(4, 1, eq_spec);
        config.transmitter = ProcessId(1);
        assert!(ds.validate(&config).is_ok());
    }

    #[test]
    fn sound_targets_survive_restriction_schedules() {
        let specs = [
            ScheduleSpec::default(),
            ScheduleSpec {
                faults: vec![(ProcessId(0), FaultBehavior::Silent)],
                link_drops: vec![],
            },
            ScheduleSpec {
                faults: vec![(ProcessId(1), FaultBehavior::CrashAt { phase: 2 })],
                link_drops: vec![],
            },
            splitting_spec(),
            ScheduleSpec {
                faults: vec![(ProcessId(0), FaultBehavior::Passive)],
                link_drops: vec![LinkDrop {
                    phase: 1,
                    from: ProcessId(0),
                    to: ProcessId(3),
                }],
            },
            ScheduleSpec {
                faults: vec![(
                    ProcessId(0),
                    FaultBehavior::Equivocate {
                        ones: vec![ProcessId(1)],
                    },
                )],
                link_drops: vec![],
            },
        ];
        for target_name in ["ds-broadcast", "ds-relay"] {
            let target = find_target(target_name).unwrap();
            for spec in &specs {
                let config = cfg(5, 2, spec.clone());
                target.validate(&config).unwrap();
                let outcome = target.run(&config);
                assert_eq!(outcome.failure(), None, "{target_name} {spec:?}");
            }
        }
        let alg1 = find_target("algorithm1").unwrap();
        for spec in &specs {
            let config = cfg(5, 2, spec.clone());
            alg1.validate(&config).unwrap();
            let outcome = alg1.run(&config);
            assert_eq!(outcome.failure(), None, "algorithm1 {spec:?}");
        }
    }

    #[test]
    fn weakened_target_splits_under_transmitter_omission() {
        let weak = find_target("ds-weak-relay-threshold").unwrap();
        let config = cfg(4, 1, splitting_spec());
        weak.validate(&config).unwrap();
        let outcome = weak.run(&config);
        assert!(
            matches!(
                outcome.violation(),
                Some(AgreementViolation::Disagreement { .. })
            ),
            "expected disagreement, got {:?}",
            outcome.verdict
        );
        // The same schedule is harmless against the correct protocol.
        let sound = find_target("ds-broadcast").unwrap();
        assert_eq!(sound.run(&config).failure(), None);
    }

    #[test]
    fn schedule_errors_surface_as_failures_not_panics() {
        let outcome = CheckOutcome::from_schedule_error(ScheduleError::UnmappedEquivocation);
        let failure = outcome.failure().unwrap();
        assert!(failure.starts_with("schedule error:"), "{failure}");
        assert!(failure.contains("protocol-specific"), "{failure}");
        // A schedule error outranks a bound violation in the report.
        let mut both = outcome;
        both.messages_by_correct = 10;
        both.message_bound = 1;
        assert!(both.failure().unwrap().starts_with("schedule error:"));
    }

    #[test]
    fn build_exposes_the_same_setup_run_drives() {
        let target = find_target("ds-broadcast").unwrap();
        let config = cfg(4, 1, splitting_spec());
        let setup = target.build(&config).unwrap();
        assert_eq!(setup.actors.len(), 4);
        assert!(setup.phases >= 2);
        let outcome = target.run(&config);
        assert_eq!(outcome.phases, setup.phases);
        assert_eq!(outcome.message_bound, setup.message_bound);
        assert_eq!(outcome.schedule_error, None);
    }

    #[test]
    fn build_shared_installs_the_fleet_cache() {
        let target = find_target("ds-broadcast").unwrap();
        let config = cfg(4, 1, ScheduleSpec::default());
        let cache = Arc::new(VerifierCache::new());
        let a = target.build_shared(&config, &cache).unwrap();
        let b = target.build_shared(&config, &cache).unwrap();
        a.registry.cache().insert_verified(&[[3u8; 32]]);
        assert_eq!(b.registry.cache().len(), 1);
        assert_eq!(cache.len(), 1);
        // A plain build keeps its own private cache.
        let solo = target.build(&config).unwrap();
        assert_eq!(solo.registry.cache().len(), 0);
    }

    #[test]
    fn runs_are_thread_count_independent() {
        for target in targets() {
            let n = if target.name == "algorithm1" { 5 } else { 4 };
            let t = if target.name == "algorithm1" { 2 } else { 1 };
            let mut config = cfg(n, t, splitting_spec());
            let sequential = target.run(&config);
            config.threads = 4;
            let parallel = target.run(&config);
            assert_eq!(sequential.verdict, parallel.verdict, "{}", target.name);
            assert_eq!(
                sequential.messages_by_correct, parallel.messages_by_correct,
                "{}",
                target.name
            );
            assert_eq!(
                sequential.omitted_messages, parallel.omitted_messages,
                "{}",
                target.name
            );
        }
    }
}
