//! Algorithm 2 — Algorithm 1 plus a transferable proof (Theorem 4).
//!
//! After the `t + 2` phases of Algorithm 1, the `2t + 1` processors —
//! written `p(1), …, p(2t+1)` in label order, label `j` being processor
//! `j − 1` — run `2t + 1` accumulation phases. A message received by `p(j)`
//! after phase `t + 2` is *increasing* if it carries the value `p(j)`
//! committed to in phase `t + 2` together with signatures of processors
//! with labels less than `j`, in increasing label order.
//!
//! * **Phase `t + 2 + j`** (`1 ≤ j ≤ 2t + 1`) — `p(j)` takes `m(j)`, an
//!   increasing message it has received with the maximum number of
//!   signatures (or the bare committed value if none), signs it, and sends
//!   it to everyone if `m(j)` carried at least `t` signatures, otherwise
//!   only to labels `j + 1 … j + t + 1`.
//!
//! Theorem 4: after `3t + 3` phases every correct processor possesses the
//! common value with at least `t` signatures of *other* processors — a
//! one-message proof for the outside world — no processor can hold such a
//! proof for any other value, and at most `5t² + 5t` messages are sent.
//!
//! The proof each processor ends with is deposited on a
//! [`Board`] in [`common`](crate::common) so callers can inspect it after the run.

use crate::algorithm1::{Algo1Actor, Algo1Params};
use crate::common::{domains, into_report, AlgoReport, Board};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signer, Value, Verifier};
use ba_sim::actor::{Actor, Envelope, Outbox};
use ba_sim::engine::Simulation;
use ba_sim::AgreementViolation;
use std::sync::Arc;

/// Checks that `chain` is a well-formed increasing message for a receiver
/// with label `upper_label` (all signer labels strictly below it, strictly
/// increasing) carrying `value`.
///
/// Labels are `id + 1`; `upper_label` is exclusive. Pass `usize::MAX` to
/// accept any strictly-increasing chain (used when harvesting proofs).
pub fn is_increasing_message(
    chain: &Chain,
    value: Value,
    upper_label: usize,
    verifier: &Verifier,
) -> bool {
    if chain.domain() != domains::ALG2 || chain.value() != value || chain.is_empty() {
        return false;
    }
    if chain.verify(verifier).is_err() {
        return false;
    }
    let mut prev = 0usize; // labels start at 1
    for signer in chain.signers() {
        let label = signer.index() + 1;
        if label <= prev || label >= upper_label {
            return false;
        }
        prev = label;
    }
    true
}

/// Whether `chain` proves `value` to the outside world: it verifies and
/// carries at least `t` distinct signatures of processors other than
/// `owner`.
pub fn is_transferable_proof(
    chain: &Chain,
    value: Value,
    owner: ProcessId,
    t: usize,
    verifier: &Verifier,
) -> bool {
    if chain.value() != value || chain.verify(verifier).is_err() {
        return false;
    }
    let mut others: Vec<ProcessId> = chain.signers().filter(|&s| s != owner).collect();
    others.sort_unstable();
    others.dedup();
    others.len() >= t
}

/// An honest Algorithm 2 processor.
#[derive(Debug)]
pub struct Algo2Actor {
    algo1: Algo1Actor,
    params: Arc<Algo1Params>,
    me: ProcessId,
    signer: Signer,
    committed: Option<Value>,
    /// Best increasing message received so far (most signatures).
    best: Option<Chain>,
    /// Best proof candidate seen (own signed m(j) or received chain).
    proof: Option<Chain>,
    proofs: Arc<Board<Chain>>,
}

impl Algo2Actor {
    /// Creates the actor for `me`; `own_value` is `Some` for the
    /// transmitter only.
    pub fn new(
        params: Arc<Algo1Params>,
        me: ProcessId,
        signer: Signer,
        own_value: Option<Value>,
        proofs: Arc<Board<Chain>>,
    ) -> Self {
        let algo1 = Algo1Actor::new(params.clone(), me, signer.clone(), own_value);
        Algo2Actor {
            algo1,
            params,
            me,
            signer,
            committed: None,
            best: None,
            proof: None,
            proofs,
        }
    }

    /// My 1-based label.
    fn label(&self) -> usize {
        self.me.index() + 1
    }

    fn absorb_increasing(&mut self, inbox: &[Envelope<Chain>]) {
        let Some(committed) = self.committed else {
            return;
        };
        for env in inbox {
            if is_increasing_message(&env.payload, committed, self.label(), &self.params.verifier) {
                let better = self
                    .best
                    .as_ref()
                    .is_none_or(|b| env.payload.len() > b.len());
                if better {
                    self.best = Some(env.payload.clone());
                }
            }
            if env.payload.domain() == domains::ALG2
                && is_transferable_proof(
                    &env.payload,
                    committed,
                    self.me,
                    self.params.t,
                    &self.params.verifier,
                )
            {
                let better = self
                    .proof
                    .as_ref()
                    .is_none_or(|p| env.payload.len() > p.len());
                if better {
                    self.proof = Some(env.payload.clone());
                }
            }
        }
    }

    /// The transferable proof held so far, if any.
    pub fn proof(&self) -> Option<&Chain> {
        self.proof.as_ref()
    }
}

impl Actor<Chain> for Algo2Actor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        let t = self.params.t;
        let n = self.params.n();

        if phase <= t + 2 {
            self.algo1.step(phase, inbox, out);
            return;
        }

        if phase == t + 3 {
            // The inbox still holds phase-(t+2) Algorithm 1 traffic.
            self.algo1.finalize(inbox);
            self.committed = self.algo1.decision();
        } else {
            self.absorb_increasing(inbox);
        }

        let j = phase - (t + 2);
        if j == self.label() {
            let committed = self.committed.expect("committed at phase t+3");
            let (mut m, received_sigs) = match &self.best {
                Some(b) => (b.clone(), b.len()),
                None => (Chain::new(domains::ALG2, committed), 0),
            };
            m.sign_and_append(&self.signer);
            if is_transferable_proof(&m, committed, self.me, t, &self.params.verifier) {
                let better = self.proof.as_ref().is_none_or(|p| m.len() > p.len());
                if better {
                    self.proof = Some(m.clone());
                }
            }
            if received_sigs >= t {
                out.broadcast((0..n as u32).map(ProcessId), m);
            } else {
                let targets = (self.label() + 1..=(self.label() + t + 1).min(n))
                    .map(|label| ProcessId(label as u32 - 1));
                out.broadcast(targets, m);
            }
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
        self.absorb_increasing(inbox);
        if let Some(proof) = &self.proof {
            self.proofs.post(self.me, proof.clone());
        }
    }

    fn decision(&self) -> Option<Value> {
        self.committed.or_else(|| self.algo1.decision())
    }
}

/// Adversaries specific to Algorithm 2's accumulation stage.
pub mod adversaries {
    use super::*;

    /// A faulty processor that runs Algorithm 1 honestly (so the prefix
    /// still commits) but gossips a *wrong value* chain signed only by
    /// itself during its accumulation slot — correct receivers must reject
    /// it as not increasing for their committed value.
    #[derive(Debug)]
    pub struct WrongValueGossip {
        inner: Algo2Actor,
        signer: Signer,
        params: Arc<Algo1Params>,
        wrong: Value,
    }

    impl WrongValueGossip {
        /// Creates the adversary gossiping `wrong` from `me`'s slot.
        pub fn new(
            params: Arc<Algo1Params>,
            me: ProcessId,
            signer: Signer,
            proofs: Arc<Board<Chain>>,
            wrong: Value,
        ) -> Self {
            let inner = Algo2Actor::new(params.clone(), me, signer.clone(), None, proofs);
            WrongValueGossip {
                inner,
                signer,
                params,
                wrong,
            }
        }
    }

    impl Actor<Chain> for WrongValueGossip {
        fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
            let t = self.params.t;
            let n = self.params.n();
            if phase <= t + 2 {
                self.inner.step(phase, inbox, out);
                return;
            }
            let j = phase - (t + 2);
            if j == self.inner.label() {
                // Broadcast a self-signed wrong-value chain to everyone.
                let mut m = Chain::new(domains::ALG2, self.wrong);
                m.sign_and_append(&self.signer);
                out.broadcast((0..n as u32).map(ProcessId), m);
            } else {
                self.inner.step(phase, inbox, out);
            }
        }
        fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
            self.inner.finalize(inbox);
        }
        fn decision(&self) -> Option<Value> {
            None
        }
        fn is_correct(&self) -> bool {
            false
        }
    }
}

/// Fault scenarios for [`run`].
#[derive(Debug, Default)]
pub enum Algo2Fault {
    /// All processors correct.
    #[default]
    None,
    /// The given processors are silent for the whole run (the transmitter
    /// may be among them).
    Silent {
        /// The silent processors.
        set: Vec<ProcessId>,
    },
    /// The given processors run Algorithm 1 honestly, then crash at the
    /// start of the accumulation stage.
    CrashAfterCommit {
        /// The crashing processors.
        set: Vec<ProcessId>,
    },
    /// The given processors gossip a wrong value during their slots.
    WrongValueGossip {
        /// The lying processors (transmitter excluded).
        set: Vec<ProcessId>,
        /// The value they push.
        wrong: Value,
    },
}

/// Options for [`run`].
#[derive(Debug, Default)]
pub struct Algo2Options {
    /// Fault scenario.
    pub fault: Algo2Fault,
    /// Key-registry seed.
    pub seed: u64,
    /// Signature scheme.
    pub scheme: SchemeKind,
}

/// Report from an Algorithm 2 run: the base report plus each processor's
/// deposited transferable proof.
#[derive(Debug)]
pub struct Algo2Report {
    /// Agreement report.
    pub report: AlgoReport<Chain>,
    /// Per-processor proofs (index = processor id).
    pub proofs: Vec<Option<Chain>>,
    /// Verifier for inspecting the proofs.
    pub verifier: Verifier,
}

/// Builds and runs an Algorithm 2 scenario with `n = 2t + 1` processors.
///
/// ```
/// use ba_algos::algorithm2::{run, Algo2Options};
/// use ba_crypto::Value;
///
/// let r = run(2, Value::ONE, Algo2Options::default())?;
/// assert_eq!(r.report.verdict.agreed, Some(Value::ONE));
/// assert!(r.proofs.iter().all(Option::is_some));
/// # Ok::<(), ba_sim::AgreementViolation>(())
/// ```
///
/// # Errors
/// Propagates any [`AgreementViolation`] (a bug if it happens).
///
/// # Panics
/// Panics if `t == 0`, the fault set exceeds `t`, or `value` is not binary.
pub fn run(
    t: usize,
    value: Value,
    options: Algo2Options,
) -> Result<Algo2Report, AgreementViolation> {
    assert!(t >= 1, "algorithm 2 needs t >= 1");
    assert!(
        value == Value::ZERO || value == Value::ONE,
        "algorithm 2 is binary"
    );
    let n = 2 * t + 1;
    let registry = KeyRegistry::new(n, options.seed, options.scheme);
    let params = Arc::new(Algo1Params {
        t,
        verifier: registry.verifier(),
    });
    let proofs = Board::new(n);

    let honest = |p: u32| -> Box<dyn Actor<Chain>> {
        Box::new(Algo2Actor::new(
            params.clone(),
            ProcessId(p),
            registry.signer(ProcessId(p)),
            if p == 0 { Some(value) } else { None },
            proofs.clone(),
        ))
    };

    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(n);
    match &options.fault {
        Algo2Fault::None => {
            for p in 0..n as u32 {
                actors.push(honest(p));
            }
        }
        Algo2Fault::Silent { set } => {
            assert!(set.len() <= t);
            for p in 0..n as u32 {
                if set.contains(&ProcessId(p)) {
                    actors.push(Box::new(ba_sim::adversary::Silent));
                } else {
                    actors.push(honest(p));
                }
            }
        }
        Algo2Fault::CrashAfterCommit { set } => {
            assert!(set.len() <= t);
            for p in 0..n as u32 {
                if set.contains(&ProcessId(p)) {
                    let inner = Algo2Actor::new(
                        params.clone(),
                        ProcessId(p),
                        registry.signer(ProcessId(p)),
                        if p == 0 { Some(value) } else { None },
                        proofs.clone(),
                    );
                    actors.push(Box::new(ba_sim::adversary::Crash::new(inner, t + 4)));
                } else {
                    actors.push(honest(p));
                }
            }
        }
        Algo2Fault::WrongValueGossip { set, wrong } => {
            assert!(set.len() <= t);
            assert!(
                !set.contains(&ProcessId(0)),
                "use Equivocate scenarios for the transmitter"
            );
            for p in 0..n as u32 {
                if set.contains(&ProcessId(p)) {
                    actors.push(Box::new(adversaries::WrongValueGossip::new(
                        params.clone(),
                        ProcessId(p),
                        registry.signer(ProcessId(p)),
                        proofs.clone(),
                        *wrong,
                    )));
                } else {
                    actors.push(honest(p));
                }
            }
        }
    }

    let mut sim = Simulation::new(actors);
    let outcome = sim.run(3 * t + 3);
    let report = into_report(outcome, ProcessId(0), value)?;
    Ok(Algo2Report {
        report,
        proofs: proofs.snapshot(),
        verifier: registry.verifier(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    fn assert_all_correct_hold_proofs(r: &Algo2Report, t: usize) {
        let common = r.report.verdict.agreed.expect("agreed");
        for (i, correct) in r.report.outcome.correct.iter().enumerate() {
            if !correct {
                continue;
            }
            let owner = ProcessId(i as u32);
            let proof = r.proofs[i]
                .as_ref()
                .unwrap_or_else(|| panic!("p{i} holds no proof"));
            assert!(
                is_transferable_proof(proof, common, owner, t, &r.verifier),
                "p{i} proof invalid: {proof}"
            );
        }
    }

    #[test]
    fn fault_free_gives_everyone_proofs_within_bounds() {
        for t in 1..=5 {
            let r = run(t, Value::ONE, Algo2Options::default()).unwrap();
            assert_eq!(r.report.verdict.agreed, Some(Value::ONE));
            assert_all_correct_hold_proofs(&r, t);
            let msgs = r.report.outcome.metrics.messages_by_correct;
            assert!(
                msgs <= bounds::alg2_max_messages(t as u64),
                "t={t}: {msgs} > {}",
                bounds::alg2_max_messages(t as u64)
            );
            assert_eq!(
                r.report.outcome.metrics.phases as u64,
                bounds::alg2_phases(t as u64)
            );
        }
    }

    #[test]
    fn fault_free_value_zero_also_proves() {
        let t = 3;
        let r = run(t, Value::ZERO, Algo2Options::default()).unwrap();
        assert_eq!(r.report.verdict.agreed, Some(Value::ZERO));
        assert_all_correct_hold_proofs(&r, t);
    }

    #[test]
    fn silent_minority_cannot_block_proofs() {
        let t = 3;
        let r = run(
            t,
            Value::ONE,
            Algo2Options {
                fault: Algo2Fault::Silent {
                    set: vec![ProcessId(1), ProcessId(3), ProcessId(5)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.report.verdict.agreed, Some(Value::ONE));
        assert_all_correct_hold_proofs(&r, t);
    }

    #[test]
    fn crash_after_commit_tolerated() {
        let t = 4;
        let r = run(
            t,
            Value::ONE,
            Algo2Options {
                fault: Algo2Fault::CrashAfterCommit {
                    set: vec![ProcessId(2), ProcessId(4), ProcessId(7)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.report.verdict.agreed, Some(Value::ONE));
        assert_all_correct_hold_proofs(&r, t);
    }

    #[test]
    fn consecutive_silent_run_is_bridged() {
        // The proof of Theorem 4 relies on gaps of up to t faulty labels
        // being bridged by the (t+1)-wide send window; make the gap maximal.
        let t = 3;
        let r = run(
            t,
            Value::ONE,
            Algo2Options {
                fault: Algo2Fault::Silent {
                    set: vec![ProcessId(2), ProcessId(3), ProcessId(4)],
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.report.verdict.agreed, Some(Value::ONE));
        assert_all_correct_hold_proofs(&r, t);
    }

    #[test]
    fn wrong_value_gossip_is_rejected() {
        let t = 3;
        let r = run(
            t,
            Value::ONE,
            Algo2Options {
                fault: Algo2Fault::WrongValueGossip {
                    set: vec![ProcessId(2), ProcessId(5)],
                    wrong: Value::ZERO,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.report.verdict.agreed, Some(Value::ONE));
        assert_all_correct_hold_proofs(&r, t);
        // No correct processor may hold a proof of the wrong value
        // (Theorem 4's second claim).
        for (i, proof) in r.proofs.iter().enumerate() {
            if let Some(p) = proof {
                if r.report.outcome.correct[i] {
                    assert_eq!(p.value(), Value::ONE, "p{i} holds wrong-value proof");
                }
            }
        }
    }

    #[test]
    fn no_proof_of_uncommon_value_is_constructible() {
        // Even pooling every faulty signature, a t-coalition cannot reach
        // t distinct *other* signatures on a wrong value.
        let t = 2;
        let n = 2 * t + 1;
        let registry = KeyRegistry::new(n, 7, SchemeKind::Hmac);
        let mut forged = Chain::new(domains::ALG2, Value::ZERO);
        forged.sign_and_append(&registry.signer(ProcessId(3)));
        forged.sign_and_append(&registry.signer(ProcessId(4)));
        assert!(forged.verify(&registry.verifier()).is_ok());
        assert!(!is_transferable_proof(
            &forged,
            Value::ZERO,
            ProcessId(3),
            t,
            &registry.verifier()
        ));
    }

    #[test]
    fn increasing_message_validation() {
        let n = 5;
        let registry = KeyRegistry::new(n, 3, SchemeKind::Hmac);
        let v = registry.verifier();
        let chain = |ids: &[u32], value: Value, domain: u32| {
            let mut c = Chain::new(domain, value);
            for &i in ids {
                c.sign_and_append(&registry.signer(ProcessId(i)));
            }
            c
        };

        // Labels are id+1: ids [0,2,4] = labels [1,3,5], increasing.
        let good = chain(&[0, 2, 4], Value::ONE, domains::ALG2);
        assert!(is_increasing_message(&good, Value::ONE, 7, &v));
        // Receiver label 5 must reject label-5 signature.
        assert!(!is_increasing_message(&good, Value::ONE, 5, &v));
        // Wrong value.
        assert!(!is_increasing_message(&good, Value::ZERO, 7, &v));
        // Not increasing.
        let bad = chain(&[2, 0], Value::ONE, domains::ALG2);
        assert!(!is_increasing_message(&bad, Value::ONE, 7, &v));
        // Duplicate label.
        let dup = chain(&[1, 1], Value::ONE, domains::ALG2);
        assert!(!is_increasing_message(&dup, Value::ONE, 7, &v));
        // Wrong domain.
        let dom = chain(&[0, 2], Value::ONE, domains::ALG1);
        assert!(!is_increasing_message(&dom, Value::ONE, 7, &v));
        // Empty chain.
        assert!(!is_increasing_message(
            &Chain::new(domains::ALG2, Value::ONE),
            Value::ONE,
            7,
            &v
        ));
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        /// Theorem 4 holds under random silent-fault sets.
        #[test]
        fn prop_proofs_survive_random_silence() {
            run_cases(16, 0x6E, |gen| {
                let t = gen.usize_in(1, 5);
                let mask = gen.u32();
                let seed = gen.u64();
                let n = 2 * t + 1;
                let set: Vec<ProcessId> = (1..n as u32)
                    .filter(|p| mask & (1 << (p % 31)) != 0)
                    .take(t)
                    .map(ProcessId)
                    .collect();
                let r = run(
                    t,
                    Value::ONE,
                    Algo2Options {
                        fault: Algo2Fault::Silent { set },
                        seed,
                        scheme: SchemeKind::Fast,
                    },
                )
                .unwrap();
                assert_all_correct_hold_proofs(&r, t);
                assert!(
                    r.report.outcome.metrics.messages_by_correct
                        <= crate::bounds::alg2_max_messages(t as u64)
                );
            });
        }
    }
}
