//! Complete-binary-tree bookkeeping for Algorithm 5.
//!
//! The passive processors are divided into complete binary trees of size
//! `s = 2^λ − 1` in heap layout (positions `1..=s`, children of `v` at
//! `2v` and `2v + 1`). Leaves have *height* 1 and the tree root has height
//! `λ`. The paper's "subtrees whose leaves are the leaves of the original
//! binary tree" of depth `x` are exactly the subtrees rooted at
//! height-`x` nodes.
//!
//! When the passive count is not a multiple of `s`, the last tree is
//! *padded*: positions beyond the roster simply have no processor, the
//! collection order skips them, and they never appear in any `F`/`B` set.

use ba_crypto::ProcessId;

/// The forest of passive trees in an Algorithm 5 run.
#[derive(Clone, Debug)]
pub struct Forest {
    /// Number of active processors (passives start at this id).
    alpha: usize,
    /// Total processors.
    n: usize,
    /// Tree size `2^λ − 1`.
    s: usize,
    /// Tree depth `λ`.
    lambda: u32,
}

impl Forest {
    /// Creates the forest; `s` must be `2^λ − 1` for some `λ ≥ 1`.
    ///
    /// # Panics
    /// Panics if `s + 1` is not a power of two, or `alpha > n`.
    pub fn new(alpha: usize, n: usize, s: usize) -> Self {
        assert!(
            (s + 1).is_power_of_two() && s >= 1,
            "tree size must be 2^λ - 1"
        );
        assert!(alpha <= n, "more actives than processors");
        let lambda = (s + 1).ilog2();
        Forest {
            alpha,
            n,
            s,
            lambda,
        }
    }

    /// Tree depth `λ`.
    pub fn lambda(&self) -> u32 {
        self.lambda
    }

    /// Tree size `s`.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Number of passive processors.
    pub fn passive_count(&self) -> usize {
        self.n - self.alpha
    }

    /// Number of trees `⌈(n − α)/s⌉`.
    pub fn tree_count(&self) -> usize {
        self.passive_count().div_ceil(self.s)
    }

    /// The processor at heap position `pos` (1-based) of `tree`, if the
    /// slot is not padding.
    pub fn processor(&self, tree: usize, pos: usize) -> Option<ProcessId> {
        debug_assert!((1..=self.s).contains(&pos));
        let idx = self.alpha + tree * self.s + (pos - 1);
        (idx < self.n).then_some(ProcessId(idx as u32))
    }

    /// The `(tree, heap position)` of passive `p`.
    pub fn locate(&self, p: ProcessId) -> Option<(usize, usize)> {
        let idx = p.index();
        if idx < self.alpha || idx >= self.n {
            return None;
        }
        let off = idx - self.alpha;
        Some((off / self.s, off % self.s + 1))
    }

    /// Height of heap position `pos`: leaves have height 1, the tree root
    /// has height `λ`.
    pub fn height(&self, pos: usize) -> u32 {
        self.lambda - pos.ilog2()
    }

    /// The ancestor of `pos` at height `x` (i.e. the root of the depth-`x`
    /// subtree containing `pos`).
    ///
    /// # Panics
    /// Panics if `x` is below `pos`'s own height.
    pub fn ancestor_at_height(&self, pos: usize, x: u32) -> usize {
        let h = self.height(pos);
        assert!(x >= h, "no ancestor below own height");
        pos >> (x - h)
    }

    /// Heap positions of the depth-`x` subtree rooted at `root_pos`, in
    /// BFS order (root first).
    pub fn subtree_positions(&self, root_pos: usize) -> Vec<usize> {
        let mut order = vec![root_pos];
        let mut i = 0;
        while i < order.len() {
            let v = order[i];
            for child in [2 * v, 2 * v + 1] {
                if child <= self.s {
                    order.push(child);
                }
            }
            i += 1;
        }
        order
    }

    /// Real (non-padding) processors of the subtree rooted at
    /// `(tree, root_pos)`, in BFS order.
    pub fn subtree_members(&self, tree: usize, root_pos: usize) -> Vec<ProcessId> {
        self.subtree_positions(root_pos)
            .into_iter()
            .filter_map(|pos| self.processor(tree, pos))
            .collect()
    }

    /// All depth-`x` subtree roots `(tree, root_pos)` that have a real
    /// processor as root.
    pub fn subtree_roots_at_height(&self, x: u32) -> Vec<(usize, usize)> {
        assert!(x >= 1 && x <= self.lambda);
        let level = self.lambda - x; // root level 0
        let first = 1usize << level;
        let last = (1usize << (level + 1)) - 1;
        let mut roots = Vec::new();
        for tree in 0..self.tree_count() {
            for pos in first..=last {
                if self.processor(tree, pos).is_some() {
                    roots.push((tree, pos));
                }
            }
        }
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_and_ancestors() {
        // λ = 3, s = 7: positions 1 (h3), 2-3 (h2), 4-7 (h1).
        let f = Forest::new(9, 30, 7);
        assert_eq!(f.lambda(), 3);
        assert_eq!(f.height(1), 3);
        assert_eq!(f.height(2), 2);
        assert_eq!(f.height(3), 2);
        assert_eq!(f.height(7), 1);
        assert_eq!(f.ancestor_at_height(7, 1), 7);
        assert_eq!(f.ancestor_at_height(7, 2), 3);
        assert_eq!(f.ancestor_at_height(7, 3), 1);
        assert_eq!(f.ancestor_at_height(4, 3), 1);
        assert_eq!(f.ancestor_at_height(5, 2), 2);
    }

    #[test]
    fn processor_mapping_and_padding() {
        // alpha=9, n=30: 21 passives; s=7 -> exactly 3 full trees.
        let f = Forest::new(9, 30, 7);
        assert_eq!(f.tree_count(), 3);
        assert_eq!(f.processor(0, 1), Some(ProcessId(9)));
        assert_eq!(f.processor(0, 7), Some(ProcessId(15)));
        assert_eq!(f.processor(2, 7), Some(ProcessId(29)));
        assert_eq!(f.locate(ProcessId(9)), Some((0, 1)));
        assert_eq!(f.locate(ProcessId(29)), Some((2, 7)));
        assert_eq!(f.locate(ProcessId(8)), None, "active");
        assert_eq!(f.locate(ProcessId(30)), None, "out of range");

        // Padded: alpha=9, n=25 -> 16 passives, last tree has 2 real nodes.
        let p = Forest::new(9, 25, 7);
        assert_eq!(p.tree_count(), 3);
        assert_eq!(p.processor(2, 2), Some(ProcessId(24)));
        assert_eq!(p.processor(2, 3), None);
        assert_eq!(p.subtree_members(2, 1).len(), 2);
    }

    #[test]
    fn subtree_orders() {
        let f = Forest::new(9, 30, 7);
        assert_eq!(f.subtree_positions(1), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(f.subtree_positions(2), vec![2, 4, 5]);
        assert_eq!(f.subtree_positions(3), vec![3, 6, 7]);
        assert_eq!(f.subtree_positions(7), vec![7]);
        let members = f.subtree_members(1, 2);
        assert_eq!(
            members,
            vec![
                ProcessId(9 + 7 + 1),
                ProcessId(9 + 7 + 3),
                ProcessId(9 + 7 + 4)
            ]
        );
    }

    #[test]
    fn subtree_roots_per_height() {
        let f = Forest::new(9, 30, 7);
        assert_eq!(f.subtree_roots_at_height(3).len(), 3, "one per tree");
        assert_eq!(f.subtree_roots_at_height(2).len(), 6);
        assert_eq!(f.subtree_roots_at_height(1).len(), 12);
        // Padded forest drops padding roots.
        let p = Forest::new(9, 25, 7);
        let leaves = p.subtree_roots_at_height(1);
        // Trees 0,1 full: 4 leaves each; tree 2 has real positions 1,2 only.
        assert_eq!(leaves.len(), 8);
    }

    #[test]
    #[should_panic(expected = "2^λ - 1")]
    fn bad_tree_size_rejected() {
        let _ = Forest::new(9, 30, 6);
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_locate_roundtrip() {
            run_cases(48, 0x61, |gen| {
                let lambda = gen.u32_in(1, 5);
                let alpha = gen.usize_in(1, 20);
                let extra = gen.usize_in(0, 40);
                let s = (1usize << lambda) - 1;
                let n = alpha + extra;
                let f = Forest::new(alpha, n, s);
                for idx in alpha..n {
                    let p = ProcessId(idx as u32);
                    let (tree, pos) = f.locate(p).unwrap();
                    assert_eq!(f.processor(tree, pos), Some(p));
                    // Every passive's height-λ ancestor is its tree root.
                    assert_eq!(f.ancestor_at_height(pos, f.lambda()), 1);
                }
            });
        }

        #[test]
        fn prop_subtree_members_partition_leaf_level() {
            run_cases(48, 0x62, |gen| {
                let lambda = gen.u32_in(1, 4);
                let s = (1usize << lambda) - 1;
                let alpha = 4;
                let n = alpha + 2 * s; // two full trees
                let f = Forest::new(alpha, n, s);
                // Depth-x subtrees at a given height partition all nodes of
                // height <= x.
                for x in 1..=lambda {
                    let mut seen = std::collections::BTreeSet::new();
                    for (tree, root) in f.subtree_roots_at_height(x) {
                        for m in f.subtree_members(tree, root) {
                            assert!(seen.insert(m), "overlap at {m}");
                        }
                    }
                    // Per tree: 2^(λ−x) subtrees of 2^x − 1 nodes each.
                    let per_tree = (1usize << lambda) - (1usize << (lambda - x));
                    assert_eq!(seen.len(), 2 * per_tree);
                }
            });
        }
    }
}
