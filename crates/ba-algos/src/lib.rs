//! The Dolev–Reischuk Byzantine Agreement algorithms.
//!
//! This crate implements the paper's primary contribution — the five
//! algorithms of *Bounds on Information Exchange for Byzantine Agreement*
//! (PODC 1982 / JACM 1985) — plus the baselines it compares against and the
//! closed-form bounds it proves:
//!
//! * [`algorithm1`] — the bipartite signature-chain algorithm for
//!   `n = 2t + 1`: `t + 2` phases, at most `2t² + 2t` messages (Theorem 3);
//! * [`algorithm2`] — Algorithm 1 plus a label-ordered accumulation stage
//!   giving every correct processor a *transferable proof* (the common
//!   value with at least `t` other signatures) within `3t + 3` phases and
//!   `5t² + 5t` messages (Theorem 4);
//! * [`algorithm3`] — the active/passive architecture for large `n`:
//!   `t + 2s + 3` phases and `≤ 2n + 4tn/s + 3t²s` messages (Lemma 1),
//!   yielding `O(n + t³)` messages for `s = 4t` (Theorem 5) and the intro's
//!   phases-versus-messages trade-off;
//! * [`algorithm4`] — the 3-phase `√N × √N` grid exchange in which all but
//!   `2t` correct processors mutually exchange values using `O(N^1.5)`
//!   messages (Theorem 6);
//! * [`algorithm5`] — binary-tree dissemination with activation
//!   certificates ("proofs of work"), `O(t² + nt/s)` messages; `s = t`
//!   matches the `Ω(n + t²)` lower bound (Theorem 7);
//! * [`dolev_strong`] — the authenticated baseline of Dolev & Strong
//!   (reference 9 of the paper): `t + 1` phases, `O(n²)`/`O(nt)`
//!   messages;
//! * [`om`] — the unauthenticated Lamport–Shostak–Pease oral-messages
//!   baseline `OM(t)` (reference 14), used for the Corollary 1
//!   experiment;
//! * [`bounds`] — every closed-form bound the paper states, as plain
//!   functions the experiments print next to measured counts.
//!
//! Beyond the paper's letter, the crate ships what a downstream user
//! needs:
//!
//! * [`agree`](crate::agree()) — a one-call facade encoding Section 5's
//!   regime map (`n = 2t+1` → Algorithm 1; `n < α` → the Algorithm 2 +
//!   hand-off extension; `n ≥ α` → Algorithm 5);
//! * [`algorithm1_multi`] — the paper's "more than two values"
//!   modification of Algorithm 1;
//! * [`ic`] — interactive consistency (vector agreement) from parallel
//!   Dolev–Strong instances;
//! * [`checkable`] — the named target registry the `ba-check` model
//!   checker drives: each target compiles a declarative fault schedule
//!   onto one algorithm configuration and reports the agreement verdict
//!   next to the paper's message-bound predicate;
//! * [`trees`] — the complete-binary-tree bookkeeping behind Algorithm 5;
//! * [`fuzz`] — chain-aware payload fuzzers and spam harnesses proving
//!   the validators hold up under arbitrary Byzantine bytes.
//!
//! All algorithms run on the [`ba_sim`] synchronous engine and sign with
//! [`ba_crypto`] chains. Each module also ships the adversaries relevant to
//! its worst case (equivocating transmitters, chain-withholding coalitions,
//! corrupt group roots, …).
//!
//! # Quickstart
//!
//! ```
//! use ba_algos::algorithm1::{self, Algo1Options};
//! use ba_crypto::Value;
//!
//! // n = 2t + 1 = 9 processors, fault-free, transmitter sends 1.
//! let report = algorithm1::run(4, Value::ONE, Algo1Options::default())?;
//! assert_eq!(report.verdict.agreed, Some(Value::ONE));
//! assert!(report.outcome.metrics.messages_by_correct <= ba_algos::bounds::alg1_max_messages(4));
//! # Ok::<(), ba_sim::AgreementViolation>(())
//! ```

pub mod agree;
pub mod algorithm1;
pub mod algorithm1_multi;
pub mod algorithm2;
pub mod algorithm3;
pub mod algorithm4;
pub mod algorithm5;
pub mod bounds;
pub mod checkable;
pub mod common;
pub mod dolev_strong;
pub mod fuzz;
pub mod ic;
pub mod om;
pub mod trees;

pub use agree::{agree, AgreeOptions, AgreeReport, Selected};
pub use checkable::{find_target, targets, CheckConfig, CheckOutcome, CheckSetup, CheckTarget};
pub use common::{domains, AlgoReport};
