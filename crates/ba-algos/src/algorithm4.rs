//! Algorithm 4 — the 3-phase `√N × √N` grid exchange (Lemma 2, Theorem 6).
//!
//! `N = m²` processors `p(i, j)` each hold a value and want (almost) all
//! correct processors to learn (almost) all correct values while sending
//! only `O(N^1.5)` messages — far below the `Ω(Nt)` needed for *full*
//! mutual exchange:
//!
//! * **Phase 1** — `p(i, j)` signs its value and sends it along row `i`.
//!   `M1(i, j, k)` is the correctly-formatted value received from
//!   `p(i, k)`.
//! * **Phase 2** — `p(i, j)` sends `[M1(i, j, 1), …, M1(i, j, m)]` down
//!   column `j`. `M2(i, j, l)` is the correctly-formatted row bundle
//!   received from `p(l, j)`.
//! * **Phase 3** — `p(i, j)` sends `[M2(i, j, 1), …, M2(i, j, m)]` along
//!   row `i`; `M3(i, j)` is everything received.
//!
//! Lemma 2: with at most `t` faults there is a set `P` of at least
//! `N − 2t` correct processors (those whose row has fewer than `m/2`
//! faults) such that every member of `P` ends up holding every other
//! member's signed value. Total messages: at most `3(m − 1)m²`.
//!
//! The state machine ([`Alg4State`]) is deliberately embeddable: the active
//! processors of Algorithm 5 run one instance per block, with a per-block
//! `tag` separating the signature spaces.

use crate::common::domains;
use ba_crypto::wire::Encoder;
use ba_crypto::Bytes;
use ba_crypto::{KeyRegistry, ProcessId, SchemeKind, Signature, Signer, Value, Verifier};
use ba_sim::actor::{Actor, Envelope, Outbox, Payload};
use ba_sim::engine::{RunOutcome, Simulation};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A value (opaque bytes) signed by one grid member.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedItem {
    /// The carried value.
    pub body: Bytes,
    /// Signature over `(GRID domain, tag, body)`.
    pub sig: Signature,
}

impl SignedItem {
    /// Canonical bytes the signature covers.
    fn content(tag: u64, body: &[u8]) -> Bytes {
        let mut enc = Encoder::with_capacity(16 + body.len());
        enc.u32(domains::GRID).u64(tag).bytes(body);
        enc.finish()
    }

    /// Signs `body` under `tag`.
    pub fn new(tag: u64, body: Bytes, signer: &Signer) -> Self {
        let sig = signer.sign(&Self::content(tag, &body));
        SignedItem { body, sig }
    }

    /// The claimed signer.
    pub fn signer(&self) -> ProcessId {
        self.sig.signer()
    }

    /// Whether the signature verifies under `tag`.
    pub fn verifies(&self, tag: u64, verifier: &Verifier) -> bool {
        verifier.verify(&self.sig, &Self::content(tag, &self.body))
    }
}

/// Grid messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GridMsg {
    /// Phase 1: one signed value.
    Item(SignedItem),
    /// Phase 2: a row bundle.
    Row(Vec<SignedItem>),
    /// Phase 3: bundles of row bundles.
    Rows(Vec<Vec<SignedItem>>),
}

impl Payload for GridMsg {
    fn signature_count(&self) -> usize {
        match self {
            GridMsg::Item(_) => 1,
            GridMsg::Row(items) => items.len(),
            GridMsg::Rows(rows) => rows.iter().map(Vec::len).sum(),
        }
    }
    fn weight_bytes(&self) -> usize {
        match self {
            GridMsg::Item(item) => item.body.len() + 40,
            GridMsg::Row(items) => items.iter().map(|i| i.body.len() + 40).sum(),
            GridMsg::Rows(rows) => rows
                .iter()
                .flat_map(|r| r.iter())
                .map(|i| i.body.len() + 40)
                .sum(),
        }
    }
    fn kind(&self) -> &'static str {
        "grid"
    }
}

/// Maps grid coordinates to processor identities (row-major).
#[derive(Clone, Debug)]
pub struct GridLayout {
    ids: Vec<ProcessId>,
    m: usize,
}

impl GridLayout {
    /// Creates a layout over `ids`; `ids.len()` must be a perfect square
    /// `m²` with `m ≥ 1`.
    ///
    /// # Panics
    /// Panics when the length is not a positive perfect square.
    pub fn new(ids: Vec<ProcessId>) -> Self {
        let m = (ids.len() as f64).sqrt().round() as usize;
        assert!(
            m >= 1 && m * m == ids.len(),
            "grid needs a perfect square of processors"
        );
        GridLayout { ids, m }
    }

    /// Side length `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total processors `m²`.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the grid is empty (never true for a constructed layout).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The processor at 0-based `(row, col)`.
    pub fn id(&self, row: usize, col: usize) -> ProcessId {
        self.ids[row * self.m + col]
    }

    /// The 0-based `(row, col)` of `p`, if on the grid.
    pub fn pos(&self, p: ProcessId) -> Option<(usize, usize)> {
        self.ids
            .iter()
            .position(|&q| q == p)
            .map(|idx| (idx / self.m, idx % self.m))
    }

    /// All members of `row`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.m).map(move |c| self.id(row, c))
    }

    /// All members of `col`.
    pub fn col(&self, col: usize) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.m).map(move |r| self.id(r, col))
    }
}

/// The per-processor Algorithm 4 state machine.
///
/// Callers drive it with exactly four calls in successive phases:
/// [`phase1_sends`](Self::phase1_sends), [`phase2_sends`](Self::phase2_sends)
/// (with phase 1's inbox), [`phase3_sends`](Self::phase3_sends) (with
/// phase 2's inbox), and [`finish`](Self::finish) (with phase 3's inbox);
/// then [`result`](Self::result) is the set `M3`.
#[derive(Debug)]
pub struct Alg4State {
    layout: Arc<GridLayout>,
    verifier: Verifier,
    me: ProcessId,
    row: usize,
    col: usize,
    tag: u64,
    my_item: SignedItem,
    /// Valid row items (own first).
    m1: Vec<SignedItem>,
    /// Valid row bundles received down the column (own bundle included).
    m2: Vec<Vec<SignedItem>>,
    /// Final harvested set, deduplicated by `(signer, body)`.
    m3: Vec<SignedItem>,
    m3_seen: BTreeSet<(u32, Bytes)>,
}

impl Alg4State {
    /// Creates the state for `me` holding `body`, signing with `signer`.
    ///
    /// # Panics
    /// Panics if `me` is not on the grid or `signer` is for a different
    /// identity.
    pub fn new(
        layout: Arc<GridLayout>,
        me: ProcessId,
        body: Bytes,
        signer: &Signer,
        verifier: Verifier,
        tag: u64,
    ) -> Self {
        assert_eq!(signer.id(), me, "signer must belong to the grid member");
        let (row, col) = layout.pos(me).expect("processor must be on the grid");
        let my_item = SignedItem::new(tag, body, signer);
        let mut state = Alg4State {
            layout,
            verifier,
            me,
            row,
            col,
            tag,
            my_item: my_item.clone(),
            m1: vec![my_item.clone()],
            m2: Vec::new(),
            m3: Vec::new(),
            m3_seen: BTreeSet::new(),
        };
        state.harvest(std::iter::once(my_item));
        state
    }

    /// The grid member this state belongs to.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    fn harvest(&mut self, items: impl IntoIterator<Item = SignedItem>) {
        for item in items {
            let key = (item.signer().0, item.body.clone());
            if self.m3_seen.insert(key) {
                self.m3.push(item);
            }
        }
    }

    /// Phase 1: send the signed value along my row.
    pub fn phase1_sends(&self, mut send: impl FnMut(ProcessId, GridMsg)) {
        for target in self.layout.row(self.row) {
            if target != self.me {
                send(target, GridMsg::Item(self.my_item.clone()));
            }
        }
    }

    /// Phase 2: absorb phase-1 row items, then send the bundle down my
    /// column.
    pub fn phase2_sends(
        &mut self,
        inbox: &[Envelope<GridMsg>],
        mut send: impl FnMut(ProcessId, GridMsg),
    ) {
        let row_set: BTreeSet<ProcessId> = self.layout.row(self.row).collect();
        for env in inbox {
            if let GridMsg::Item(item) = &env.payload {
                // Correct format: signed by the actual row sender.
                if row_set.contains(&env.from)
                    && item.signer() == env.from
                    && item.verifies(self.tag, &self.verifier)
                {
                    self.m1.push(item.clone());
                }
            }
        }
        self.harvest(self.m1.clone());
        self.m2.push(self.m1.clone()); // my own row bundle
        for target in self.layout.col(self.col) {
            if target != self.me {
                send(target, GridMsg::Row(self.m1.clone()));
            }
        }
    }

    /// Phase 3: absorb phase-2 column bundles, then send everything along
    /// my row.
    pub fn phase3_sends(
        &mut self,
        inbox: &[Envelope<GridMsg>],
        mut send: impl FnMut(ProcessId, GridMsg),
    ) {
        for env in inbox {
            if let GridMsg::Row(items) = &env.payload {
                let Some((l, c)) = self.layout.pos(env.from) else {
                    continue;
                };
                if c != self.col || items.len() > self.layout.m() {
                    continue;
                }
                // Correct format: every item signed by a member of row l.
                let row_l: BTreeSet<ProcessId> = self.layout.row(l).collect();
                let ok = items.iter().all(|item| {
                    row_l.contains(&item.signer()) && item.verifies(self.tag, &self.verifier)
                });
                if ok {
                    self.m2.push(items.clone());
                    self.harvest(items.iter().cloned());
                }
            }
        }
        let bundle: Vec<Vec<SignedItem>> = self.m2.clone();
        for target in self.layout.row(self.row) {
            if target != self.me {
                send(target, GridMsg::Rows(bundle.clone()));
            }
        }
    }

    /// Final absorption of phase-3 bundles into `M3`.
    pub fn finish(&mut self, inbox: &[Envelope<GridMsg>]) {
        let row_set: BTreeSet<ProcessId> = self.layout.row(self.row).collect();
        for env in inbox {
            if let GridMsg::Rows(rows) = &env.payload {
                if !row_set.contains(&env.from) || rows.len() > 2 * self.layout.m() {
                    continue;
                }
                for items in rows {
                    if items.len() > self.layout.m() {
                        continue;
                    }
                    // Each inner list must be one row's signatures.
                    let rows_of_signers: BTreeSet<usize> = items
                        .iter()
                        .filter_map(|i| self.layout.pos(i.signer()).map(|(r, _)| r))
                        .collect();
                    if rows_of_signers.len() > 1 {
                        continue;
                    }
                    let valid: Vec<SignedItem> = items
                        .iter()
                        .filter(|i| {
                            self.layout.pos(i.signer()).is_some()
                                && i.verifies(self.tag, &self.verifier)
                        })
                        .cloned()
                        .collect();
                    self.harvest(valid);
                }
            }
        }
    }

    /// The harvested set `M3`: every signed value this processor ended up
    /// holding.
    pub fn result(&self) -> &[SignedItem] {
        &self.m3
    }
}

/// A standalone grid actor for the Theorem 6 experiment: exchanges its own
/// id as the value and deposits `M3` on a board.
#[derive(Debug)]
pub struct GridActor {
    state: Alg4State,
    results: Arc<crate::common::Board<Vec<SignedItem>>>,
}

impl GridActor {
    /// Creates the actor; its exchanged value is its own id.
    pub fn new(
        layout: Arc<GridLayout>,
        me: ProcessId,
        signer: &Signer,
        verifier: Verifier,
        tag: u64,
        results: Arc<crate::common::Board<Vec<SignedItem>>>,
    ) -> Self {
        let mut enc = Encoder::with_capacity(4);
        enc.process_id(me);
        let state = Alg4State::new(layout, me, enc.finish(), signer, verifier, tag);
        GridActor { state, results }
    }
}

impl Actor<GridMsg> for GridActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<GridMsg>], out: &mut Outbox<GridMsg>) {
        match phase {
            1 => self.state.phase1_sends(|to, msg| out.send(to, msg)),
            2 => self.state.phase2_sends(inbox, |to, msg| out.send(to, msg)),
            3 => self.state.phase3_sends(inbox, |to, msg| out.send(to, msg)),
            _ => {}
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<GridMsg>]) {
        self.state.finish(inbox);
        self.results
            .post(self.state.me(), self.state.result().to_vec());
    }

    fn decision(&self) -> Option<Value> {
        // The exchange primitive has no agreement decision; report a
        // constant so the engine's decision slot is well-defined.
        Some(Value::ZERO)
    }
}

/// Outcome of a standalone Algorithm 4 run.
#[derive(Debug)]
pub struct Alg4Report {
    /// Raw engine outcome.
    pub outcome: RunOutcome<GridMsg>,
    /// Each processor's harvested `M3` (by processor index).
    pub results: Vec<Option<Vec<SignedItem>>>,
    /// The faulty processors of the scenario.
    pub faulty: Vec<ProcessId>,
    /// Side length.
    pub m: usize,
}

impl Alg4Report {
    /// Lemma 2's set `P`: correct processors whose row contains fewer than
    /// `m/2` faulty processors.
    pub fn lemma2_set(&self) -> Vec<ProcessId> {
        let m = self.m;
        let faulty: BTreeSet<ProcessId> = self.faulty.iter().copied().collect();
        let mut p_set = Vec::new();
        for row in 0..m {
            let row_ids: Vec<ProcessId> = (0..m).map(|c| ProcessId((row * m + c) as u32)).collect();
            let row_faults = row_ids.iter().filter(|id| faulty.contains(id)).count();
            if 2 * row_faults < m {
                for id in row_ids {
                    if !faulty.contains(&id) {
                        p_set.push(id);
                    }
                }
            }
        }
        p_set
    }

    /// Whether every member of `P` holds every other member's value.
    pub fn mutual_exchange_holds(&self) -> bool {
        let p_set = self.lemma2_set();
        for &holder in &p_set {
            let Some(m3) = &self.results[holder.index()] else {
                return false;
            };
            let signers: BTreeSet<ProcessId> = m3.iter().map(SignedItem::signer).collect();
            for &other in &p_set {
                if !signers.contains(&other) {
                    return false;
                }
            }
        }
        true
    }
}

/// Runs a standalone `m × m` grid exchange with the given silent faults.
///
/// ```
/// use ba_algos::algorithm4::run;
/// use ba_crypto::SchemeKind;
///
/// let report = run(3, vec![], 1, SchemeKind::Fast);
/// assert!(report.mutual_exchange_holds());
/// ```
///
/// # Panics
/// Panics if `m == 0` or a fault id is off the grid.
pub fn run(m: usize, faulty: Vec<ProcessId>, seed: u64, scheme: SchemeKind) -> Alg4Report {
    assert!(m >= 1);
    let n = m * m;
    assert!(faulty.iter().all(|p| p.index() < n));
    let registry = KeyRegistry::new(n, seed, scheme);
    let layout = Arc::new(GridLayout::new((0..n as u32).map(ProcessId).collect()));
    let results = crate::common::Board::new(n);
    let tag = 0xA164;

    let mut actors: Vec<Box<dyn Actor<GridMsg>>> = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let id = ProcessId(i);
        if faulty.contains(&id) {
            actors.push(Box::new(ba_sim::adversary::Silent));
        } else {
            actors.push(Box::new(GridActor::new(
                layout.clone(),
                id,
                &registry.signer(id),
                registry.verifier(),
                tag,
                results.clone(),
            )));
        }
    }

    let mut sim = Simulation::new(actors);
    let outcome = sim.run(3);
    Alg4Report {
        outcome,
        results: results.snapshot(),
        faulty,
        m,
    }
}

/// The paper's naive two-phase full-exchange baseline (Section 6 intro):
/// "Select `t + 1` processors; they will play the role of relay
/// processors. At phase 1 each processor signs and sends its value to
/// every relay processor. A relay processor combines all the incoming
/// messages and its own value to one long message and sends it to every
/// nonrelay processor at phase 2."
///
/// Guarantees *full* mutual exchange among correct processors (unlike
/// Algorithm 4's `N − 2t` subset) at a cost of
/// `(N−1)(t+1) + (N−t−1)(t+1) = O(Nt)` messages — the `Ω(Nt)` regime
/// Theorem 6 undercuts when only a high percentage of processors need to
/// succeed.
#[derive(Debug)]
pub struct RelayExchangeActor {
    n: usize,
    t: usize,
    me: ProcessId,
    my_item: SignedItem,
    verifier: Verifier,
    tag: u64,
    /// Values this processor ended up holding.
    harvested: Vec<SignedItem>,
    seen: BTreeSet<(u32, Bytes)>,
    results: Arc<crate::common::Board<Vec<SignedItem>>>,
}

impl RelayExchangeActor {
    /// Creates the actor; its exchanged value is its own id. Relays are
    /// processors `0..=t`.
    pub fn new(
        n: usize,
        t: usize,
        me: ProcessId,
        signer: &Signer,
        verifier: Verifier,
        tag: u64,
        results: Arc<crate::common::Board<Vec<SignedItem>>>,
    ) -> Self {
        let mut enc = Encoder::with_capacity(4);
        enc.process_id(me);
        let my_item = SignedItem::new(tag, enc.finish(), signer);
        let mut actor = RelayExchangeActor {
            n,
            t,
            me,
            my_item: my_item.clone(),
            verifier,
            tag,
            harvested: Vec::new(),
            seen: BTreeSet::new(),
            results,
        };
        actor.harvest(std::iter::once(my_item));
        actor
    }

    fn is_relay(&self, p: ProcessId) -> bool {
        p.index() <= self.t
    }

    fn harvest(&mut self, items: impl IntoIterator<Item = SignedItem>) {
        for item in items {
            if item.verifies(self.tag, &self.verifier)
                && self.seen.insert((item.signer().0, item.body.clone()))
            {
                self.harvested.push(item);
            }
        }
    }

    fn absorb(&mut self, inbox: &[Envelope<GridMsg>]) {
        let mut collected: Vec<SignedItem> = Vec::new();
        for env in inbox {
            match &env.payload {
                GridMsg::Item(item) if item.signer() == env.from => {
                    collected.push(item.clone());
                }
                GridMsg::Row(items) if self.is_relay(env.from) => {
                    collected.extend(items.iter().cloned());
                }
                _ => {}
            }
        }
        self.harvest(collected);
    }
}

impl Actor<GridMsg> for RelayExchangeActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<GridMsg>], out: &mut Outbox<GridMsg>) {
        match phase {
            1 => {
                // Everyone sends its signed value to every relay.
                for r in 0..=self.t as u32 {
                    out.send(ProcessId(r), GridMsg::Item(self.my_item.clone()));
                }
            }
            2 => {
                self.absorb(inbox);
                if self.is_relay(self.me) {
                    // Combine everything into one long message for the
                    // non-relays.
                    let bundle = GridMsg::Row(self.harvested.clone());
                    for p in self.t as u32 + 1..self.n as u32 {
                        out.send(ProcessId(p), bundle.clone());
                    }
                }
            }
            _ => {}
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<GridMsg>]) {
        self.absorb(inbox);
        self.results.post(self.me, self.harvested.clone());
    }

    fn decision(&self) -> Option<Value> {
        Some(Value::ZERO) // exchange primitive: no agreement decision
    }
}

/// Outcome of a [`relay_exchange`] run.
#[derive(Debug)]
pub struct RelayExchangeReport {
    /// Raw engine outcome.
    pub outcome: RunOutcome<GridMsg>,
    /// Each processor's harvested values (by processor index).
    pub results: Vec<Option<Vec<SignedItem>>>,
    /// The faulty processors of the scenario.
    pub faulty: Vec<ProcessId>,
}

impl RelayExchangeReport {
    /// Whether every correct processor holds every correct processor's
    /// value — the *full* exchange this baseline guarantees.
    pub fn full_exchange_holds(&self) -> bool {
        let n = self.results.len();
        let correct: Vec<ProcessId> = (0..n as u32)
            .map(ProcessId)
            .filter(|p| !self.faulty.contains(p))
            .collect();
        for &holder in &correct {
            let Some(items) = &self.results[holder.index()] else {
                return false;
            };
            let signers: BTreeSet<ProcessId> = items.iter().map(SignedItem::signer).collect();
            if !correct.iter().all(|p| signers.contains(p)) {
                return false;
            }
        }
        true
    }
}

/// Runs the two-phase relay full exchange over `n` processors tolerating
/// `t` faults (relays are processors `0..=t`), with the given silent
/// faults.
///
/// # Panics
/// Panics unless `t + 1 < n` and the fault set fits `t`.
pub fn relay_exchange(
    n: usize,
    t: usize,
    faulty: Vec<ProcessId>,
    seed: u64,
    scheme: SchemeKind,
) -> RelayExchangeReport {
    assert!(t + 1 < n, "need at least one non-relay");
    assert!(faulty.len() <= t, "fault plan exceeds t");
    let registry = KeyRegistry::new(n, seed, scheme);
    let results = crate::common::Board::new(n);
    let tag = 0xE0_E1;

    let mut actors: Vec<Box<dyn Actor<GridMsg>>> = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let id = ProcessId(i);
        if faulty.contains(&id) {
            actors.push(Box::new(ba_sim::adversary::Silent));
        } else {
            actors.push(Box::new(RelayExchangeActor::new(
                n,
                t,
                id,
                &registry.signer(id),
                registry.verifier(),
                tag,
                results.clone(),
            )));
        }
    }

    let mut sim = Simulation::new(actors);
    let outcome = sim.run(2);
    RelayExchangeReport {
        outcome,
        results: results.snapshot(),
        faulty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn layout_indexing() {
        let layout = GridLayout::new((0..9u32).map(ProcessId).collect());
        assert_eq!(layout.m(), 3);
        assert_eq!(layout.len(), 9);
        assert_eq!(layout.id(1, 2), ProcessId(5));
        assert_eq!(layout.pos(ProcessId(5)), Some((1, 2)));
        assert_eq!(layout.pos(ProcessId(9)), None);
        let row: Vec<ProcessId> = layout.row(2).collect();
        assert_eq!(row, vec![ProcessId(6), ProcessId(7), ProcessId(8)]);
        let col: Vec<ProcessId> = layout.col(0).collect();
        assert_eq!(col, vec![ProcessId(0), ProcessId(3), ProcessId(6)]);
        assert!(!layout.is_empty());
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_layout_rejected() {
        let _ = GridLayout::new((0..8u32).map(ProcessId).collect());
    }

    #[test]
    fn fault_free_full_exchange_within_message_bound() {
        for m in [2usize, 3, 4, 5] {
            let report = run(m, Vec::new(), 1, SchemeKind::Fast);
            assert!(report.mutual_exchange_holds(), "m={m}");
            // Everyone is in P when there are no faults.
            assert_eq!(report.lemma2_set().len(), m * m);
            let msgs = report.outcome.metrics.messages_by_correct;
            assert_eq!(msgs, bounds::alg4_max_messages(m as u64), "m={m}");
            assert_eq!(report.outcome.metrics.phases, 3);
        }
    }

    #[test]
    fn lemma2_holds_with_concentrated_row_faults() {
        // Kill a whole row: its members leave P, everyone else exchanges.
        let m = 4;
        let faulty: Vec<ProcessId> = (4..8u32).map(ProcessId).collect();
        let report = run(m, faulty, 2, SchemeKind::Fast);
        let p_set = report.lemma2_set();
        assert_eq!(p_set.len(), m * m - 4);
        assert!(report.mutual_exchange_holds());
    }

    #[test]
    fn lemma2_holds_with_scattered_faults() {
        let m = 5;
        let t = 4;
        let faulty: Vec<ProcessId> = vec![ProcessId(0), ProcessId(7), ProcessId(13), ProcessId(21)];
        let report = run(m, faulty, 3, SchemeKind::Fast);
        let p_set = report.lemma2_set();
        assert!(p_set.len() >= bounds::alg4_min_successful((m * m) as u64, t as u64) as usize);
        assert!(report.mutual_exchange_holds());
    }

    #[test]
    fn signed_item_tamper_detection() {
        let registry = KeyRegistry::new(4, 9, SchemeKind::Hmac);
        let signer = registry.signer(ProcessId(1));
        let item = SignedItem::new(5, Bytes::from_static(b"value"), &signer);
        assert!(item.verifies(5, &registry.verifier()));
        // Wrong tag (a different Algorithm 5 block, say).
        assert!(!item.verifies(6, &registry.verifier()));
        // Tampered body.
        let tampered = SignedItem {
            body: Bytes::from_static(b"other"),
            sig: item.sig.clone(),
        };
        assert!(!tampered.verifies(5, &registry.verifier()));
        assert_eq!(item.signer(), ProcessId(1));
    }

    #[test]
    fn grid_msg_signature_counts() {
        let registry = KeyRegistry::new(4, 9, SchemeKind::Fast);
        let item = SignedItem::new(0, Bytes::new(), &registry.signer(ProcessId(0)));
        assert_eq!(GridMsg::Item(item.clone()).signature_count(), 1);
        assert_eq!(GridMsg::Row(vec![item.clone(); 3]).signature_count(), 3);
        assert_eq!(
            GridMsg::Rows(vec![vec![item.clone(); 2], vec![item; 3]]).signature_count(),
            5
        );
    }

    #[test]
    fn o_n_1_5_beats_full_exchange_for_t_at_least_m() {
        // 3(m-1)m² < N·t when t >= m (Theorem 6's point).
        for m in [3u64, 5, 8] {
            let n_grid = m * m;
            let t = m;
            assert!(bounds::alg4_max_messages(m) < n_grid * t * (t + 1));
        }
    }

    #[test]
    fn relay_exchange_is_full_and_costs_nt() {
        for (n, t) in [(9usize, 2usize), (25, 4), (49, 6)] {
            let r = relay_exchange(n, t, vec![], 1, SchemeKind::Fast);
            assert!(r.full_exchange_holds(), "n={n} t={t}");
            // (n-1)(t+1) + (t+1)(n-t-1) messages exactly, fault-free.
            let expected = ((n - 1) * (t + 1) + (t + 1) * (n - t - 1)) as u64;
            assert_eq!(r.outcome.metrics.messages_by_correct, expected);
        }
    }

    #[test]
    fn relay_exchange_survives_t_silent_relays_minus_one() {
        // t faults, all aimed at relays: one correct relay remains.
        let (n, t) = (16usize, 3usize);
        let faulty: Vec<ProcessId> = (0..t as u32).map(ProcessId).collect();
        let r = relay_exchange(n, t, faulty, 2, SchemeKind::Fast);
        assert!(r.full_exchange_holds());
    }

    #[test]
    fn relay_exchange_survives_silent_non_relays() {
        let (n, t) = (12usize, 2usize);
        let faulty = vec![ProcessId(5), ProcessId(9)];
        let r = relay_exchange(n, t, faulty, 3, SchemeKind::Fast);
        assert!(r.full_exchange_holds());
    }

    #[test]
    fn grid_beats_relay_exchange_at_the_crossover() {
        // Grid costs 3(m-1)N; the relay baseline ~2N(t+1). The grid wins
        // once t+1 > 1.5(m-1): for m = 5 that is t >= 7.
        let m = 5; // N = 25
        let t = 7;
        let grid = run(m, vec![], 4, SchemeKind::Fast);
        let relay = relay_exchange(m * m, t, vec![], 4, SchemeKind::Fast);
        assert!(
            grid.outcome.metrics.messages_by_correct < relay.outcome.metrics.messages_by_correct
        );
        // And below the crossover the relay baseline is cheaper.
        let cheap_relay = relay_exchange(m * m, 2, vec![], 4, SchemeKind::Fast);
        assert!(
            cheap_relay.outcome.metrics.messages_by_correct
                < grid.outcome.metrics.messages_by_correct
        );
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_lemma2_random_faults() {
            run_cases(12, 0x65, |gen| {
                let m = gen.usize_in(2, 6);
                let seed = gen.u64();
                let mask = gen.u64();
                let n = m * m;
                let faulty: Vec<ProcessId> = (0..n as u32)
                    .filter(|i| mask & (1 << (i % 63)) != 0)
                    .take(m - 1)
                    .map(ProcessId)
                    .collect();
                let report = run(m, faulty, seed, SchemeKind::Fast);
                assert!(report.mutual_exchange_holds());
                assert!(
                    report.outcome.metrics.messages_by_correct
                        <= bounds::alg4_max_messages(m as u64)
                );
            });
        }
    }
}
