//! The one-call facade: pick the paper's right algorithm for `(n, t)`.
//!
//! Section 5 of the paper lays out the regime map this module encodes:
//!
//! * `n = 2t + 1` — Algorithm 1 (or Algorithm 2 when transferable proofs
//!   are wanted);
//! * `2t + 1 < n < α` (with `α` the smallest square above `6t`) — "one can
//!   extend the first Algorithm by 1 phase and `(t+1)(n−2t−1) = O(t²)`
//!   messages and still achieve an `O(n + t²)` upper bound": the first
//!   `2t + 1` processors agree, then the first `t + 1` of them hand every
//!   remaining processor a *valid message* (the common value with `t + 1`
//!   signatures, which no faulty coalition can fabricate for another
//!   value). Implemented by [`run_small_n`] on top of Algorithm 2.
//! * `n ≥ α` — Algorithm 5 with tree size `s ≈ t` (Theorem 7's
//!   `O(n + t²)`).
//!
//! [`agree`] dispatches accordingly and returns a uniform summary.

use crate::algorithm1::Algo1Params;
use crate::algorithm2::Algo2Actor;
use crate::algorithm5::{self, is_valid_message};
use crate::bounds;
use crate::common::{into_report, Board};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signer, Value};
use ba_sim::actor::{Actor, Envelope, Outbox};
use ba_sim::engine::Simulation;
use ba_sim::{AgreementViolation, Metrics, RunVerdict};
use std::sync::Arc;

/// Which algorithm the facade selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Selected {
    /// `n = 2t + 1`: Algorithm 1.
    Algorithm1,
    /// `2t + 1 < n < α`: the Algorithm 2 + hand-off extension.
    SmallN,
    /// `n ≥ α`: Algorithm 5.
    Algorithm5,
}

/// Uniform result of [`agree`].
#[derive(Debug)]
pub struct AgreeReport {
    /// Which algorithm ran.
    pub selected: Selected,
    /// The checked agreement verdict.
    pub verdict: RunVerdict,
    /// Traffic accounting.
    pub metrics: Metrics,
}

/// Options for [`agree`] and [`run_small_n`].
#[derive(Debug, Default)]
pub struct AgreeOptions {
    /// Registry seed.
    pub seed: u64,
    /// Signature scheme.
    pub scheme: SchemeKind,
}

/// A processor of the small-`n` extension: the first `2t + 1` run
/// Algorithm 2; at phase `3t + 4` the first `t + 1` send their valid
/// message to processors `2t + 1 .. n`, who decide on the first valid
/// message received.
#[derive(Debug)]
pub struct SmallNActor {
    n: usize,
    t: usize,
    me: ProcessId,
    signer: Signer,
    core: Option<Algo2Actor>,
    params: Arc<Algo1Params>,
    decided: Option<Value>,
}

impl SmallNActor {
    /// Creates the actor (`own_value` only for the transmitter).
    pub fn new(
        n: usize,
        t: usize,
        me: ProcessId,
        signer: Signer,
        own_value: Option<Value>,
        params: Arc<Algo1Params>,
        scratch: Arc<Board<Chain>>,
    ) -> Self {
        let core = (me.index() < 2 * t + 1)
            .then(|| Algo2Actor::new(params.clone(), me, signer.clone(), own_value, scratch));
        SmallNActor {
            n,
            t,
            me,
            signer,
            core,
            params,
            decided: None,
        }
    }

    /// Total phases: Algorithm 2 plus the hand-off.
    pub fn phases(t: usize) -> usize {
        3 * t + 4
    }
}

impl Actor<Chain> for SmallNActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        let t = self.t;
        if phase <= 3 * t + 3 {
            if let Some(core) = &mut self.core {
                core.step(phase, inbox, out);
            }
            return;
        }
        // Phase 3t + 4: hand-off.
        if let Some(core) = &mut self.core {
            core.finalize(inbox);
            self.decided = core.decision();
            if self.me.index() < t + 1 {
                let mut valid = core
                    .proof()
                    .expect("Theorem 4: correct core processors hold proofs")
                    .clone();
                if !valid.contains_signer(self.me) {
                    valid.sign_and_append(&self.signer);
                }
                for p in 2 * t + 1..self.n {
                    out.send(ProcessId(p as u32), valid.clone());
                }
            }
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
        if self.core.is_some() {
            return;
        }
        for env in inbox {
            if self.decided.is_none()
                && is_valid_message(&env.payload, self.t, &self.params.verifier)
            {
                self.decided = Some(env.payload.value());
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decided
    }
}

/// Runs the small-`n` extension (`n ≥ 2t + 1`).
///
/// # Errors
/// Propagates any [`AgreementViolation`].
///
/// # Panics
/// Panics if `t == 0`, `n < 2t + 1`, or `value` is not binary.
pub fn run_small_n(
    n: usize,
    t: usize,
    value: Value,
    options: AgreeOptions,
) -> Result<AgreeReport, AgreementViolation> {
    assert!(t >= 1 && n > 2 * t, "small-n extension needs n >= 2t + 1");
    assert!(value == Value::ZERO || value == Value::ONE);
    let registry = KeyRegistry::new(n, options.seed, options.scheme);
    let params = Arc::new(Algo1Params {
        t,
        verifier: registry.verifier(),
    });
    let scratch = Board::new(2 * t + 1);

    let actors: Vec<Box<dyn Actor<Chain>>> = (0..n as u32)
        .map(|p| {
            Box::new(SmallNActor::new(
                n,
                t,
                ProcessId(p),
                registry.signer(ProcessId(p)),
                (p == 0).then_some(value),
                params.clone(),
                scratch.clone(),
            )) as Box<dyn Actor<Chain>>
        })
        .collect();

    let mut sim = Simulation::new(actors);
    let outcome = sim.run(SmallNActor::phases(t));
    let report = into_report(outcome, ProcessId(0), value)?;
    Ok(AgreeReport {
        selected: Selected::SmallN,
        verdict: report.verdict,
        metrics: report.outcome.metrics,
    })
}

/// Reaches Byzantine Agreement with the paper's regime-appropriate
/// algorithm (see the module docs).
///
/// ```
/// use ba_algos::{agree, AgreeOptions, Selected};
/// use ba_crypto::Value;
///
/// let r = agree(12, 1, Value::ONE, AgreeOptions::default())?;
/// assert_eq!(r.verdict.agreed, Some(Value::ONE));
/// assert_eq!(r.selected, Selected::Algorithm5); // 12 >= alpha(1) = 9
/// # Ok::<(), ba_sim::AgreementViolation>(())
/// ```
///
/// # Errors
/// Propagates any [`AgreementViolation`].
///
/// # Panics
/// Panics if `t == 0`, `n < 2t + 1`, or `value` is not binary.
pub fn agree(
    n: usize,
    t: usize,
    value: Value,
    options: AgreeOptions,
) -> Result<AgreeReport, AgreementViolation> {
    assert!(t >= 1 && n > 2 * t, "byzantine agreement needs n >= 2t + 1");
    let alpha = bounds::alpha(t as u64) as usize;
    if n == 2 * t + 1 {
        let r = crate::algorithm1::run(
            t,
            value,
            crate::algorithm1::Algo1Options {
                seed: options.seed,
                scheme: options.scheme,
                ..Default::default()
            },
        )?;
        Ok(AgreeReport {
            selected: Selected::Algorithm1,
            verdict: r.verdict,
            metrics: r.outcome.metrics,
        })
    } else if n < alpha {
        run_small_n(n, t, value, options)
    } else {
        // Largest tree size 2^λ − 1 not exceeding max(t, 1).
        let mut s = 1;
        while 2 * s < t.max(1) {
            s = 2 * s + 1;
        }
        let r = algorithm5::run(
            n,
            t,
            s,
            value,
            algorithm5::Alg5Options {
                seed: options.seed,
                scheme: options.scheme,
                ..Default::default()
            },
        )?;
        Ok(AgreeReport {
            selected: Selected::Algorithm5,
            verdict: r.verdict,
            metrics: r.outcome.metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_n_extension_agrees_with_bounded_extra_messages() {
        for t in [1usize, 2, 3] {
            let core = 2 * t + 1;
            for extra in [1usize, 3, 2 * t] {
                let n = core + extra;
                for v in [Value::ZERO, Value::ONE] {
                    let r = run_small_n(n, t, v, AgreeOptions::default()).unwrap();
                    assert_eq!(r.verdict.agreed, Some(v), "n={n} t={t}");
                    // Algorithm 2 bound plus the hand-off term.
                    let bound = bounds::alg2_max_messages(t as u64)
                        + (t as u64 + 1) * (n as u64 - core as u64);
                    assert!(r.metrics.messages_by_correct <= bound);
                    assert_eq!(r.metrics.phases, 3 * t + 4);
                }
            }
        }
    }

    #[test]
    fn facade_selects_per_regime() {
        let t = 1; // alpha = 9
        let a = agree(3, t, Value::ONE, AgreeOptions::default()).unwrap();
        assert_eq!(a.selected, Selected::Algorithm1);
        let b = agree(5, t, Value::ONE, AgreeOptions::default()).unwrap();
        assert_eq!(b.selected, Selected::SmallN);
        let c = agree(20, t, Value::ONE, AgreeOptions::default()).unwrap();
        assert_eq!(c.selected, Selected::Algorithm5);
        for r in [a, b, c] {
            assert_eq!(r.verdict.agreed, Some(Value::ONE));
        }
    }

    #[test]
    fn facade_message_counts_are_o_n_plus_t_squared() {
        // Across the regime map the counts stay within a uniform
        // c·(n + t²) envelope (the paper's O(n + t²) claim end to end).
        for (n, t) in [(3usize, 1usize), (7, 1), (9, 4), (12, 4), (30, 1), (60, 3)] {
            let r = agree(n, t, Value::ONE, AgreeOptions::default()).unwrap();
            assert_eq!(r.verdict.agreed, Some(Value::ONE));
            let budget = 30 * (n as u64 + (t * t) as u64) + 200;
            assert!(
                r.metrics.messages_by_correct <= budget,
                "n={n} t={t}: {} > {budget}",
                r.metrics.messages_by_correct
            );
        }
    }

    #[test]
    #[should_panic(expected = "n >= 2t + 1")]
    fn facade_rejects_too_many_faults() {
        let _ = agree(6, 3, Value::ONE, AgreeOptions::default());
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_facade_always_agrees() {
            run_cases(12, 0x6D, |gen| {
                let t = gen.usize_in(1, 4);
                let extra = gen.usize_in(0, 30);
                let seed = gen.u64();
                let v = gen.u64_in(0, 2);
                let n = 2 * t + 1 + extra;
                let r = agree(
                    n,
                    t,
                    Value(v),
                    AgreeOptions {
                        seed,
                        scheme: SchemeKind::Fast,
                    },
                )
                .unwrap();
                assert_eq!(r.verdict.agreed, Some(Value(v)));
            });
        }
    }
}
