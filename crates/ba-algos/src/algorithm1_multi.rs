//! The multi-valued modification of Algorithm 1.
//!
//! Section 5 notes that the algorithms are stated for `V = {0, 1}` and
//! that "if the transmitter can send more than two values, one has to
//! modify the algorithms slightly". This module implements the standard
//! modification for Algorithm 1:
//!
//! * a *correct `v`-message* is defined exactly like a correct 1-message
//!   but for any value `v` (a signed simple path from the transmitter in
//!   the bipartite graph `G`);
//! * a processor relays the **first** correct `v`-message it receives for
//!   each of the first **two** distinct values (two distinct signed values
//!   already prove the transmitter faulty, so further values add nothing);
//! * decision: the unique value for which a correct message arrived, or
//!   the default `0` when zero or several values arrived.
//!
//! Correctness mirrors the binary case: a correct transmitter's signature
//! exists on exactly one value, so only that value can ever have a correct
//! message; and the propagation argument of Theorem 3 applies to each
//! value independently, so all correct processors end with the same value
//! *set*. Messages at most double: `2 · (2t² + 2t)`.

use crate::algorithm1::Algo1Params;
use crate::common::{domains, into_report, AlgoReport};
use ba_crypto::{Chain, KeyRegistry, ProcessId, SchemeKind, Signer, Value};
use ba_sim::actor::{Actor, Envelope, Outbox};
use ba_sim::engine::Simulation;
use ba_sim::AgreementViolation;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Whether `chain`, received by `me` at phase `k`, is a correct
/// `v`-message for *some* value `v` (returned on success).
pub fn correct_value_message(
    params: &Algo1Params,
    chain: &Chain,
    k: usize,
    me: ProcessId,
) -> Option<Value> {
    // Reuse the binary validator by checking the structural rules
    // directly: same path/length/signature discipline, any value.
    if chain.domain() != domains::ALG1
        || chain.len() != k
        || chain.verify_simple_path(&params.verifier).is_err()
    {
        return None;
    }
    let signers: Vec<ProcessId> = chain.signers().collect();
    if signers[0] != ProcessId(0) || signers.contains(&me) {
        return None;
    }
    for &s in &signers[1..] {
        if s.index() >= params.n() || s == ProcessId(0) {
            return None;
        }
    }
    for w in signers[1..].windows(2) {
        if crate::algorithm1::side(w[0], params.t) == crate::algorithm1::side(w[1], params.t) {
            return None;
        }
    }
    let last = *signers.last().expect("non-empty");
    let adjacent = last == ProcessId(0)
        || crate::algorithm1::side(last, params.t) != crate::algorithm1::side(me, params.t);
    adjacent.then(|| chain.value())
}

/// An honest multi-valued Algorithm 1 processor.
#[derive(Debug)]
pub struct Algo1MultiActor {
    params: Arc<Algo1Params>,
    me: ProcessId,
    signer: Signer,
    own_value: Option<Value>,
    /// Values for which a correct message has been accepted.
    seen: BTreeSet<Value>,
    phase: usize,
}

impl Algo1MultiActor {
    /// Creates the actor; `own_value` is `Some` for the transmitter.
    pub fn new(
        params: Arc<Algo1Params>,
        me: ProcessId,
        signer: Signer,
        own_value: Option<Value>,
    ) -> Self {
        Algo1MultiActor {
            params,
            me,
            signer,
            own_value,
            seen: BTreeSet::new(),
            phase: 0,
        }
    }

    fn absorb(&mut self, inbox: &[Envelope<Chain>], k: usize, out: Option<&mut Outbox<Chain>>) {
        let mut fresh: Vec<Chain> = Vec::new();
        for env in inbox {
            if env.payload.last_signer() != Some(env.from) {
                continue;
            }
            if let Some(v) = correct_value_message(&self.params, &env.payload, k, self.me) {
                if !self.seen.contains(&v) {
                    // Relay only the first two distinct values.
                    if self.seen.len() < 2 {
                        fresh.push(env.payload.clone());
                    }
                    self.seen.insert(v);
                }
            }
        }
        if let Some(out) = out {
            for chain in fresh {
                let mut relay = chain;
                relay.sign_and_append(&self.signer);
                out.broadcast(self.params.relay_targets(self.me), relay);
            }
        }
    }
}

impl Actor<Chain> for Algo1MultiActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        self.phase = phase;
        if phase == 1 {
            if let Some(v) = self.own_value {
                let mut chain = Chain::new(domains::ALG1, v);
                chain.sign_and_append(&self.signer);
                out.broadcast(self.params.relay_targets(self.me), chain);
            }
            return;
        }
        if self.own_value.is_some() {
            return;
        }
        if phase <= self.params.t + 2 {
            self.absorb(inbox, phase - 1, Some(out));
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<Chain>]) {
        if self.own_value.is_none() {
            let k = self.phase;
            self.absorb(inbox, k, None);
        }
    }

    fn decision(&self) -> Option<Value> {
        if let Some(v) = self.own_value {
            return Some(v);
        }
        Some(if self.seen.len() == 1 {
            *self.seen.iter().next().expect("len checked")
        } else {
            Value::ZERO
        })
    }
}

/// A transmitter that signs a different value for every receiver — the
/// strongest equivocation the multi-valued setting allows.
#[derive(Debug)]
pub struct RainbowTransmitter {
    signer: Signer,
    n: usize,
}

impl RainbowTransmitter {
    /// Creates the adversary.
    pub fn new(signer: Signer, n: usize) -> Self {
        RainbowTransmitter { signer, n }
    }
}

impl Actor<Chain> for RainbowTransmitter {
    fn step(&mut self, phase: usize, _inbox: &[Envelope<Chain>], out: &mut Outbox<Chain>) {
        if phase != 1 {
            return;
        }
        for p in 1..self.n as u32 {
            let mut chain = Chain::new(domains::ALG1, Value(100 + p as u64));
            chain.sign_and_append(&self.signer);
            out.send(ProcessId(p), chain);
        }
    }
    fn decision(&self) -> Option<Value> {
        None
    }
    fn is_correct(&self) -> bool {
        false
    }
}

/// Fault scenarios for [`run`].
#[derive(Debug, Default)]
pub enum MultiFault {
    /// All correct.
    #[default]
    None,
    /// The transmitter signs a distinct value per receiver.
    Rainbow,
    /// The given relays are silent.
    SilentRelays {
        /// The silent relays.
        set: Vec<ProcessId>,
    },
}

/// Runs the multi-valued Algorithm 1 with any `value` (not just binary).
///
/// ```
/// use ba_algos::algorithm1_multi::{run, MultiFault};
/// use ba_crypto::{SchemeKind, Value};
///
/// let r = run(2, Value(42), MultiFault::None, 1, SchemeKind::Fast)?;
/// assert_eq!(r.verdict.agreed, Some(Value(42)));
/// # Ok::<(), ba_sim::AgreementViolation>(())
/// ```
///
/// # Errors
/// Propagates any [`AgreementViolation`].
///
/// # Panics
/// Panics if `t == 0` or the fault set exceeds `t`.
pub fn run(
    t: usize,
    value: Value,
    fault: MultiFault,
    seed: u64,
    scheme: SchemeKind,
) -> Result<AlgoReport<Chain>, AgreementViolation> {
    assert!(t >= 1);
    let n = 2 * t + 1;
    let registry = KeyRegistry::new(n, seed, scheme);
    let params = Arc::new(Algo1Params {
        t,
        verifier: registry.verifier(),
    });

    let mut actors: Vec<Box<dyn Actor<Chain>>> = Vec::with_capacity(n);
    match &fault {
        MultiFault::None => {
            for p in 0..n as u32 {
                actors.push(Box::new(Algo1MultiActor::new(
                    params.clone(),
                    ProcessId(p),
                    registry.signer(ProcessId(p)),
                    (p == 0).then_some(value),
                )));
            }
        }
        MultiFault::Rainbow => {
            actors.push(Box::new(RainbowTransmitter::new(
                registry.signer(ProcessId(0)),
                n,
            )));
            for p in 1..n as u32 {
                actors.push(Box::new(Algo1MultiActor::new(
                    params.clone(),
                    ProcessId(p),
                    registry.signer(ProcessId(p)),
                    None,
                )));
            }
        }
        MultiFault::SilentRelays { set } => {
            assert!(set.len() <= t && !set.contains(&ProcessId(0)));
            for p in 0..n as u32 {
                if set.contains(&ProcessId(p)) {
                    actors.push(Box::new(ba_sim::adversary::Silent));
                } else {
                    actors.push(Box::new(Algo1MultiActor::new(
                        params.clone(),
                        ProcessId(p),
                        registry.signer(ProcessId(p)),
                        (p == 0).then_some(value),
                    )));
                }
            }
        }
    }

    let mut sim = Simulation::new(actors);
    let outcome = sim.run(t + 2);
    into_report(outcome, ProcessId(0), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn arbitrary_values_agree_fault_free() {
        for t in 1..=4 {
            for v in [Value(0), Value(7), Value(1_000_000), Value(u64::MAX)] {
                let r = run(t, v, MultiFault::None, 1, SchemeKind::Fast).unwrap();
                assert_eq!(r.verdict.agreed, Some(v), "t={t} v={v}");
            }
        }
    }

    #[test]
    fn rainbow_transmitter_forces_default_but_agrees() {
        for t in 2..=5 {
            let r = run(t, Value(42), MultiFault::Rainbow, 3, SchemeKind::Fast).unwrap();
            // Every correct processor sees >= 2 distinct values (its own
            // direct one plus relayed ones) and defaults.
            assert_eq!(r.verdict.agreed, Some(Value::ZERO), "t={t}");
        }
    }

    #[test]
    fn message_count_at_most_doubles() {
        for t in 1..=5 {
            let r = run(t, Value(9), MultiFault::Rainbow, 1, SchemeKind::Fast).unwrap();
            assert!(
                r.outcome.metrics.messages_by_correct <= 2 * bounds::alg1_max_messages(t as u64),
                "t={t}"
            );
        }
    }

    #[test]
    fn silent_relays_tolerated_with_nonbinary_value() {
        let t = 3;
        let r = run(
            t,
            Value(555),
            MultiFault::SilentRelays {
                set: vec![ProcessId(2), ProcessId(5)],
            },
            9,
            SchemeKind::Fast,
        )
        .unwrap();
        assert_eq!(r.verdict.agreed, Some(Value(555)));
    }

    #[test]
    fn value_message_validator_accepts_any_value() {
        let t = 2;
        let registry = KeyRegistry::new(5, 0, SchemeKind::Hmac);
        let params = Algo1Params {
            t,
            verifier: registry.verifier(),
        };
        let mut chain = Chain::new(domains::ALG1, Value(77));
        chain.sign_and_append(&registry.signer(ProcessId(0)));
        assert_eq!(
            correct_value_message(&params, &chain, 1, ProcessId(3)),
            Some(Value(77))
        );
        // Structural rules still enforced: wrong length.
        assert_eq!(
            correct_value_message(&params, &chain, 2, ProcessId(3)),
            None
        );
    }

    mod props {
        use super::*;
        use ba_crypto::testkit::run_cases;

        #[test]
        fn prop_multivalue_agreement() {
            run_cases(16, 0x6B, |gen| {
                let t = gen.usize_in(1, 5);
                let v = gen.u64();
                let seed = gen.u64();
                let rainbow = gen.bool();
                let fault = if rainbow {
                    MultiFault::Rainbow
                } else {
                    MultiFault::None
                };
                let r = run(t, Value(v), fault, seed, SchemeKind::Fast).unwrap();
                assert!(r.verdict.agreed.is_some());
            });
        }
    }
}
