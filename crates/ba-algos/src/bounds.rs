//! Every closed-form bound the paper states, as plain functions.
//!
//! The experiment harness prints these next to measured message and
//! signature counts; the test suites assert that the implementations never
//! exceed the upper bounds and that the lower bounds never exceed the
//! measured traffic of a correct algorithm.

/// Theorem 1: any authenticated Byzantine Agreement algorithm tolerating
/// `t < n − 1` faults has a fault-free history in which correct processors
/// send at least `n(t + 1) / 4` signatures.
pub fn thm1_signature_lower_bound(n: u64, t: u64) -> u64 {
    n * (t + 1) / 4
}

/// Corollary 1: without authentication the Theorem 1 bound applies to the
/// number of messages.
pub fn cor1_message_lower_bound(n: u64, t: u64) -> u64 {
    thm1_signature_lower_bound(n, t)
}

/// Theorem 2: any Byzantine Agreement algorithm has a history in which
/// correct processors send at least `max{⌈(n−1)/2⌉, (1 + t/2)²}` messages.
///
/// The second term is `⌈1 + t/2⌉ · ⌊1 + t/2⌋` in the paper's proof (the
/// `⌊1 + t/2⌋` faulty processors in `B` each receive `⌈1 + t/2⌉` messages).
pub fn thm2_message_lower_bound(n: u64, t: u64) -> u64 {
    let half = n.saturating_sub(1).div_ceil(2);
    let b = 1 + t / 2; // ⌊1 + t/2⌋
    let per = 1 + t.div_ceil(2); // ⌈1 + t/2⌉
    half.max(b * per)
}

/// Theorem 3: Algorithm 1 (`n = 2t + 1`) sends at most `2t² + 2t` messages.
pub fn alg1_max_messages(t: u64) -> u64 {
    2 * t * t + 2 * t
}

/// Theorem 3: Algorithm 1 finishes within `t + 2` phases.
pub fn alg1_phases(t: u64) -> u64 {
    t + 2
}

/// Theorem 4: Algorithm 2 sends at most `5t² + 5t` messages.
pub fn alg2_max_messages(t: u64) -> u64 {
    5 * t * t + 5 * t
}

/// Theorem 4: Algorithm 2 finishes within `3t + 3` phases.
pub fn alg2_phases(t: u64) -> u64 {
    3 * t + 3
}

/// Lemma 1: Algorithm 3 with group size `s` sends at most
/// `2n + 4tn/s + 3t²s` messages.
pub fn alg3_max_messages(n: u64, t: u64, s: u64) -> u64 {
    2 * n + 4 * t * n / s.max(1) + 3 * t * t * s
}

/// Lemma 1: Algorithm 3 with group size `s` runs `t + 2s + 3` phases.
pub fn alg3_phases(t: u64, s: u64) -> u64 {
    t + 2 * s + 3
}

/// Theorem 6: Algorithm 4 over `N = m²` processors sends at most
/// `3(m − 1)m²` messages.
pub fn alg4_max_messages(m: u64) -> u64 {
    3 * (m.saturating_sub(1)) * m * m
}

/// Theorem 6 guarantee: at least `N − 2t` correct processors mutually
/// exchange values.
pub fn alg4_min_successful(n_grid: u64, t: u64) -> u64 {
    n_grid.saturating_sub(2 * t)
}

/// The paper's `α`: the smallest perfect square strictly bigger than `6t`
/// (the number of active processors in Algorithm 5).
pub fn alpha(t: u64) -> u64 {
    let mut root = 1u64;
    while root * root <= 6 * t {
        root += 1;
    }
    root * root
}

/// Lemma 5: Algorithm 5 with tree size `s` runs at most `3t + 4s + 2`
/// phases (this reproduction's non-overlapping schedule adds `O(log s)`
/// bookkeeping phases; see [`alg5_phases_schedule`]).
pub fn alg5_phases_paper(t: u64, s: u64) -> u64 {
    3 * t + 4 * s + 2
}

/// The exact phase count of this reproduction's Algorithm 5 schedule:
/// `3t + 4` phases of Algorithm 2 plus the active hand-off, then for each
/// block `x = λ..1` one activation phase, `2(l(x) − 1)` collection phases,
/// one report phase and three Algorithm 4 phases, then the single block-0
/// phase. `λ = log₂(s + 1)`.
pub fn alg5_phases_schedule(t: u64, s: u64) -> u64 {
    let lambda = (s + 1).ilog2() as u64;
    let mut phases = 3 * t + 4;
    for x in (1..=lambda).rev() {
        let l = (1u64 << x) - 1;
        phases += 1 + 2 * (l - 1) + 1 + 3;
    }
    phases + 1
}

/// Lemma 5: Algorithm 5 sends `O(t² + nt/s)` messages; this returns the
/// dominant-term envelope `c₁t² + c₂nt/s` with the constants worked out in
/// the paper's accounting (Section 7): `5t² + 5t + (t+1)(α−2t−1)` for the
/// prefix, `3(α−1)α²`-per-block grid traffic amortized over blocks, plus
/// dissemination terms `2α(2b+1)` and `2s(1 + log(2b+1))` summed over
/// trees. The experiments report measured counts against this envelope.
pub fn alg5_message_envelope(n: u64, t: u64, s: u64) -> u64 {
    let a = alpha(t);
    let lambda = ((s + 1).ilog2()) as u64;
    let prefix = 5 * t * t + 5 * t + (t + 1) * (a.saturating_sub(2 * t + 1));
    // Activation traffic: every active may contact every tree root once per
    // block, and block-0 direct sends are bounded by the same term.
    let r = n.saturating_sub(a).div_ceil(s.max(1));
    let activation = a * r * (lambda + 1);
    // Grid traffic: one Algorithm 4 round per block among α actives.
    let grid = (lambda + 1) * 3 * (a.isqrt().saturating_sub(1)) * a;
    // Tree-internal and report traffic (Lemma 4 accounting).
    let trees = 2 * a * (2 * t + r) + 2 * s * (r + 2 * t);
    prefix + activation + grid + trees
}

/// Theorem 5 headline: `O(n + t³)` with `s = 4t` in Algorithm 3.
pub fn thm5_envelope(n: u64, t: u64) -> u64 {
    alg3_max_messages(n, t, 4 * t.max(1))
}

/// Theorem 7 headline: `O(n + t²)` with `s = t` in Algorithm 5.
pub fn thm7_envelope(n: u64, t: u64) -> u64 {
    alg5_message_envelope(n, t, t.max(1))
}

/// Dolev–Strong baseline: at most `2n²` messages (each processor relays at
/// most two distinct values to everyone).
pub fn dolev_strong_max_messages(n: u64) -> u64 {
    2 * n * n
}

/// OM(t) oral-messages baseline: exactly
/// `(n−1) + (n−1)(n−2) + … + (n−1)···(n−t−1)` messages.
pub fn om_messages(n: u64, t: u64) -> u64 {
    let mut total = 0u64;
    let mut term = 1u64;
    for k in 0..=t {
        term = term.saturating_mul(n - 1 - k);
        total = total.saturating_add(term);
    }
    total
}

/// Intro trade-off: Algorithm 3 with `s = ⌈t/α⌉` gives about `t + 3 + t/α`
/// phases... inverted here: for a phase budget multiplier `alpha_knob`,
/// returns the group size realizing the trade-off point.
pub fn tradeoff_group_size(t: u64, alpha_knob: u64) -> u64 {
    t.div_ceil(alpha_knob.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm1_examples() {
        assert_eq!(thm1_signature_lower_bound(8, 3), 8);
        assert_eq!(thm1_signature_lower_bound(100, 9), 250);
        assert_eq!(cor1_message_lower_bound(100, 9), 250);
    }

    #[test]
    fn thm2_takes_the_max() {
        // Large n, small t: first term dominates.
        assert_eq!(thm2_message_lower_bound(101, 2), 50);
        // Small n, large t: second term dominates. t = 10: 6 * 6 = 36.
        assert_eq!(thm2_message_lower_bound(21, 10), 36);
        // Odd t: ⌊1+3/2⌋·⌈1+3/2⌉ = 2·3 = 6 vs ⌈6/2⌉ = 3.
        assert_eq!(thm2_message_lower_bound(7, 3), 6);
    }

    #[test]
    fn alg_bounds_match_paper_forms() {
        assert_eq!(alg1_max_messages(3), 24);
        assert_eq!(alg1_phases(3), 5);
        assert_eq!(alg2_max_messages(3), 60);
        assert_eq!(alg2_phases(3), 12);
        assert_eq!(alg3_phases(3, 5), 16);
        assert_eq!(alg3_max_messages(100, 3, 5), 200 + 240 + 135);
        assert_eq!(alg4_max_messages(4), 3 * 3 * 16);
    }

    #[test]
    fn alpha_is_smallest_square_above_6t() {
        assert_eq!(alpha(1), 9); // 6*1=6 -> 9
        assert_eq!(alpha(2), 16); // 12 -> 16
        assert_eq!(alpha(4), 25); // 24 -> 25
        assert_eq!(alpha(6), 49); // 36 -> 49 (strictly bigger)
        for t in 1..50 {
            let a = alpha(t);
            let r = (a as f64).sqrt() as u64;
            assert_eq!(r * r, a);
            assert!(a > 6 * t);
            assert!((r - 1) * (r - 1) <= 6 * t);
        }
    }

    #[test]
    fn om_counts() {
        // n=4, t=1: 3 + 3*2 = 9.
        assert_eq!(om_messages(4, 1), 9);
        // n=7, t=2: 6 + 6*5 + 6*5*4 = 156.
        assert_eq!(om_messages(7, 2), 156);
    }

    #[test]
    fn alg5_schedule_is_close_to_paper_count() {
        for t in [1u64, 2, 4, 8] {
            for s in [1u64, 3, 7, 15] {
                let lambda = (s + 1).ilog2() as u64;
                let paper = alg5_phases_paper(t, s);
                let ours = alg5_phases_schedule(t, s);
                assert!(
                    ours <= paper + 3 * lambda + 2,
                    "t={t} s={s}: ours={ours} paper={paper}"
                );
            }
        }
    }

    #[test]
    fn tradeoff_group_size_monotone() {
        assert_eq!(tradeoff_group_size(16, 1), 16);
        assert_eq!(tradeoff_group_size(16, 4), 4);
        assert_eq!(tradeoff_group_size(16, 16), 1);
        assert_eq!(tradeoff_group_size(16, 100), 1);
    }
}
